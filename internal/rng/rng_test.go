package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincided %d/64 times", same)
	}
}

func TestSplitIsOrderInsensitive(t *testing.T) {
	a := New(7)
	c1 := a.Split(3)
	// Drawing from the parent must not change what Split(3) returns.
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	c2 := a.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split depends on parent draw position at draw %d", i)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	a := New(7)
	c1, c2 := a.Split(1), a.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams coincided %d/64 times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	r := New(10)
	p := r.Perm32(257)
	seen := make([]bool, 257)
	for _, v := range p {
		if v < 0 || int(v) >= 257 || seen[v] {
			t.Fatalf("Perm32 not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(13)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int32]bool, k)
		for _, v := range s {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKUniform(t *testing.T) {
	// Every element of [0, 10) should appear in a size-3 sample with
	// probability 3/10.
	r := New(17)
	const trials = 30000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 0.3
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(23)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p, draws = 0.2, 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(37)
	const n, p, draws = 200, 0.1, 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		b := float64(r.Binomial(n, p))
		sum += b
		sumSq += b * b
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-n*p) > 0.5 {
		t.Errorf("Binomial mean = %v, want %v", mean, n*p)
	}
	if math.Abs(variance-n*p*(1-p)) > 2 {
		t.Errorf("Binomial variance = %v, want %v", variance, n*p*(1-p))
	}
}

func TestBinomialRange(t *testing.T) {
	r := New(41)
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw % 100)
		p := float64(pRaw) / 255
		b := r.Binomial(n, p)
		return b >= 0 && b <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(43)
	if b := r.Binomial(0, 0.5); b != 0 {
		t.Fatalf("Binomial(0, .5) = %d", b)
	}
	if b := r.Binomial(10, 0); b != 0 {
		t.Fatalf("Binomial(10, 0) = %d", b)
	}
	if b := r.Binomial(10, 1); b != 10 {
		t.Fatalf("Binomial(10, 1) = %d", b)
	}
}

func TestExpMean(t *testing.T) {
	r := New(47)
	const lambda, draws = 2.0, 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Exp(lambda)
	}
	mean := sum / draws
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Fatalf("Exp(%v) mean = %v, want %v", lambda, mean, 1/lambda)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(53)
	z := NewZipf(100, 2.0)
	for i := 0; i < 5000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfExactMass(t *testing.T) {
	// With exponent 2 and n=1000, P(1) = 1/H where H ~ pi^2/6, so ~0.6082.
	r := New(59)
	z := NewZipf(1000, 2.0)
	const draws = 50000
	ones, twos := 0, 0
	for i := 0; i < draws; i++ {
		switch z.Sample(r) {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	p1 := float64(ones) / draws
	p2 := float64(twos) / draws
	if math.Abs(p1-0.608) > 0.02 {
		t.Errorf("Zipf(1000, 2) P(1) = %v, want ~0.608", p1)
	}
	if math.Abs(p2-0.152) > 0.015 {
		t.Errorf("Zipf(1000, 2) P(2) = %v, want ~0.152", p2)
	}
}

func TestPanics(t *testing.T) {
	r := New(61)
	cases := []struct {
		name string
		f    func()
	}{
		{"Uint64n(0)", func() { r.Uint64n(0) }},
		{"Intn(0)", func() { r.Intn(0) }},
		{"Intn(-1)", func() { r.Intn(-1) }},
		{"Geometric(0)", func() { r.Geometric(0) }},
		{"Geometric(1.5)", func() { r.Geometric(1.5) }},
		{"Binomial(-1, .5)", func() { r.Binomial(-1, 0.5) }},
		{"Binomial(1, 2)", func() { r.Binomial(1, 2) }},
		{"Exp(0)", func() { r.Exp(0) }},
		{"NewZipf(0, 2)", func() { NewZipf(0, 2) }},
		{"NewZipf(5, 1)", func() { NewZipf(5, 1) }},
		{"SampleK(2, 3)", func() { r.SampleK(2, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(67)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64n(1000003)
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Geometric(0.01)
	}
	_ = sink
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	var sink *RNG
	for i := 0; i < b.N; i++ {
		sink = r.Split(uint64(i))
	}
	_ = sink
}
