package rng

import "math"

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, i.e. a sample from the geometric
// distribution on {0, 1, 2, ...}. It is the core of skip-sampling: to visit
// the positions of successes in a long Bernoulli sequence, repeatedly jump
// forward by Geometric(p)+1. Panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p out of (0, 1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Avoid log(0); Float64 is in [0,1) so 1-u is in (0,1].
	g := math.Floor(math.Log1p(-u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Binomial returns a sample from Binomial(n, p). For the moderate n·p values
// used in this repository an exact O(n·p) expected-time algorithm (counting
// geometric skips) is both simple and fast; for large p it samples the
// complement. Panics if n < 0 or p outside [0,1].
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 {
		panic("rng: Binomial with invalid parameters")
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Count successes by skipping over failures geometrically. The expected
	// number of iterations is n*p + 1.
	count := 0
	pos := -1
	for {
		pos += r.Geometric(p) + 1
		if pos >= n {
			return count
		}
		count++
	}
}

// Exp returns an exponentially distributed sample with rate lambda
// (mean 1/lambda). Panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with lambda <= 0")
	}
	u := r.Float64()
	return -math.Log1p(-u) / lambda
}

// Zipf samples from a bounded Zipf (power-law) distribution on {1, ..., n}
// with exponent s > 1: P(X = k) is proportional to k^{-s}. Sampling is exact
// inversion on a precomputed CDF (O(log n) per draw after O(n) setup), which
// suits the workload generators that draw an entire degree sequence from one
// distribution.
type Zipf struct {
	n   int
	cdf []float64 // cdf[k-1] = P(X <= k), cdf[n-1] == 1
}

// NewZipf builds the exact sampler. Panics if n < 1 or s <= 1.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 || s <= 1 {
		panic("rng: NewZipf with invalid parameters")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1
	return &Zipf{n: n, cdf: cdf}
}

// Sample draws one value in {1, ..., n}.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
