// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in this repository.
//
// Reproducibility is a hard requirement for the experiment harness: a single
// root seed must determine every random k-partitioning, every synthetic
// workload and every subsampling decision, even when partitions are processed
// concurrently by many goroutines. The standard library generators are either
// global (math/rand top-level) or awkward to split into independent streams,
// so we implement a small, well-studied pair of primitives:
//
//   - splitmix64 is used for seeding and for deriving independent child
//     streams (Split); it is a bijective finalizer with excellent avalanche
//     behaviour, the construction recommended by Vigna for seeding xoshiro.
//   - xoshiro256** is the core generator: 256 bits of state, period 2^256-1,
//     passes BigCrush, and is extremely fast (4 xors, 2 rotations per draw).
//
// An RNG is NOT safe for concurrent use; instead, derive one child stream per
// goroutine with Split, which is cheap and gives statistically independent
// sequences.
package rng

import "math/bits"

// RNG is a xoshiro256** generator with splitmix64-based stream derivation.
// The zero value is not usable; construct with New or Split.
type RNG struct {
	s  [4]uint64
	id uint64 // fixed stream identity; makes Split order-insensitive
}

// splitmix64 advances *x by the golden-ratio increment and returns the next
// output of the splitmix64 sequence.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed. Distinct seeds
// yield independent streams; the same seed always yields the same stream.
func New(seed uint64) *RNG {
	return fromID(seed)
}

// fromID constructs a generator whose state and fixed identity both derive
// from id through splitmix64.
func fromID(id uint64) *RNG {
	r := &RNG{id: id}
	sm := id
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state; splitmix64 outputs
	// four consecutive zeros with probability 2^-256, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child stream identified by label. Children
// with distinct labels, and children of distinct parents, are independent.
// Split is a pure function of the generator's fixed identity and the label,
// never of its draw position: r.Split(0) is the same stream no matter how
// many values were drawn from r before the call. This property is what lets
// concurrent per-partition workers share a root seed reproducibly.
func (r *RNG) Split(label uint64) *RNG {
	// Two rounds of splitmix64 over (id, label) give a well-mixed child id.
	sm := r.id ^ 0xd1b54a32d192ed03
	_ = splitmix64(&sm)
	sm ^= 0x9e3779b97f4a7c15 * (label + 1)
	childID := splitmix64(&sm)
	return fromID(childID)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniform integer in [0, n). Panics if n == 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm32 returns a uniformly random permutation of [0, n) as int32 values.
// It is the allocation-friendly variant used by the graph generators.
func (r *RNG) Perm32(n int) []int32 {
	p := make([]int32, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = int32(i)
	}
	return p
}

// SampleK returns k distinct uniform values from [0, n) in random order.
// It runs in O(k) expected time using Floyd's algorithm when k << n and
// falls back to a partial Fisher-Yates otherwise. Panics if k > n or k < 0.
func (r *RNG) SampleK(n, k int) []int32 {
	if k < 0 || k > n {
		panic("rng: SampleK with k out of range")
	}
	if k == 0 {
		return nil
	}
	// For dense samples a partial shuffle is cheaper than hashing.
	if k*4 >= n {
		p := r.Perm32(n)
		return p[:k:k]
	}
	seen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for j := n - k; j < n; j++ {
		t := int32(r.Intn(j + 1))
		if _, dup := seen[t]; dup {
			t = int32(j)
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd's method yields a uniform set but a biased order; shuffle.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
