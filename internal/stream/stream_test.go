package stream

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

// parityGraph returns a deterministic test workload per seed.
func parityGraph(seed uint64, n int, deg float64) *graph.Graph {
	return gen.GNP(n, deg/float64(n), rng.New(seed))
}

// batchHashParts is the oracle: the same k-partitioning the runtime's
// sharder must induce, materialized by the batch path.
func batchHashParts(g *graph.Graph, k int, seed uint64) [][]graph.Edge {
	return partition.ByAssignment(g.Edges, k, partition.HashAssignAll(g.Edges, k, seed))
}

// TestShardParity: the streaming sharder must deliver, to every machine,
// exactly the edge sequence the partition.ByAssignment oracle assigns it —
// same multiset AND same order, across seeds and batch sizes.
func TestShardParity(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := parityGraph(seed, 600, 7)
		for _, bs := range []int{0, 1, 7, 4096} {
			k := 5
			parts, st, err := Shard(NewGraphSource(g), Config{K: k, Seed: seed, BatchSize: bs})
			if err != nil {
				t.Fatalf("seed %d bs %d: %v", seed, bs, err)
			}
			want := batchHashParts(g, k, seed)
			for i := range want {
				if len(want[i]) == 0 && len(parts[i]) == 0 {
					continue
				}
				if !reflect.DeepEqual(parts[i], want[i]) {
					t.Fatalf("seed %d bs %d machine %d: stream shard differs from ByAssignment oracle", seed, bs, i)
				}
			}
			if !partition.Verify(g.Edges, parts) {
				t.Fatalf("seed %d bs %d: shards are not an exact multiset partition", seed, bs)
			}
			if st.EdgesTotal != g.M() || st.N != g.N {
				t.Fatalf("seed %d: stats EdgesTotal=%d N=%d, want %d %d", seed, st.EdgesTotal, st.N, g.M(), g.N)
			}
		}
	}
}

// TestMatchingParity: the streaming Theorem 1 pipeline must reproduce the
// batch pipeline run on the same hash k-partitioning bit for bit — identical
// per-machine coresets, identical composed matching — across >= 5 seeds.
func TestMatchingParity(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := parityGraph(seed, 800, 8)
		k := 6
		m, st, err := Matching(NewGraphSource(g), Config{K: k, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := matching.Verify(g.N, g.Edges, m); err != nil {
			t.Fatalf("seed %d: streamed matching invalid: %v", seed, err)
		}

		parts := batchHashParts(g, k, seed)
		coresets := make([][]graph.Edge, k)
		for i, p := range parts {
			coresets[i] = core.MatchingCoreset(g.N, p)
			if st.CoresetEdges[i] != len(coresets[i]) {
				t.Fatalf("seed %d machine %d: coreset size %d, batch %d", seed, i, st.CoresetEdges[i], len(coresets[i]))
			}
			if st.PartEdges[i] != len(p) {
				t.Fatalf("seed %d machine %d: routed %d edges, batch part has %d", seed, i, st.PartEdges[i], len(p))
			}
		}
		want := core.ComposeMatching(g.N, coresets)
		if m.Size() != want.Size() {
			t.Fatalf("seed %d: streamed matching %d, batch %d", seed, m.Size(), want.Size())
		}
		if !reflect.DeepEqual(m.Edges(), want.Edges()) {
			t.Fatalf("seed %d: streamed matching edges differ from batch", seed)
		}
		// The live greedy telemetry is a maximal matching of the machine's
		// partition, hence at least half its maximum matching.
		for i := range parts {
			if 2*st.Live[i] < len(coresets[i]) {
				t.Fatalf("seed %d machine %d: greedy %d below half of maximum %d", seed, i, st.Live[i], len(coresets[i]))
			}
		}
	}
}

// TestVertexCoverParity: the streaming Theorem 2 pipeline (with online
// level-1 peeling) must emit per-machine coresets deep-equal to batch
// core.ComputeVCCoreset on the same parts, and compose to the identical,
// feasible cover — across >= 5 seeds.
func TestVertexCoverParity(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		// High average degree so peeling actually fires several levels.
		g := parityGraph(seed, 700, 40)
		k := 4
		cover, st, err := VertexCover(NewGraphSource(g), Config{K: k, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
			t.Fatalf("seed %d: streamed cover infeasible: %v", seed, err)
		}

		parts := batchHashParts(g, k, seed)
		coresets := make([]*core.VCCoreset, k)
		peeledOnline := 0
		for i, p := range parts {
			coresets[i] = core.ComputeVCCoreset(g.N, k, p)
			if st.CoresetEdges[i] != len(coresets[i].Residual) || st.CoresetFixed[i] != len(coresets[i].Fixed) {
				t.Fatalf("seed %d machine %d: coreset (%d res, %d fixed), batch (%d, %d)",
					seed, i, st.CoresetEdges[i], st.CoresetFixed[i], len(coresets[i].Residual), len(coresets[i].Fixed))
			}
			peeledOnline += st.Live[i]
			// Online peeling must only ever shrink what a machine stores.
			if st.StoredEdges[i] > st.PartEdges[i] {
				t.Fatalf("seed %d machine %d: stored %d > received %d", seed, i, st.StoredEdges[i], st.PartEdges[i])
			}
		}
		want := core.ComposeVC(g.N, coresets)
		if !reflect.DeepEqual(cover, want) {
			t.Fatalf("seed %d: streamed cover differs from batch (got %d vertices, want %d)", seed, len(cover), len(want))
		}
	}
}

// TestVCBuilderDeepParity drives the vc machine directly against batch
// ComputeVCCoreset: with the vertex count known upfront the online-peeling
// path must produce a field-for-field identical coreset, for every machine.
// (The threshold-selection internals are pinned by internal/task's tests;
// here we check the hosted Machine facade end to end.)
func TestVCBuilderDeepParity(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := parityGraph(seed, 500, 60)
		k := 3
		parts := batchHashParts(g, k, seed)
		for i, p := range parts {
			m := NewVCMachine(k, g.N)
			for _, e := range p {
				m.Add(e)
			}
			got := m.Finish(g.N).VC
			want := core.ComputeVCCoreset(g.N, k, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d machine %d: online-peel coreset differs from batch:\ngot  %+v\nwant %+v", seed, i, got, want)
			}
		}
	}
}

// TestReaderSourceParity: streaming from the text format (with header: n
// known upfront) must match streaming from the in-memory slice.
func TestReaderSourceParity(t *testing.T) {
	g := parityGraph(11, 400, 10)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, Seed: 11}
	fromFile, stF, err := Matching(NewReaderSource(bytes.NewReader(buf.Bytes())), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromSlice, stS, err := Matching(NewGraphSource(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Size() != fromSlice.Size() || stF.N != stS.N || stF.EdgesTotal != stS.EdgesTotal {
		t.Fatalf("reader (%d edges, n=%d) differs from slice (%d edges, n=%d)",
			fromFile.Size(), stF.N, fromSlice.Size(), stS.N)
	}
}

// TestHeaderlessReader: without a header the vertex count is only known at
// end of stream; the vc path must fall back to batch peeling and still agree
// with the batch pipeline.
func TestHeaderlessReader(t *testing.T) {
	g := parityGraph(13, 300, 30)
	var sb strings.Builder
	for _, e := range g.Edges {
		sb.WriteString(strconv.Itoa(int(e.U)) + " " + strconv.Itoa(int(e.V)) + "\n")
	}
	src := NewReaderSource(strings.NewReader(sb.String()))
	if src.KnownUpfront() {
		t.Fatal("headerless source claims to know n upfront")
	}
	cfg := Config{K: 4, Seed: 13}
	cover, st, err := VertexCover(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Headerless n is 1 + max id seen, which can be < g.N if the top ids are
	// isolated; the composed cover must still match batch on that universe.
	parts := partition.ByAssignment(g.Edges, cfg.K, partition.HashAssignAll(g.Edges, cfg.K, cfg.Seed))
	coresets := make([]*core.VCCoreset, cfg.K)
	for i, p := range parts {
		coresets[i] = core.ComputeVCCoreset(st.N, cfg.K, p)
	}
	want := core.ComposeVC(st.N, coresets)
	if !reflect.DeepEqual(cover, want) {
		t.Fatalf("headerless streamed cover differs from batch")
	}
	if err := vcover.Verify(st.N, g.Edges, cover); err != nil {
		t.Fatalf("headerless cover infeasible: %v", err)
	}
}

// TestIterSourceMatchesGraphSource: the generator source streams exactly the
// edges the materializing generator produces.
func TestIterSourceMatchesGraphSource(t *testing.T) {
	const n, seed = 500, 17
	p := 8.0 / n
	g := gen.GNP(n, p, rng.New(seed))
	src := NewIterSource(n, func() gen.EdgeIter { return gen.GNPIter(n, p, rng.New(seed)) })
	parts, _, err := Shard(src, Config{K: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	want := batchHashParts(g, 3, 17)
	for i := range want {
		if len(want[i])+len(parts[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(parts[i], want[i]) {
			t.Fatalf("machine %d: generator-streamed shard differs from materialized oracle", i)
		}
	}
}

// TestEmptyStream: a zero-edge stream must compose empty answers, not hang
// or panic.
func TestEmptyStream(t *testing.T) {
	m, st, err := Matching(NewSliceSource(0, nil), Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || st.EdgesTotal != 0 {
		t.Fatalf("empty stream produced size %d, %d edges", m.Size(), st.EdgesTotal)
	}
	cover, _, err := VertexCover(NewSliceSource(0, nil), Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 0 {
		t.Fatalf("empty stream produced cover of %d", len(cover))
	}
}

// TestSourceErrorAborts: an invalid input must surface its parse error and
// shut the machine goroutines down cleanly (no deadlock, no summary).
func TestSourceErrorAborts(t *testing.T) {
	in := "p 4 3\n0 1\n2 3\n0 9\n" // third edge out of declared range
	_, _, err := Matching(NewReaderSource(strings.NewReader(in)), Config{K: 2, Seed: 1})
	if err == nil {
		t.Fatal("invalid input accepted")
	}
	if !strings.Contains(err.Error(), "out of declared range") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestConfigValidation: bad configs and sources are rejected.
func TestConfigValidation(t *testing.T) {
	if _, _, err := Matching(nil, Config{K: 2}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, _, err := Matching(NewSliceSource(0, nil), Config{K: 0}); err == nil {
		t.Fatal("K = 0 accepted")
	}
}

// TestStatsAccounting: communication accounting must agree with the encoded
// sizes of the summaries.
func TestStatsAccounting(t *testing.T) {
	g := parityGraph(19, 400, 8)
	k := 4
	_, st, err := Matching(NewGraphSource(g), Config{K: k, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	parts := batchHashParts(g, k, 19)
	wantTotal, wantMax := 0, 0
	for _, p := range parts {
		b := core.CoresetSizeBytes(core.MatchingCoreset(g.N, p))
		wantTotal += b
		if b > wantMax {
			wantMax = b
		}
	}
	if st.TotalCommBytes != wantTotal || st.MaxMachineBytes != wantMax {
		t.Fatalf("comm accounting (%d, %d), want (%d, %d)", st.TotalCommBytes, st.MaxMachineBytes, wantTotal, wantMax)
	}
	if st.EdgesPerSec() <= 0 {
		t.Fatal("throughput not reported")
	}
}

// cancelSource wraps a source and cancels the context after a fixed number
// of Next calls, then keeps producing: the pipeline, not the source, must
// notice the cancellation and stop early.
type cancelSource struct {
	inner  EdgeSource
	cancel func()
	after  int
	calls  int
}

func (s *cancelSource) Next(buf []graph.Edge) (int, error) {
	s.calls++
	if s.calls == s.after {
		s.cancel()
	}
	return s.inner.Next(buf)
}

func (s *cancelSource) NumVertices() int   { return s.inner.NumVertices() }
func (s *cancelSource) KnownUpfront() bool { return s.inner.KnownUpfront() }

func TestMatchingContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.GNP(200, 0.05, rng.New(1))
	_, _, err := MatchingContext(ctx, NewGraphSource(g), Config{K: 3, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMatchingContextCanceledMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := gen.GNP(2000, 0.01, rng.New(2))
	src := &cancelSource{inner: NewGraphSource(g), cancel: cancel, after: 2}
	_, _, err := MatchingContext(ctx, src, Config{K: 4, Seed: 2, BatchSize: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestVertexCoverContextCanceledMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := gen.GNP(2000, 0.01, rng.New(3))
	src := &cancelSource{inner: NewGraphSource(g), cancel: cancel, after: 2}
	_, _, err := VertexCoverContext(ctx, src, Config{K: 4, Seed: 3, BatchSize: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A background context must leave the pipeline's behavior untouched.
func TestMatchingContextBackgroundMatchesMatching(t *testing.T) {
	g := gen.GNP(1500, 0.008, rng.New(4))
	want, _, err := Matching(NewGraphSource(g), Config{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := MatchingContext(context.Background(), NewGraphSource(g), Config{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want.Size() != got.Size() {
		t.Fatalf("sizes differ: %d vs %d", want.Size(), got.Size())
	}
}
