// Package stream is the streaming, sharded coreset runtime: the deployment
// shape of the paper's simultaneous model. Where the batch pipeline
// (internal/core) materializes the edge list, partitions it with a single
// sequential RNG and then maps over the parts, this runtime is a pipeline of
// concurrent stages:
//
//	EdgeSource --> sharder --> k machine goroutines --> coordinator
//
// An EdgeSource streams edges in batches from a file reader, a generator or
// a slice, never holding the full graph. The sharder routes each edge with
// partition.HashAssign — a seeded, position-independent hash, so the induced
// random k-partitioning is reproducible and shardable in parallel, unlike
// partition.RandomK. Each machine goroutine runs an incremental coreset
// builder obtained from the task registry (internal/task) — the runtime
// itself knows nothing about matchings, vertex covers, EDCSs or any other
// summary family; a task.Descriptor supplies the builder and the composer,
// and Solve drives them. Each machine emits its summary, with communication
// accounting, to the coordinator, which composes the final answer exactly as
// the batch pipeline does.
//
// Given the same hash k-partitioning, the streaming runtime reproduces the
// batch pipeline bit for bit (see the parity tests); what it changes is the
// resource profile — O(batch) driver memory, per-machine state bounded by
// the machine's own partition (less, for vertex cover, once online peeling
// starts discarding covered edges), and all k machines consuming concurrently.
package stream

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
)

// DefaultBatchSize is the number of edges per routed batch when Config leaves
// BatchSize zero. Batches amortize channel operations; the value is a latency
// versus overhead trade-off, not a correctness knob.
const DefaultBatchSize = 1024

// Config parameterizes a streaming run.
type Config struct {
	// K is the number of machines (required, > 0).
	K int
	// Seed seeds the hash sharder: HashAssign(e, K, Seed) decides every
	// route. It is the run's only source of randomness.
	Seed uint64
	// BatchSize is the number of edges per routed batch (default
	// DefaultBatchSize).
	BatchSize int
	// Trace receives span-style shard events (shard.start/shard.end with
	// edge and batch totals). Nil, the zero value, disables tracing.
	Trace *obs.Tracer
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// Stats reports what a streaming run did and cost. It mirrors
// core.PipelineStats where the fields coincide, plus streaming-specific
// accounting.
type Stats struct {
	K          int
	N          int   // final vertex count
	EdgesTotal int   // edges read from the source
	Batches    int   // batches read from the source
	PartEdges  []int // edges routed to each machine
	// StoredEdges is how many edges each machine still held at end of
	// stream. For matching it equals PartEdges (the model's O(m/k) budget);
	// for vertex cover online peeling makes it smaller on peel-heavy inputs.
	StoredEdges []int
	// Live is each machine's online telemetry at end of stream: the greedy
	// matching size (matching) or the count of vertices peeled online (vc).
	Live             []int
	CoresetEdges     []int
	CoresetFixed     []int // vc only
	TotalCommBytes   int
	MaxMachineBytes  int
	CompositionEdges int
	// Duration spans the whole pipeline: source + sharding + machines +
	// composition (Shard, which composes nothing, spans through drain).
	Duration time.Duration
}

// EdgesPerSec returns the end-to-end throughput of the run.
func (s *Stats) EdgesPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.EdgesTotal) / s.Duration.Seconds()
}

// Report assembles the shared JSON-able run report for a streaming run.
// The schema (graph.RunReport) is shared with the batch pipeline and the
// coresetd service.
func (s *Stats) Report(task string, seed uint64, solutionSize int) *graph.RunReport {
	return &graph.RunReport{
		Task:             task,
		Mode:             "stream",
		N:                s.N,
		M:                s.EdgesTotal,
		K:                s.K,
		Seed:             seed,
		SolutionSize:     solutionSize,
		PartEdges:        s.PartEdges,
		StoredEdges:      s.StoredEdges,
		Live:             s.Live,
		CoresetEdges:     s.CoresetEdges,
		CoresetFixed:     s.CoresetFixed,
		TotalCommBytes:   s.TotalCommBytes,
		MaxMachineBytes:  s.MaxMachineBytes,
		CompositionEdges: s.CompositionEdges,
		Batches:          s.Batches,
		DurationMS:       float64(s.Duration.Microseconds()) / 1000,
		EdgesPerSec:      s.EdgesPerSec(),
	}
}

// Solve runs the full pipeline for any registered task: hash-shard the edges
// across cfg.K machines, build the descriptor's per-machine summaries
// incrementally, and compose the final solution from their union. It is the
// single dispatch point of the streaming runtime; the task-named entry points
// below are thin wrappers over it.
func Solve(ctx context.Context, src EdgeSource, cfg Config, d *task.Descriptor, p task.Params) (task.Solution, *Stats, error) {
	start := time.Now()
	sums, st, err := Summaries(ctx, src, cfg, d, p)
	if err != nil {
		return task.Solution{}, nil, err
	}
	sol := d.Compose(st.N, sums)
	st.Duration = time.Since(start)
	return sol, st, nil
}

// Summaries runs only the shard+build stages of the pipeline and returns the
// per-machine summaries (indexed by machine) without composing a solution.
// It is the building block of the multi-round MPC driver (internal/rounds),
// which unions the per-machine coresets into the next round's input instead
// of composing; Solve is exactly this plus the composition. Coreset sizes
// and communication accounting are already folded into the returned stats.
func Summaries(ctx context.Context, src EdgeSource, cfg Config, d *task.Descriptor, p task.Params) ([]Summary, *Stats, error) {
	if d.Validate != nil {
		if err := d.Validate(p); err != nil {
			return nil, nil, err
		}
	}
	start := time.Now()
	sums, st, err := run(ctx, src, cfg, func(machine, nHint int) task.Builder {
		return d.NewBuilder(cfg.K, nHint, p)
	})
	if err != nil {
		return nil, nil, err
	}
	for _, s := range sums {
		n := d.CoresetLen(s)
		st.CoresetEdges = append(st.CoresetEdges, n)
		if d.FixedLen != nil {
			st.CoresetFixed = append(st.CoresetFixed, d.FixedLen(s))
		}
		st.CompositionEdges += n
	}
	st.Duration = time.Since(start)
	return sums, st, nil
}

// Matching runs the full Theorem 1 pipeline over the stream: hash-shard the
// edges across cfg.K machines, maintain per-machine coresets incrementally,
// and compose a maximum matching of the union of the summaries.
func Matching(src EdgeSource, cfg Config) (*matching.Matching, *Stats, error) {
	return MatchingContext(context.Background(), src, cfg)
}

// MatchingContext is Matching with cooperative cancellation: when ctx is
// canceled the sharder stops routing at the next batch boundary, the machine
// goroutines are torn down without emitting summaries, and the ctx error is
// returned. It is the hook long-running callers (the coresetd job manager)
// use to abandon a pipeline mid-stream without leaking goroutines.
func MatchingContext(ctx context.Context, src EdgeSource, cfg Config) (*matching.Matching, *Stats, error) {
	sol, st, err := Solve(ctx, src, cfg, task.MustGet("matching"), task.Params{})
	if err != nil {
		return nil, nil, err
	}
	return sol.Matching, st, nil
}

// EDCS runs the EDCS coreset pipeline (arXiv:1711.03076) over the stream:
// hash-shard the edges across cfg.K machines, maintain a per-machine
// edge-degree constrained subgraph incrementally, and compose a maximum
// matching of the union of the EDCS coresets.
func EDCS(src EdgeSource, cfg Config, p edcs.Params) (*matching.Matching, *Stats, error) {
	return EDCSContext(context.Background(), src, cfg, p)
}

// EDCSContext is EDCS with cooperative cancellation; see MatchingContext.
func EDCSContext(ctx context.Context, src EdgeSource, cfg Config, p edcs.Params) (*matching.Matching, *Stats, error) {
	sol, st, err := Solve(ctx, src, cfg, task.MustGet("edcs"), task.Params{EDCS: p})
	if err != nil {
		return nil, nil, err
	}
	return sol.Matching, st, nil
}

// EDCSSummaries is Summaries for the EDCS task, kept for the multi-round
// driver's call sites; see Summaries.
func EDCSSummaries(ctx context.Context, src EdgeSource, cfg Config, p edcs.Params) ([]Summary, *Stats, error) {
	return Summaries(ctx, src, cfg, task.MustGet("edcs"), task.Params{EDCS: p})
}

// VertexCover runs the full Theorem 2 pipeline over the stream and returns
// the composed cover.
func VertexCover(src EdgeSource, cfg Config) ([]graph.ID, *Stats, error) {
	return VertexCoverContext(context.Background(), src, cfg)
}

// VertexCoverContext is VertexCover with cooperative cancellation; see
// MatchingContext.
func VertexCoverContext(ctx context.Context, src EdgeSource, cfg Config) ([]graph.ID, *Stats, error) {
	sol, st, err := Solve(ctx, src, cfg, task.MustGet("vc"), task.Params{})
	if err != nil {
		return nil, nil, err
	}
	return sol.Cover, st, nil
}

// Shard runs only the source+sharder stages and returns the per-machine edge
// lists (each in arrival order). It is the runtime's routing made observable:
// parity tests compare it against the partition.ByAssignment oracle, and
// alternative backends can use it to feed machines that live elsewhere.
func Shard(src EdgeSource, cfg Config) ([][]graph.Edge, *Stats, error) {
	sums, st, err := run(context.Background(), src, cfg, func(machine, nHint int) task.Builder {
		return &collectBuilder{}
	})
	if err != nil {
		return nil, nil, err
	}
	parts := make([][]graph.Edge, cfg.K)
	for i, s := range sums {
		parts[i] = s.Coreset
	}
	return parts, st, nil
}

// machineResult pairs a machine's summary with its index for the results
// channel; Summary itself is runtime-agnostic and carries no machine index.
type machineResult struct {
	machine int
	s       Summary
}

// run drives the pipeline: the caller's goroutine reads the source and
// shards, k goroutines consume and build, and the final vertex count is
// published to the machines only after the stream is drained (the
// close(nReady) edge is the happens-before that makes this race-free).
// Cancellation is cooperative at batch granularity: ctx is checked once per
// source batch and on every (possibly blocking) channel send; an in-progress
// per-machine Finish computation is never interrupted, but canceled runs
// skip Finish entirely.
func run(ctx context.Context, src EdgeSource, cfg Config, mk func(machine, nHint int) task.Builder) ([]Summary, *Stats, error) {
	if src == nil {
		return nil, nil, errors.New("stream: nil source")
	}
	if cfg.K <= 0 {
		return nil, nil, errors.New("stream: config K must be > 0")
	}
	k := cfg.K
	start := time.Now()

	nHint := 0
	if src.KnownUpfront() {
		nHint = src.NumVertices()
	}

	var (
		nFinal  int
		nReady  = make(chan struct{})
		abort   = make(chan struct{})
		results = make(chan machineResult, k)
		wg      sync.WaitGroup
	)
	chans := make([]chan []graph.Edge, k)
	for i := 0; i < k; i++ {
		chans[i] = make(chan []graph.Edge, 4)
		wg.Add(1)
		go func(machine int) {
			defer wg.Done()
			b := mk(machine, nHint)
			received := 0
			for batch := range chans[machine] {
				received += len(batch)
				for _, e := range batch {
					b.Add(e)
				}
			}
			select {
			case <-nReady:
			case <-abort:
				return
			case <-ctx.Done():
				return
			}
			s := b.Finish(nFinal)
			s.Edges = received
			results <- machineResult{machine: machine, s: s}
		}(i)
	}

	closeAll := func() {
		for _, ch := range chans {
			close(ch)
		}
	}

	// Shard stage: read batches from the source, route each edge by hash,
	// flush per-machine mini-batches as they fill. send blocks on the
	// machine's channel but never past cancellation (for a background ctx,
	// Done() is nil and the select degenerates to a plain send).
	bs := cfg.batchSize()
	buf := make([]graph.Edge, bs)
	pending := make([][]graph.Edge, k)
	total, batches := 0, 0
	endShard := cfg.Trace.Span("shard", "k", k)
	var srcErr error
	send := func(i int) bool {
		select {
		case chans[i] <- pending[i]:
			pending[i] = nil
			return true
		case <-ctx.Done():
			return false
		}
	}
shard:
	for {
		if err := ctx.Err(); err != nil {
			srcErr = err
			break
		}
		c, err := src.Next(buf)
		if c > 0 {
			total += c
			batches++
			for _, e := range buf[:c] {
				i := partition.HashAssign(e, k, cfg.Seed)
				if pending[i] == nil {
					pending[i] = make([]graph.Edge, 0, bs)
				}
				pending[i] = append(pending[i], e)
				if len(pending[i]) == bs && !send(i) {
					srcErr = ctx.Err()
					break shard
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srcErr = err
			}
			break
		}
	}
	if srcErr != nil {
		endShard("err", srcErr.Error())
		close(abort)
		closeAll()
		wg.Wait()
		return nil, nil, srcErr
	}
	for i, p := range pending {
		if len(p) > 0 && !send(i) {
			endShard("err", "canceled")
			close(abort)
			closeAll()
			wg.Wait()
			return nil, nil, ctx.Err()
		}
	}
	closeAll()
	endShard("edges", total, "batches", batches)

	nFinal = src.NumVertices()
	close(nReady)
	wg.Wait()
	close(results)
	// A machine that observed cancellation in its final select exits without
	// emitting a summary; composing from a partial set would be wrong.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	sums := make([]Summary, k)
	st := &Stats{
		K:           k,
		N:           nFinal,
		EdgesTotal:  total,
		Batches:     batches,
		PartEdges:   make([]int, k),
		StoredEdges: make([]int, k),
		Live:        make([]int, k),
	}
	for r := range results {
		sums[r.machine] = r.s
		st.PartEdges[r.machine] = r.s.Edges
		st.StoredEdges[r.machine] = r.s.Stored
		st.Live[r.machine] = r.s.Live
		st.TotalCommBytes += r.s.Bytes
		if r.s.Bytes > st.MaxMachineBytes {
			st.MaxMachineBytes = r.s.Bytes
		}
	}
	st.Duration = time.Since(start)
	return sums, st, nil
}
