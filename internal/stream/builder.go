package stream

import (
	"repro/internal/graph"
	"repro/internal/task"
)

// The per-task machine builders (Theorem 1 matching, Theorem 2 vertex
// cover, EDCS, ...) live in internal/task, behind task.Descriptor.NewBuilder;
// this runtime only hosts them. collectBuilder is the one builder that stays
// here: it records its shard verbatim, and Shard uses it to expose the
// runtime's routing for oracles, debugging and alternative backends.
type collectBuilder struct{ edges []graph.Edge }

func (b *collectBuilder) Add(e graph.Edge) { b.edges = append(b.edges, e) }
func (b *collectBuilder) Finish(n int) task.Summary {
	return task.Summary{Coreset: b.edges, Stored: len(b.edges)}
}
