package stream

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// storeGraph writes g into a dataset directory with small segments so tests
// cross several segment boundaries.
func storeGraph(t *testing.T, g *graph.Graph, segEdges int) *dataset.Dataset {
	t.Helper()
	dir := t.TempDir()
	b, err := dataset.NewBuilder(dir, dataset.IngestOptions{SegmentEdges: segEdges})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(g.Edges...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(g.N, "test", 0, 0); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// drainSource pulls everything out of a source with a deliberately awkward
// buffer size (not aligned with segment boundaries).
func drainSource(t *testing.T, src EdgeSource, bufSize int) []graph.Edge {
	t.Helper()
	var all []graph.Edge
	buf := make([]graph.Edge, bufSize)
	for {
		c, err := src.Next(buf)
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, buf[:c]...)
	}
}

func TestDatasetSourceMatchesSlice(t *testing.T) {
	g := gen.GNP(150, 0.08, rng.New(11))
	d := storeGraph(t, g, 37)
	src := NewDatasetSource(d)
	if !src.KnownUpfront() {
		t.Fatal("dataset n must be known upfront")
	}
	if src.NumVertices() != g.N {
		t.Fatalf("NumVertices() = %d, want %d", src.NumVertices(), g.N)
	}
	got := drainSource(t, src, 13)
	want := drainSource(t, NewGraphSource(g), 13)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("dataset stream differs from slice stream")
	}
	if src.PeakResidentBytes() <= 0 {
		t.Fatal("PeakResidentBytes() not tracked")
	}
}

// TestDatasetSourceRestart: a restart mid-stream replays the identical
// sequence from the top — the contract cluster round replay depends on.
func TestDatasetSourceRestart(t *testing.T) {
	g := gen.GNP(100, 0.1, rng.New(3))
	d := storeGraph(t, g, 29)
	src := NewDatasetSource(d)
	buf := make([]graph.Edge, 17)
	for i := 0; i < 3; i++ { // abandon a partial pass
		if _, err := src.Next(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if got := drainSource(t, src, 17); !reflect.DeepEqual(got, g.Edges) {
		t.Fatal("post-restart stream differs from the edge list")
	}
	// And again: restart after EOF.
	if err := src.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := drainSource(t, src, 64); !reflect.DeepEqual(got, g.Edges) {
		t.Fatal("second restart differs")
	}
}

// TestDatasetSourceBudget: the resident-memory budget is enforced, not
// advisory. A budget below the largest segment fails the read; a budget
// above it streams the whole dataset while PeakResidentBytes stays within.
func TestDatasetSourceBudget(t *testing.T) {
	g := gen.GNP(200, 0.1, rng.New(5))
	d := storeGraph(t, g, 100)
	maxSeg := 0
	man := d.Manifest()
	for _, s := range man.Segments {
		if s.Length > maxSeg {
			maxSeg = s.Length
		}
	}

	tight := NewDatasetSource(d)
	tight.MaxResidentBytes = maxSeg - 1
	buf := make([]graph.Edge, 256)
	var err error
	for err == nil {
		_, err = tight.Next(buf)
	}
	if err == io.EOF {
		t.Fatalf("budget %d below largest segment %d did not fail", maxSeg-1, maxSeg)
	}

	ok := NewDatasetSource(d)
	ok.MaxResidentBytes = maxSeg
	if got := drainSource(t, ok, 256); !reflect.DeepEqual(got, g.Edges) {
		t.Fatal("budgeted stream differs from the edge list")
	}
	if ok.PeakResidentBytes() > ok.MaxResidentBytes {
		t.Fatalf("peak %d exceeded budget %d", ok.PeakResidentBytes(), ok.MaxResidentBytes)
	}
	if int64(ok.PeakResidentBytes()) >= man.Bytes {
		t.Fatalf("peak %d not smaller than total edge bytes %d — budget proves nothing", ok.PeakResidentBytes(), man.Bytes)
	}
}

// TestNotRestartableError: restarting a source over a non-seekable reader
// yields the typed error naming the source kind.
func TestNotRestartableError(t *testing.T) {
	src := NewReaderSource(io.NopCloser(strings.NewReader("0 1\n")))
	drainSource(t, src, 8)
	err := src.Restart()
	var nre *NotRestartableError
	if !errors.As(err, &nre) {
		t.Fatalf("Restart() = %v, want *NotRestartableError", err)
	}
	if !strings.Contains(nre.Source, "ReaderSource") {
		t.Fatalf("error does not name the source kind: %q", nre.Source)
	}

	// A seekable reader restarts fine — no typed error.
	seekable := NewReaderSource(strings.NewReader("0 1\n2 3\n"))
	drainSource(t, seekable, 8)
	if err := seekable.Restart(); err != nil {
		t.Fatalf("seekable Restart: %v", err)
	}
}
