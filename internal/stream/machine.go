package stream

import (
	"repro/internal/edcs"
	"repro/internal/graph"
)

// Machine is one machine's incremental coreset builder behind an exported
// facade, for runtimes that host the paper's machines outside this package.
// The cluster runtime's worker processes (internal/cluster) feed a Machine
// from SHARD frames exactly as this package's goroutines feed their builders
// from channel batches — one implementation of the per-machine algorithms,
// so an in-process run and a cluster run over the same k-partitioning are
// bit-for-bit identical by construction.
//
// Add is called once per routed edge, in arrival order, from one goroutine;
// Finish is called exactly once, with the final vertex count, after the last
// Add.
type Machine struct {
	b        builder
	received int
}

// NewMatchingMachine returns the Theorem 1 machine (stored partition, live
// greedy telemetry, exact end-of-stream maximum matching).
func NewMatchingMachine() *Machine {
	return &Machine{b: newMatchingBuilder()}
}

// NewVCMachine returns the Theorem 2 machine for a k-machine run. nHint > 0
// declares the vertex count upfront and enables online level-1 peeling;
// nHint = 0 stores the partition and peels entirely at Finish.
func NewVCMachine(k, nHint int) *Machine {
	return &Machine{b: newVCBuilder(k, nHint)}
}

// NewEDCSMachine returns the EDCS machine (dynamic edge-degree constrained
// subgraph, arXiv:1711.03076) for the given degree constraints. nHint > 0
// pre-sizes the per-vertex tables; it never changes the result.
func NewEDCSMachine(nHint int, p edcs.Params) *Machine {
	return &Machine{b: newEDCSBuilder(nHint, p)}
}

// Add feeds one routed edge.
func (m *Machine) Add(e graph.Edge) {
	m.received++
	m.b.add(e)
}

// Received returns how many edges have been added.
func (m *Machine) Received() int { return m.received }

// Finish computes the end-of-stream summary for a final vertex count of n.
func (m *Machine) Finish(n int) Summary {
	s := m.b.finish(n)
	s.Edges = m.received
	return s
}

// MachineTelem is a machine's build-phase telemetry, separate from Summary
// (whose wire shape is pinned by the seed-parity codec tests): EDCS fixpoint
// counters that describe how much repair work the build did. All fields are
// zero for builders without incremental repair (matching, vc).
type MachineTelem struct {
	RepairIters int // dirty-vertex rescans in the EDCS repair fixpoint
	Removals    int // H evictions (overfull edges removed by repair)
	PeakCoreset int // largest |H| the machine ever held
}

// telemetered is the optional builder extension for build telemetry.
type telemetered interface {
	telem() MachineTelem
}

// Telem returns the machine's build telemetry; the zero value for builders
// that do not track any.
func (m *Machine) Telem() MachineTelem {
	if t, ok := m.b.(telemetered); ok {
		return t.telem()
	}
	return MachineTelem{}
}
