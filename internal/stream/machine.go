package stream

import (
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/task"
)

// Summary is a machine's end-of-stream message to the coordinator. It is an
// alias of task.Summary — one message type across every runtime, so coresets
// built in-process, by cluster workers, or by the batch pipeline compare
// deep-equal field for field.
type Summary = task.Summary

// MachineTelem is a machine's build-phase telemetry, separate from Summary
// (whose wire shape is pinned by the seed-parity codec tests). Alias of
// task.MachineTelem.
type MachineTelem = task.MachineTelem

// Machine is one machine's incremental coreset builder behind an exported
// facade, for runtimes that host the paper's machines outside this package.
// The cluster runtime's worker processes (internal/cluster) feed a Machine
// from SHARD frames exactly as this package's goroutines feed their builders
// from channel batches — one implementation of the per-machine algorithms,
// so an in-process run and a cluster run over the same k-partitioning are
// bit-for-bit identical by construction.
//
// Add is called once per routed edge, in arrival order, from one goroutine;
// Finish is called exactly once, with the final vertex count, after the last
// Add.
type Machine struct {
	b        task.Builder
	received int
}

// NewMachine wraps a task builder — typically task.Descriptor.NewBuilder's
// result — with the runtime's received-edge accounting. This is the only
// constructor external hosts need; the per-task constructors below are
// conveniences for the built-in tasks.
func NewMachine(b task.Builder) *Machine {
	return &Machine{b: b}
}

// NewMatchingMachine returns the Theorem 1 machine (stored partition, live
// greedy telemetry, exact end-of-stream maximum matching).
func NewMatchingMachine() *Machine {
	return NewMachine(task.MustGet("matching").NewBuilder(0, 0, task.Params{}))
}

// NewVCMachine returns the Theorem 2 machine for a k-machine run. nHint > 0
// declares the vertex count upfront and enables online level-1 peeling;
// nHint = 0 stores the partition and peels entirely at Finish.
func NewVCMachine(k, nHint int) *Machine {
	return NewMachine(task.MustGet("vc").NewBuilder(k, nHint, task.Params{}))
}

// NewEDCSMachine returns the EDCS machine (dynamic edge-degree constrained
// subgraph, arXiv:1711.03076) for the given degree constraints. nHint > 0
// pre-sizes the per-vertex tables; it never changes the result.
func NewEDCSMachine(nHint int, p edcs.Params) *Machine {
	return NewMachine(task.MustGet("edcs").NewBuilder(0, nHint, task.Params{EDCS: p}))
}

// Add feeds one routed edge.
func (m *Machine) Add(e graph.Edge) {
	m.received++
	m.b.Add(e)
}

// Received returns how many edges have been added.
func (m *Machine) Received() int { return m.received }

// Finish computes the end-of-stream summary for a final vertex count of n.
func (m *Machine) Finish(n int) Summary {
	s := m.b.Finish(n)
	s.Edges = m.received
	return s
}

// Telem returns the machine's build telemetry; the zero value for builders
// that do not track any.
func (m *Machine) Telem() MachineTelem {
	if t, ok := m.b.(task.Telemetered); ok {
		return t.Telem()
	}
	return MachineTelem{}
}
