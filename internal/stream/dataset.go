package stream

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// DatasetSource streams a stored dataset (internal/dataset) segment by
// segment. It is the unified data plane's source: every runtime — batch
// (via Materialize/drain), stream, cluster, service — reads real graphs
// through it, and it is Restartable by construction, because restarting is
// just seeking back to segment zero. That makes cluster round replay and
// multi-round resharding work on graphs larger than RAM: no pass ever holds
// more than one decoded segment.
//
// MaxResidentBytes, when set, is an enforced in-memory budget: a segment
// whose encoded size exceeds it fails the read rather than silently blowing
// the space bound. Tests use it to prove a dataset streams end to end while
// staying under a budget smaller than the dataset's total edge bytes.
type DatasetSource struct {
	// MaxResidentBytes caps the encoded size of a single resident segment.
	// Zero means unlimited. Exceeding it is an error, not a truncation.
	MaxResidentBytes int

	d       *dataset.Dataset
	seg     int          // next segment to decode
	cur     []graph.Edge // decoded edges of the current segment
	pos     int          // read position within cur
	scratch []byte       // reused encoded-segment buffer
	peak    int          // largest encoded segment held so far
}

// NewDatasetSource returns a source streaming d from its first segment. The
// dataset handle stays owned by the caller (sources are cheap; many can
// stream one dataset concurrently).
func NewDatasetSource(d *dataset.Dataset) *DatasetSource {
	return &DatasetSource{d: d}
}

// Dataset returns the underlying dataset handle.
func (s *DatasetSource) Dataset() *dataset.Dataset { return s.d }

// PeakResidentBytes reports the largest encoded segment this source has held
// at once — the number the MaxResidentBytes budget bounds.
func (s *DatasetSource) PeakResidentBytes() int { return s.peak }

func (s *DatasetSource) Next(buf []graph.Edge) (int, error) {
	for s.pos >= len(s.cur) {
		if s.seg >= s.d.Segments() {
			return 0, io.EOF
		}
		if s.MaxResidentBytes > 0 {
			if l := s.d.Manifest().Segments[s.seg].Length; l > s.MaxResidentBytes {
				return 0, fmt.Errorf("stream: dataset segment %d is %d encoded bytes, over the %d-byte resident budget",
					s.seg, l, s.MaxResidentBytes)
			}
		}
		var err error
		s.cur, s.scratch, err = s.d.ReadSegment(s.seg, s.scratch)
		if err != nil {
			return 0, err
		}
		if len(s.scratch) > s.peak {
			s.peak = len(s.scratch)
		}
		s.seg++
		s.pos = 0
	}
	c := copy(buf, s.cur[s.pos:])
	s.pos += c
	return c, nil
}

// NumVertices returns the manifest's vertex count, exact before any read.
func (s *DatasetSource) NumVertices() int { return s.d.NumVertices() }

// KnownUpfront is always true: the manifest records n.
func (s *DatasetSource) KnownUpfront() bool { return true }

// Restart seeks back to the first segment. It never fails: dataset segments
// are positioned reads, so rewinding is a pair of index resets — the
// property that makes every dataset-backed run replayable.
func (s *DatasetSource) Restart() error {
	s.seg, s.pos, s.cur = 0, 0, nil
	return nil
}
