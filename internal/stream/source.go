package stream

import (
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
)

// EdgeSource streams the edges of a graph in caller-sized batches. It is the
// runtime's only view of the input: nothing downstream of a source ever holds
// the full edge list, which is what makes the pipeline run in the paper's
// per-machine space regime.
type EdgeSource interface {
	// Next fills buf with up to len(buf) edges and returns how many were
	// written. It returns io.EOF (with a count of 0) once the stream is
	// exhausted, and any parse/read error otherwise.
	Next(buf []graph.Edge) (int, error)
	// NumVertices returns the number of vertices. It is authoritative once
	// Next has returned io.EOF; before that it is authoritative iff
	// KnownUpfront reports true.
	NumVertices() int
	// KnownUpfront reports whether NumVertices is exact before the stream is
	// drained (true for generators, slices and headered edge lists; false
	// for headerless edge lists, where n is 1 + the largest id seen).
	KnownUpfront() bool
}

// NotRestartableError reports that a retry/replay path asked a source to
// Restart but the source cannot rewind. Source names the concrete source
// kind (e.g. "stream.ReaderSource over non-seekable *os.File"), so a failed
// replay says which input to fix — register a dataset or a seekable file —
// instead of a generic "cannot restart".
type NotRestartableError struct {
	// Source identifies the offending source kind.
	Source string
}

func (e *NotRestartableError) Error() string {
	return fmt.Sprintf("stream: source %s is not restartable; replay needs a dataset, slice, generator, or seekable reader", e.Source)
}

// Restartable is the optional EdgeSource extension behind cluster round
// replay: a source that can rewind and deliver the identical edge sequence
// again. Since cluster sharding is a seeded hash over that sequence, a
// restartable source lets the coordinator regenerate any single machine's
// shard deterministically after a worker loss. All sources in this package
// implement it (ReaderSource only over seekable readers).
type Restartable interface {
	EdgeSource
	// Restart rewinds the source to the beginning of its stream. After a nil
	// return, Next replays the exact edge sequence already delivered.
	Restart() error
}

// SliceSource streams an in-memory edge slice. It is the bridge from
// materialized graphs (and the reference source for parity tests: edges are
// delivered exactly in slice order).
type SliceSource struct {
	n     int
	edges []graph.Edge
	pos   int
}

// NewSliceSource returns a source over (n, edges). The slice is not copied.
func NewSliceSource(n int, edges []graph.Edge) *SliceSource {
	return &SliceSource{n: n, edges: edges}
}

// NewGraphSource returns a source streaming g's edge list.
func NewGraphSource(g *graph.Graph) *SliceSource {
	return NewSliceSource(g.N, g.Edges)
}

func (s *SliceSource) Next(buf []graph.Edge) (int, error) {
	if s.pos >= len(s.edges) {
		return 0, io.EOF
	}
	c := copy(buf, s.edges[s.pos:])
	s.pos += c
	return c, nil
}

func (s *SliceSource) NumVertices() int   { return s.n }
func (s *SliceSource) KnownUpfront() bool { return true }

// Restart rewinds to the start of the slice.
func (s *SliceSource) Restart() error {
	s.pos = 0
	return nil
}

// IterSource adapts a gen.EdgeIter (a synthetic-workload generator with O(1)
// state) into an EdgeSource on a declared vertex universe. The factory mints
// a fresh iterator per pass — generators are seeded, so every pass replays
// the same draw sequence, which makes the source restartable.
type IterSource struct {
	n    int
	mint func() gen.EdgeIter
	it   gen.EdgeIter
	done bool
}

// NewIterSource returns a source over the edges of mint() on n vertices.
// mint must return a fresh iterator over the same edge sequence on every
// call (true for the seeded gen.*Iter constructors when the caller builds
// the generator RNG inside mint).
func NewIterSource(n int, mint func() gen.EdgeIter) *IterSource {
	return &IterSource{n: n, mint: mint, it: mint()}
}

func (s *IterSource) Next(buf []graph.Edge) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	c := 0
	for c < len(buf) {
		e, ok := s.it.Next()
		if !ok {
			s.done = true
			if c == 0 {
				return 0, io.EOF
			}
			return c, nil
		}
		buf[c] = e
		c++
	}
	return c, nil
}

func (s *IterSource) NumVertices() int   { return s.n }
func (s *IterSource) KnownUpfront() bool { return true }

// Restart mints a fresh iterator, replaying the sequence from the start.
func (s *IterSource) Restart() error {
	s.it = s.mint()
	s.done = false
	return nil
}

// ReaderSource streams a text edge list (the cmd/coreset format) from an
// io.Reader via the incremental parser, validating line by line. With a
// "p <n> <m>" header the vertex count is known upfront (enabling the online
// peeling optimization); without one it is inferred as the stream drains.
type ReaderSource struct {
	r    io.Reader
	p    *graph.EdgeListParser
	done bool
}

// NewReaderSource returns a source parsing r incrementally.
func NewReaderSource(r io.Reader) *ReaderSource {
	return &ReaderSource{r: r, p: graph.NewEdgeListParser(r)}
}

func (s *ReaderSource) Next(buf []graph.Edge) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	c := 0
	for c < len(buf) {
		e, err := s.p.Next()
		if err == io.EOF {
			s.done = true
			if c == 0 {
				return 0, io.EOF
			}
			return c, nil
		}
		if err != nil {
			// The whole input is invalid; the partial batch is discarded.
			return 0, err
		}
		buf[c] = e
		c++
	}
	return c, nil
}

func (s *ReaderSource) NumVertices() int   { return s.p.NumVertices() }
func (s *ReaderSource) KnownUpfront() bool { return s.p.HasHeader() }

// Restart rewinds the underlying reader and reparses from the top. It fails
// with a *NotRestartableError when the reader is not seekable (e.g. stdin),
// in which case the source cannot back a replayed cluster round.
func (s *ReaderSource) Restart() error {
	sk, ok := s.r.(io.Seeker)
	if !ok {
		return &NotRestartableError{Source: fmt.Sprintf("stream.ReaderSource over non-seekable %T", s.r)}
	}
	if _, err := sk.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("stream: restart edge list: %w", err)
	}
	s.p = graph.NewEdgeListParser(s.r)
	s.done = false
	return nil
}
