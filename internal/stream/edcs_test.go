package stream

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
)

// TestEDCSParity: the streaming EDCS pipeline must reproduce the batch
// edcs.Distributed run on the same hash k-partitioning bit for bit —
// identical per-machine coresets (via the oracle partition) and identical
// composed matchings — across seeds and densities.
func TestEDCSParity(t *testing.T) {
	p := edcs.ParamsForBeta(16)
	for seed := uint64(1); seed <= 6; seed++ {
		g := parityGraph(seed, 500, 30)
		const k = 4
		m, st, err := EDCS(NewGraphSource(g), Config{K: k, Seed: seed}, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := matching.Verify(g.N, g.Edges, m); err != nil {
			t.Fatalf("seed %d: streamed EDCS matching invalid: %v", seed, err)
		}

		parts := batchHashParts(g, k, seed)
		for i, part := range parts {
			want := edcs.Coreset(g.N, part, p)
			if st.CoresetEdges[i] != len(want) {
				t.Fatalf("seed %d machine %d: coreset size %d, batch %d", seed, i, st.CoresetEdges[i], len(want))
			}
			if st.PartEdges[i] != len(part) || st.StoredEdges[i] != len(part) {
				t.Fatalf("seed %d machine %d: routed/stored (%d, %d), oracle part has %d",
					seed, i, st.PartEdges[i], st.StoredEdges[i], len(part))
			}
		}
		batchM, batchSt := edcs.Distributed(g, k, 0, seed, p)
		if !reflect.DeepEqual(m.Edges(), batchM.Edges()) {
			t.Fatalf("seed %d: streamed EDCS matching differs from batch (%d vs %d edges)",
				seed, m.Size(), batchM.Size())
		}
		if st.TotalCommBytes != batchSt.TotalCommBytes || st.MaxMachineBytes != batchSt.MaxMachineBytes {
			t.Fatalf("seed %d: comm accounting (%d, %d) differs from batch (%d, %d)",
				seed, st.TotalCommBytes, st.MaxMachineBytes, batchSt.TotalCommBytes, batchSt.MaxMachineBytes)
		}
	}
}

// TestEDCSBuilderDeepParity drives the edcs machine directly against the
// batch edcs.Coreset on every oracle partition: deep-equal edge lists.
func TestEDCSBuilderDeepParity(t *testing.T) {
	p := edcs.ParamsForBeta(8)
	for seed := uint64(1); seed <= 4; seed++ {
		g := parityGraph(seed, 300, 40)
		const k = 3
		parts := batchHashParts(g, k, seed)
		for i, part := range parts {
			b := NewEDCSMachine(g.N, p)
			for _, e := range part {
				b.Add(e)
			}
			got := b.Finish(g.N).Coreset
			want := edcs.Coreset(g.N, part, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d machine %d: builder EDCS differs from batch", seed, i)
			}
		}
	}
}

// TestEDCSInvalidParams: the pipeline rejects unusable degree constraints
// up front instead of panicking in a machine goroutine.
func TestEDCSInvalidParams(t *testing.T) {
	_, _, err := EDCS(NewSliceSource(0, nil), Config{K: 2, Seed: 1}, edcs.Params{Beta: 4, BetaMinus: 9})
	if err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestEDCSContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.GNP(200, 0.05, rng.New(1))
	_, _, err := EDCSContext(ctx, NewGraphSource(g), Config{K: 3, Seed: 1}, edcs.ParamsForBeta(8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestZeroEdgeMachines: when k exceeds the edge count some machines receive
// nothing; every builder must emit a sane empty summary and the empty
// coresets must compose cleanly (the empty-coreset compose path).
func TestZeroEdgeMachines(t *testing.T) {
	// Two edges over eight machines: at least six machines see zero edges.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	const k = 8
	cfg := Config{K: k, Seed: 5}

	m, st, err := Matching(NewSliceSource(4, edges), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("matching %d, want 2", m.Size())
	}
	assertEmptyMachineStats(t, st, k)

	cover, vst, err := VertexCover(NewSliceSource(4, edges), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) == 0 || len(cover) > 4 {
		t.Fatalf("cover size %d out of range", len(cover))
	}
	assertEmptyMachineStats(t, vst, k)

	em, est, err := EDCS(NewSliceSource(4, edges), cfg, edcs.ParamsForBeta(8))
	if err != nil {
		t.Fatal(err)
	}
	if em.Size() != 2 {
		t.Fatalf("EDCS matching %d, want 2", em.Size())
	}
	assertEmptyMachineStats(t, est, k)
}

// assertEmptyMachineStats checks that at least one machine received zero
// edges and that its summary fields are all-zero (but present).
func assertEmptyMachineStats(t *testing.T, st *Stats, k int) {
	t.Helper()
	if len(st.PartEdges) != k || len(st.CoresetEdges) != k {
		t.Fatalf("stats not sized to k=%d: %+v", k, st)
	}
	empties := 0
	for i := range st.PartEdges {
		if st.PartEdges[i] == 0 {
			empties++
			if st.CoresetEdges[i] != 0 || st.StoredEdges[i] != 0 || st.Live[i] != 0 {
				t.Fatalf("machine %d got no edges but summary is non-empty: coreset %d stored %d live %d",
					i, st.CoresetEdges[i], st.StoredEdges[i], st.Live[i])
			}
		}
	}
	if empties == 0 {
		t.Fatal("test premise broken: no machine received zero edges")
	}
}
