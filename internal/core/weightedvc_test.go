package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func randVertexWeights(r *rng.RNG, n int, maxW float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 + r.Float64()*(maxW-1)
	}
	return w
}

func TestWeightedVCCoresetFeasibility(t *testing.T) {
	r := rng.New(1)
	g := gen.GNP(400, 0.04, r)
	vw := randVertexWeights(r, g.N, 64)
	const k = 4
	parts := partition.RandomK(g.Edges, k, r)
	coresets := make([]*WeightedVCCoreset, k)
	for i, p := range parts {
		coresets[i] = ComputeWeightedVCCoreset(g.N, k, 1.0, p, vw)
	}
	cover := ComposeWeightedVC(g.N, coresets)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatalf("weighted cover infeasible: %v", err)
	}
}

func TestWeightedVCCoresetQuality(t *testing.T) {
	// End-to-end weight must stay within a modest factor of the
	// centralized local-ratio 2-approximation.
	r := rng.New(3)
	g := gen.GNP(600, 0.03, r)
	vw := randVertexWeights(r, g.N, 32)
	const k = 4
	parts := partition.RandomK(g.Edges, k, r)
	coresets := make([]*WeightedVCCoreset, k)
	for i, p := range parts {
		coresets[i] = ComputeWeightedVCCoreset(g.N, k, 0.5, p, vw)
	}
	cover := ComposeWeightedVC(g.N, coresets)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
	distributed := vcover.CoverWeight(cover, vw)
	central := vcover.CoverWeight(vcover.WeightedLocalRatio(g.N, g.Edges, vw), vw)
	if central <= 0 {
		t.Skip("degenerate instance")
	}
	loss := distributed / central
	t.Logf("weighted VC: distributed %.1f, central 2-approx %.1f, loss %.2f", distributed, central, loss)
	// Paper: O(log n) loss; assert a loose constant well below log2(600)^2.
	if loss > 12 {
		t.Fatalf("weighted VC loss %.2f too large", loss)
	}
}

func TestWeightedVCClassAssignment(t *testing.T) {
	// Edge goes to the class of its heavier endpoint.
	vw := []float64{1, 10, 1}
	part := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}
	cs := ComputeWeightedVCCoreset(3, 1, 1.0, part, vw)
	// Class of 10 under base 2: floor(log2 10) = 3; class of 1: 0.
	if _, ok := cs.Classes[3]; !ok {
		t.Fatalf("heavy edge class missing: %v", cs.Classes)
	}
	if _, ok := cs.Classes[0]; !ok {
		t.Fatalf("light edge class missing: %v", cs.Classes)
	}
	if WeightedVCCoresetSize(cs) == 0 {
		t.Fatal("empty coreset size")
	}
}

func TestWeightedVCCoresetPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"eps":     func() { ComputeWeightedVCCoreset(2, 1, 0, nil, []float64{1, 1}) },
		"weights": func() { ComputeWeightedVCCoreset(2, 1, 1, nil, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWeightedVCCheapHubHeavyLeaves(t *testing.T) {
	// A cheap hub with expensive leaves: the distributed weighted cover
	// should strongly prefer the hub. All hub edges share one class (the
	// leaf weights dominate), where peeling/2-approx finds the hub.
	n := 101
	edges := make([]graph.Edge, 0, 100)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.ID(v)})
	}
	vw := make([]float64, n)
	vw[0] = 1
	for v := 1; v < n; v++ {
		vw[v] = 100
	}
	r := rng.New(7)
	const k = 4
	parts := partition.RandomK(edges, k, r)
	coresets := make([]*WeightedVCCoreset, k)
	for i, p := range parts {
		coresets[i] = ComputeWeightedVCCoreset(n, k, 1.0, p, vw)
	}
	cover := ComposeWeightedVC(n, coresets)
	if err := vcover.Verify(n, edges, cover); err != nil {
		t.Fatal(err)
	}
	w := vcover.CoverWeight(cover, vw)
	// OPT = 1 (hub). The unweighted per-class machinery may still pick a
	// few leaves from the 2-approx step, but must not collapse to
	// hundreds of heavy leaves.
	if w > 1000 {
		t.Fatalf("weighted cover cost %v on hub instance (opt 1)", w)
	}
}
