package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func TestGreedyMatchTrajectoryMonotoneAndConsistent(t *testing.T) {
	r := rng.New(1)
	g := gen.GNP(400, 0.03, r)
	const k = 8
	parts := partition.RandomK(g.Edges, k, r)
	coresets := make([][]graph.Edge, k)
	for i, p := range parts {
		coresets[i] = MatchingCoreset(g.N, p)
	}
	sizes := GreedyMatchTrajectory(g.N, coresets)
	if len(sizes) != k+1 || sizes[0] != 0 {
		t.Fatalf("trajectory shape wrong: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("trajectory decreased at %d: %v", i, sizes)
		}
	}
	// Final value = GreedyMatchCombine.
	if sizes[k] != GreedyMatchCombine(g.N, coresets).Size() {
		t.Fatal("trajectory endpoint disagrees with combiner")
	}
}

// TestLemma32GrowthOnEarlySteps checks the Lemma 3.2 shape: while the
// matching is small, every one of the first k/3 steps adds a decent chunk
// of MM(G)/k.
func TestLemma32GrowthOnEarlySteps(t *testing.T) {
	r := rng.New(3)
	g := gen.GNP(3000, 8.0/3000, r)
	const k = 12
	opt := matching.Maximum(g.N, g.Edges).Size()
	parts := partition.RandomK(g.Edges, k, r)
	coresets := make([][]graph.Edge, k)
	for i, p := range parts {
		coresets[i] = MatchingCoreset(g.N, p)
	}
	sizes := GreedyMatchTrajectory(g.N, coresets)
	c := 1.0 / 9
	for i := 1; i <= k/3; i++ {
		if float64(sizes[i-1]) > c*float64(opt) {
			break // Lemma 3.2's precondition no longer holds; done.
		}
		inc := sizes[i] - sizes[i-1]
		// Paper: increment >= (1-6c-o(1))/k * MM. Use half of that as a
		// stochastic-safe floor.
		floor := (1 - 6*c) / float64(k) * float64(opt) / 2
		if float64(inc) < floor {
			t.Fatalf("step %d increment %d below Lemma 3.2 floor %.1f (opt=%d)", i, inc, floor, opt)
		}
	}
}

func TestHypotheticalPeelingLevelsDisjointAndClassified(t *testing.T) {
	r := rng.New(5)
	b := gen.BipartiteGNP(200, 200, 0.05, r)
	g := b.ToGraph()
	inOpt := make([]bool, g.N)
	for _, v := range vcover.KonigCover(b) {
		inOpt[v] = true
	}
	lv := HypotheticalPeeling(g.N, g.Edges, inOpt)
	seen := map[graph.ID]bool{}
	for j := range lv.Opt {
		for _, v := range lv.Opt[j] {
			if !inOpt[v] {
				t.Fatalf("O_%d contains non-optimal vertex %d", j+1, v)
			}
			if seen[v] {
				t.Fatalf("vertex %d peeled twice", v)
			}
			seen[v] = true
		}
		for _, v := range lv.Bar[j] {
			if inOpt[v] {
				t.Fatalf("Obar_%d contains optimal vertex %d", j+1, v)
			}
			if seen[v] {
				t.Fatalf("vertex %d peeled twice", v)
			}
			seen[v] = true
		}
	}
}

// TestLemma35BoundOnHypotheticalLevels: the union of O_j and Obar_j is
// O(log n) * VC(G) (Lemma 3.5; per-level Obar_j <= 8*VC).
func TestLemma35BoundOnHypotheticalLevels(t *testing.T) {
	r := rng.New(7)
	b := gen.BipartiteGNP(300, 300, 0.05, r)
	g := b.ToGraph()
	optCover := vcover.KonigCover(b)
	inOpt := make([]bool, g.N)
	for _, v := range optCover {
		inOpt[v] = true
	}
	lv := HypotheticalPeeling(g.N, g.Edges, inOpt)
	total := 0
	for j := range lv.Opt {
		total += len(lv.Opt[j])
		if len(lv.Bar[j]) > 8*len(optCover) {
			t.Fatalf("level %d: |Obar_j| = %d > 8*VC = %d (Lemma 3.5)",
				j+1, len(lv.Bar[j]), 8*len(optCover))
		}
		total += len(lv.Bar[j])
	}
	// Union of O_j's is within O*, so total <= |O*| + t*8|O*|.
	t.Logf("hypothetical peeling total %d vs VC %d", total, len(optCover))
}

// TestLemma36Sandwich is the core of Theorem 2's proof: the machine's
// peeled sets are sandwiched by the hypothetical process w.h.p.
func TestLemma36Sandwich(t *testing.T) {
	r := rng.New(11)
	const n, k = 4096, 4
	// Dense bipartite graph: peeling actually fires.
	b := gen.BipartiteGNP(n/2, n/2, 64.0/float64(n), r)
	g := b.ToGraph()
	inOpt := make([]bool, g.N)
	for _, v := range vcover.KonigCover(b) {
		inOpt[v] = true
	}
	hyp := HypotheticalPeeling(g.N, g.Edges, inOpt)
	parts := partition.RandomK(g.Edges, k, r)
	okMachines := 0
	for i, p := range parts {
		cs := ComputeVCCoreset(g.N, k, p)
		rep := CheckSandwich(cs.Levels, hyp, inOpt)
		if rep.Holds {
			okMachines++
		} else {
			t.Logf("machine %d: prefix checks %v", i, rep.PrefixOK)
		}
	}
	// Lemma 3.6 holds w.h.p.; on this seeded instance all machines must
	// satisfy at least the A ⊇ O direction. We assert a majority rather
	// than unanimity to stay robust to the o(1) failure probability.
	if okMachines < k/2 {
		t.Fatalf("sandwich held on only %d/%d machines", okMachines, k)
	}
}

func TestCheckSandwichDetectsViolation(t *testing.T) {
	inOpt := []bool{true, false, false}
	hyp := &PeelingLevels{
		Opt: [][]graph.ID{{0}},
		Bar: [][]graph.ID{{}},
	}
	// Machine never peels vertex 0 -> containment 1 fails.
	rep := CheckSandwich([][]graph.ID{{}}, hyp, inOpt)
	if rep.Holds {
		t.Fatal("missing O_1 vertex not detected")
	}
	// Machine peels complement vertex 2 that the process never peels ->
	// containment 2 fails.
	hyp2 := &PeelingLevels{Opt: [][]graph.ID{{}}, Bar: [][]graph.ID{{}}}
	rep2 := CheckSandwich([][]graph.ID{{2}}, hyp2, inOpt)
	if rep2.Holds {
		t.Fatal("excess Bar vertex not detected")
	}
	// Clean case.
	rep3 := CheckSandwich([][]graph.ID{{0}}, hyp, inOpt)
	if !rep3.Holds {
		t.Fatal("valid sandwich rejected")
	}
}
