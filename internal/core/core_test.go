package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func TestMatchingCoresetIsMaximumMatching(t *testing.T) {
	r := rng.New(1)
	g := gen.GNP(200, 0.05, r)
	cs := MatchingCoreset(g.N, g.Edges)
	m := matching.FromEdges(g.N, cs) // must be vertex-disjoint
	want := matching.Maximum(g.N, g.Edges).Size()
	if m.Size() != want {
		t.Fatalf("coreset size %d, maximum matching %d", m.Size(), want)
	}
}

func TestComposeMatchingValidAndAtLeastGreedy(t *testing.T) {
	r := rng.New(3)
	g := gen.GNP(300, 0.03, r)
	parts := partition.RandomK(g.Edges, 5, r)
	coresets := make([][]graph.Edge, len(parts))
	for i, p := range parts {
		coresets[i] = MatchingCoreset(g.N, p)
	}
	composed := ComposeMatching(g.N, coresets)
	if err := matching.Verify(g.N, g.Edges, composed); err != nil {
		t.Fatalf("composed matching invalid: %v", err)
	}
	greedy := GreedyMatchCombine(g.N, coresets)
	if err := matching.Verify(g.N, g.Edges, greedy); err != nil {
		t.Fatalf("greedy combined matching invalid: %v", err)
	}
	if composed.Size() < greedy.Size() {
		t.Fatalf("exact composition %d smaller than greedy %d", composed.Size(), greedy.Size())
	}
}

// TestTheorem1ApproximationGNP checks the paper's headline guarantee: the
// composed matching is a constant-factor approximation (the paper proves
// ratio <= 9; in practice it is far better — we assert a conservative 3).
func TestTheorem1ApproximationGNP(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		r := rng.New(uint64(100 + k))
		g := gen.GNP(600, 0.02, r)
		opt := matching.Maximum(g.N, g.Edges).Size()
		got, _ := DistributedMatching(g, k, 0, uint64(k))
		if err := matching.Verify(g.N, g.Edges, got); err != nil {
			t.Fatal(err)
		}
		ratio := float64(opt) / float64(got.Size())
		if ratio > 3.0 {
			t.Errorf("k=%d: ratio %.2f exceeds 3 (opt=%d got=%d)", k, ratio, opt, got.Size())
		}
	}
}

func TestTheorem1OnHardDistribution(t *testing.T) {
	// Even on D_Matching (the lower-bound instance for SMALL coresets),
	// full maximum-matching coresets stay O(1)-approximate.
	r := rng.New(7)
	const n, alpha, k = 1000, 5, 8
	inst := gen.HardMatching(n, alpha, k, r)
	g := inst.B.ToGraph()
	opt := matching.Maximum(g.N, g.Edges).Size()
	got, _ := DistributedMatching(g, k, 0, 11)
	ratio := float64(opt) / float64(got.Size())
	if ratio > 3.0 {
		t.Errorf("ratio %.2f on D_Matching (opt=%d got=%d)", ratio, opt, got.Size())
	}
}

func TestGreedyMatchCombineLowerBound(t *testing.T) {
	// Lemma 3.1's engine: GreedyMatch yields a constant fraction of OPT.
	r := rng.New(9)
	g := gen.GNP(500, 0.02, r)
	parts := partition.RandomK(g.Edges, 6, r)
	coresets := make([][]graph.Edge, len(parts))
	for i, p := range parts {
		coresets[i] = MatchingCoreset(g.N, p)
	}
	greedy := GreedyMatchCombine(g.N, coresets)
	opt := matching.Maximum(g.N, g.Edges).Size()
	if float64(greedy.Size()) < float64(opt)/9 {
		t.Fatalf("GreedyMatch %d below opt/9 (opt=%d)", greedy.Size(), opt)
	}
}

func TestPeelingDepth(t *testing.T) {
	// Delta must be the SMALLEST integer with n/(k*2^Delta) <= 4*log2(n);
	// verify both the bound and minimality for a spread of (n, k).
	check := func(n, k int) {
		d := PeelingDepth(n, k)
		if n < 2 || k < 1 {
			if d != 1 {
				t.Errorf("PeelingDepth(%d,%d) = %d, want 1", n, k, d)
			}
			return
		}
		limit := 4 * math.Log2(float64(n))
		if float64(n)/(float64(k)*math.Pow(2, float64(d))) > limit {
			t.Errorf("PeelingDepth(%d,%d) = %d does not satisfy the bound", n, k, d)
		}
		if d > 1 && float64(n)/(float64(k)*math.Pow(2, float64(d-1))) <= limit {
			t.Errorf("PeelingDepth(%d,%d) = %d is not minimal", n, k, d)
		}
	}
	for _, tc := range []struct{ n, k int }{
		{1 << 16, 4}, {1 << 10, 1}, {100, 50}, {1, 1}, {1 << 20, 32}, {7, 7},
	} {
		check(tc.n, tc.k)
	}
}

func TestVCCoresetFeasibility(t *testing.T) {
	// The composed cover must cover EVERY edge of G.
	r := rng.New(11)
	g := gen.GNP(400, 0.05, r)
	const k = 4
	parts := partition.RandomK(g.Edges, k, r)
	coresets := make([]*VCCoreset, k)
	for i, p := range parts {
		coresets[i] = ComputeVCCoreset(g.N, k, p)
	}
	cover := ComposeVC(g.N, coresets)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatalf("composed cover infeasible: %v", err)
	}
	coverG := ComposeVCGreedy(g.N, coresets)
	if err := vcover.Verify(g.N, g.Edges, coverG); err != nil {
		t.Fatalf("greedy-composed cover infeasible: %v", err)
	}
}

func TestVCCoresetResidualSparse(t *testing.T) {
	// Theorem 2: the residual graph has O(n log n) edges. After peeling,
	// max degree is < ceil(n/(k*2^Delta)) <= 4 log2 n + 1, so edges <=
	// n * (4 log2 n + 1) / 1 — we assert the max-degree bound directly.
	r := rng.New(13)
	const n, k = 2048, 4
	g := gen.GNP(n, 0.1, r) // dense: forces real peeling
	parts := partition.RandomK(g.Edges, k, r)
	for i, p := range parts {
		cs := ComputeVCCoreset(n, k, p)
		maxDeg := graph.MaxDegree(n, cs.Residual)
		bound := int(float64(n)/(float64(k)*math.Pow(2, float64(PeelingDepth(n, k))))) + 1
		if maxDeg > bound {
			t.Errorf("machine %d: residual max degree %d > bound %d", i, maxDeg, bound)
		}
		if len(cs.Residual) > 8*n*int(1+math.Log2(float64(n))) {
			t.Errorf("machine %d: residual has %d edges, too many", i, len(cs.Residual))
		}
	}
}

// TestTheorem2ApproximationStars reproduces the O(log n) guarantee on a
// workload where VC(G) is known exactly: a star forest with `count` centers
// has VC = count.
func TestTheorem2ApproximationStars(t *testing.T) {
	r := rng.New(17)
	const count, leaves, k = 50, 40, 4
	g := gen.StarForest(count, leaves)
	// Shuffle edges so partitioning isn't structured.
	r.Shuffle(len(g.Edges), func(i, j int) { g.Edges[i], g.Edges[j] = g.Edges[j], g.Edges[i] })
	cover, _ := DistributedVertexCover(g, k, 0, 23)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
	opt := count // one center per star
	ratio := float64(len(cover)) / float64(opt)
	// O(log n) bound; for this instance log2(n) ~ 11, assert generously.
	if ratio > 4*math.Log2(float64(g.N)) {
		t.Errorf("cover ratio %.1f too large (cover=%d opt=%d)", ratio, len(cover), opt)
	}
}

func TestVCCoresetOnBipartiteAgainstKonig(t *testing.T) {
	// Exact OPT via Konig on a bipartite random graph; composed cover must
	// be within O(log n) of it.
	r := rng.New(19)
	b := gen.BipartiteGNP(300, 300, 0.02, r)
	opt := len(vcover.KonigCover(b))
	if opt == 0 {
		t.Skip("degenerate instance")
	}
	g := b.ToGraph()
	cover, _ := DistributedVertexCover(g, 4, 0, 29)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(cover)) / float64(opt)
	if ratio > 3*math.Log2(float64(g.N)) {
		t.Errorf("ratio %.2f vs O(log n) (cover=%d opt=%d)", ratio, len(cover), opt)
	}
}

func TestVCCoresetEmptyAndTinyPartitions(t *testing.T) {
	cs := ComputeVCCoreset(100, 4, nil)
	if len(cs.Fixed) != 0 || len(cs.Residual) != 0 {
		t.Fatal("empty partition should give empty coreset")
	}
	cs2 := ComputeVCCoreset(100, 4, []graph.Edge{{U: 0, V: 1}})
	cover := ComposeVC(100, []*VCCoreset{cs2})
	if err := vcover.Verify(100, []graph.Edge{{U: 0, V: 1}}, cover); err != nil {
		t.Fatal(err)
	}
}

func TestVCCoresetSizeAccessors(t *testing.T) {
	cs := &VCCoreset{Fixed: []graph.ID{1, 2}, Residual: []graph.Edge{{U: 0, V: 1}}}
	if VCCoresetSize(cs) != 3 {
		t.Fatal("VCCoresetSize wrong")
	}
	if VCCoresetSizeBytes(cs) <= 0 {
		t.Fatal("VCCoresetSizeBytes wrong")
	}
}

func TestSubsampledMatchingCoreset(t *testing.T) {
	r := rng.New(23)
	g := gen.GNP(400, 0.05, r)
	full := MatchingCoreset(g.N, g.Edges)
	sub := SubsampledMatchingCoreset(g.N, g.Edges, 4, r)
	// Subsampled coreset is a subset of a maximum matching: vertex-disjoint.
	matching.FromEdges(g.N, sub)
	if len(sub) >= len(full) {
		t.Fatalf("subsampling did not shrink: %d vs %d", len(sub), len(full))
	}
	// alpha=1 returns the full matching.
	whole := SubsampledMatchingCoreset(g.N, g.Edges, 1, r)
	if len(whole) != len(full) {
		t.Fatalf("alpha=1 size %d, want %d", len(whole), len(full))
	}
}

func TestSubsampledPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on alpha < 1")
		}
	}()
	SubsampledMatchingCoreset(10, nil, 0, rng.New(1))
}

func TestGroupedVCFeasibleAndBounded(t *testing.T) {
	r := rng.New(29)
	g := gen.GNP(512, 0.03, r)
	const k = 4
	for _, alpha := range []int{8, 16, 32} {
		gs := GroupSizeFor(g.N, alpha)
		parts := partition.RandomK(g.Edges, k, r)
		coresets := make([]*VCCoreset, k)
		for i, p := range parts {
			coresets[i] = GroupedVCCoreset(g.N, k, gs, p)
		}
		cover := ComposeGroupedVC(g.N, gs, coresets)
		if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
			t.Fatalf("alpha=%d: grouped cover infeasible: %v", alpha, err)
		}
	}
}

func TestGroupedVCSelfLoopHandling(t *testing.T) {
	// Edge inside one group must force that group into the cover.
	edges := []graph.Edge{{U: 0, V: 1}} // group size 2 -> group 0 self-loop
	cs := GroupedVCCoreset(4, 1, 2, edges)
	found := false
	for _, v := range cs.Fixed {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("self-loop group not fixed")
	}
	cover := ComposeGroupedVC(4, 2, []*VCCoreset{cs})
	if err := vcover.Verify(4, edges, cover); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSizeFor(t *testing.T) {
	if GroupSizeFor(1, 100) != 1 {
		t.Fatal("tiny n should give group size 1")
	}
	if GroupSizeFor(1<<16, 4) != 1 {
		t.Fatal("alpha < log n should give group size 1")
	}
	if gs := GroupSizeFor(1<<16, 160); gs != 10 {
		t.Fatalf("GroupSizeFor(2^16, 160) = %d, want 10", gs)
	}
}

func TestMapPartsOrderAndParallel(t *testing.T) {
	parts := make([][]graph.Edge, 37)
	for i := range parts {
		parts[i] = []graph.Edge{{U: graph.ID(i), V: graph.ID(i + 1)}}
	}
	got := MapParts(parts, 8, func(i int, part []graph.Edge) int {
		return int(part[0].U)
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("result %d out of order: %d", i, v)
		}
	}
	// Serial path.
	got1 := MapParts(parts, 1, func(i int, part []graph.Edge) int { return i * 2 })
	for i, v := range got1 {
		if v != i*2 {
			t.Fatal("serial MapParts wrong")
		}
	}
	// Zero workers -> GOMAXPROCS default.
	got0 := MapParts(parts, 0, func(i int, part []graph.Edge) int { return i })
	if len(got0) != len(parts) {
		t.Fatal("MapParts(0) wrong length")
	}
}

func TestPipelineStatsAccounting(t *testing.T) {
	r := rng.New(31)
	g := gen.GNP(300, 0.05, r)
	m, st := DistributedMatching(g, 4, 2, 77)
	if m.Size() == 0 {
		t.Fatal("empty matching on non-trivial graph")
	}
	if st.K != 4 || len(st.PartEdges) != 4 || len(st.CoresetEdges) != 4 {
		t.Fatal("stats shape wrong")
	}
	sum := 0
	for _, e := range st.PartEdges {
		sum += e
	}
	if sum != g.M() {
		t.Fatalf("partition lost edges: %d != %d", sum, g.M())
	}
	if st.TotalCommBytes <= 0 || st.MaxMachineBytes <= 0 {
		t.Fatal("communication accounting missing")
	}
	if st.MaxMachineBytes > st.TotalCommBytes {
		t.Fatal("max > total")
	}

	cover, st2 := DistributedVertexCover(g, 4, 2, 78)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
	if len(st2.CoresetFixed) != 4 {
		t.Fatal("VC stats missing fixed counts")
	}
}

func TestDistributedMatchingDeterministicSeed(t *testing.T) {
	r := rng.New(37)
	g := gen.GNP(200, 0.05, r)
	m1, _ := DistributedMatching(g, 4, 3, 99)
	m2, _ := DistributedMatching(g, 4, 1, 99) // workers must not affect result
	if m1.Size() != m2.Size() {
		t.Fatalf("parallelism changed result: %d vs %d", m1.Size(), m2.Size())
	}
}
