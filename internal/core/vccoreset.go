package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/vcover"
)

// VCCoreset is the vertex-cover coreset of one machine (Theorem 2): a set of
// vertices fixed directly into the final cover, plus a sparse residual
// subgraph whose union across machines is covered at composition time.
type VCCoreset struct {
	// Fixed is V_cs^(i) = union of the peeled levels: vertices whose
	// residual degree reached the level threshold. They are added to the
	// final vertex cover unconditionally.
	Fixed []graph.ID
	// Residual is the edge set of G_Delta^(i), the subgraph left after
	// peeling; the paper bounds it by O(n log n) edges.
	Residual []graph.Edge
	// Levels records the peeled set of each iteration j = 1..Delta-1
	// (diagnostics; Lemma 3.6 sandwiches these sets between the
	// hypothetical processes O_j / O-bar_j).
	Levels [][]graph.ID
}

// PeelingDepth returns Delta: the smallest integer with
// n/(k*2^Delta) <= 4*log2(n), per the first line of VC-Coreset. All
// logarithms in the implementation are base 2; the paper's O~ bounds are
// insensitive to the base.
func PeelingDepth(n, k int) int {
	if n < 2 || k < 1 {
		return 1
	}
	limit := 4 * math.Log2(float64(n))
	delta := 1
	for float64(n)/(float64(k)*math.Pow(2, float64(delta))) > limit {
		delta++
	}
	return delta
}

// ComputeVCCoreset runs VC-Coreset (Theorem 2) on one machine's partition.
// n is the global vertex count and k the number of machines; both enter the
// peeling thresholds n/(k*2^(j+1)).
func ComputeVCCoreset(n, k int, part []graph.Edge) *VCCoreset {
	delta := PeelingDepth(n, k)
	res := graph.NewResidual(n, part)
	out := &VCCoreset{}
	for j := 1; j <= delta-1; j++ {
		threshold := float64(n) / (float64(k) * math.Pow(2, float64(j+1)))
		peeled := res.RemoveAtLeast(int(math.Ceil(threshold)))
		out.Levels = append(out.Levels, peeled)
		out.Fixed = append(out.Fixed, peeled...)
	}
	out.Residual = res.LiveEdges()
	return out
}

// ComposeVC combines vertex-cover coresets into a feasible cover of G: the
// union of the fixed sets, plus a vertex cover of the union of the residual
// subgraphs. The paper composes with any 2-approximation; we use the
// maximal-matching 2-approximation by default.
//
// Feasibility (as argued after the algorithm in Section 3.2): every edge of
// G lives in some G(i); there it is either incident on a peeled vertex
// (covered by that machine's fixed set) or survives into G_Delta^(i)
// (covered by the residual cover).
func ComposeVC(n int, coresets []*VCCoreset) []graph.ID {
	var fixed []graph.ID
	var residuals [][]graph.Edge
	for _, cs := range coresets {
		fixed = append(fixed, cs.Fixed...)
		residuals = append(residuals, cs.Residual)
	}
	union := graph.UnionEdges(residuals...)
	cover := append(fixed, vcover.FromMatching(n, union)...)
	return vcover.Dedup(cover)
}

// ComposeVCGreedy is ComposeVC with the greedy H_n-approximation on the
// residual union instead of the 2-approximation; experiments use it to show
// the composition is robust to the choice of the final cover algorithm.
func ComposeVCGreedy(n int, coresets []*VCCoreset) []graph.ID {
	var fixed []graph.ID
	var residuals [][]graph.Edge
	for _, cs := range coresets {
		fixed = append(fixed, cs.Fixed...)
		residuals = append(residuals, cs.Residual)
	}
	union := graph.UnionEdges(residuals...)
	cover := append(fixed, vcover.GreedyDegree(n, union)...)
	return vcover.Dedup(cover)
}

// VCCoresetSizeBytes returns the encoded message size of a VC coreset
// (fixed vertex ids plus residual edges), for communication accounting. The
// residual is charged at the delta edge-batch codec the cluster runtime uses
// on the wire, keeping simulated and measured sizes one definition.
func VCCoresetSizeBytes(cs *VCCoreset) int {
	return graph.EncodedIDBytes(cs.Fixed) + graph.EdgeBatchBytes(cs.Residual)
}

// VCCoresetSize returns the paper's size measure for a VC coreset: number
// of residual edges plus number of fixed vertices.
func VCCoresetSize(cs *VCCoreset) int {
	return len(cs.Residual) + len(cs.Fixed)
}
