package core

import (
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/vcover"
)

// Negative baselines: the coresets the paper explains do NOT work, kept so
// the experiments can reproduce the Ω(k) separations of Sections 1.2/3.2.

// MaximalMatchingCoreset returns an arbitrary maximal matching of the
// partition, scanning edges in the given order. "Greedy and local search
// algorithms are the typical choices for composable coresets" (Section 1.2)
// — but for matching this is only an Ω(k)-approximate randomized coreset.
func MaximalMatchingCoreset(n int, part []graph.Edge) []graph.Edge {
	return matching.MaximalGreedy(n, part).Edges()
}

// AdversarialMaximalCoreset returns the *worst-case* maximal matching of the
// partition with respect to a known set of critical ("hidden") edges: it
// first computes a maximum matching on the blocker edges — non-hidden edges
// that touch an endpoint of a local hidden edge — to knock out as many
// hidden edges as possible, then extends to maximality with the remaining
// edges (hidden edges last).
//
// The result IS a maximal matching of the partition, so it witnesses the
// existential claim "there are simple instances in which choosing an
// arbitrary maximal matching in G(i) results in an Ω(k)-approximation"
// (Section 1.2). The hidden-set oracle is available to the experiment
// because the generator planted the instance; a machine could not compute
// this ordering, but a lower bound only needs one bad maximal matching to
// exist.
func AdversarialMaximalCoreset(n int, part []graph.Edge, isHidden func(graph.Edge) bool) []graph.Edge {
	touched := make(map[graph.ID]bool)
	var hidden, rest []graph.Edge
	for _, e := range part {
		if isHidden(e) {
			hidden = append(hidden, e)
			touched[e.U] = true
			touched[e.V] = true
		}
	}
	var blockers []graph.Edge
	for _, e := range part {
		if isHidden(e) {
			continue
		}
		if touched[e.U] || touched[e.V] {
			blockers = append(blockers, e)
		} else {
			rest = append(rest, e)
		}
	}
	// Maximum matching on blockers kills the most hidden edges.
	m := matching.Maximum(n, blockers)
	// Extend to a maximal matching of the whole partition: remaining
	// non-hidden edges first, hidden edges last.
	m.AugmentGreedily(rest)
	m.AugmentGreedily(hidden)
	return m.Edges()
}

// MinVCCoreset is the "minimum vertex cover as coreset" baseline of Section
// 3.2: each machine reports (an approximation of) the minimum vertex cover
// of its own partition as fixed vertices, with no residual edges. On a star
// with Θ(k) leaves this composes to an Ω(k)-approximation: each machine sees
// roughly one edge, for which *either* endpoint is a legitimate minimum
// cover; an adversarial (but still minimum-size) local choice picks the
// leaf, so the union accumulates Θ(k) distinct leaves instead of the single
// center.
//
// The local cover is exact on bipartite partitions (Konig) and 2-approximate
// otherwise. The adversarial-yet-minimum tie-break is realized by a
// leaf-swap post-pass: any cover vertex of local degree 1 is swapped for its
// unique neighbor when that neighbor is not already in the cover. The swap
// preserves feasibility and size, so the reported set remains a minimum
// (resp. 2-approximate) cover of the partition.
func MinVCCoreset(n int, part []graph.Edge) *VCCoreset {
	adj := graph.BuildAdj(n, part)
	var cover []graph.ID
	if side, ok := adj.IsBipartiteWithSides(); ok {
		b, left, right := graph.FromGraphSides(n, part, side)
		for _, v := range vcover.KonigCover(b) {
			if int(v) < b.NL {
				cover = append(cover, left[v])
			} else {
				cover = append(cover, right[int(v)-b.NL])
			}
		}
	} else {
		cover = vcover.FromMatching(n, part)
	}
	cover = vcover.Dedup(cover)
	inCover := make(map[graph.ID]bool, len(cover))
	for _, v := range cover {
		inCover[v] = true
	}
	for i, v := range cover {
		if adj.Degree(v) != 1 {
			continue
		}
		w := adj.Neighbors(v)[0]
		if !inCover[w] {
			delete(inCover, v)
			inCover[w] = true
			cover[i] = w
		}
	}
	return &VCCoreset{Fixed: vcover.Dedup(cover)}
}
