package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/vcover"
)

// Weighted vertex cover extension (paper Section 1.1): "Similar ideas of
// 'grouping by weight' ... can also be used to extend our coreset for
// weighted vertex cover with an O(log n) factor loss in approximation and
// space; we omit the details."
//
// The paper omits the construction, so this implements the natural
// instantiation (documented as a substitution in DESIGN.md): round vertex
// weights to geometric classes with base (1+eps); assign every edge to the
// class of its HEAVIER endpoint (so both endpoints of a class-l edge have
// class <= l, and any cover of the class-l edge set may use only vertices
// whose weight is at most (1+eps)^(l+1)); run the unweighted Theorem 2
// machinery per class; the final cover is the union over classes. The
// per-class covers inherit the unweighted O(log n) cardinality guarantee,
// and the class structure caps the weight of every selected vertex by
// (1+eps) times the class's edge weight level; experiment E15 measures the
// end-to-end loss against the centralized local-ratio 2-approximation.

// WeightedVCCoreset is one machine's weighted coreset: a VC-Coreset per
// vertex-weight class present in its partition.
type WeightedVCCoreset struct {
	Classes map[int]*VCCoreset
}

// edgeClass returns the class of the heavier endpoint.
func edgeClass(e graph.Edge, vw []float64, eps float64) int {
	wu, wv := vw[e.U], vw[e.V]
	if wv > wu {
		wu = wv
	}
	return WeightClassOf(wu, eps)
}

// ComputeWeightedVCCoreset splits the partition's edges by weight class and
// runs the Theorem 2 peeling per class. vw holds the n vertex weights
// (strictly positive).
func ComputeWeightedVCCoreset(n, k int, eps float64, part []graph.Edge, vw []float64) *WeightedVCCoreset {
	if eps <= 0 {
		panic("core: ComputeWeightedVCCoreset with eps <= 0")
	}
	if len(vw) != n {
		panic("core: vertex weight vector length mismatch")
	}
	byClass := make(map[int][]graph.Edge)
	for _, e := range part {
		c := edgeClass(e, vw, eps)
		byClass[c] = append(byClass[c], e)
	}
	out := &WeightedVCCoreset{Classes: make(map[int]*VCCoreset, len(byClass))}
	for c, edges := range byClass {
		out.Classes[c] = ComputeVCCoreset(n, k, edges)
	}
	return out
}

// ComposeWeightedVC combines the machines' per-class coresets: each class is
// composed with the unweighted composition and the final cover is the union
// across classes.
func ComposeWeightedVC(n int, coresets []*WeightedVCCoreset) []graph.ID {
	classes := make(map[int][]*VCCoreset)
	for _, cs := range coresets {
		for c, k := range cs.Classes {
			classes[c] = append(classes[c], k)
		}
	}
	// Deterministic class order for reproducible output.
	idx := make([]int, 0, len(classes))
	for c := range classes {
		idx = append(idx, c)
	}
	sort.Ints(idx)
	var cover []graph.ID
	for _, c := range idx {
		cover = append(cover, ComposeVC(n, classes[c])...)
	}
	return vcover.Dedup(cover)
}

// WeightedVCCoresetSize returns the total size (fixed vertices plus residual
// edges) across classes — the paper's O(log n)-factor space overhead shows
// up as the number of classes.
func WeightedVCCoresetSize(cs *WeightedVCCoreset) int {
	total := 0
	for _, k := range cs.Classes {
		total += VCCoresetSize(k)
	}
	return total
}
