// Package core implements the paper's contribution: randomized composable
// coresets for maximum matching and minimum vertex cover (Assadi & Khanna,
// SPAA 2017).
//
// In the randomized composable coreset model the edges of G are randomly
// k-partitioned across machines; each machine sends a small summary of its
// partition and the final answer is computed on the union of the summaries:
//
//   - Matching (Theorem 1): the summary is ANY maximum matching of the
//     machine's partition — O(n) edges — and the union of the k summaries
//     contains an O(1)-approximate maximum matching of G w.h.p.
//   - Vertex cover (Theorem 2): the summary is produced by iterative
//     peeling (VC-Coreset): vertices of high residual degree are peeled and
//     reported as a *fixed* part of the final cover, and the sparse residual
//     subgraph — O(n log n) edges — is reported to guide the rest. The
//     composed cover is an O(log n) approximation w.h.p.
//
// The package also implements the communication-optimal protocol variants
// (Remark 5.2: subsampled matchings; Remark 5.8: vertex grouping), the
// weighted-matching extension via Crouch-Stubbs weight classes, and the
// *negative* baselines the paper discusses (arbitrary maximal matchings and
// local minimum vertex covers), which are only Ω(k)-approximate coresets.
package core

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// MatchingCoreset computes the Theorem 1 coreset of one machine's partition:
// the edge set of a maximum matching of G(i). Any maximum matching works —
// the theorem is algorithm-agnostic and requires no coordination between
// machines — so this uses the fastest applicable exact matcher
// (Hopcroft-Karp on bipartite partitions, blossom otherwise).
func MatchingCoreset(n int, part []graph.Edge) []graph.Edge {
	return matching.Maximum(n, part).Edges()
}

// ComposeMatching computes the final solution from matching coresets: a
// maximum matching of the union of the coreset edge sets. Per Theorem 1 any
// (approximation) algorithm may be applied to the union; using an exact
// matcher isolates the coreset's own loss in experiments.
func ComposeMatching(n int, coresets [][]graph.Edge) *matching.Matching {
	return matching.Maximum(n, graph.UnionEdges(coresets...))
}

// GreedyMatchCombine implements GreedyMatch from Section 3.1: scan the
// coresets in order and maintain a maximal matching by adding every edge
// whose endpoints are still free. The paper uses this combiner only for
// analysis (it certifies a large matching inside the union), but it is also
// a practical one-pass combiner, and experiments report it alongside
// ComposeMatching.
func GreedyMatchCombine(n int, coresets [][]graph.Edge) *matching.Matching {
	m := matching.NewEmpty(n)
	for _, cs := range coresets {
		m.AugmentGreedily(cs)
	}
	return m
}

// CoresetSizeBytes returns the encoded size of a matching coreset message,
// used for communication accounting. It charges the varint delta edge-batch
// codec — the same encoding the cluster runtime puts on the wire — so a
// simulated estimate and a measured CORESET payload are the same function of
// the same edge list.
func CoresetSizeBytes(coreset []graph.Edge) int {
	return graph.EdgeBatchBytes(coreset)
}
