package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func TestMaximalMatchingCoresetIsMaximal(t *testing.T) {
	r := rng.New(1)
	g := gen.GNP(100, 0.1, r)
	cs := MaximalMatchingCoreset(g.N, g.Edges)
	m := matching.FromEdges(g.N, cs)
	if !matching.IsMaximal(g.Edges, m) {
		t.Fatal("baseline coreset not maximal")
	}
}

func TestAdversarialMaximalCoresetIsMaximalMatching(t *testing.T) {
	// Whatever the adversary does, the output must still be a maximal
	// matching of the partition — that is what makes the Ω(k) result fair.
	r := rng.New(3)
	inst := gen.GreedyTrap(60, 6, r)
	g := inst.B.ToGraph()
	hidden := make(map[graph.Edge]bool)
	for i, h := range inst.IsHidden {
		if h {
			hidden[g.Edges[i].Canon()] = true
		}
	}
	parts := partition.RandomK(g.Edges, 6, r)
	for i, p := range parts {
		cs := AdversarialMaximalCoreset(g.N, p, func(e graph.Edge) bool { return hidden[e.Canon()] })
		m := matching.FromEdges(g.N, cs)
		if err := matching.Verify(g.N, p, m); err != nil {
			t.Fatalf("machine %d: invalid: %v", i, err)
		}
		if !matching.IsMaximal(p, m) {
			t.Fatalf("machine %d: adversarial matching not maximal", i)
		}
	}
}

// TestGreedyTrapSeparation reproduces the Section 1.2 separation: on the
// greedy-trap instance, the union of adversarial maximal matchings loses a
// factor that grows with k, while maximum-matching coresets (Theorem 1)
// stay constant-factor on the same partition.
func TestGreedyTrapSeparation(t *testing.T) {
	r := rng.New(5)
	const n, k = 4000, 8
	inst := gen.GreedyTrap(n, k, r)
	g := inst.B.ToGraph()
	hidden := make(map[graph.Edge]bool)
	for i, h := range inst.IsHidden {
		if h {
			hidden[g.Edges[i].Canon()] = true
		}
	}
	isHidden := func(e graph.Edge) bool { return hidden[e.Canon()] }
	parts := partition.RandomK(g.Edges, k, r.Split(1))

	badCoresets := make([][]graph.Edge, k)
	goodCoresets := make([][]graph.Edge, k)
	for i, p := range parts {
		badCoresets[i] = AdversarialMaximalCoreset(g.N, p, isHidden)
		goodCoresets[i] = MatchingCoreset(g.N, p)
	}
	opt := n // the planted perfect matching on P x Q has size n
	bad := ComposeMatching(g.N, badCoresets).Size()
	good := ComposeMatching(g.N, goodCoresets).Size()
	badRatio := float64(opt) / float64(bad)
	goodRatio := float64(opt) / float64(good)
	t.Logf("k=%d: adversarial-maximal ratio %.2f, maximum-matching ratio %.2f", k, badRatio, goodRatio)
	if badRatio < float64(k)/3 {
		t.Errorf("adversarial maximal coreset ratio %.2f, want >= k/3 = %.2f", badRatio, float64(k)/3)
	}
	if goodRatio > 3 {
		t.Errorf("maximum matching coreset ratio %.2f, want <= 3", goodRatio)
	}
}

func TestMinVCCoresetLocallyMinimumOnSingleEdge(t *testing.T) {
	// One edge: the reported cover must have size 1, and the adversarial
	// tie-break must pick the non-center (higher-degree-in-G is unknown to
	// the machine; our rule swaps to the neighbor).
	cs := MinVCCoreset(5, []graph.Edge{{U: 0, V: 3}})
	if len(cs.Fixed) != 1 {
		t.Fatalf("local cover size %d, want 1", len(cs.Fixed))
	}
	if len(cs.Residual) != 0 {
		t.Fatal("min-VC baseline should send no edges")
	}
}

// TestStarSeparation reproduces the Section 3.2 counterexample: on a star
// with Θ(k) leaves, min-VC-as-coreset composes to Ω(k) vertices while the
// paper's VC-Coreset composes to O(log n)-competitive size.
func TestStarSeparation(t *testing.T) {
	r := rng.New(7)
	const k = 16
	star := gen.Star(2*k + 1) // 2k edges over k machines: ~2 edges each
	parts := partition.RandomK(star.Edges, k, r)

	var badCoresets, goodCoresets []*VCCoreset
	for _, p := range parts {
		badCoresets = append(badCoresets, MinVCCoreset(star.N, p))
		goodCoresets = append(goodCoresets, ComputeVCCoreset(star.N, k, p))
	}
	bad := ComposeVC(star.N, badCoresets)
	good := ComposeVC(star.N, goodCoresets)
	if err := vcover.Verify(star.N, star.Edges, bad); err != nil {
		t.Fatalf("bad cover infeasible: %v", err)
	}
	if err := vcover.Verify(star.N, star.Edges, good); err != nil {
		t.Fatalf("good cover infeasible: %v", err)
	}
	t.Logf("star: min-VC coreset size %d, VC-Coreset size %d, opt 1", len(bad), len(good))
	// The bad baseline accumulates leaves: expect Ω(k). Machines seeing a
	// single edge (a constant fraction, ~2e^-2 of them here) pick a leaf,
	// so assert a conservative k/4.
	if len(bad) < k/4 {
		t.Errorf("min-VC coreset produced %d vertices; expected >= k/4 = %d", len(bad), k/4)
	}
	// The paper's coreset sends residual edges, so the coordinator can fix
	// the star with a small cover.
	if len(good) > 4 {
		t.Errorf("VC-Coreset cover %d on star, want small", len(good))
	}
}

func TestWeightClassOf(t *testing.T) {
	if c := WeightClassOf(1.0, 1.0); c != 0 {
		t.Fatalf("class of 1.0 = %d", c)
	}
	if c := WeightClassOf(2.0, 1.0); c != 1 {
		t.Fatalf("class of 2.0 = %d", c)
	}
	if c := WeightClassOf(7.9, 1.0); c != 2 {
		t.Fatalf("class of 7.9 = %d", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive weight accepted")
		}
	}()
	WeightClassOf(0, 1.0)
}

func TestSplitWeightClasses(t *testing.T) {
	edges := []graph.WEdge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 3.5}}
	classes := SplitWeightClasses(edges, 1.0)
	if len(classes[0]) != 1 || len(classes[1]) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("eps <= 0 accepted")
		}
	}()
	SplitWeightClasses(edges, 0)
}

func TestWeightedPipelineValidity(t *testing.T) {
	r := rng.New(11)
	wg := gen.WeightedGNP(200, 0.05, 64, r)
	// Partition weighted edges by index.
	const k = 4
	assign := make([]int, len(wg.Edges))
	for i := range assign {
		assign[i] = r.Intn(k)
	}
	parts := make([][]graph.WEdge, k)
	for i, e := range wg.Edges {
		parts[assign[i]] = append(parts[assign[i]], e)
	}
	coresets := make([]*WeightedCoreset, k)
	for i, p := range parts {
		coresets[i] = ComputeWeightedCoreset(wg.N, p, 1.0)
		if WeightedCoresetEdges(coresets[i]) == 0 && len(p) > 0 {
			t.Fatalf("machine %d produced empty coreset from %d edges", i, len(p))
		}
	}
	result := ComposeWeightedMatching(wg.N, coresets)
	// Result must be a matching made of original edges.
	seen := matching.NewEmpty(wg.N)
	valid := make(map[graph.Edge]bool, len(wg.Edges))
	for _, e := range wg.Edges {
		valid[e.Unweighted().Canon()] = true
	}
	for _, we := range result {
		if !valid[we.Unweighted().Canon()] {
			t.Fatalf("edge %v not in graph", we)
		}
		if !seen.Add(we.Unweighted().Canon()) {
			t.Fatalf("edge %v conflicts", we)
		}
	}
}

// TestWeightedApproximation checks the Crouch-Stubbs composition stays
// within a constant factor of the centralized greedy (1/2-approx) weight.
func TestWeightedApproximation(t *testing.T) {
	r := rng.New(13)
	wg := gen.WeightedChungLu(800, 2.0, 60, 5.0, r)
	const k = 4
	parts := make([][]graph.WEdge, k)
	for _, e := range wg.Edges {
		i := r.Intn(k)
		parts[i] = append(parts[i], e)
	}
	coresets := make([]*WeightedCoreset, k)
	for i, p := range parts {
		coresets[i] = ComputeWeightedCoreset(wg.N, p, 0.5)
	}
	distributed := graph.TotalWeight(ComposeWeightedMatching(wg.N, coresets))
	central := graph.TotalWeight(GreedyWeightedMatching(wg.N, wg.Edges))
	if central <= 0 {
		t.Skip("degenerate weights")
	}
	ratio := central / distributed
	t.Logf("weighted: central greedy %.1f, distributed %.1f, ratio %.2f", central, distributed, ratio)
	// Paper: factor 2 loss on top of the O(1) unweighted loss. Assert a
	// loose constant.
	if ratio > 6 {
		t.Errorf("weighted ratio %.2f too large", ratio)
	}
}

func TestGreedyWeightedMatchingIsMatching(t *testing.T) {
	r := rng.New(17)
	wg := gen.WeightedGNP(100, 0.1, 16, r)
	out := GreedyWeightedMatching(wg.N, wg.Edges)
	seen := matching.NewEmpty(wg.N)
	for _, we := range out {
		if !seen.Add(we.Unweighted().Canon()) {
			t.Fatalf("greedy weighted output not a matching at %v", we)
		}
	}
	// Greedy by weight must take the single heaviest edge.
	heaviest := wg.Edges[0]
	for _, e := range wg.Edges {
		if e.W > heaviest.W {
			heaviest = e
		}
	}
	found := false
	for _, e := range out {
		if e.Unweighted().Canon() == heaviest.Unweighted().Canon() {
			found = true
		}
	}
	if !found {
		t.Fatal("greedy weighted matching missed the heaviest edge")
	}
}
