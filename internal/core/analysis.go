package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/matching"
)

// Analysis instrumentation: executable versions of the paper's proof
// machinery, so the key lemmas can be checked empirically rather than
// trusted.
//
//   - GreedyMatchTrajectory records |M^(i)| after every step of GreedyMatch,
//     the quantity Lemma 3.2 bounds from below.
//   - HypotheticalPeeling runs the analysis-only process of Section 3.2 on
//     the whole graph G given an optimal cover O*: level sets O_j (peeled
//     from O*) and Obar_j (peeled from the complement) with thresholds
//     n/2^j and n/2^(j+2).
//   - CheckSandwich verifies Lemma 3.6's containments for one machine:
//     union of A_j contains the union of O_j, and the union of B_j is
//     contained in the union of Obar_j (prefix-wise).

// GreedyMatchTrajectory runs GreedyMatch over the coresets in order and
// returns sizes[i] = |M^(i)| after processing coreset i (sizes[0] = 0).
// Lemma 3.2: while |M^(i-1)| <= c*MM(G), each step adds at least
// ((1-6c-o(1))/k)*MM(G) edges w.h.p., for the first k/3 steps.
func GreedyMatchTrajectory(n int, coresets [][]graph.Edge) []int {
	m := matching.NewEmpty(n)
	sizes := make([]int, 0, len(coresets)+1)
	sizes = append(sizes, 0)
	for _, cs := range coresets {
		m.AugmentGreedily(cs)
		sizes = append(sizes, m.Size())
	}
	return sizes
}

// PeelingLevels is the output of the hypothetical process: per iteration j
// (1-based), the vertices peeled from O* (Opt) and from its complement
// (Bar).
type PeelingLevels struct {
	Opt [][]graph.ID // O_j: vertices of O* with degree >= n/2^j in G_j
	Bar [][]graph.ID // Obar_j: complement vertices with degree >= n/2^(j+2)
}

// HypotheticalPeeling runs the Section 3.2 analysis process on G(n, edges)
// with optimal cover O* (inOpt[v] reports membership). Step 1 removes the
// edges inside the complement of O* (G_1 is bipartite between O* and its
// complement); then for j = 1..ceil(log2 n), level sets are peeled with the
// two thresholds.
func HypotheticalPeeling(n int, edges []graph.Edge, inOpt []bool) *PeelingLevels {
	// G1: drop edges entirely inside the complement of O*.
	g1 := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		if inOpt[e.U] || inOpt[e.V] {
			g1 = append(g1, e)
		}
	}
	res := graph.NewResidual(n, g1)
	levels := &PeelingLevels{}
	t := int(math.Ceil(math.Log2(float64(n))))
	if t < 1 {
		t = 1
	}
	for j := 1; j <= t; j++ {
		thrOpt := float64(n) / math.Pow(2, float64(j))
		thrBar := float64(n) / math.Pow(2, float64(j+2))
		var oj, bj []graph.ID
		// Select both level sets against the *current* graph G_j before
		// removing anything, exactly as the paper's process does.
		for v := 0; v < n; v++ {
			d := float64(res.Degree(graph.ID(v)))
			if d <= 0 {
				continue
			}
			if inOpt[v] && d >= thrOpt {
				oj = append(oj, graph.ID(v))
			}
			if !inOpt[v] && d >= thrBar {
				bj = append(bj, graph.ID(v))
			}
		}
		for _, v := range oj {
			res.Remove(v)
		}
		for _, v := range bj {
			res.Remove(v)
		}
		levels.Opt = append(levels.Opt, oj)
		levels.Bar = append(levels.Bar, bj)
	}
	return levels
}

// SandwichReport summarizes a Lemma 3.6 check for one machine.
type SandwichReport struct {
	// PrefixOK[t] reports whether BOTH containments hold for prefix t+1:
	// union_{j<=t+1} A_j ⊇ union O_j and union B_j ⊆ union Obar_j, where
	// the machine levels are truncated/extended to align lengths.
	PrefixOK []bool
	// Holds is true when every prefix check passed.
	Holds bool
}

// CheckSandwich verifies Lemma 3.6 for one machine's VC-Coreset levels
// against the hypothetical process levels: A_j = V_j ∩ O*, B_j = V_j \ O*.
// The lemma's statement is prefix-wise; machine iterations beyond the
// hypothetical process's depth compare against its final unions.
func CheckSandwich(machineLevels [][]graph.ID, hyp *PeelingLevels, inOpt []bool) *SandwichReport {
	unionOpt := map[graph.ID]bool{} // union of O_j so far
	unionBar := map[graph.ID]bool{} // union of Obar_j so far
	unionA := map[graph.ID]bool{}   // union of A_j so far
	unionB := map[graph.ID]bool{}   // union of B_j so far
	fullBar := map[graph.ID]bool{}  // union of ALL Obar_j (lemma t = Delta)
	for _, level := range hyp.Bar {
		for _, v := range level {
			fullBar[v] = true
		}
	}
	rep := &SandwichReport{Holds: true}
	depth := len(machineLevels)
	for t := 0; t < depth; t++ {
		if t < len(hyp.Opt) {
			for _, v := range hyp.Opt[t] {
				unionOpt[v] = true
			}
			for _, v := range hyp.Bar[t] {
				unionBar[v] = true
			}
		}
		for _, v := range machineLevels[t] {
			if inOpt[v] {
				unionA[v] = true
			} else {
				unionB[v] = true
			}
		}
		ok := true
		// Containment 1: union A_j ⊇ union O_j.
		for v := range unionOpt {
			if !unionA[v] {
				ok = false
				break
			}
		}
		// Containment 2: union B_j ⊆ union Obar_j (prefix; at the final
		// level the paper compares against the full union).
		if ok {
			bar := unionBar
			if t == depth-1 {
				bar = fullBar
			}
			for v := range unionB {
				if !bar[v] {
					ok = false
					break
				}
			}
		}
		rep.PrefixOK = append(rep.PrefixOK, ok)
		if !ok {
			rep.Holds = false
		}
	}
	return rep
}
