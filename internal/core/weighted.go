package core

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/matching"
)

// Weighted matching extension (Section 1.1): the Crouch-Stubbs technique
// partitions edges into geometric weight classes [ (1+eps)^i, (1+eps)^(i+1) )
// and runs the unweighted machinery per class. The composition processes
// classes from heaviest to lightest, each time adding a maximum matching of
// the class's surviving edges among still-free vertices. The paper states
// this costs a factor-2 loss in approximation (on top of the unweighted
// coreset's constant) and an O(log n) factor in space.

// WeightedCoreset is one machine's weighted-matching coreset: for each
// weight class present in the partition, a maximum (cardinality) matching of
// that class's edges, with the class's representative weight retained.
type WeightedCoreset struct {
	// Classes maps class index i -> maximum matching of the class
	// subgraph, as weighted edges (original weights preserved).
	Classes map[int][]graph.WEdge
}

// WeightClassOf returns the geometric class index of weight w under base
// (1+eps): floor(log_{1+eps} w). Weights must be positive.
func WeightClassOf(w, eps float64) int {
	if w <= 0 {
		panic("core: non-positive edge weight")
	}
	return int(math.Floor(math.Log(w) / math.Log(1+eps)))
}

// SplitWeightClasses buckets weighted edges by class index.
func SplitWeightClasses(edges []graph.WEdge, eps float64) map[int][]graph.WEdge {
	if eps <= 0 {
		panic("core: SplitWeightClasses with eps <= 0")
	}
	out := make(map[int][]graph.WEdge)
	for _, e := range edges {
		c := WeightClassOf(e.W, eps)
		out[c] = append(out[c], e)
	}
	return out
}

// ComputeWeightedCoreset builds the per-class coreset of one machine's
// weighted partition.
func ComputeWeightedCoreset(n int, part []graph.WEdge, eps float64) *WeightedCoreset {
	classes := SplitWeightClasses(part, eps)
	out := &WeightedCoreset{Classes: make(map[int][]graph.WEdge, len(classes))}
	for c, wedges := range classes {
		// Maximum cardinality matching within the class; weights within a
		// class differ by at most (1+eps), so cardinality is the right
		// objective.
		um := matching.Maximum(n, graph.StripWeights(wedges))
		// Map matched (unweighted) edges back to a weighted representative.
		wByEdge := make(map[graph.Edge]float64, len(wedges))
		for _, we := range wedges {
			k := we.Unweighted().Canon()
			if old, ok := wByEdge[k]; !ok || we.W > old {
				wByEdge[k] = we.W
			}
		}
		for _, e := range um.Edges() {
			out.Classes[c] = append(out.Classes[c], graph.WEdge{U: e.U, V: e.V, W: wByEdge[e.Canon()]})
		}
	}
	return out
}

// ComposeWeightedMatching combines weighted coresets: classes are processed
// from heaviest to lightest; within a class, a maximum matching of the
// class's union edges restricted to still-free vertices is added greedily.
// Returns the selected weighted edges.
func ComposeWeightedMatching(n int, coresets []*WeightedCoreset) []graph.WEdge {
	byClass := make(map[int][]graph.WEdge)
	for _, cs := range coresets {
		for c, edges := range cs.Classes {
			byClass[c] = append(byClass[c], edges...)
		}
	}
	classIdx := make([]int, 0, len(byClass))
	for c := range byClass {
		classIdx = append(classIdx, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classIdx)))

	taken := matching.NewEmpty(n)
	var result []graph.WEdge
	for _, c := range classIdx {
		// Restrict to edges between free vertices, then match maximally
		// within the class (maximum matching on the restriction).
		var freeEdges []graph.WEdge
		for _, we := range byClass[c] {
			if !taken.Covers(we.U) && !taken.Covers(we.V) {
				freeEdges = append(freeEdges, we)
			}
		}
		if len(freeEdges) == 0 {
			continue
		}
		um := matching.Maximum(n, graph.StripWeights(freeEdges))
		wByEdge := make(map[graph.Edge]float64, len(freeEdges))
		for _, we := range freeEdges {
			k := we.Unweighted().Canon()
			if old, ok := wByEdge[k]; !ok || we.W > old {
				wByEdge[k] = we.W
			}
		}
		for _, e := range um.Edges() {
			if taken.Add(e) {
				result = append(result, graph.WEdge{U: e.U, V: e.V, W: wByEdge[e.Canon()]})
			}
		}
	}
	return result
}

// GreedyWeightedMatching is the classical 1/2-approximation for maximum
// weight matching (sort by weight descending, add greedily). It is the
// centralized reference against which the distributed weighted pipeline is
// scored in experiment E11.
func GreedyWeightedMatching(n int, edges []graph.WEdge) []graph.WEdge {
	sorted := append([]graph.WEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].W > sorted[j].W })
	taken := matching.NewEmpty(n)
	var out []graph.WEdge
	for _, we := range sorted {
		if taken.Add(we.Unweighted().Canon()) {
			out = append(out, we)
		}
	}
	return out
}

// WeightedCoresetEdges returns the total number of edges in a weighted
// coreset (the paper's space measure: O(n log n) per machine).
func WeightedCoresetEdges(cs *WeightedCoreset) int {
	total := 0
	for _, edges := range cs.Classes {
		total += len(edges)
	}
	return total
}
