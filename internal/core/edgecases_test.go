package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

// Edge-case and property tests: the pipelines must stay correct (valid
// matchings, feasible covers) under degenerate inputs — empty graphs, more
// machines than edges, single vertices, duplicate edges — and under random
// parameters drawn by testing/quick.

func TestPipelinesOnEmptyGraph(t *testing.T) {
	g := &graph.Graph{N: 10}
	m, st := DistributedMatching(g, 4, 0, 1)
	if m.Size() != 0 {
		t.Fatal("matching on empty graph")
	}
	if st.TotalCommBytes <= 0 {
		t.Fatal("even empty messages cost bytes (counts)")
	}
	cover, _ := DistributedVertexCover(g, 4, 0, 1)
	if len(cover) != 0 {
		t.Fatal("cover on empty graph")
	}
}

func TestPipelinesWithMoreMachinesThanEdges(t *testing.T) {
	g := graph.New(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	m, _ := DistributedMatching(g, 64, 0, 2)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("matching = %d, want 2 (edges are disjoint)", m.Size())
	}
	cover, _ := DistributedVertexCover(g, 64, 0, 2)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineSingleMachineIsExactMatching(t *testing.T) {
	// k=1: the coreset IS a maximum matching of G; composition preserves it.
	r := rng.New(3)
	g := gen.GNP(300, 0.03, r)
	opt := matching.Maximum(g.N, g.Edges).Size()
	m, _ := DistributedMatching(g, 1, 0, 3)
	if m.Size() != opt {
		t.Fatalf("k=1 matching %d != opt %d", m.Size(), opt)
	}
}

func TestComposeWithDuplicateCoresetEdges(t *testing.T) {
	// The same edge may appear in several coresets (it exists in only one
	// partition, but compose must tolerate duplicates in general input).
	coresets := [][]graph.Edge{
		{{U: 0, V: 1}, {U: 2, V: 3}},
		{{U: 0, V: 1}},
	}
	m := ComposeMatching(4, coresets)
	if m.Size() != 2 {
		t.Fatalf("size = %d", m.Size())
	}
	g := GreedyMatchCombine(4, coresets)
	if g.Size() != 2 {
		t.Fatalf("greedy size = %d", g.Size())
	}
}

func TestVCCoresetFeasibilityProperty(t *testing.T) {
	// Property: for random (n, p, k), the composed cover is feasible and
	// the union of residuals plus fixed sets covers G.
	r := rng.New(5)
	f := func(nRaw, kRaw, pRaw uint8) bool {
		n := int(nRaw%100) + 10
		k := int(kRaw%8) + 1
		p := float64(pRaw%64) / 255
		g := gen.GNP(n, p, r)
		parts := partition.RandomK(g.Edges, k, r)
		coresets := make([]*VCCoreset, k)
		for i, part := range parts {
			coresets[i] = ComputeVCCoreset(n, k, part)
		}
		cover := ComposeVC(n, coresets)
		return vcover.Verify(n, g.Edges, cover) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingCoresetComposeProperty(t *testing.T) {
	// Property: composition always yields a valid matching no smaller than
	// any single machine's coreset matching.
	r := rng.New(7)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%120) + 10
		k := int(kRaw%6) + 1
		g := gen.GNP(n, 6/float64(n), r)
		parts := partition.RandomK(g.Edges, k, r)
		coresets := make([][]graph.Edge, k)
		best := 0
		for i, part := range parts {
			coresets[i] = MatchingCoreset(n, part)
			if len(coresets[i]) > best {
				best = len(coresets[i])
			}
		}
		m := ComposeMatching(n, coresets)
		if matching.Verify(n, g.Edges, m) != nil {
			return false
		}
		return m.Size() >= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedVCWholeGraphOneGroup(t *testing.T) {
	// Degenerate grouping: one group containing everything. Every edge is
	// a self-loop; the cover is the whole vertex set but still feasible.
	g := graph.New(6, []graph.Edge{{U: 0, V: 1}, {U: 4, V: 5}})
	cs := GroupedVCCoreset(g.N, 1, 6, g.Edges)
	cover := ComposeGroupedVC(g.N, 6, []*VCCoreset{cs})
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
}

func TestSubsampledCoresetNeverInvalid(t *testing.T) {
	r := rng.New(9)
	f := func(alphaRaw uint8) bool {
		alpha := int(alphaRaw%16) + 1
		g := gen.GNP(80, 0.1, r)
		cs := SubsampledMatchingCoreset(g.N, g.Edges, alpha, r)
		// Must be a sub-matching: FromEdges panics on conflicts.
		defer func() { recover() }()
		matching.FromEdges(g.N, cs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedCoresetEmptyPartition(t *testing.T) {
	cs := ComputeWeightedCoreset(10, nil, 1.0)
	if WeightedCoresetEdges(cs) != 0 {
		t.Fatal("empty partition should give empty weighted coreset")
	}
	out := ComposeWeightedMatching(10, []*WeightedCoreset{cs})
	if len(out) != 0 {
		t.Fatal("composition of empty coresets should be empty")
	}
}

func TestAdversarialMaximalCoresetNoHidden(t *testing.T) {
	// With no hidden edges the adversary degenerates to a maximal matching.
	r := rng.New(11)
	g := gen.GNP(60, 0.1, r)
	cs := AdversarialMaximalCoreset(g.N, g.Edges, func(graph.Edge) bool { return false })
	m := matching.FromEdges(g.N, cs)
	if !matching.IsMaximal(g.Edges, m) {
		t.Fatal("not maximal")
	}
}

func TestMinVCCoresetEmptyPartition(t *testing.T) {
	cs := MinVCCoreset(5, nil)
	if len(cs.Fixed) != 0 || len(cs.Residual) != 0 {
		t.Fatal("empty partition should give empty min-VC coreset")
	}
}

func TestVCCoresetParallelEdgesMultigraph(t *testing.T) {
	// Theorem 2 explicitly supports multigraphs (Remark 5.8 relies on it):
	// parallel edges must not break peeling or composition.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2}}
	cs := ComputeVCCoreset(3, 1, edges)
	cover := ComposeVC(3, []*VCCoreset{cs})
	if err := vcover.Verify(3, edges, cover); err != nil {
		t.Fatal(err)
	}
}

func TestPeelingLevelsAreDisjoint(t *testing.T) {
	r := rng.New(13)
	g := gen.GNP(512, 0.2, r) // dense, forces several levels
	cs := ComputeVCCoreset(g.N, 2, g.Edges)
	seen := map[graph.ID]bool{}
	for _, level := range cs.Levels {
		for _, v := range level {
			if seen[v] {
				t.Fatalf("vertex %d peeled twice", v)
			}
			seen[v] = true
		}
	}
	// Fixed = union of levels.
	if len(seen) != len(cs.Fixed) {
		t.Fatalf("fixed %d != union of levels %d", len(cs.Fixed), len(seen))
	}
}

func TestResidualDisjointFromFixed(t *testing.T) {
	r := rng.New(17)
	g := gen.GNP(512, 0.15, r)
	cs := ComputeVCCoreset(g.N, 2, g.Edges)
	fixed := map[graph.ID]bool{}
	for _, v := range cs.Fixed {
		fixed[v] = true
	}
	for _, e := range cs.Residual {
		if fixed[e.U] || fixed[e.V] {
			t.Fatalf("residual edge %v touches a peeled vertex", e)
		}
	}
}
