package core

import (
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/vcover"
)

// SubsampledMatchingCoreset implements the protocol of Remark 5.2, which
// shows the Ω(nk/α²) communication lower bound of Theorem 5 is tight: each
// machine computes a maximum matching of its partition and forwards each
// matched edge independently with probability 1/alpha. The coordinator
// composes the k subsampled matchings with ComposeMatching; the result is an
// O(alpha)-approximation using O~(nk/α²) total communication.
func SubsampledMatchingCoreset(n int, part []graph.Edge, alpha int, r *rng.RNG) []graph.Edge {
	if alpha < 1 {
		panic("core: SubsampledMatchingCoreset with alpha < 1")
	}
	full := matching.Maximum(n, part).Edges()
	if alpha == 1 {
		return full
	}
	p := 1 / float64(alpha)
	out := make([]graph.Edge, 0, len(full)/alpha+1)
	for _, e := range full {
		if r.Bernoulli(p) {
			out = append(out, e)
		}
	}
	return out
}

// GroupedVC implements the protocol of Remark 5.8, which shows the Ω(nk/α)
// bound of Theorem 6 is tight: vertices are grouped into consecutive groups
// of size groupSize (deterministically, hence consistently across machines),
// the graph is contracted to a multigraph on the groups, and VC-Coreset runs
// on the contracted graph. A cover of the contracted graph expands to a
// cover of G by taking all members of each selected group, losing a factor
// groupSize; with groupSize = Θ(α/log n) the protocol is an
// α-approximation with O~(nk/α) communication.

// GroupedVCCoreset computes one machine's coreset on the contracted graph.
// Edges inside a single group become self-loops; they cannot be expressed in
// the simple-graph residual structure, so their group is added to Fixed
// directly (the group must be in any cover of the contracted multigraph).
func GroupedVCCoreset(n, k, groupSize int, part []graph.Edge) *VCCoreset {
	if groupSize < 1 {
		panic("core: GroupedVCCoreset with groupSize < 1")
	}
	ng := (n + groupSize - 1) / groupSize
	contracted := make([]graph.Edge, 0, len(part))
	selfLoop := make(map[graph.ID]bool)
	for _, e := range part {
		gu := e.U / graph.ID(groupSize)
		gv := e.V / graph.ID(groupSize)
		if gu == gv {
			selfLoop[gu] = true
			continue
		}
		contracted = append(contracted, graph.Edge{U: gu, V: gv}.Canon())
	}
	cs := ComputeVCCoreset(ng, k, contracted)
	for g := range selfLoop {
		cs.Fixed = append(cs.Fixed, g)
	}
	cs.Fixed = vcover.Dedup(cs.Fixed)
	return cs
}

// ComposeGroupedVC combines contracted coresets and expands group ids back
// to original vertices. n is the original vertex count.
func ComposeGroupedVC(n, groupSize int, coresets []*VCCoreset) []graph.ID {
	ng := (n + groupSize - 1) / groupSize
	groupCover := ComposeVC(ng, coresets)
	out := make([]graph.ID, 0, len(groupCover)*groupSize)
	for _, g := range groupCover {
		lo := int(g) * groupSize
		hi := lo + groupSize
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			out = append(out, graph.ID(v))
		}
	}
	return vcover.Dedup(out)
}

// GroupSizeFor returns the Remark 5.8 group size Θ(α/log₂ n), at least 1.
func GroupSizeFor(n, alpha int) int {
	if n < 2 {
		return 1
	}
	lg := 1
	for 1<<uint(lg) < n {
		lg++
	}
	g := alpha / lg
	if g < 1 {
		g = 1
	}
	return g
}
