package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

// PipelineStats reports what a full distributed run cost.
type PipelineStats struct {
	K                int   // number of machines
	PartEdges        []int // edges received by each machine
	CoresetEdges     []int // edges in each machine's coreset message
	CoresetFixed     []int // fixed vertices in each machine's message (VC only)
	TotalCommBytes   int   // sum of encoded message sizes
	MaxMachineBytes  int   // largest single message
	CompositionEdges int   // edges the coordinator processed
}

// Report assembles the shared JSON-able run report for a batch run: the
// input shape, the partitioning parameters, the composed solution size and
// these stats. The batch pipeline does not time itself, so the caller
// passes the wall clock it measured around the call. The schema
// (graph.RunReport) is shared with the streaming runtime and the coresetd
// service.
func (st *PipelineStats) Report(task string, n, m int, seed uint64, solutionSize int, d time.Duration) *graph.RunReport {
	return &graph.RunReport{
		Task:             task,
		Mode:             "batch",
		N:                n,
		M:                m,
		K:                st.K,
		Seed:             seed,
		SolutionSize:     solutionSize,
		PartEdges:        st.PartEdges,
		CoresetEdges:     st.CoresetEdges,
		CoresetFixed:     st.CoresetFixed,
		TotalCommBytes:   st.TotalCommBytes,
		MaxMachineBytes:  st.MaxMachineBytes,
		CompositionEdges: st.CompositionEdges,
		DurationMS:       float64(d.Microseconds()) / 1000,
	}
}

// DistributedMatching runs the full Theorem 1 pipeline on g: random
// k-partitioning (seeded), per-machine maximum matchings computed in
// parallel (one goroutine per machine, capped at `workers`), and an exact
// composition at the coordinator. Returns the final matching and stats.
func DistributedMatching(g *graph.Graph, k, workers int, seed uint64) (*matching.Matching, *PipelineStats) {
	root := rng.New(seed)
	parts := partition.RandomK(g.Edges, k, root.Split(0))
	coresets := MapParts(parts, workers, func(i int, part []graph.Edge) []graph.Edge {
		return MatchingCoreset(g.N, part)
	})
	st := &PipelineStats{K: k}
	for i, p := range parts {
		st.PartEdges = append(st.PartEdges, len(p))
		b := CoresetSizeBytes(coresets[i])
		st.TotalCommBytes += b
		if b > st.MaxMachineBytes {
			st.MaxMachineBytes = b
		}
		st.CoresetEdges = append(st.CoresetEdges, len(coresets[i]))
		st.CompositionEdges += len(coresets[i])
	}
	return ComposeMatching(g.N, coresets), st
}

// DistributedVertexCover runs the full Theorem 2 pipeline on g and returns
// the final cover and stats.
func DistributedVertexCover(g *graph.Graph, k, workers int, seed uint64) ([]graph.ID, *PipelineStats) {
	root := rng.New(seed)
	parts := partition.RandomK(g.Edges, k, root.Split(0))
	coresets := MapParts(parts, workers, func(i int, part []graph.Edge) *VCCoreset {
		return ComputeVCCoreset(g.N, k, part)
	})
	st := &PipelineStats{K: k}
	for i, p := range parts {
		st.PartEdges = append(st.PartEdges, len(p))
		b := VCCoresetSizeBytes(coresets[i])
		st.TotalCommBytes += b
		if b > st.MaxMachineBytes {
			st.MaxMachineBytes = b
		}
		st.CoresetEdges = append(st.CoresetEdges, len(coresets[i].Residual))
		st.CoresetFixed = append(st.CoresetFixed, len(coresets[i].Fixed))
		st.CompositionEdges += len(coresets[i].Residual)
	}
	return ComposeVC(g.N, coresets), st
}
