package core

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// MapParts applies f to every partition concurrently, with at most `workers`
// goroutines (0 means GOMAXPROCS), and returns the results in partition
// order. This mirrors the deployment model: one goroutine plays the role of
// one machine computing its coreset; the coordinator is the caller.
func MapParts[T any](parts [][]graph.Edge, workers int, f func(i int, part []graph.Edge) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	out := make([]T, len(parts))
	if workers <= 1 {
		for i, p := range parts {
			out[i] = f(i, p)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(i, parts[i])
			}
		}()
	}
	for i := range parts {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
