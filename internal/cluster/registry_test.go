package cluster

import (
	"context"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/diversity"
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/task"
)

// TestTaskBytesMatchRegistry pins the package's wire-byte constants to the
// registry's descriptors: the constants exist for readability in wire-level
// tests, but the registry is authoritative, and the two must never drift.
func TestTaskBytesMatchRegistry(t *testing.T) {
	for name, b := range map[string]byte{
		"matching":  taskMatching,
		"vc":        taskVC,
		"edcs":      taskEDCS,
		"diversity": taskDiversity,
	} {
		d := task.MustGet(name)
		if d.Wire != b {
			t.Errorf("task %s: registry wire 0x%02x, local const 0x%02x", name, d.Wire, b)
		}
	}
	if d := task.MustGet("edcs"); d.WireRounds != taskEDCSRounds {
		t.Errorf("edcs rounds: registry 0x%02x, local const 0x%02x", d.WireRounds, taskEDCSRounds)
	}
	// Every registered byte resolves to a human-readable name (no fallback
	// formatting), and the multi-round byte is labeled as such.
	for _, tc := range []struct {
		b    byte
		want string
	}{
		{taskMatching, "matching"},
		{taskVC, "vc"},
		{taskEDCS, "edcs"},
		{taskEDCSRounds, "edcs-rounds"},
		{taskDiversity, "diversity"},
	} {
		if got := taskName(tc.b); got != tc.want {
			t.Errorf("taskName(0x%02x) = %q, want %q", tc.b, got, tc.want)
		}
	}
	if got := taskName(0x2a); got != "task-0x2a" {
		t.Errorf("taskName(unknown) = %q", got)
	}
}

// TestDiversityParityAcrossRuntimes proves the tentpole claim: the diversity
// task was added as a package plus one registry entry, and the batch, stream
// and cluster runtimes all execute it through the descriptor with the same
// seed-parity guarantee the built-in tasks carry — deep-equal per-machine
// summaries against a per-partition oracle, and identical composed center
// sets (hence identical dispersion) across all three runtimes.
func TestDiversityParityAcrossRuntimes(t *testing.T) {
	const k = 4
	addrs := startWorkers(t, k)
	ctx := context.Background()
	d := task.MustGet("diversity")

	for seed := uint64(1); seed <= 4; seed++ {
		g := parityGraph(seed, 800, 8)
		cfg := Config{Workers: addrs, Seed: seed}
		parts := batchHashParts(g, k, seed)

		// Per-machine summaries survive the wire deep-equal to the oracle:
		// greedy centers over the partition's touched vertices.
		sums, _, err := run(ctx, stream.NewGraphSource(g), cfg, taskDiversity, edcs.Params{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, p := range parts {
			seen := make(map[graph.ID]struct{})
			for _, e := range p {
				seen[e.U] = struct{}{}
				seen[e.V] = struct{}{}
			}
			verts := make([]graph.ID, 0, len(seen))
			for v := range seen {
				verts = append(verts, v)
			}
			want := diversity.Centers(verts, diversity.DefaultK)
			if !reflect.DeepEqual(sums[i].Verts, want) {
				t.Fatalf("seed %d machine %d: cluster centers %v differ from oracle %v", seed, i, sums[i].Verts, want)
			}
			if sums[i].Edges != len(p) {
				t.Fatalf("seed %d machine %d: worker received %d edges, oracle part has %d", seed, i, sums[i].Edges, len(p))
			}
			if sums[i].Stored != len(seen) {
				t.Fatalf("seed %d machine %d: stored %d, distinct vertices %d", seed, i, sums[i].Stored, len(seen))
			}
		}

		// Composed solutions agree across batch, stream and cluster.
		bsol, _ := d.Batch(g, k, 0, seed, task.Params{})
		ssol, sst, err := stream.Solve(ctx, stream.NewGraphSource(g), stream.Config{K: k, Seed: seed}, d, task.Params{})
		if err != nil {
			t.Fatalf("seed %d stream: %v", seed, err)
		}
		csol, cst, err := Solve(ctx, stream.NewGraphSource(g), cfg, d, task.Params{})
		if err != nil {
			t.Fatalf("seed %d cluster: %v", seed, err)
		}
		if !reflect.DeepEqual(bsol.Verts, ssol.Verts) || !reflect.DeepEqual(ssol.Verts, csol.Verts) {
			t.Fatalf("seed %d: composed centers diverge:\nbatch   %v\nstream  %v\ncluster %v",
				seed, bsol.Verts, ssol.Verts, csol.Verts)
		}
		if bsol.Size != ssol.Size || ssol.Size != csol.Size {
			t.Fatalf("seed %d: dispersion diverges: batch %d stream %d cluster %d", seed, bsol.Size, ssol.Size, csol.Size)
		}
		if want := diversity.Dispersion(csol.Verts); csol.Size != want {
			t.Fatalf("seed %d: reported dispersion %d, recomputed %d", seed, csol.Size, want)
		}
		if err := diversity.Verify(g.N, csol.Verts); err != nil {
			t.Fatalf("seed %d: composed centers invalid: %v", seed, err)
		}
		checkMeasuredBytes(t, cst, sst.TotalCommBytes)
	}
}

// TestUnknownTaskHelloTyped: an unknown task byte in HELLO decodes to the
// typed *UnknownTaskError naming the byte and the registry's known range,
// classified as a protocol failure (not retryable).
func TestUnknownTaskHelloTyped(t *testing.T) {
	_, err := decodeHello(encodeHello(hello{version: protocolVersion, task: 0x09, k: 1}))
	var ute *UnknownTaskError
	if !errors.As(err, &ute) {
		t.Fatalf("err = %v (%T), want *UnknownTaskError", err, err)
	}
	if ute.Task != 0x09 {
		t.Fatalf("Task = 0x%02x, want 0x09", ute.Task)
	}
	if ute.Known != task.WireRange() {
		t.Fatalf("Known = %q, want the registry range %q", ute.Known, task.WireRange())
	}
	if ute.Kind() != KindProtocol {
		t.Fatalf("Kind = %v, want KindProtocol", ute.Kind())
	}
	want := "cluster: unknown task 0x09 (known tasks 0x01, 0x02, 0x03, 0x04, 0x05)"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// TestUnknownTaskHelloWire: a worker answers a HELLO carrying an unknown
// task byte with an ERROR frame that names the byte and the known range —
// the coordinator-side operator sees which side is out of date.
func TestUnknownTaskHelloWire(t *testing.T) {
	addrs, shutdown, err := ServeLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h := hello{version: protocolVersion, task: 0x7f, k: 1}
	if _, err := writeFrame(conn, frameHello, encodeHello(h)); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameError {
		t.Fatalf("got frame 0x%02x, want ERROR", typ)
	}
	msg := string(payload)
	if !strings.Contains(msg, "unknown task 0x7f") || !strings.Contains(msg, "known tasks") {
		t.Fatalf("ERROR payload %q does not name the byte and the known range", msg)
	}
}

// FuzzDiversityCodec: the diversity CORESET body decoder must never panic on
// arbitrary bytes, and anything it accepts must re-encode canonically (decode
// → encode → decode is a fixpoint).
func FuzzDiversityCodec(f *testing.F) {
	d := task.MustGet("diversity")
	b := d.NewBuilder(2, 100, task.Params{})
	b.Add(graph.Edge{U: 1, V: 99})
	b.Add(graph.Edge{U: 4, V: 57})
	s := b.Finish(100)
	s.Edges = 2
	f.Add(appendSummary(nil, taskDiversity, s))
	f.Add(appendSummary(nil, taskDiversity, stream.Summary{}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		sum, err := decodeSummary(taskDiversity, data)
		if err != nil {
			return
		}
		re := appendSummary(nil, taskDiversity, sum)
		got, err := decodeSummary(taskDiversity, re)
		if err != nil {
			t.Fatalf("re-decode of a re-encoded summary failed: %v", err)
		}
		if !reflect.DeepEqual(got, sum) {
			t.Fatalf("decode/encode not a fixpoint:\n got %+v\nwant %+v", got, sum)
		}
	})
}
