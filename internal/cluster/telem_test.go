package cluster

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stream"
)

// TestTelemCodec: the TELEM payload round-trips field-for-field, and the
// strict decoder rejects both truncation and trailing garbage — the two ways
// a corrupt frame can still be a parseable prefix.
func TestTelemCodec(t *testing.T) {
	want := workerTelem{
		decodeNS: 1_500_000, buildNS: 92_000_000, encodeNS: 310_000,
		edgesIn: 4096, repairIters: 17, removals: 9, peakCoreset: 801,
	}
	full := appendTelem(nil, want)
	got, err := decodeTelem(full)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	for i := 1; i < len(full); i++ {
		if _, err := decodeTelem(full[:i]); err == nil {
			t.Fatalf("truncated TELEM (%d of %d bytes) accepted", i, len(full))
		}
	}
	if _, err := decodeTelem(append(full, 0x00)); err == nil {
		t.Fatal("trailing bytes after TELEM accepted")
	}
	// The fold into the report schema converts nanoseconds to milliseconds.
	ms := want.machineStats(3)
	if ms.Machine != 3 || ms.BuildMS != 92 || ms.EdgesIn != 4096 || ms.PeakCoreset != 801 {
		t.Fatalf("machineStats fold: %+v", ms)
	}
}

// legacyWorker emulates a pre-telemetry worker: a valid handshake with the
// old one-byte ACK (no capability bits), the telemetry request in HELLO
// ignored, and EOS answered with a bare CORESET — no TELEM frame. The HELLO
// it decoded lands in sawHello so the test can assert what the coordinator
// asked for.
func legacyWorker(t *testing.T, sawHello chan<- hello) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		typ, payload, _, err := readFrame(conn)
		if err != nil || typ != frameHello {
			return
		}
		h, err := decodeHello(payload)
		if err != nil {
			return
		}
		sawHello <- h
		if _, err := writeFrame(conn, frameAck, []byte{protocolVersion}); err != nil {
			return
		}
		var edges []graph.Edge
		for {
			typ, payload, _, err := readFrame(conn)
			if err != nil {
				return
			}
			if typ == frameEOS {
				break
			}
			batch, _, err := graph.DecodeEdgeBatch(payload)
			if err != nil {
				return
			}
			edges = append(edges, batch...)
		}
		sum := stream.Summary{Edges: len(edges), Stored: len(edges), Coreset: edges}
		_, _ = writeFrame(conn, frameCoreset, appendSummary(nil, taskMatching, sum))
	}()
	return ln.Addr().String()
}

// TestBareCoresetTolerated: a mixed fleet — one telemetry-capable worker, one
// legacy worker that never sends TELEM — must complete, with the legacy
// machine's MachineStats entry present but zeroed in its phase fields. The
// capability is negotiated, never assumed.
func TestBareCoresetTolerated(t *testing.T) {
	capable := startWorkers(t, 1)
	sawHello := make(chan hello, 1)
	legacy := legacyWorker(t, sawHello)

	g := gen.GNP(1500, 12.0/1500, rng.New(51))
	cfg := Config{Workers: []string{capable[0], legacy}, Seed: 51, BatchSize: 64, RunID: "r-telmtest"}
	var sums []stream.Summary
	var st *Stats
	err := runWithTimeout(t, 30*time.Second, func() error {
		var err error
		sums, st, err = run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
		return err
	})
	if err != nil {
		t.Fatalf("mixed fleet run failed: %v", err)
	}

	// The coordinator always asks: the legacy worker saw the telemetry bit
	// and the run ID, and simply did not reciprocate.
	h := <-sawHello
	if !h.telem || h.runID != cfg.RunID {
		t.Fatalf("legacy worker saw telem=%v runID=%q, want telem=true runID=%q", h.telem, h.runID, cfg.RunID)
	}

	if len(st.MachineStats) != 2 {
		t.Fatalf("MachineStats has %d entries, want one per machine", len(st.MachineStats))
	}
	cap0, leg1 := st.MachineStats[0], st.MachineStats[1]
	if cap0.DecodeMS+cap0.BuildMS+cap0.EncodeMS <= 0 {
		t.Errorf("capable machine reported no phase time: %+v", cap0)
	}
	if cap0.EdgesIn != sums[0].Edges {
		t.Errorf("capable machine EdgesIn = %d, want its summary's %d", cap0.EdgesIn, sums[0].Edges)
	}
	if leg1.DecodeMS != 0 || leg1.BuildMS != 0 || leg1.EncodeMS != 0 || leg1.RepairIters != 0 || leg1.PeakCoreset != 0 {
		t.Errorf("legacy machine has nonzero phase telemetry: %+v", leg1)
	}
	// Edge accounting still comes from the CORESET summary, TELEM or not.
	if leg1.Machine != 1 || leg1.EdgesIn != sums[1].Edges || sums[1].Edges == 0 {
		t.Errorf("legacy machine entry = %+v, want EdgesIn = %d > 0", leg1, sums[1].Edges)
	}
}

// telemCorruptingWorker speaks a full valid run but answers EOS with a TELEM
// frame carrying the given payload (then a well-formed CORESET, which the
// coordinator must never reach).
func telemCorruptingWorker(t *testing.T, telemPayload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if typ, _, _, err := readFrame(conn); err != nil || typ != frameHello {
					return
				}
				if _, err := writeFrame(conn, frameAck, []byte{protocolVersion, ackCapTelem}); err != nil {
					return
				}
				for {
					typ, _, _, err := readFrame(conn)
					if err != nil {
						return
					}
					if typ == frameEOS {
						break
					}
				}
				if _, err := writeFrame(conn, frameTelem, telemPayload); err != nil {
					return
				}
				sum := stream.Summary{Coreset: []graph.Edge{}}
				_, _ = writeFrame(conn, frameCoreset, appendSummary(nil, taskMatching, sum))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestCorruptTelemIsTerminal: a garbled TELEM frame — truncated mid-field or
// carrying trailing bytes — must fail the run as KindProtocol, non-retryable,
// even when the run is configured for replay: a peer that corrupts telemetry
// cannot be trusted about the coreset, and replaying it would fail
// identically.
func TestCorruptTelemIsTerminal(t *testing.T) {
	full := appendTelem(nil, workerTelem{decodeNS: 1, buildNS: 2, encodeNS: 3, edgesIn: 4})
	for name, payload := range map[string][]byte{
		"truncated":     full[:3],
		"trailing-junk": append(append([]byte{}, full...), 0x07),
		"empty-payload": {},
	} {
		t.Run(name, func(t *testing.T) {
			healthy := startWorkers(t, 1)
			corrupt := telemCorruptingWorker(t, payload)
			g := gen.GNP(800, 0.01, rng.New(57))
			cfg := Config{
				Workers: []string{healthy[0], corrupt},
				Seed:    57, BatchSize: 64,
				MaxRetries: 2, RetryBackoff: time.Millisecond, // replay armed, must not fire
			}
			err := runWithTimeout(t, 30*time.Second, func() error {
				_, _, err := run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
				return err
			})
			var we *WorkerError
			if !errors.As(err, &we) {
				t.Fatalf("err = %v, want *WorkerError", err)
			}
			if we.Machine != 1 || we.Kind != KindProtocol || we.Retryable {
				t.Fatalf("corrupt TELEM classified machine=%d kind=%s retryable=%v, want machine 1 protocol terminal",
					we.Machine, we.Kind, we.Retryable)
			}
			if errors.Is(err, ErrRetriesExhausted) {
				t.Fatalf("err = %v: replay was attempted on a protocol failure", err)
			}
		})
	}
}

// TestReplayedMachineTelemetry: a machine lost after EOS (its answer never
// arrives) recovers via replay, and its MachineStats entry describes the
// REPLACEMENT attempt — real phase times, full edge count, Replayed flag set
// — never a zeroed or partial record from the failed attempt.
func TestReplayedMachineTelemetry(t *testing.T) {
	backends := startWorkers(t, 2)
	proxyAddr, closeProxy := flakyProxy(t, backends[1], []proxyPlan{{dropAfterEOS: true}, {}})
	t.Cleanup(closeProxy)

	g := gen.GNP(2000, 16.0/2000, rng.New(53))
	cfg := Config{
		Workers: []string{backends[0], proxyAddr},
		Seed:    53, BatchSize: 64,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	}
	var sums []stream.Summary
	var st *Stats
	err := runWithTimeout(t, 30*time.Second, func() error {
		var err error
		sums, st, err = run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
		return err
	})
	if err != nil {
		t.Fatalf("replay did not recover: %v", err)
	}
	if !reflect.DeepEqual(st.ReplayedMachines, []int{1}) {
		t.Fatalf("ReplayedMachines = %v, want [1]", st.ReplayedMachines)
	}
	if len(st.MachineStats) != 2 {
		t.Fatalf("MachineStats has %d entries, want one per machine including the replayed one", len(st.MachineStats))
	}
	if st.MachineStats[0].Replayed {
		t.Errorf("healthy machine 0 marked replayed: %+v", st.MachineStats[0])
	}
	ms := st.MachineStats[1]
	if !ms.Replayed {
		t.Errorf("replayed machine 1 not marked: %+v", ms)
	}
	if ms.DecodeMS+ms.BuildMS+ms.EncodeMS <= 0 {
		t.Errorf("replayed machine has no phase telemetry (replacement attempt's TELEM lost): %+v", ms)
	}
	// The replacement processed the full shard: its telemetry must account
	// for every edge the machine's summary reports, not a prefix from the
	// aborted first attempt.
	if ms.EdgesIn != sums[1].Edges || ms.EdgesIn == 0 {
		t.Errorf("replayed machine EdgesIn = %d, want its summary's %d > 0", ms.EdgesIn, sums[1].Edges)
	}
}
