package cluster

import (
	"context"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/task"
)

// storeDataset writes g into a dataset with small segments, asserting the
// resulting layout actually exercises the disk path: many segments, each far
// smaller than the full edge list.
func storeDataset(t *testing.T, g *graph.Graph, segEdges int) *dataset.Dataset {
	t.Helper()
	dir := t.TempDir()
	b, err := dataset.NewBuilder(dir, dataset.IngestOptions{SegmentEdges: segEdges})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(g.Edges...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(g.N, "acceptance", 0, 0); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// budgetFor returns the smallest per-segment resident budget that lets d
// stream (the largest encoded segment), and asserts that budget is a genuine
// constraint: strictly below the dataset's total edge bytes.
func budgetFor(t *testing.T, d *dataset.Dataset) int {
	t.Helper()
	man := d.Manifest()
	maxSeg := 0
	for _, s := range man.Segments {
		if s.Length > maxSeg {
			maxSeg = s.Length
		}
	}
	if int64(maxSeg) >= man.Bytes {
		t.Fatalf("budget %d is not below total edge bytes %d; the dataset is too small to prove streaming", maxSeg, man.Bytes)
	}
	return maxSeg
}

// budgeted returns a fresh source over d with the enforced resident budget.
func budgeted(d *dataset.Dataset, budget int) *stream.DatasetSource {
	src := stream.NewDatasetSource(d)
	src.MaxResidentBytes = budget
	return src
}

// TestDatasetStreamsUnderBudgetAllRuntimes is the data-plane acceptance
// test: a stored dataset whose edge bytes exceed an enforced in-memory
// budget must stream through the batch, stream and cluster runtimes and
// produce coresets deep-equal to the in-memory oracle.
func TestDatasetStreamsUnderBudgetAllRuntimes(t *testing.T) {
	g := gen.GNP(3000, 20.0/3000, rng.New(17))
	d := storeDataset(t, g, 512)
	budget := budgetFor(t, d)
	const k = 3
	const seed = uint64(17)

	// In-memory oracle: the streaming pipeline over the materialized slice.
	oracle, _, err := stream.Summaries(context.Background(),
		stream.NewGraphSource(g), stream.Config{K: k, Seed: seed, BatchSize: 64}, task.MustGet("matching"), task.Params{})
	if err != nil {
		t.Fatal(err)
	}

	// Stream runtime, straight off disk under the budget.
	src := budgeted(d, budget)
	got, _, err := stream.Summaries(context.Background(),
		src, stream.Config{K: k, Seed: seed, BatchSize: 64}, task.MustGet("matching"), task.Params{})
	if err != nil {
		t.Fatal(err)
	}
	assertSummariesEqual(t, got, oracle)
	if src.PeakResidentBytes() > budget {
		t.Fatalf("stream run held %d bytes resident, budget %d", src.PeakResidentBytes(), budget)
	}

	// Batch runtime: materialize partitions from a second budgeted pass and
	// build each machine's coreset the batch way; they must match the oracle
	// machine for machine.
	edges := drainBudgeted(t, d, budget)
	if !reflect.DeepEqual(edges, []graph.Edge(g.Edges)) {
		t.Fatal("dataset pass differs from the in-memory edge list")
	}
	parts := partition.ByAssignment(edges, k, partition.HashAssignAll(edges, k, seed))
	for m, part := range parts {
		coreset := task.MustGet("matching").NewBuilder(k, g.N, task.Params{})
		for _, e := range part {
			coreset.Add(e)
		}
		if sum := coreset.Finish(g.N); !reflect.DeepEqual(sum.Coreset, oracle[m].Coreset) {
			t.Fatalf("batch machine %d coreset diverged from the oracle", m)
		}
	}

	// Cluster runtime, single round, fed from disk under the budget.
	backends := startWorkers(t, k)
	csrc := budgeted(d, budget)
	var csums []stream.Summary
	err = runWithTimeout(t, 30*time.Second, func() error {
		var err error
		csums, _, err = run(context.Background(), csrc,
			Config{Workers: backends, Seed: seed, BatchSize: 64}, taskMatching, edcs.Params{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSummariesEqual(t, csums, oracle)
	if csrc.PeakResidentBytes() > budget {
		t.Fatalf("cluster run held %d bytes resident, budget %d", csrc.PeakResidentBytes(), budget)
	}
}

// TestDatasetClusterRoundsWithReplay closes the acceptance loop: a
// multi-round (rounds >= 2) cluster session whose round-0 input is the
// budgeted on-disk dataset, with machine 1's connection killed mid-shard so
// round 0 MUST replay — replay restarts the DatasetSource (a segment seek)
// and the final coresets stay deep-equal to the all-in-memory oracle.
func TestDatasetClusterRoundsWithReplay(t *testing.T) {
	g := gen.GNP(1200, 24.0/1200, rng.New(23))
	d := storeDataset(t, g, 256)
	budget := budgetFor(t, d)

	backends := startWorkers(t, 2)
	// Connection 0 dies on its second SHARD frame (mid round 0); each
	// replacement serves one CORESET and dies, forcing a replay every round.
	proxyAddr, closeProxy := flakyProxy(t, backends[1],
		[]proxyPlan{{dropAfterFrames: 2}, {dropAfterCoreset: 1}})
	t.Cleanup(closeProxy)

	const rounds = 2
	p := edcs.ParamsForBeta(16)
	sess, err := DialEDCSRounds(context.Background(), Config{
		Workers:      []string{backends[0], proxyAddr},
		BatchSize:    64,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}, p, rounds, g.N)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Round r's oracle input: round 0 is the full graph, later rounds the
	// union of the previous round's coresets — exactly internal/rounds.
	oracleInput := []graph.Edge(g.Edges)
	for r := 0; r < rounds; r++ {
		seed := uint64(40 + r)
		var src stream.EdgeSource
		var dsrc *stream.DatasetSource
		if r == 0 {
			dsrc = budgeted(d, budget)
			src = dsrc
		} else {
			src = stream.NewSliceSource(g.N, oracleInput)
		}
		var sums []stream.Summary
		var st *Stats
		err := runWithTimeout(t, 30*time.Second, func() error {
			var err error
			sums, st, err = sess.Round(context.Background(), src, 2, seed)
			return err
		})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if st.Retries < 1 || !reflect.DeepEqual(st.ReplayedMachines, []int{1}) {
			t.Fatalf("round %d: Retries=%d ReplayedMachines=%v, want a machine-1 replay", r, st.Retries, st.ReplayedMachines)
		}
		if dsrc != nil && dsrc.PeakResidentBytes() > budget {
			t.Fatalf("round %d held %d bytes resident, budget %d", r, dsrc.PeakResidentBytes(), budget)
		}

		want, _, err := stream.EDCSSummaries(context.Background(),
			stream.NewSliceSource(g.N, oracleInput), stream.Config{K: 2, Seed: seed, BatchSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSummariesEqual(t, sums, want)

		oracleInput = nil
		for _, s := range sums {
			oracleInput = append(oracleInput, s.Coreset...)
		}
	}
}

// drainBudgeted materializes every edge of d through a budgeted source.
func drainBudgeted(t *testing.T, d *dataset.Dataset, budget int) []graph.Edge {
	t.Helper()
	src := budgeted(d, budget)
	var all []graph.Edge
	buf := make([]graph.Edge, 256)
	for {
		c, err := src.Next(buf)
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, buf[:c]...)
	}
}
