package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/task"
)

// Wire protocol. Every message is one frame:
//
//	[1 byte type][4 bytes big-endian payload length][payload]
//
// A run-assignment is one TCP connection speaking a fixed sequence:
//
//	coordinator -> worker   HELLO      task, machine index, k, optional n
//	                                   (+ EDCS degree constraints for task edcs)
//	                                   (+ run ID when telemetry is requested)
//	worker -> coordinator   ACK        protocol version echo + capability byte
//	coordinator -> worker   SHARD*     varint delta edge batch (graph codec)
//	coordinator -> worker   EOS        final vertex count
//	worker -> coordinator   TELEM      phase timings + build counters (optional)
//	worker -> coordinator   CORESET    per-machine stats + coreset message
//
// TELEM is capability-negotiated, no version bump: the coordinator sets the
// telemetry bit in the HELLO flag byte (and appends its run ID, which old
// workers ignore as trailing bytes), and a capable worker both echoes the
// capability in its ACK and emits one TELEM frame immediately before each
// CORESET. A coordinator reading from an old worker sees a bare CORESET and
// records zeroed phase telemetry for that machine; an old coordinator never
// sets the bit, so it never sees a TELEM frame. TELEM bytes are deliberately
// excluded from the coreset communication accounting (TotalCommBytes) — they
// are measurement overhead, not algorithm traffic — and are tracked under
// their own metric instead.
//
// A multi-round assignment (task taskEDCSRounds) repeats the
// SHARD*/EOS/CORESET round on the same connection up to the HELLO's round
// cap — one HELLO per run, not per round — and ends when the coordinator
// closes the connection at a round boundary.
//
// Retry is a re-handshake, not a frame: workers are stateless across
// connections, so a coordinator replaying a lost round simply dials again
// and speaks a fresh HELLO for the same machine index (for a multi-round
// assignment, with the rounds field reduced to the rounds still owed,
// current round included). The frame set is unchanged and no version bump
// is needed; a pre-replay worker serves a replayed round exactly like a
// fresh run.
//
// Either side may substitute ERROR (UTF-8 message) for its next frame and
// close. Edge batches and coreset bodies use graph.AppendEdgeBatch — the
// same codec the simulated accounting charges — so a measured CORESET
// payload and core.CoresetSizeBytes are the same function of the edge list,
// and the measured number exceeds the estimate only by the frame header and
// the per-machine stats varints.

const protocolVersion = 1

// Frame types.
const (
	frameHello byte = iota + 1
	frameAck
	frameShard
	frameEOS
	frameCoreset
	frameError
	frameTelem
)

// HELLO flag bits (byte 2 of the payload). Old peers wrote 0x00/0x01 for the
// known-n boolean, so bit 0 keeps that meaning and bit 1 is the telemetry
// capability request.
const (
	helloFlagKnown byte = 1 << 0
	helloFlagTelem byte = 1 << 1
)

// ACK capability bits. A pre-telemetry worker sends a 1-byte ACK (version
// only), which the coordinator reads as "no capabilities".
const ackCapTelem byte = 1 << 0

// maxRunIDLen bounds the run ID a worker accepts in HELLO; run IDs here are
// "r-%08x" (10 bytes), so the cap exists purely against hostile frames.
const maxRunIDLen = 128

// Task bytes carried in HELLO. The authoritative byte assignments live in
// the task registry (internal/task): Descriptor.Wire is the HELLO task byte
// and Descriptor.WireRounds its multi-round variant, and both encodeHello
// and decodeHello dispatch through task.ByWire rather than a task switch.
// The constants below are the registry's values restated for this package's
// own call sites and tests; TestTaskBytesMatchRegistry pins the two in sync.
// A task byte extends the HELLO payload per its descriptor's capabilities
// (UsesBeta appends the two EDCS degree constraints; a WireRounds byte
// additionally carries the round cap); peers that predate a byte reject the
// unknown task, so no protocol version bump is needed. A multi-round
// assignment (taskEDCSRounds) speaks up to the round cap's SHARD*/EOS
// rounds — with a fresh machine per round — instead of exactly one; the
// coordinator ends the run early by closing the connection at a round
// boundary, which the worker treats as a clean end (the early exit fires
// when the union stops shrinking, so the worker cannot know the final round
// count upfront).
const (
	taskMatching   byte = 1
	taskVC         byte = 2
	taskEDCS       byte = 3
	taskEDCSRounds byte = 4
	taskDiversity  byte = 5
)

// taskName returns a task byte's human name for logs and trace spans.
func taskName(tb byte) string {
	if d, multiRound, ok := task.ByWire(tb); ok {
		if multiRound {
			return d.Name + "-rounds"
		}
		return d.Name
	}
	return fmt.Sprintf("task-0x%02x", tb)
}

// UnknownTaskError is the typed rejection for a HELLO (or CORESET) carrying
// a task byte the task registry does not know. It names the offending byte
// and the registry's known bytes, so a version-skewed peer's operator can
// see at a glance whether the byte is from a newer task or plain corruption.
type UnknownTaskError struct {
	Task  byte   // the unknown task byte
	Known string // the registry's known wire bytes, e.g. "0x01, 0x02, 0x03, 0x04, 0x05"
}

func (e *UnknownTaskError) Error() string {
	return fmt.Sprintf("cluster: unknown task 0x%02x (known tasks %s)", e.Task, e.Known)
}

// Kind classifies the failure: a protocol violation, never retryable (a
// deterministic replay would present the same byte).
func (e *UnknownTaskError) Kind() FailureKind { return KindProtocol }

// maxFramePayload bounds a single frame so a corrupt or hostile peer cannot
// make the receiver allocate without bound. 64 MiB is far above any batch or
// coreset message in this repository (coresets are O~(n) edges).
const maxFramePayload = 1 << 26

// maxVertices bounds the vertex counts a worker accepts in HELLO and EOS
// frames. Per-machine VC state is O(n), so an unvalidated count would be the
// one allocation the frame-size limit cannot catch. Matches the service
// layer's MaxGraphN.
const maxVertices = 1 << 28

// maxK bounds the machine count in HELLO; far above any deployment here.
const maxK = 1 << 20

// maxWireRounds bounds the round cap a worker accepts in a taskEDCSRounds
// HELLO. The paper's schedule needs O(log log n) rounds, so anything near
// this cap is already nonsense; it exists so a corrupt frame cannot promise
// an absurd run length.
const maxWireRounds = 1 << 10

const frameHeaderLen = 5

// writeFrame writes one frame and returns the exact bytes put on the wire.
func writeFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	if len(payload) > maxFramePayload {
		return 0, fmt.Errorf("cluster: frame payload %d exceeds limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return frameHeaderLen, err
	}
	return frameHeaderLen + len(payload), nil
}

// writeFrameDeadline writes one frame under a per-frame write deadline
// (0 disables the deadline). Every coordinator-side frame write goes
// through it, so a worker that stops draining its connection surfaces as a
// timeout instead of a hang.
func writeFrameDeadline(conn net.Conn, d time.Duration, typ byte, payload []byte) (int, error) {
	if d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	return writeFrame(conn, typ, payload)
}

// readFrameDeadline reads one frame under a per-frame read deadline
// (0 disables the deadline).
func readFrameDeadline(conn net.Conn, d time.Duration) (typ byte, payload []byte, n int, err error) {
	if d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	return readFrame(conn)
}

// readFrame reads one frame and returns its type, payload and total wire
// size (header included).
func readFrame(r io.Reader) (typ byte, payload []byte, n int, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	size := binary.BigEndian.Uint32(hdr[1:])
	if size > maxFramePayload {
		return 0, nil, 0, fmt.Errorf("cluster: frame payload %d exceeds limit", size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("cluster: truncated frame: %w", err)
	}
	return hdr[0], payload, frameHeaderLen + int(size), nil
}

// hello is the HELLO payload: which machine of which kind of run this
// connection carries. EDCS runs additionally carry the degree constraints,
// so the worker builds the identical machine the in-process runtime would.
type hello struct {
	version byte
	task    byte
	machine int
	k       int
	known   bool // vertex count declared upfront (enables online peeling)
	n       int
	edcs    edcs.Params // taskEDCS and taskEDCSRounds
	rounds  int         // taskEDCSRounds only: round cap for this run (>= 1)
	telem   bool        // request per-round TELEM frames from the worker
	runID   string      // coordinator's trace run ID (sent iff telem)
}

func encodeHello(h hello) []byte {
	buf := []byte{h.version, h.task, 0}
	if h.known {
		buf[2] |= helloFlagKnown
	}
	if h.telem {
		buf[2] |= helloFlagTelem
	}
	buf = binary.AppendUvarint(buf, uint64(h.machine))
	buf = binary.AppendUvarint(buf, uint64(h.k))
	buf = binary.AppendUvarint(buf, uint64(h.n))
	if d, multiRound, ok := task.ByWire(h.task); ok {
		if d.UsesBeta {
			buf = binary.AppendUvarint(buf, uint64(h.edcs.Beta))
			buf = binary.AppendUvarint(buf, uint64(h.edcs.BetaMinus))
		}
		if multiRound {
			buf = binary.AppendUvarint(buf, uint64(h.rounds))
		}
	}
	if h.telem {
		// Length-prefixed run ID at the tail: a pre-telemetry worker stops
		// parsing before it and ignores the trailing bytes.
		buf = binary.AppendUvarint(buf, uint64(len(h.runID)))
		buf = append(buf, h.runID...)
	}
	return buf
}

func decodeHello(data []byte) (hello, error) {
	var h hello
	if len(data) < 3 {
		return h, fmt.Errorf("cluster: short HELLO")
	}
	h.version, h.task = data[0], data[1]
	h.known = data[2]&helloFlagKnown != 0
	h.telem = data[2]&helloFlagTelem != 0
	data = data[3:]
	uvarint := func() (uint64, error) {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return 0, fmt.Errorf("cluster: corrupt HELLO")
		}
		data = data[k:]
		return v, nil
	}
	vals := make([]uint64, 3)
	for i := range vals {
		v, err := uvarint()
		if err != nil {
			return h, err
		}
		vals[i] = v
	}
	h.machine, h.k, h.n = int(vals[0]), int(vals[1]), int(vals[2])
	if h.version != protocolVersion {
		return h, fmt.Errorf("cluster: protocol version %d, want %d", h.version, protocolVersion)
	}
	d, multiRound, ok := task.ByWire(h.task)
	if !ok {
		return h, &UnknownTaskError{Task: h.task, Known: task.WireRange()}
	}
	if d.UsesBeta {
		beta, err := uvarint()
		if err != nil {
			return h, err
		}
		betaMinus, err := uvarint()
		if err != nil {
			return h, err
		}
		if beta > edcs.MaxBeta {
			return h, fmt.Errorf("cluster: EDCS beta %d exceeds the cap of %d", beta, edcs.MaxBeta)
		}
		h.edcs = edcs.Params{Beta: int(beta), BetaMinus: int(betaMinus)}
		if err := h.edcs.Validate(); err != nil {
			return h, err
		}
	}
	if multiRound {
		rounds, err := uvarint()
		if err != nil {
			return h, err
		}
		if rounds < 1 || rounds > maxWireRounds {
			return h, fmt.Errorf("cluster: round cap %d outside [1, %d]", rounds, maxWireRounds)
		}
		h.rounds = int(rounds)
	}
	if h.k <= 0 || h.k > maxK || h.machine < 0 || h.machine >= h.k {
		return h, fmt.Errorf("cluster: machine %d of k=%d out of range", h.machine, h.k)
	}
	if h.n < 0 || h.n > maxVertices {
		return h, fmt.Errorf("cluster: vertex count %d exceeds the cap of %d", h.n, maxVertices)
	}
	if h.telem {
		idLen, err := uvarint()
		if err != nil {
			return h, err
		}
		if idLen > maxRunIDLen {
			return h, fmt.Errorf("cluster: run ID length %d exceeds the cap of %d", idLen, maxRunIDLen)
		}
		if uint64(len(data)) < idLen {
			return h, fmt.Errorf("cluster: truncated HELLO run ID")
		}
		h.runID = string(data[:idLen])
	}
	return h, nil
}

// workerTelem is the TELEM payload: the worker's phase wall times (its own
// clock, nanoseconds) and build counters for one round. The counters are a
// pure function of the machine's shard, so they are seed-deterministic even
// though the times are not.
type workerTelem struct {
	decodeNS    uint64 // shard frame decode
	buildNS     uint64 // insert + repair
	encodeNS    uint64 // finish + coreset encode
	edgesIn     int    // edges ingested this round
	repairIters int    // EDCS fixpoint rescans (0 for matching/vc)
	removals    int    // EDCS H evictions (0 for matching/vc)
	peakCoreset int    // peak |H| (0 for matching/vc)
}

func appendTelem(dst []byte, t workerTelem) []byte {
	dst = binary.AppendUvarint(dst, t.decodeNS)
	dst = binary.AppendUvarint(dst, t.buildNS)
	dst = binary.AppendUvarint(dst, t.encodeNS)
	dst = binary.AppendUvarint(dst, uint64(t.edgesIn))
	dst = binary.AppendUvarint(dst, uint64(t.repairIters))
	dst = binary.AppendUvarint(dst, uint64(t.removals))
	dst = binary.AppendUvarint(dst, uint64(t.peakCoreset))
	return dst
}

// decodeTelem parses a TELEM payload strictly: a truncated field or trailing
// garbage is a protocol error (the caller classifies it KindProtocol — a
// peer that corrupts telemetry cannot be trusted about the coreset either).
func decodeTelem(data []byte) (workerTelem, error) {
	var t workerTelem
	vals := make([]uint64, 7)
	for i := range vals {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return t, fmt.Errorf("cluster: corrupt TELEM payload")
		}
		vals[i], data = v, data[k:]
	}
	if len(data) != 0 {
		return t, fmt.Errorf("cluster: %d trailing bytes after TELEM", len(data))
	}
	t.decodeNS, t.buildNS, t.encodeNS = vals[0], vals[1], vals[2]
	t.edgesIn = int(vals[3])
	t.repairIters, t.removals, t.peakCoreset = int(vals[4]), int(vals[5]), int(vals[6])
	return t, nil
}

// machineStats folds a TELEM payload into the report schema for machine m.
func (t workerTelem) machineStats(m int) graph.MachineStats {
	return graph.MachineStats{
		Machine:     m,
		DecodeMS:    float64(t.decodeNS) / 1e6,
		BuildMS:     float64(t.buildNS) / 1e6,
		EncodeMS:    float64(t.encodeNS) / 1e6,
		EdgesIn:     t.edgesIn,
		RepairIters: t.repairIters,
		Removals:    t.removals,
		PeakCoreset: t.peakCoreset,
	}
}

// appendSummary encodes a machine's end-of-stream summary as the CORESET
// payload for task byte tb: uvarint received/stored/live stats, then the
// descriptor's coreset body. The actual codec lives with the descriptor
// (task.AppendSummary); this wrapper only resolves the wire byte.
func appendSummary(dst []byte, tb byte, s stream.Summary) []byte {
	d, _, ok := task.ByWire(tb)
	if !ok {
		// Only reachable with a task byte that already passed decodeHello.
		panic((&UnknownTaskError{Task: tb, Known: task.WireRange()}).Error())
	}
	return task.AppendSummary(dst, d, s)
}

// decodeSummary reconstructs a stream.Summary from a CORESET payload. The
// result is field-for-field identical to what the worker's Machine.Finish
// returned — including nil-versus-empty slice shapes, which the seed-parity
// guarantee (cluster coresets deep-equal in-process ones) depends on. The
// codec is the descriptor's (task.DecodeSummary); this wrapper resolves the
// wire byte.
func decodeSummary(tb byte, data []byte) (stream.Summary, error) {
	d, _, ok := task.ByWire(tb)
	if !ok {
		return stream.Summary{}, &UnknownTaskError{Task: tb, Known: task.WireRange()}
	}
	return task.DecodeSummary(d, data)
}
