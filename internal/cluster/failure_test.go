package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stream"
)

// runWithTimeout guards against the exact failure mode these tests exist
// for: a coordinator that hangs instead of surfacing an error.
func runWithTimeout(t *testing.T, d time.Duration, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatal("coordinator hung")
		return nil
	}
}

// crashingWorker accepts one connection, speaks a valid handshake, consumes
// nFrames frames and then drops the connection — a worker crash mid-shard.
func crashingWorker(t *testing.T, nFrames int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if typ, _, _, err := readFrame(conn); err != nil || typ != frameHello {
			return
		}
		if _, err := writeFrame(conn, frameAck, []byte{protocolVersion}); err != nil {
			return
		}
		for i := 0; i < nFrames; i++ {
			if _, _, _, err := readFrame(conn); err != nil {
				return
			}
		}
		// Crash: vanish without CORESET or ERROR.
	}()
	return ln.Addr().String()
}

// TestWorkerCrashMidShard: a worker that dies mid-run must surface as a
// typed *WorkerError at the coordinator — no hang, no partial compose.
func TestWorkerCrashMidShard(t *testing.T) {
	healthy := startWorkers(t, 2)
	crash := crashingWorker(t, 1)
	g := gen.GNP(3000, 20.0/3000, rng.New(1))
	err := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := Matching(context.Background(), stream.NewGraphSource(g),
			Config{Workers: []string{healthy[0], crash, healthy[1]}, Seed: 1, BatchSize: 64})
		return err
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if we.Machine != 1 {
		t.Fatalf("failure attributed to machine %d, want 1", we.Machine)
	}
}

// TestDialFailure: an unreachable worker address fails the run with a typed
// error naming the machine.
func TestDialFailure(t *testing.T) {
	// A listener we immediately close: the port is valid but dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	g := gen.GNP(200, 0.05, rng.New(2))
	err = runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: []string{dead}, Seed: 2})
		return err
	})
	var we *WorkerError
	if !errors.As(err, &we) || we.Addr != dead {
		t.Fatalf("err = %v, want *WorkerError for %s", err, dead)
	}
}

// TestRemoteErrorFrame: an ERROR frame sent by the worker must carry its
// message into the coordinator's error.
func TestRemoteErrorFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _, _, _ = readFrame(conn)
		_, _ = writeFrame(conn, frameError, []byte("worker says no"))
	}()
	g := gen.GNP(100, 0.05, rng.New(3))
	err = runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: []string{ln.Addr().String()}, Seed: 3})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "worker says no") {
		t.Fatalf("err = %v, want remote message", err)
	}
}

// cancelSource cancels the run's context after a fixed number of Next calls
// and keeps producing; the coordinator, not the source, must stop the run.
type cancelSource struct {
	inner  stream.EdgeSource
	cancel func()
	after  int
	calls  int
}

func (s *cancelSource) Next(buf []graph.Edge) (int, error) {
	s.calls++
	if s.calls == s.after {
		s.cancel()
	}
	return s.inner.Next(buf)
}
func (s *cancelSource) NumVertices() int   { return s.inner.NumVertices() }
func (s *cancelSource) KnownUpfront() bool { return s.inner.KnownUpfront() }

// TestCoordinatorCancelDrainsWorkers: canceling a run mid-shard returns the
// context error promptly and the workers drop their run state (no
// connection stays active).
func TestCoordinatorCancelDrainsWorkers(t *testing.T) {
	const k = 3
	workers := make([]*Worker, k)
	addrs := make([]string, k)
	for i := range workers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = NewWorker(nil)
		addrs[i] = ln.Addr().String()
		go workers[i].Serve(ln) //nolint:errcheck
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, w := range workers {
			_ = w.Shutdown(ctx)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := gen.GNP(5000, 0.005, rng.New(4))
	src := &cancelSource{inner: stream.NewGraphSource(g), cancel: cancel, after: 3}
	err := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := Matching(ctx, src, Config{Workers: addrs, Seed: 4, BatchSize: 64})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		active := 0
		for _, w := range workers {
			active += w.Active()
		}
		if active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d worker connections still active after cancellation", active)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPreCanceledContext(t *testing.T) {
	addrs := startWorkers(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.GNP(200, 0.05, rng.New(5))
	_, _, err := Matching(ctx, stream.NewGraphSource(g), Config{Workers: addrs, Seed: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// gatedSource blocks mid-stream until released, so tests can observe a run
// in flight.
type gatedSource struct {
	inner   stream.EdgeSource
	started chan struct{} // closed at the first Next
	release chan struct{} // Next blocks here after the first call
	calls   int
}

func (s *gatedSource) Next(buf []graph.Edge) (int, error) {
	s.calls++
	if s.calls == 1 {
		close(s.started)
	} else {
		<-s.release
	}
	return s.inner.Next(buf)
}
func (s *gatedSource) NumVertices() int   { return s.inner.NumVertices() }
func (s *gatedSource) KnownUpfront() bool { return s.inner.KnownUpfront() }

// TestWorkerShutdownDrains: Shutdown with budget must wait for an in-flight
// run to complete (graceful drain), and the run must succeed.
func TestWorkerShutdownDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(nil)
	go w.Serve(ln) //nolint:errcheck

	g := gen.GNP(800, 0.01, rng.New(6))
	src := &gatedSource{inner: stream.NewGraphSource(g), started: make(chan struct{}), release: make(chan struct{})}
	runDone := make(chan error, 1)
	go func() {
		m, _, err := Matching(context.Background(), src, Config{Workers: []string{ln.Addr().String()}, Seed: 6})
		if err == nil && m == nil {
			err = errNotEqual
		}
		runDone <- err
	}()
	<-src.started
	// Wait for the run-assignment connection to land on the worker.
	for w.Active() == 0 {
		time.Sleep(time.Millisecond)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- w.Shutdown(ctx)
	}()
	// The drain must not kill the in-flight run: give Shutdown a moment,
	// then release the source and expect both to finish cleanly.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v before the in-flight run finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(src.release)
	if err := <-runDone; err != nil {
		t.Fatalf("drained run failed: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if w.Served() != 1 {
		t.Fatalf("worker served %d runs, want 1", w.Served())
	}
}

// TestWorkerShutdownRacesShardFrames: Shutdown arriving while SHARD frames
// are still streaming into an in-flight run must drain — the run completes
// and answers with a CORESET — not drop the connection mid-shard. The frames
// are spoken by hand so the test controls exactly where in the stream the
// shutdown lands.
func TestWorkerShutdownRacesShardFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(nil)
	serveDone := make(chan error, 1)
	go func() { serveDone <- w.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h := hello{version: protocolVersion, task: taskMatching, machine: 0, k: 1, known: true, n: 1000}
	if _, err := writeFrame(conn, frameHello, encodeHello(h)); err != nil {
		t.Fatal(err)
	}
	if typ, _, _, err := readFrame(conn); err != nil || typ != frameAck {
		t.Fatalf("handshake: typ 0x%02x err %v", typ, err)
	}

	// First SHARD lands before the shutdown begins.
	batch := func(base graph.ID) []byte {
		var edges []graph.Edge
		for i := graph.ID(0); i < 50; i++ {
			edges = append(edges, graph.Edge{U: base + 2*i, V: base + 2*i + 1})
		}
		return graph.AppendEdgeBatch(nil, edges)
	}
	if _, err := writeFrame(conn, frameShard, batch(0)); err != nil {
		t.Fatal(err)
	}

	// Shutdown concurrently with the rest of the shard stream.
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- w.Shutdown(ctx)
	}()
	for i := 1; i <= 5; i++ {
		if _, err := writeFrame(conn, frameShard, batch(graph.ID(100*i))); err != nil {
			t.Fatalf("SHARD %d after Shutdown started: %v", i, err)
		}
	}
	var eos [binary.MaxVarintLen64]byte
	if _, err := writeFrame(conn, frameEOS, eos[:binary.PutUvarint(eos[:], 1000)]); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := readFrame(conn)
	if err != nil || typ != frameCoreset {
		t.Fatalf("want CORESET after drain, got typ 0x%02x err %v", typ, err)
	}
	sum, err := decodeSummary(taskMatching, payload)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Edges != 300 {
		t.Fatalf("drained run saw %d edges, want 300", sum.Edges)
	}
	conn.Close()
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if w.Served() != 1 {
		t.Fatalf("worker served %d runs, want 1", w.Served())
	}
	// The drained worker accepts no new runs.
	if c, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestNoGoroutineLeaks: successful runs, failed runs and canceled runs must
// all return the process to its goroutine baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addrs, shutdown, err := ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.GNP(1000, 0.01, rng.New(7))

	// Success.
	if _, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: addrs, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Worker failure.
	crash := crashingWorker(t, 0)
	if _, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: []string{addrs[0], crash}, Seed: 7}); err == nil {
		t.Fatal("crash run succeeded")
	}
	// Cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancelSource{inner: stream.NewGraphSource(g), cancel: cancel, after: 2}
	_, _, _ = Matching(ctx, src, Config{Workers: addrs, Seed: 7, BatchSize: 32})
	cancel()

	shutdown() // all worker goroutines must exit too

	// Allow small slack for runtime-internal goroutines; anything beyond it
	// is a leaked sharder, connection watcher or worker handler.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle: %d (baseline %d)\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
