package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/stream"
)

// Round replay. When a worker fails retryably mid-round, the coordinator
// does not abort: the round's input is either coordinator state (the union,
// rounds >= 1 of the MPC driver) or a restartable source, and sharding is a
// seeded hash — so any machine's shard can be regenerated deterministically
// and replayed against a fresh connection. The replayed machine produces
// bit-identical coresets (partition.HashAssign routes the identical edge
// sequence; batch granularity does not affect machine results), which is
// what keeps a disturbed run deep-equal to an undisturbed one.
//
// The replayer runs after the round's normal fan-out has finished: the
// healthy machines' results are in hand, the final vertex count is known,
// and only the failed machines are re-run. Replays proceed in waves — each
// wave re-dials every still-failed machine (rotating in a spare address
// after a failed replay attempt), re-handshakes, restarts the source once
// and re-shards it routing edges only to the machines being replayed, then
// collects their CORESET frames. Waves repeat under capped exponential
// backoff until every machine recovered or some machine spends its
// MaxRetries budget, which fails the run with a terminal, non-retryable
// ErrRetriesExhausted WorkerError.

// ioKind classifies a transport error: deadline expiries are KindDeadline
// (a stalled peer), everything else that broke a live connection is
// KindConn.
func ioKind(err error) FailureKind {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return KindDeadline
	}
	return KindConn
}

// joinFailures folds concurrent worker failures into one error: the
// causally-first failure leads (so errors.As finds the primary), and real
// secondary failures ride along via errors.Join. Secondaries induced by the
// coordinator's own teardown — force-closed connections, canceled dials —
// are dropped: they are consequences of the primary, not causes, and
// keeping them would leak context.Canceled into errors.Is checks.
func joinFailures(fails []*WorkerError) error {
	if len(fails) == 0 {
		return nil
	}
	errs := []error{fails[0]}
	for _, we := range fails[1:] {
		if errors.Is(we.Err, net.ErrClosed) || errors.Is(we.Err, context.Canceled) {
			continue
		}
		errs = append(errs, we)
	}
	if len(errs) == 1 {
		return errs[0]
	}
	return errors.Join(errs...)
}

// notRestartable annotates a joined worker failure with a typed
// *stream.NotRestartableError naming the concrete source kind. It is used on
// fail-fast paths where replay was configured (MaxRetries > 0) and every
// failure was retryable, yet the run could not replay because the source
// cannot rewind — so the error says which input to fix instead of a generic
// failure. The worker failure stays first, so errors.As finds the primary
// *WorkerError exactly as before.
func notRestartable(failErr error, src stream.EdgeSource) error {
	return errors.Join(failErr, &stream.NotRestartableError{Source: fmt.Sprintf("%T", src)})
}

// allRetryable reports whether every recorded failure may be replayed.
func allRetryable(fails []*WorkerError) bool {
	for _, we := range fails {
		if !we.Retryable {
			return false
		}
	}
	return true
}

// replayer re-runs the current round for the machines that failed it. One
// replayer serves both deployment shapes: single-round runs (run) discard
// the replacement connections after the round, multi-round sessions
// (EDCSSession.Round) retire the broken connection and keep the replacement
// for the rounds that follow.
type replayer struct {
	cfg    Config
	task   byte
	seed   uint64   // this round's sharding seed
	k      int      // active machine count this round (the hash modulus)
	nFinal int      // final vertex count, known from the completed shard pass
	addrs  []string // current address per machine; shared with the owner, replay rotates in spares
	spares *[]string
	// helloFor mints the re-handshake HELLO for a machine (sessions shrink
	// the rounds field to the rounds still owed).
	helloFor func(machine int) hello
	// retire closes the machine's previous connection before its first
	// replay attempt; nil when the caller already closed it.
	retire func(machine int)
	// keep receives the machine's replacement connection after a successful
	// replay; nil closes it once the CORESET is in.
	keep func(machine int, conn net.Conn)
}

// replayConn is one machine's live replay attempt within a wave.
type replayConn struct {
	conn  net.Conn
	sent  int // coordinator-to-worker bytes of this attempt
	sum   stream.Summary
	wire  int          // measured CORESET frame bytes
	telem *workerTelem // TELEM payload of this attempt (nil if omitted)
}

// replay drives replay waves until failed is empty or a budget runs out.
// Successful machines overwrite their slot in byMachine (accumulating the
// sent-byte accounting of the failed attempt, so ShardBytes stays honest).
// It returns the number of replay attempts made and the machines recovered,
// in ascending order.
func (r *replayer) replay(ctx context.Context, src stream.EdgeSource, byMachine []workerResult, failed map[int]*WorkerError) (retries int, replayed []int, err error) {
	rs, ok := src.(stream.Restartable)
	if !ok { // callers gate on this; defensive
		return 0, nil, notRestartable(joinFailures(sortedFailures(failed)), src)
	}
	iot := r.cfg.ioTimeout()
	dialer := &net.Dialer{Timeout: r.cfg.dialTimeout()}
	attempts := make(map[int]int)
	retired := make(map[int]bool)
	backoff := r.cfg.backoffBase()

	terminal := func(primary *WorkerError, active map[int]*replayConn) error {
		for _, rc := range active {
			rc.conn.Close()
		}
		fails := []*WorkerError{primary}
		for _, we := range sortedFailures(failed) {
			if we.Machine != primary.Machine {
				fails = append(fails, we)
			}
		}
		return joinFailures(fails)
	}

	for len(failed) > 0 {
		// Budget check: the lowest exhausted machine turns terminal.
		for _, we := range sortedFailures(failed) {
			m := we.Machine
			if attempts[m] >= r.cfg.MaxRetries {
				exh := &WorkerError{
					Machine: m, Addr: r.addrs[m], Kind: we.Kind, Retryable: false,
					Err: fmt.Errorf("%w: %d replay attempts: %w", ErrRetriesExhausted, attempts[m], we.Err),
				}
				return retries, replayed, terminal(exh, nil)
			}
		}
		obs.Count(r.cfg.Obs, MetricBackoffSleeps, 1)
		if err := sleepCtx(ctx, backoff); err != nil {
			return retries, replayed, err
		}
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}

		// Re-dial and re-handshake every still-failed machine. A machine
		// whose previous replay attempt failed rotates to a spare address
		// when one remains; the first replay attempt tries the machine's
		// own address (a crashed-and-restarted worker is the common case).
		active := make(map[int]*replayConn)
		for _, we := range sortedFailures(failed) {
			m := we.Machine
			if err := ctx.Err(); err != nil {
				for _, rc := range active {
					rc.conn.Close()
				}
				return retries, replayed, err
			}
			if attempts[m] > 0 && len(*r.spares) > 0 {
				r.addrs[m] = (*r.spares)[0]
				*r.spares = (*r.spares)[1:]
			}
			attempts[m]++
			retries++
			obs.Count(r.cfg.Obs, MetricRetries, 1)
			if r.retire != nil && !retired[m] {
				r.retire(m)
				retired[m] = true
			}
			rc, hswe := r.handshake(ctx, dialer, m, iot)
			if hswe != nil {
				failed[m] = hswe
				if !hswe.Retryable {
					return retries, replayed, terminal(hswe, active)
				}
				continue
			}
			active[m] = rc
		}
		if len(active) == 0 {
			continue // every dial failed; back off and try the next wave
		}

		// One deterministic re-scan of the round input, routing edges only
		// to the machines being replayed this wave.
		if err := rs.Restart(); err != nil {
			we := sortedFailures(failed)[0]
			return retries, replayed, terminal(&WorkerError{
				Machine: we.Machine, Addr: r.addrs[we.Machine], Kind: we.Kind, Retryable: false,
				Err: fmt.Errorf("replay needs a restartable source (%v): %w", err, we.Err),
			}, active)
		}
		if err := r.shardTo(ctx, src, active, failed, iot); err != nil {
			return retries, replayed, err // ctx or source error; conns closed
		}

		// EOS, then the replayed CORESETs.
		for _, m := range sortedConns(active) {
			rc := active[m]
			we := r.collect(m, rc, iot)
			if we != nil {
				rc.conn.Close()
				delete(active, m)
				failed[m] = we
				if !we.Retryable {
					return retries, replayed, terminal(we, active)
				}
				continue
			}
			old := byMachine[m]
			// Telemetry describes the replacement attempt only: the failed
			// attempt's partial phases never mix in. Sent bytes accumulate
			// (ShardBytes stays honest about every byte actually sent).
			byMachine[m] = workerResult{machine: m, sum: rc.sum, wire: rc.wire, sent: old.sent + rc.sent, telem: rc.telem}
			delete(failed, m)
			delete(active, m)
			replayed = append(replayed, m)
			obs.Count(r.cfg.Obs, MetricReplays, 1)
			if r.keep != nil {
				r.keep(m, rc.conn)
			} else {
				rc.conn.Close()
			}
		}
	}
	sort.Ints(replayed)
	return retries, replayed, nil
}

// handshake dials a machine's current address and speaks the replay HELLO.
func (r *replayer) handshake(ctx context.Context, dialer *net.Dialer, m int, iot time.Duration) (*replayConn, *WorkerError) {
	addr := r.addrs[m]
	obs.Count(r.cfg.Obs, MetricDialAttempts, 1)
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, &WorkerError{Machine: m, Addr: addr, Kind: KindDial, Retryable: true, Err: fmt.Errorf("replay dial: %w", err)}
	}
	rc := &replayConn{conn: conn}
	n, err := writeFrameDeadline(conn, iot, frameHello, encodeHello(r.helloFor(m)))
	rc.sent += n
	countSent(r.cfg.Obs, m, n, err)
	if err != nil {
		conn.Close()
		return nil, &WorkerError{Machine: m, Addr: addr, Kind: ioKind(err), Retryable: true, Err: fmt.Errorf("replay handshake: %w", err)}
	}
	if kind, err := readAck(conn, iot); err != nil {
		conn.Close()
		return nil, &WorkerError{Machine: m, Addr: addr, Kind: kind, Retryable: kind.retryable(), Err: fmt.Errorf("replay: %w", err)}
	}
	return rc, nil
}

// shardTo re-streams the restarted source, routing each edge with the same
// seeded hash as the original pass and sending only to the active replay
// connections. A send failure returns that machine to the failed set for
// the next wave; a source or context error is fatal and closes every active
// connection.
func (r *replayer) shardTo(ctx context.Context, src stream.EdgeSource, active map[int]*replayConn, failed map[int]*WorkerError, iot time.Duration) error {
	closeAll := func() {
		for _, rc := range active {
			rc.conn.Close()
		}
	}
	bs := r.cfg.batchSize()
	buf := make([]graph.Edge, bs)
	pending := make(map[int][]graph.Edge, len(active))
	var enc []byte
	flush := func(m int) {
		rc := active[m]
		if rc == nil || len(pending[m]) == 0 {
			return
		}
		enc = graph.AppendEdgeBatch(enc[:0], pending[m])
		pending[m] = pending[m][:0]
		n, err := writeFrameDeadline(rc.conn, iot, frameShard, enc)
		rc.sent += n
		countSent(r.cfg.Obs, m, n, err)
		if err != nil {
			rc.conn.Close()
			delete(active, m)
			failed[m] = &WorkerError{Machine: m, Addr: r.addrs[m], Kind: ioKind(err), Retryable: true, Err: fmt.Errorf("replay shard stream: %w", err)}
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			closeAll()
			return err
		}
		c, err := src.Next(buf)
		for _, e := range buf[:c] {
			m := partition.HashAssign(e, r.k, r.seed)
			if active[m] == nil {
				continue
			}
			pending[m] = append(pending[m], e)
			if len(pending[m]) == bs {
				flush(m)
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				closeAll()
				return err
			}
			break
		}
		if len(active) == 0 {
			// Everyone died again mid-replay; drain to EOF is pointless.
			return nil
		}
	}
	for _, m := range sortedConns(active) {
		flush(m)
	}
	return nil
}

// collect finishes one machine's replay: EOS with the known final vertex
// count, then its CORESET frame. The decoded summary lands in rc.
func (r *replayer) collect(m int, rc *replayConn, iot time.Duration) *WorkerError {
	addr := r.addrs[m]
	n, err := writeFrameDeadline(rc.conn, iot, frameEOS, binary.AppendUvarint(nil, uint64(r.nFinal)))
	rc.sent += n
	countSent(r.cfg.Obs, m, n, err)
	if err != nil {
		return &WorkerError{Machine: m, Addr: addr, Kind: ioKind(err), Retryable: true, Err: fmt.Errorf("replay EOS: %w", err)}
	}
	typ, payload, frameLen, err := readFrameDeadline(rc.conn, iot)
	if err != nil {
		return &WorkerError{Machine: m, Addr: addr, Kind: ioKind(err), Retryable: true, Err: fmt.Errorf("replay awaiting CORESET: %w", err)}
	}
	// Optional TELEM before the CORESET, exactly as on the fan-out path.
	if typ == frameTelem {
		t, terr := decodeTelem(payload)
		if terr != nil {
			return &WorkerError{Machine: m, Addr: addr, Kind: KindProtocol, Retryable: false, Err: terr}
		}
		rc.telem = &t
		countTelem(r.cfg.Obs, m, frameLen)
		typ, payload, frameLen, err = readFrameDeadline(rc.conn, iot)
		if err != nil {
			return &WorkerError{Machine: m, Addr: addr, Kind: ioKind(err), Retryable: true, Err: fmt.Errorf("replay awaiting CORESET: %w", err)}
		}
	}
	switch typ {
	case frameCoreset:
		sum, err := decodeSummary(r.task, payload)
		if err != nil {
			return &WorkerError{Machine: m, Addr: addr, Kind: KindProtocol, Retryable: false, Err: err}
		}
		rc.sum, rc.wire = sum, frameLen
		countReceived(r.cfg.Obs, m, frameLen)
		return nil
	case frameError:
		return &WorkerError{Machine: m, Addr: addr, Kind: KindProtocol, Retryable: false, Err: fmt.Errorf("remote: %s", payload)}
	default:
		return &WorkerError{Machine: m, Addr: addr, Kind: KindProtocol, Retryable: false, Err: fmt.Errorf("unexpected frame 0x%02x, want CORESET", typ)}
	}
}

// sortedFailures returns failed's errors in ascending machine order, so
// wave iteration and primary selection are deterministic.
func sortedFailures(failed map[int]*WorkerError) []*WorkerError {
	out := make([]*WorkerError, 0, len(failed))
	for _, we := range failed {
		out = append(out, we)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

func sortedConns(active map[int]*replayConn) []int {
	out := make([]int, 0, len(active))
	for m := range active {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// sleepCtx waits d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
