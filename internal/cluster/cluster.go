// Package cluster is the distributed deployment of the paper's simultaneous
// model: the k machines are separate OS processes, and the coreset messages
// cross a real TCP connection, so the communication the paper bounds is
// *measured* on the wire instead of estimated from encoded sizes.
//
//	EdgeSource --> sharder --> k TCP connections --> k worker processes
//	                                  ^                      |
//	              coordinator --------+---- CORESET frames --+--> composition
//
// The coordinator (this package's Matching/VertexCover) consumes any
// stream.EdgeSource, routes every edge with the same seeded
// partition.HashAssign the in-process runtime uses — so a cluster run is
// bit-for-bit identical to the streaming and batch pipelines for the same
// (graph, seed, k) — and fans edge batches out over a compact length-prefixed
// binary protocol (wire.go: typed HELLO/ACK/SHARD/EOS/CORESET/ERROR frames,
// varint delta-encoded edge batches shared with graph.AppendEdgeBatch).
// Each worker hosts a stream.Machine — the very builders the in-process
// pipeline runs — and answers with one CORESET frame. The coordinator
// composes the summaries with the same core composition and reports both the
// measured wire bytes (TotalCommBytes/MaxMachineBytes) and the simulated
// estimate (EstCommBytes) side by side.
//
// Backpressure is per worker: every connection has a bounded batch channel
// and a blocking TCP write path, so a slow worker throttles only its own
// shard stream. Cancellation is cooperative at batch granularity on the
// coordinator and forces connections closed, which workers observe as a
// dropped run; a worker crash mid-shard surfaces as a typed *WorkerError at
// the coordinator with no hang and no goroutine leak.
//
// Deployment shapes: cmd/coresetworker is the resident worker binary (serves
// many runs concurrently, drains gracefully); cmd/coreset -cluster
// host:port,... drives an existing deployment; -cluster local self-spawns k
// worker processes (SpawnLocal) for single-machine use; and coresetd
// dispatches jobs with mode "cluster" to a configured worker fleet.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// DefaultBatchSize matches the in-process streaming runtime's batch size.
const DefaultBatchSize = 1024

// DefaultDialTimeout bounds each worker connection attempt.
const DefaultDialTimeout = 5 * time.Second

// Config parameterizes a cluster run.
type Config struct {
	// Workers lists the worker addresses, one machine per entry; k is
	// len(Workers). Required, non-empty.
	Workers []string
	// Seed seeds the hash sharder: partition.HashAssign(e, k, Seed) decides
	// every route, exactly as in the in-process runtimes.
	Seed uint64
	// BatchSize is the number of edges per SHARD frame (default
	// DefaultBatchSize).
	BatchSize int
	// DialTimeout bounds each worker connection attempt (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return DefaultDialTimeout
}

// WorkerError is the typed error for a machine that failed mid-run: dial
// failure, connection drop (worker crash), protocol violation, or an ERROR
// frame the worker sent before closing. Err carries the cause.
type WorkerError struct {
	Machine int    // machine index within the run
	Addr    string // worker address
	Err     error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("cluster: worker %d (%s): %v", e.Machine, e.Addr, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Stats reports what a cluster run did and cost. It mirrors stream.Stats
// where the fields coincide; the communication fields split into measured
// wire bytes and the simulated estimate the in-process runtimes report.
type Stats struct {
	K          int
	N          int   // final vertex count
	EdgesTotal int   // edges read from the source
	Batches    int   // batches read from the source
	PartEdges  []int // edges routed to each machine (worker-reported)
	// StoredEdges is how many edges each worker still held at end of stream
	// (vc online peeling makes it < PartEdges on peel-heavy inputs).
	StoredEdges []int
	// Live is each worker's online telemetry at end of stream: greedy
	// matching size (matching) or vertices peeled online (vc).
	Live         []int
	CoresetEdges []int
	CoresetFixed []int // vc only

	// TotalCommBytes and MaxMachineBytes are MEASURED: the exact bytes of
	// each worker's CORESET frame (header included) as read off its TCP
	// connection.
	TotalCommBytes  int
	MaxMachineBytes int
	// EstCommBytes / EstMaxMachineBytes are the simulated estimate for the
	// same messages — core.CoresetSizeBytes / core.VCCoresetSizeBytes, the
	// numbers the in-process runtimes report — kept alongside so measured
	// and simulated accounting can be compared on every run.
	EstCommBytes       int
	EstMaxMachineBytes int
	// ShardBytes is the measured coordinator-to-worker traffic: HELLO, SHARD
	// and EOS frames summed over all workers.
	ShardBytes int

	CompositionEdges int
	Duration         time.Duration
}

// EdgesPerSec returns the end-to-end throughput of the run.
func (s *Stats) EdgesPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.EdgesTotal) / s.Duration.Seconds()
}

// Report assembles the shared JSON-able run report for a cluster run. Mode
// is "cluster"; TotalCommBytes/MaxMachineBytes carry the measured wire
// bytes and EstCommBytes/EstMaxMachineBytes the simulated estimate.
func (s *Stats) Report(task string, seed uint64, solutionSize int) *graph.RunReport {
	return &graph.RunReport{
		Task:               task,
		Mode:               "cluster",
		N:                  s.N,
		M:                  s.EdgesTotal,
		K:                  s.K,
		Seed:               seed,
		SolutionSize:       solutionSize,
		PartEdges:          s.PartEdges,
		StoredEdges:        s.StoredEdges,
		Live:               s.Live,
		CoresetEdges:       s.CoresetEdges,
		CoresetFixed:       s.CoresetFixed,
		TotalCommBytes:     s.TotalCommBytes,
		MaxMachineBytes:    s.MaxMachineBytes,
		EstCommBytes:       s.EstCommBytes,
		EstMaxMachineBytes: s.EstMaxMachineBytes,
		ShardBytes:         s.ShardBytes,
		CompositionEdges:   s.CompositionEdges,
		Batches:            s.Batches,
		DurationMS:         float64(s.Duration.Microseconds()) / 1000,
		EdgesPerSec:        s.EdgesPerSec(),
	}
}
