// Package cluster is the distributed deployment of the paper's simultaneous
// model: the k machines are separate OS processes, and the coreset messages
// cross a real TCP connection, so the communication the paper bounds is
// *measured* on the wire instead of estimated from encoded sizes.
//
//	EdgeSource --> sharder --> k TCP connections --> k worker processes
//	                                  ^                      |
//	              coordinator --------+---- CORESET frames --+--> composition
//
// The coordinator (this package's Matching/VertexCover) consumes any
// stream.EdgeSource, routes every edge with the same seeded
// partition.HashAssign the in-process runtime uses — so a cluster run is
// bit-for-bit identical to the streaming and batch pipelines for the same
// (graph, seed, k) — and fans edge batches out over a compact length-prefixed
// binary protocol (wire.go: typed HELLO/ACK/SHARD/EOS/CORESET/ERROR frames,
// varint delta-encoded edge batches shared with graph.AppendEdgeBatch).
// Each worker hosts a stream.Machine — the very builders the in-process
// pipeline runs — and answers with one CORESET frame. The coordinator
// composes the summaries with the same core composition and reports both the
// measured wire bytes (TotalCommBytes/MaxMachineBytes) and the simulated
// estimate (EstCommBytes) side by side.
//
// Backpressure is per worker: every connection has a bounded batch channel
// and a blocking TCP write path, so a slow worker throttles only its own
// shard stream. Cancellation is cooperative at batch granularity on the
// coordinator and forces connections closed, which workers observe as a
// dropped run; a worker crash or stall mid-shard surfaces as a typed
// *WorkerError at the coordinator — every frame exchange is bounded by
// Config.IOTimeout — with no hang and no goroutine leak. With
// Config.MaxRetries > 0 and a restartable source, a retryable failure
// (dial, connection drop, deadline) is not fatal: the coordinator re-dials
// the worker (or a Config.Spares standby) with capped exponential backoff
// and replays only the current round against it, reproducing the machine's
// exact shard from the seeded hash (retry.go), so a lost worker costs one
// round, not the run.
//
// Deployment shapes: cmd/coresetworker is the resident worker binary (serves
// many runs concurrently, drains gracefully); cmd/coreset -cluster
// host:port,... drives an existing deployment; -cluster local self-spawns k
// worker processes (SpawnLocal) for single-machine use; and coresetd
// dispatches jobs with mode "cluster" to a configured worker fleet.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Metric names this package reports through Config.Obs (see internal/obs).
// Counts are events and bytes measured on the live connections; a run with a
// nil Sink reports nothing. cluster_replays_total is the acceptance signal
// for fault tolerance: it advances once per machine whose round was
// successfully replayed after a worker loss.
// The per-connection names (frames, shard/coreset/telem bytes) are reported
// through obs.CountBy with a "machine" label, so a KeyedSink sees a
// per-machine breakdown while a plain Sink sees the same totals unlabeled.
// MetricTelemBytes counts TELEM frame traffic separately from
// MetricCoresetBytes: telemetry is measurement overhead, never part of the
// coreset communication the paper's model charges.
const (
	MetricFramesSent     = "cluster_frames_sent_total"
	MetricFramesReceived = "cluster_frames_received_total"
	MetricShardBytes     = "cluster_shard_bytes_total"
	MetricCoresetBytes   = "cluster_coreset_bytes_total"
	MetricTelemBytes     = "cluster_telem_bytes_total"
	MetricDialAttempts   = "cluster_dial_attempts_total"
	MetricBackoffSleeps  = "cluster_backoff_sleeps_total"
	MetricRetries        = "cluster_retries_total"
	MetricReplays        = "cluster_replays_total"
	MetricWorkerFailures = "cluster_worker_failures_total"
)

// DefaultBatchSize matches the in-process streaming runtime's batch size.
const DefaultBatchSize = 1024

// DefaultDialTimeout bounds each worker connection attempt.
const DefaultDialTimeout = 5 * time.Second

// DefaultIOTimeout bounds each frame read/write on a worker connection, so
// a worker that accepts the connection and then stalls surfaces as a
// retryable *WorkerError instead of hanging the run until caller
// cancellation.
const DefaultIOTimeout = 30 * time.Second

// DefaultMaxRetries is the replay budget the CLI surfaces enable by
// default: one retry against the machine's own address plus one against a
// spare. The library default (Config zero value) remains fail-fast.
const DefaultMaxRetries = 2

// DefaultRetryBackoff seeds the capped exponential backoff between replay
// waves.
const DefaultRetryBackoff = 100 * time.Millisecond

// maxRetryBackoff caps the exponential backoff growth.
const maxRetryBackoff = 5 * time.Second

// Config parameterizes a cluster run.
type Config struct {
	// Workers lists the worker addresses, one machine per entry; k is
	// len(Workers). Required, non-empty.
	Workers []string
	// Seed seeds the hash sharder: partition.HashAssign(e, k, Seed) decides
	// every route, exactly as in the in-process runtimes.
	Seed uint64
	// BatchSize is the number of edges per SHARD frame (default
	// DefaultBatchSize).
	BatchSize int
	// DialTimeout bounds each worker connection attempt (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// IOTimeout bounds each frame read/write on a worker connection
	// (default DefaultIOTimeout; negative disables the deadlines). A frame
	// that misses the deadline fails the machine with a retryable
	// *WorkerError of KindDeadline.
	IOTimeout time.Duration
	// MaxRetries is the replay budget per machine per round: how many times
	// a machine whose failure is Retryable may be re-dialed and its current
	// round replayed before the run fails with ErrRetriesExhausted. 0 (the
	// zero value) disables replay — any worker failure fails the run, the
	// pre-replay behavior. Replay additionally requires the round input to
	// be a stream.Restartable source; otherwise failures stay fatal.
	MaxRetries int
	// RetryBackoff is the delay before the first replay wave, doubling per
	// wave up to a cap (default DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Spares lists standby worker addresses. When a machine's replay
	// attempt fails, its next attempt consumes a spare address in place of
	// the failed one — so a worker whose process is gone for good costs one
	// round, not the run.
	Spares []string
	// Obs receives wire-level events (frames, bytes, dial attempts, backoff
	// sleeps, retries, replays — the Metric* names above) as they happen.
	// Nil, the zero value, keeps the library silent. Sinks implementing
	// obs.KeyedSink additionally see the per-connection counters broken down
	// by machine index.
	Obs obs.Sink
	// RunID is the coordinator's trace run ID, shipped to every worker in
	// the HELLO frame so worker-side spans (coresetworker -trace) join the
	// coordinator's trace stream. Empty is fine: workers still return
	// telemetry, their spans just carry no run attribute.
	RunID string
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return DefaultDialTimeout
}

func (c Config) ioTimeout() time.Duration {
	if c.IOTimeout < 0 {
		return 0
	}
	if c.IOTimeout == 0 {
		return DefaultIOTimeout
	}
	return c.IOTimeout
}

func (c Config) backoffBase() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return DefaultRetryBackoff
}

// FailureKind classifies what broke between the coordinator and a worker,
// and drives the retry decision: transport failures (dial, connection drop,
// stalled frame) are retryable because replaying the round is deterministic
// — the seeded hash re-creates the machine's exact shard — while handshake
// and protocol failures are not, because a deterministic replay would fail
// identically.
type FailureKind uint8

const (
	// KindUnknown is the zero kind: unclassified, never retryable.
	KindUnknown FailureKind = iota
	// KindDial: the worker connection could not be established (connection
	// refused, unreachable, dial timeout).
	KindDial
	// KindConn: an established connection dropped mid-conversation (reset,
	// unexpected EOF, closed).
	KindConn
	// KindDeadline: a frame read or write exceeded Config.IOTimeout — the
	// peer accepted the connection but stalled.
	KindDeadline
	// KindHandshake: the worker rejected the HELLO (ERROR frame, version or
	// parameter mismatch) or answered it with an unexpected frame.
	KindHandshake
	// KindProtocol: a corrupt or unexpected frame after the handshake, or a
	// remote ERROR mid-run.
	KindProtocol
)

func (k FailureKind) String() string {
	switch k {
	case KindDial:
		return "dial"
	case KindConn:
		return "conn"
	case KindDeadline:
		return "deadline"
	case KindHandshake:
		return "handshake"
	case KindProtocol:
		return "protocol"
	default:
		return "unknown"
	}
}

// retryable reports whether failures of this kind may be replayed.
func (k FailureKind) retryable() bool {
	return k == KindDial || k == KindConn || k == KindDeadline
}

// ErrRetriesExhausted tags the terminal, non-retryable *WorkerError a run
// fails with when a machine's replay budget (Config.MaxRetries) runs out.
var ErrRetriesExhausted = errors.New("cluster: retries exhausted")

// WorkerError is the typed error for a machine that failed mid-run: dial
// failure, connection drop (worker crash), stalled frame, protocol
// violation, or an ERROR frame the worker sent before closing. Err carries
// the cause; Kind classifies it and Retryable reports whether a replay
// could recover it (a run configured with MaxRetries > 0 only surfaces a
// retryable WorkerError once its replay budget is spent, wrapped in
// ErrRetriesExhausted with Retryable false). When several workers fail
// concurrently the run error joins them (errors.Join) with the causally
// first failure leading, so errors.As finds the primary.
type WorkerError struct {
	Machine   int         // machine index within the run
	Addr      string      // worker address
	Kind      FailureKind // what broke
	Retryable bool        // whether round replay may recover it
	Err       error
}

func (e *WorkerError) Error() string {
	if e.Kind == KindUnknown {
		return fmt.Sprintf("cluster: worker %d (%s): %v", e.Machine, e.Addr, e.Err)
	}
	return fmt.Sprintf("cluster: worker %d (%s) [%s]: %v", e.Machine, e.Addr, e.Kind, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Stats reports what a cluster run did and cost. It mirrors stream.Stats
// where the fields coincide; the communication fields split into measured
// wire bytes and the simulated estimate the in-process runtimes report.
type Stats struct {
	K          int
	N          int   // final vertex count
	EdgesTotal int   // edges read from the source
	Batches    int   // batches read from the source
	PartEdges  []int // edges routed to each machine (worker-reported)
	// StoredEdges is how many edges each worker still held at end of stream
	// (vc online peeling makes it < PartEdges on peel-heavy inputs).
	StoredEdges []int
	// Live is each worker's online telemetry at end of stream: greedy
	// matching size (matching) or vertices peeled online (vc).
	Live         []int
	CoresetEdges []int
	CoresetFixed []int // vc only

	// TotalCommBytes and MaxMachineBytes are MEASURED: the exact bytes of
	// each worker's CORESET frame (header included) as read off its TCP
	// connection.
	TotalCommBytes  int
	MaxMachineBytes int
	// EstCommBytes / EstMaxMachineBytes are the simulated estimate for the
	// same messages — core.CoresetSizeBytes / core.VCCoresetSizeBytes, the
	// numbers the in-process runtimes report — kept alongside so measured
	// and simulated accounting can be compared on every run.
	EstCommBytes       int
	EstMaxMachineBytes int
	// ShardBytes is the measured coordinator-to-worker traffic: HELLO, SHARD
	// and EOS frames summed over all workers — including the traffic of
	// replayed rounds, so retried runs account for every byte actually sent.
	ShardBytes int

	// Retries counts replay attempts this run made after worker failures
	// (0 on an undisturbed run); ReplayedMachines lists the machines whose
	// round was successfully replayed, in ascending order.
	Retries          int
	ReplayedMachines []int

	// MachineStats is the per-machine telemetry breakdown, one entry per
	// machine in index order: the worker's phase wall times and build
	// counters from its TELEM frame. A worker without the telemetry
	// capability still gets an entry with the phase fields zero; a replayed
	// machine's entry describes the replacement attempt and is marked
	// Replayed.
	MachineStats []graph.MachineStats

	CompositionEdges int
	Duration         time.Duration
}

// EdgesPerSec returns the end-to-end throughput of the run.
func (s *Stats) EdgesPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.EdgesTotal) / s.Duration.Seconds()
}

// Report assembles the shared JSON-able run report for a cluster run. Mode
// is "cluster"; TotalCommBytes/MaxMachineBytes carry the measured wire
// bytes and EstCommBytes/EstMaxMachineBytes the simulated estimate.
func (s *Stats) Report(task string, seed uint64, solutionSize int) *graph.RunReport {
	return &graph.RunReport{
		Task:               task,
		Mode:               "cluster",
		N:                  s.N,
		M:                  s.EdgesTotal,
		K:                  s.K,
		Seed:               seed,
		SolutionSize:       solutionSize,
		PartEdges:          s.PartEdges,
		StoredEdges:        s.StoredEdges,
		Live:               s.Live,
		CoresetEdges:       s.CoresetEdges,
		CoresetFixed:       s.CoresetFixed,
		TotalCommBytes:     s.TotalCommBytes,
		MaxMachineBytes:    s.MaxMachineBytes,
		EstCommBytes:       s.EstCommBytes,
		EstMaxMachineBytes: s.EstMaxMachineBytes,
		ShardBytes:         s.ShardBytes,
		Retries:            s.Retries,
		ReplayedMachines:   s.ReplayedMachines,
		MachineStats:       s.MachineStats,
		CompositionEdges:   s.CompositionEdges,
		Batches:            s.Batches,
		DurationMS:         float64(s.Duration.Microseconds()) / 1000,
		EdgesPerSec:        s.EdgesPerSec(),
	}
}
