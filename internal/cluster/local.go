package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// ReadyPrefix is the line a worker process prints on stdout once its
// listener is bound, followed by the listen address. SpawnLocal blocks on it
// so the returned addresses are immediately dialable. Both cmd/coresetworker
// and cmd/coreset -worker emit it.
const ReadyPrefix = "CORESETWORKER READY "

// readyTimeout bounds how long SpawnLocal waits for a forked worker to bind.
const readyTimeout = 10 * time.Second

// LocalWorkers is a set of worker processes forked on this machine — the
// single-machine deployment of the cluster runtime (cmd/coreset -cluster
// local). Each worker's lifetime is tied to its stdin: Close closes the
// pipes, the workers drain and exit, and stragglers are killed.
type LocalWorkers struct {
	addrs  []string
	procs  []*exec.Cmd
	stdins []io.WriteCloser
}

// SpawnLocal forks k worker processes by running bin with args (plus
// whatever the binary needs to enter worker mode — cmd/coreset uses
// "-worker", cmd/coresetworker needs "-exit-on-stdin-eof") and collects
// their self-reported listen addresses. Worker stderr is forwarded to
// stderr. On any failure the already-started workers are torn down.
func SpawnLocal(bin string, args []string, k int, stderr io.Writer) (*LocalWorkers, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: SpawnLocal needs k > 0 (got %d)", k)
	}
	// exec.Cmd forwards a non-*os.File stderr through one copier goroutine
	// per child; serialize them so k workers can share one buffer or writer.
	if stderr != nil {
		if _, isFile := stderr.(*os.File); !isFile {
			stderr = &syncWriter{w: stderr}
		}
	}
	lw := &LocalWorkers{}
	for i := 0; i < k; i++ {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			lw.Close()
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			lw.Close()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			lw.Close()
			return nil, fmt.Errorf("cluster: spawning worker %d: %w", i, err)
		}
		lw.procs = append(lw.procs, cmd)
		lw.stdins = append(lw.stdins, stdin)
		addr, err := readReadyLine(stdout)
		if err != nil {
			lw.Close()
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		lw.addrs = append(lw.addrs, addr)
	}
	return lw, nil
}

// Addrs returns the workers' listen addresses, in spawn order.
func (l *LocalWorkers) Addrs() []string { return append([]string(nil), l.addrs...) }

// Kill SIGKILLs worker i — no drain, no warning, mid-frame if a run is in
// flight — and reaps the process. It exists for fault-injection: chaos tests
// kill a fleet member mid-round and assert the coordinator replays it. The
// worker stays in Addrs (its address now refuses dials) and Close skips it.
func (l *LocalWorkers) Kill(i int) error {
	if i < 0 || i >= len(l.procs) || l.procs[i] == nil {
		return fmt.Errorf("cluster: Kill(%d): no such worker", i)
	}
	cmd := l.procs[i]
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	_ = cmd.Wait() // reap; the error is the SIGKILL we just sent
	_ = l.stdins[i].Close()
	l.procs[i], l.stdins[i] = nil, nil
	return nil
}

// Close shuts the workers down: stdin pipes are closed (the workers' exit
// signal), each process gets a drain window to exit cleanly, and anything
// still running is killed. The first wait error, if any, is returned.
func (l *LocalWorkers) Close() error {
	for _, in := range l.stdins {
		if in != nil {
			in.Close()
		}
	}
	var firstErr error
	for _, cmd := range l.procs {
		if cmd == nil {
			continue // already reaped by Kill
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker pid %d killed after drain timeout", cmd.Process.Pid)
			}
		}
	}
	return firstErr
}

// ParseWorkerList parses a comma-separated worker address list (the -cluster
// flag shared by cmd/coreset, coresetd and cmd/coresetload), rejecting empty
// entries up front so a trailing comma fails at configuration time instead
// of surfacing later as a dial error against machine "".
func ParseWorkerList(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty worker address list")
	}
	addrs := strings.Split(spec, ",")
	for i, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("cluster: empty worker address in %q", spec)
		}
		addrs[i] = a
	}
	return addrs, nil
}

// syncWriter serializes concurrent writes from the workers' stderr copiers.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// readReadyLine scans stdout for the ReadyPrefix line and returns the
// address, bounding the wait so a wedged child cannot hang the parent.
func readReadyLine(stdout io.Reader) (string, error) {
	type lineErr struct {
		addr string
		err  error
	}
	ch := make(chan lineErr, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, ReadyPrefix) {
				ch <- lineErr{addr: strings.TrimSpace(strings.TrimPrefix(line, ReadyPrefix))}
				// Keep draining stdout so the child never blocks on a full
				// pipe; it prints nothing else in practice.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- lineErr{err: fmt.Errorf("worker exited before reporting ready")}
	}()
	select {
	case le := <-ch:
		return le.addr, le.err
	case <-time.After(readyTimeout):
		return "", fmt.Errorf("timed out waiting for ready line")
	}
}

// ServeLoopback starts k workers on loopback listeners inside this process
// and returns their addresses plus a shutdown function. The protocol still
// crosses real TCP sockets — the bytes are as measured as with forked
// processes — but without the fork, which is what tests, experiments
// (E20) and benchmarks want.
func ServeLoopback(k int) (addrs []string, shutdown func(), err error) {
	workers := make([]*Worker, 0, k)
	serveDone := make(chan struct{}, k)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *Worker) {
				defer wg.Done()
				_ = w.Shutdown(ctx)
			}(w)
		}
		wg.Wait()
		for range workers {
			<-serveDone
		}
	}
	for i := 0; i < k; i++ {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			shutdown()
			return nil, nil, lerr
		}
		w := NewWorker(log.New(io.Discard, "", 0))
		workers = append(workers, w)
		addrs = append(addrs, ln.Addr().String())
		go func() {
			_ = w.Serve(ln)
			serveDone <- struct{}{}
		}()
	}
	return addrs, shutdown, nil
}
