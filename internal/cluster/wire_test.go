package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stream"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	written := 0
	for i, p := range payloads {
		n, err := writeFrame(&buf, byte(i+1), p)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != frameHeaderLen+len(p) {
			t.Fatalf("frame %d: wrote %d bytes, want %d", i, n, frameHeaderLen+len(p))
		}
		written += n
	}
	if buf.Len() != written {
		t.Fatalf("buffer holds %d bytes, accounting says %d", buf.Len(), written)
	}
	for i, p := range payloads {
		typ, payload, n, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) || n != frameHeaderLen+len(p) || !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: got type %d len %d", i, typ, n)
		}
	}
}

func TestFrameLimits(t *testing.T) {
	if _, err := writeFrame(&bytes.Buffer{}, frameShard, make([]byte, maxFramePayload+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// An oversized length prefix must be rejected before allocation.
	hdr := []byte{frameShard, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, _, err := readFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	// Truncated header and truncated payload.
	if _, _, _, err := readFrame(bytes.NewReader([]byte{frameShard, 0x00})); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, _, _, err := readFrame(bytes.NewReader([]byte{frameShard, 0x00, 0x00, 0x00, 0x05, 0x01})); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []hello{
		{version: protocolVersion, task: taskMatching, machine: 0, k: 1},
		{version: protocolVersion, task: taskVC, machine: 7, k: 8, known: true, n: 1 << 20},
		{version: protocolVersion, task: taskEDCS, machine: 2, k: 4, known: true, n: 1 << 10, edcs: edcs.ParamsForBeta(32)},
		{version: protocolVersion, task: taskMatching, machine: 1, k: 2, telem: true, runID: "r-00c0ffee"},
		{version: protocolVersion, task: taskEDCS, machine: 0, k: 2, known: true, n: 1 << 8,
			edcs: edcs.ParamsForBeta(16), telem: true}, // telemetry requested with an empty run ID
	} {
		got, err := decodeHello(encodeHello(h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v want %+v", got, h)
		}
	}
}

func TestHelloRejectsBadFields(t *testing.T) {
	for name, h := range map[string]hello{
		"version":     {version: 99, task: taskMatching, k: 1},
		"task":        {version: protocolVersion, task: 9, k: 1},
		"machine-oob": {version: protocolVersion, task: taskVC, machine: 3, k: 3},
		"zero-k":      {version: protocolVersion, task: taskVC, machine: 0, k: 0},
		"huge-k":      {version: protocolVersion, task: taskVC, machine: 0, k: maxK + 1},
		// n drives an O(n) allocation in the VC machine; a worker that
		// accepted an unbounded count could be crashed by one frame.
		"huge-n": {version: protocolVersion, task: taskVC, k: 1, known: true, n: maxVertices + 1},
		// EDCS params the dynamic subgraph cannot satisfy, or absurdly large.
		"edcs-invalid": {version: protocolVersion, task: taskEDCS, k: 1, edcs: edcs.Params{Beta: 4, BetaMinus: 4}},
		"edcs-huge":    {version: protocolVersion, task: taskEDCS, k: 1, edcs: edcs.Params{Beta: edcs.MaxBeta + 1, BetaMinus: 1}},
		// A hostile run ID length must be rejected before allocation.
		"runid-huge": {version: protocolVersion, task: taskMatching, k: 1, telem: true, runID: strings.Repeat("x", maxRunIDLen+1)},
	} {
		if _, err := decodeHello(encodeHello(h)); err == nil {
			t.Fatalf("%s: bad HELLO accepted", name)
		}
	}
	if _, err := decodeHello([]byte{protocolVersion}); err == nil {
		t.Fatal("short HELLO accepted")
	}
}

// TestWorkerSurvivesHostileFrames: frames that could drive unbounded
// allocations (huge HELLO n, huge EOS n) must be answered with ERROR and
// must not take down the resident worker — it keeps serving honest runs.
func TestWorkerSurvivesHostileFrames(t *testing.T) {
	addrs, shutdown, err := ServeLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	attack := func(send func(conn net.Conn)) {
		conn, err := net.Dial("tcp", addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		send(conn)
		typ, _, _, err := readFrame(conn)
		if err != nil || typ != frameError {
			t.Fatalf("hostile frame answered with type 0x%02x err %v, want ERROR", typ, err)
		}
	}
	// Huge vertex count in HELLO (would allocate O(n) VC state).
	attack(func(conn net.Conn) {
		h := hello{version: protocolVersion, task: taskVC, k: 1, known: true, n: maxVertices + 1}
		_, _ = writeFrame(conn, frameHello, encodeHello(h))
	})
	// Valid handshake, then a huge EOS count (would allocate at Finish).
	attack(func(conn net.Conn) {
		h := hello{version: protocolVersion, task: taskMatching, k: 1}
		_, _ = writeFrame(conn, frameHello, encodeHello(h))
		if typ, _, _, err := readFrame(conn); err != nil || typ != frameAck {
			t.Fatalf("handshake failed: type 0x%02x err %v", typ, err)
		}
		var eos [10]byte
		_, _ = writeFrame(conn, frameEOS, eos[:binary.PutUvarint(eos[:], 1<<40)])
	})

	// The worker is still alive and serves an honest run.
	g := gen.GNP(300, 0.05, rng.New(8))
	m, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: addrs, Seed: 8})
	if err != nil || m.Size() == 0 {
		t.Fatalf("worker unusable after hostile frames: %v", err)
	}
}

// TestSummaryCodecParity: what a real machine emits must survive the wire
// byte-for-byte — encode then decode reproduces the Summary deep-equal,
// including the nil-versus-empty slice shapes the seed-parity guarantee
// needs (nil levels, non-nil empty coresets and residuals).
func TestSummaryCodecParity(t *testing.T) {
	g := gen.GNP(500, 40.0/500, rng.New(3))
	feed := func(m *stream.Machine, edges []graph.Edge) stream.Summary {
		for _, e := range edges {
			m.Add(e)
		}
		return m.Finish(g.N)
	}
	cases := []struct {
		name string
		task byte
		sum  stream.Summary
	}{
		{"matching", taskMatching, feed(stream.NewMatchingMachine(), g.Edges)},
		{"matching-empty", taskMatching, feed(stream.NewMatchingMachine(), nil)},
		{"vc-online-peel", taskVC, feed(stream.NewVCMachine(4, g.N), g.Edges)},
		{"vc-no-hint", taskVC, feed(stream.NewVCMachine(4, 0), g.Edges)},
		{"vc-empty", taskVC, feed(stream.NewVCMachine(4, g.N), nil)},
		{"edcs", taskEDCS, feed(stream.NewEDCSMachine(g.N, edcs.ParamsForBeta(8)), g.Edges)},
		{"edcs-empty", taskEDCS, feed(stream.NewEDCSMachine(0, edcs.ParamsForBeta(8)), nil)},
	}
	for _, tc := range cases {
		got, err := decodeSummary(tc.task, appendSummary(nil, tc.task, tc.sum))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.sum) {
			t.Fatalf("%s: decoded summary differs:\ngot  %+v\nwant %+v", tc.name, got, tc.sum)
		}
	}
}

func TestSummaryCodecCorrupt(t *testing.T) {
	for _, data := range [][]byte{nil, {0x01}, {0x01, 0x01, 0x01}} {
		if _, err := decodeSummary(taskMatching, data); err == nil {
			t.Fatalf("corrupt matching summary %v accepted", data)
		}
		if _, err := decodeSummary(taskVC, data); err == nil {
			t.Fatalf("corrupt vc summary %v accepted", data)
		}
	}
	// Trailing garbage after a valid body must be rejected.
	valid := appendSummary(nil, taskMatching, stream.NewMatchingMachine().Finish(0))
	if _, err := decodeSummary(taskMatching, append(valid, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestWorkerRejectsGarbageHello: a worker must answer a malformed handshake
// with an ERROR frame, not a hang or a crash.
func TestWorkerRejectsGarbageHello(t *testing.T) {
	addrs, shutdown, err := ServeLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeFrame(conn, frameHello, []byte{0x63}); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameError || !strings.Contains(string(payload), "HELLO") {
		t.Fatalf("got frame 0x%02x %q, want ERROR about HELLO", typ, payload)
	}
}
