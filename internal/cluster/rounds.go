package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/stream"
)

// EDCSSession is one multi-round EDCS run over a worker fleet (the MPC
// algorithm of arXiv:1711.03076, driven by internal/rounds). The session
// dials every worker once and speaks a single HELLO per connection — task
// taskEDCSRounds, carrying the degree constraints and the round cap — and
// then the connections are REUSED across rounds: each Round call shards its
// input over the first k workers, collects one CORESET frame per active
// machine, and leaves the connections open for the next round. Workers
// dropped by the shrinking schedule (k decreases between rounds) simply see
// no frames until Close ends the run at a round boundary.
//
// Communication is measured per round off the live connections, exactly as
// in a single-round run: each Round's Stats carries the measured CORESET
// frame bytes (TotalCommBytes/MaxMachineBytes), the simulated estimate
// (EstCommBytes/EstMaxMachineBytes) and the coordinator-to-worker shard
// traffic (ShardBytes; the first round additionally absorbs the HELLO
// frames, so summing rounds accounts for every coordinator-to-worker byte
// of the run — workers' ACK frames are not counted, matching the
// single-round runtime's accounting).
//
// A session is single-flight: Round may not be called concurrently. With
// Config.MaxRetries > 0 and a restartable round input, a retryable worker
// failure mid-round is recovered in place: the broken connection is
// retired, the worker (or a Config.Spares standby) is re-dialed with a
// fresh HELLO carrying the rounds still owed, and only the current round is
// replayed — the replacement connection then serves the remaining rounds.
// Any unrecovered round error (non-retryable failure, exhausted retries,
// source error, cancellation) poisons the session; Close is the only valid
// call after that.
type EDCSSession struct {
	cfg        Config
	k          int // fleet size = round-0 machine count
	p          edcs.Params
	nHint      int
	roundCap   int
	roundsRun  int
	helloBytes int // HELLO traffic, folded into the first round's ShardBytes
	conns      []net.Conn
	addrs      []string // current address per machine; replay rotates in spares
	spares     []string
	broken     bool
	closed     bool
}

// DialEDCSRounds opens a multi-round EDCS session against cfg's worker
// fleet: one connection and one HELLO per worker, all handshakes completed
// before it returns. roundCap is the most rounds the session may run (the
// worker pins it; the driver's early exit may stop sooner). nHint > 0
// declares the vertex count upfront — for EDCS machines it only pre-sizes
// tables and never changes the result. On any dial or handshake failure the
// already-opened connections are closed and a *WorkerError names the
// machine that failed.
func DialEDCSRounds(ctx context.Context, cfg Config, p edcs.Params, roundCap, nHint int) (*EDCSSession, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := len(cfg.Workers)
	if k == 0 {
		return nil, errors.New("cluster: config needs at least one worker address")
	}
	if roundCap < 1 || roundCap > maxWireRounds {
		return nil, fmt.Errorf("cluster: round cap %d outside [1, %d]", roundCap, maxWireRounds)
	}
	s := &EDCSSession{
		cfg: cfg, k: k, p: p, nHint: nHint, roundCap: roundCap,
		conns:  make([]net.Conn, k),
		addrs:  append([]string(nil), cfg.Workers...),
		spares: append([]string(nil), cfg.Spares...),
	}
	dialer := &net.Dialer{Timeout: cfg.dialTimeout()}
	iot := cfg.ioTimeout()

	var (
		wg   sync.WaitGroup
		errs = make([]error, k)
		sent = make([]int, k)
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(machine int) {
			defer wg.Done()
			addr := cfg.Workers[machine]
			fail := func(kind FailureKind, err error) {
				errs[machine] = &WorkerError{Machine: machine, Addr: addr, Kind: kind, Retryable: kind.retryable(), Err: err}
				obs.Count(cfg.Obs, MetricWorkerFailures, 1)
			}
			obs.Count(cfg.Obs, MetricDialAttempts, 1)
			conn, err := dialer.DialContext(ctx, "tcp", addr)
			if err != nil {
				fail(KindDial, err)
				return
			}
			s.conns[machine] = conn
			stopWatch := closeOnCancel(ctx, conn)
			defer stopWatch()
			h := hello{
				version: protocolVersion, task: taskEDCSRounds,
				machine: machine, k: k, known: nHint > 0, n: nHint,
				edcs: p, rounds: roundCap,
				telem: true, runID: cfg.RunID,
			}
			n, err := writeFrameDeadline(conn, iot, frameHello, encodeHello(h))
			sent[machine] = n
			countSent(cfg.Obs, machine, n, err)
			if err != nil {
				fail(ioKind(err), fmt.Errorf("handshake: %w", err))
				return
			}
			if kind, err := readAck(conn, iot); err != nil {
				fail(kind, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	for _, n := range sent {
		s.helloBytes += n
	}
	return s, nil
}

// Fleet returns the number of workers the session dialed (the maximum k a
// round may use).
func (s *EDCSSession) Fleet() int { return s.k }

// Round runs one round over the first k workers: shard src's edges with
// partition.HashAssign(e, k, seed) — the same seeded routing every runtime
// uses, so the round reproduces an in-process round bit for bit — then
// collect each active machine's EDCS coreset. The returned summaries are
// indexed by machine; the Stats are this round's alone, with measured wire
// bytes. Errors follow run()'s precedence (caller cancellation, source
// error, causally-first worker failure) and poison the session.
func (s *EDCSSession) Round(ctx context.Context, src stream.EdgeSource, k int, seed uint64) ([]stream.Summary, *Stats, error) {
	if s.closed || s.broken {
		return nil, nil, errors.New("cluster: EDCS session is no longer usable")
	}
	if src == nil {
		return nil, nil, errors.New("cluster: nil source")
	}
	if k < 1 || k > s.k {
		return nil, nil, fmt.Errorf("cluster: round k %d outside [1, %d]", k, s.k)
	}
	if s.roundsRun >= s.roundCap {
		return nil, nil, fmt.Errorf("cluster: round cap %d exhausted", s.roundCap)
	}
	start := time.Now()

	_, restartable := src.(stream.Restartable)
	replayable := s.cfg.MaxRetries > 0 && restartable
	iot := s.cfg.ioTimeout()

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var (
		nFinal  int
		nReady  = make(chan struct{})
		results = make(chan workerResult, k)
		wg      sync.WaitGroup
	)
	var (
		failMu sync.Mutex
		fails  []*WorkerError // causal order; fails[0] is the primary
	)
	noteFailure := func(we *WorkerError) {
		failMu.Lock()
		fails = append(fails, we)
		failMu.Unlock()
	}

	// Per-machine goroutines: identical to run()'s post-handshake path, on
	// the session's live connections.
	chans := make([]chan []graph.Edge, k)
	for i := 0; i < k; i++ {
		chans[i] = make(chan []graph.Edge, 4)
		wg.Add(1)
		go func(machine int) {
			defer wg.Done()
			res := workerResult{machine: machine}
			defer func() {
				if res.err != nil {
					// As in run(): a retryable failure in a replayable round
					// leaves the sharder and the healthy machines running —
					// only this machine will be replayed. Either way the
					// drain below discards this machine's queued batches
					// (the sharder owns the close, so the drain terminates).
					if we, ok := res.err.(*WorkerError); !ok || !we.Retryable || !replayable {
						cancelRun()
					}
					for range chans[machine] {
					}
				}
				results <- res
			}()
			conn := s.conns[machine]
			fail := func(kind FailureKind, err error) {
				we := &WorkerError{Machine: machine, Addr: s.addrs[machine], Kind: kind, Retryable: kind.retryable(), Err: err}
				res.err = we
				noteFailure(we)
				obs.Count(s.cfg.Obs, MetricWorkerFailures, 1)
			}
			stopWatch := closeOnCancel(runCtx, conn)
			defer stopWatch()
			roundTrip(runCtx, conn, taskEDCSRounds, iot, chans[machine], nReady, &nFinal, &res, fail, s.cfg.Obs)
		}(i)
	}

	closeAll := func() {
		for _, ch := range chans {
			close(ch)
		}
	}
	total, batches, srcErr, aborted := shardSource(runCtx, src, chans, s.cfg.batchSize(), seed)
	if srcErr != nil || aborted {
		cancelRun() // release goroutines parked on nReady or blocked I/O
		closeAll()
	} else {
		closeAll()
		nFinal = src.NumVertices()
		close(nReady)
	}
	wg.Wait()
	close(results)

	byMachine := make([]workerResult, k)
	for r := range results {
		byMachine[r.machine] = r
	}
	// Error precedence mirrors run(): caller cancellation, source error,
	// then worker failures — replayed in place when every failure is
	// retryable and the session allows it, otherwise joined behind the
	// causally-first one. An unrecovered error leaves connections
	// force-closed or mid-frame, so the session is done for.
	failSession := func(err error) ([]stream.Summary, *Stats, error) {
		s.broken = true
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return failSession(err)
	}
	if srcErr != nil {
		return failSession(srcErr)
	}
	var nRetries int
	var replayedMachines []int
	if len(fails) > 0 {
		if !replayable || !allRetryable(fails) || aborted {
			ferr := joinFailures(fails)
			// As in run(): when only the source's inability to rewind blocked
			// a replay, say so with the typed error naming the source kind.
			if s.cfg.MaxRetries > 0 && !restartable && allRetryable(fails) && !aborted {
				ferr = notRestartable(ferr, src)
			}
			return failSession(ferr)
		}
		failed := make(map[int]*WorkerError, len(fails))
		for _, we := range fails {
			failed[we.Machine] = we
		}
		rp := &replayer{
			cfg: s.cfg, task: taskEDCSRounds, seed: seed, k: k, nFinal: nFinal,
			addrs: s.addrs, spares: &s.spares,
			helloFor: func(m int) hello {
				// The replacement connection owes the current round plus
				// every round after it: shrink the cap so the worker's
				// bookkeeping matches the coordinator's.
				return hello{
					version: protocolVersion, task: taskEDCSRounds,
					machine: m, k: s.k, known: s.nHint > 0, n: s.nHint,
					edcs: s.p, rounds: s.roundCap - s.roundsRun,
					telem: true, runID: s.cfg.RunID,
				}
			},
			retire: func(m int) {
				if c := s.conns[m]; c != nil {
					c.Close()
					s.conns[m] = nil
				}
			},
			keep: func(m int, conn net.Conn) { s.conns[m] = conn },
		}
		var err error
		nRetries, replayedMachines, err = rp.replay(ctx, src, byMachine, failed)
		if err != nil {
			return failSession(err)
		}
	}
	if aborted { // canceled with no surviving cause: report it as such
		return failSession(context.Canceled)
	}

	sums := make([]stream.Summary, k)
	st := &Stats{
		K:                k,
		N:                nFinal,
		EdgesTotal:       total,
		Batches:          batches,
		PartEdges:        make([]int, k),
		StoredEdges:      make([]int, k),
		Live:             make([]int, k),
		Retries:          nRetries,
		ReplayedMachines: replayedMachines,
		MachineStats:     make([]graph.MachineStats, k),
	}
	if s.roundsRun == 0 {
		st.ShardBytes += s.helloBytes
	}
	wasReplayed := make(map[int]bool, len(replayedMachines))
	for _, m := range replayedMachines {
		wasReplayed[m] = true
	}
	for _, r := range byMachine {
		sums[r.machine] = r.sum
		st.PartEdges[r.machine] = r.sum.Edges
		st.StoredEdges[r.machine] = r.sum.Stored
		st.Live[r.machine] = r.sum.Live
		st.CoresetEdges = append(st.CoresetEdges, len(r.sum.Coreset))
		st.CompositionEdges += len(r.sum.Coreset)
		st.TotalCommBytes += r.wire
		if r.wire > st.MaxMachineBytes {
			st.MaxMachineBytes = r.wire
		}
		st.EstCommBytes += r.sum.Bytes
		if r.sum.Bytes > st.EstMaxMachineBytes {
			st.EstMaxMachineBytes = r.sum.Bytes
		}
		st.ShardBytes += r.sent
		ms := graph.MachineStats{Machine: r.machine, EdgesIn: r.sum.Edges}
		if r.telem != nil {
			ms = r.telem.machineStats(r.machine)
		}
		ms.Replayed = wasReplayed[r.machine]
		st.MachineStats[r.machine] = ms
	}
	s.roundsRun++
	st.Duration = time.Since(start)
	return sums, st, nil
}

// RoundsRun returns how many rounds the session has completed.
func (s *EDCSSession) RoundsRun() int { return s.roundsRun }

// Close ends the run: the connections are closed, which workers waiting at
// a round boundary treat as a clean end. It is idempotent — the second and
// later calls return nil — and after a mid-round failure it never masks the
// round's error with teardown noise: a poisoned session's connections are
// already force-closed or mid-frame, so their close errors are expected and
// suppressed, as are double-close artifacts on any path.
func (s *EDCSSession) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, c := range s.conns {
		if c == nil {
			continue
		}
		err := c.Close()
		if err == nil || s.broken || errors.Is(err, net.ErrClosed) {
			continue
		}
		if first == nil {
			first = err
		}
	}
	return first
}
