package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/task"
)

// Solve runs the full pipeline for any registered task across the configured
// workers: hash-shard the source's edges over the k worker connections,
// collect the per-machine summaries the descriptor's builders produced on
// the other side of the wire, and compose the final solution from their
// union — exactly the in-process stream.Solve, with the machines remote. It
// is the single dispatch point of the cluster runtime; the task-named entry
// points below are thin wrappers over it.
func Solve(ctx context.Context, src stream.EdgeSource, cfg Config, d *task.Descriptor, p task.Params) (task.Solution, *Stats, error) {
	if d.Validate != nil {
		if err := d.Validate(p); err != nil {
			return task.Solution{}, nil, err
		}
	}
	start := time.Now()
	sums, st, err := run(ctx, src, cfg, d.Wire, p.EDCS)
	if err != nil {
		return task.Solution{}, nil, err
	}
	for _, s := range sums {
		n := d.CoresetLen(s)
		st.CoresetEdges = append(st.CoresetEdges, n)
		if d.FixedLen != nil {
			st.CoresetFixed = append(st.CoresetFixed, d.FixedLen(s))
		}
		st.CompositionEdges += n
	}
	sol := d.Compose(st.N, sums)
	st.Duration = time.Since(start)
	return sol, st, nil
}

// Matching runs the Theorem 1 pipeline across the configured workers:
// hash-shard the source's edges over the k worker connections, collect the
// per-machine maximum-matching coresets, and compose a maximum matching of
// their union — exactly the in-process stream.Matching, with the machines on
// the other side of a wire.
func Matching(ctx context.Context, src stream.EdgeSource, cfg Config) (*matching.Matching, *Stats, error) {
	sol, st, err := Solve(ctx, src, cfg, task.MustGet("matching"), task.Params{})
	if err != nil {
		return nil, nil, err
	}
	return sol.Matching, st, nil
}

// EDCS runs the EDCS coreset pipeline (arXiv:1711.03076) across the
// configured workers: each worker maintains a dynamic edge-degree
// constrained subgraph of its shard and answers with the sorted H edge
// list; the coordinator composes a maximum matching of the union. The
// degree constraints travel in the HELLO frame, so the worker machines are
// parameterized identically to an in-process run.
func EDCS(ctx context.Context, src stream.EdgeSource, cfg Config, p edcs.Params) (*matching.Matching, *Stats, error) {
	sol, st, err := Solve(ctx, src, cfg, task.MustGet("edcs"), task.Params{EDCS: p})
	if err != nil {
		return nil, nil, err
	}
	return sol.Matching, st, nil
}

// VertexCover runs the Theorem 2 pipeline across the configured workers and
// returns the composed cover.
func VertexCover(ctx context.Context, src stream.EdgeSource, cfg Config) ([]graph.ID, *Stats, error) {
	sol, st, err := Solve(ctx, src, cfg, task.MustGet("vc"), task.Params{})
	if err != nil {
		return nil, nil, err
	}
	return sol.Cover, st, nil
}

// workerResult is one machine's outcome: its decoded summary plus the
// measured wire traffic in both directions, or the error that ended it.
type workerResult struct {
	machine int
	sum     stream.Summary
	wire    int          // measured CORESET frame bytes (worker -> coordinator)
	sent    int          // measured HELLO+SHARD+EOS bytes (coordinator -> worker)
	telem   *workerTelem // decoded TELEM payload; nil when the worker omitted it
	err     error
}

// run drives one cluster run: the caller's goroutine reads the source and
// shards by partition.HashAssign, one goroutine per worker speaks the wire
// protocol (dial, HELLO/ACK, SHARD stream with TCP backpressure, EOS after
// the final vertex count is known, CORESET back). The close(nReady) edge
// publishes nFinal to the connection goroutines exactly as in stream.run.
//
// Failure handling depends on the failure: a retryable worker failure
// (dial, connection drop, stalled frame) in a run configured for replay
// (MaxRetries > 0 with a stream.Restartable source) lets the sharder and
// the healthy machines finish, then replays only the failed machines
// (retry.go); anything else cancels the internal context (stopping the
// sharder at the next batch boundary) and is returned as a typed
// *WorkerError — concurrent real failures joined behind the causally first
// one. Caller cancellation force-closes the connections, so no goroutine
// can stay blocked on the network. Every exit path closes the batch
// channels and waits for the connection goroutines, so run never leaks.
// ep carries the EDCS degree constraints for taskEDCS (zero otherwise).
func run(ctx context.Context, src stream.EdgeSource, cfg Config, tb byte, ep edcs.Params) ([]stream.Summary, *Stats, error) {
	if src == nil {
		return nil, nil, errors.New("cluster: nil source")
	}
	k := len(cfg.Workers)
	if k == 0 {
		return nil, nil, errors.New("cluster: config needs at least one worker address")
	}
	start := time.Now()

	nHint, known := 0, src.KnownUpfront()
	if known {
		nHint = src.NumVertices()
	}
	_, restartable := src.(stream.Restartable)
	replayable := cfg.MaxRetries > 0 && restartable
	iot := cfg.ioTimeout()

	// runCtx is the run's internal lifetime: canceled by the caller's ctx or
	// by the first fatal worker failure, whichever comes first.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var (
		nFinal  int
		nReady  = make(chan struct{})
		results = make(chan workerResult, k)
		wg      sync.WaitGroup
	)
	// fails collects worker failures in causal order: fails[0] is the
	// machine that actually broke first. On a fatal failure cancelRun
	// force-closes every other connection, so the secondary I/O errors that
	// follow must not mask the primary; noteFailure always runs before that
	// cancelRun, which makes "first to record" exactly "first to fail".
	var (
		failMu sync.Mutex
		fails  []*WorkerError
	)
	noteFailure := func(we *WorkerError) {
		failMu.Lock()
		fails = append(fails, we)
		failMu.Unlock()
	}
	chans := make([]chan []graph.Edge, k)
	dialer := &net.Dialer{Timeout: cfg.dialTimeout()}
	for i := 0; i < k; i++ {
		chans[i] = make(chan []graph.Edge, 4)
		wg.Add(1)
		go func(machine int) {
			defer wg.Done()
			res := workerResult{machine: machine}
			defer func() {
				if res.err != nil {
					// A retryable failure in a replayable run must NOT stop
					// the sharder: the healthy machines finish their round
					// and only this machine is replayed. Anything else stops
					// the run. Either way, discard whatever the sharder
					// queued for this machine so it can never block on a
					// dead connection (the sharder owns close(chans[machine]),
					// so this drain always terminates).
					if we, ok := res.err.(*WorkerError); !ok || !we.Retryable || !replayable {
						cancelRun()
					}
					for range chans[machine] {
					}
				}
				results <- res
			}()
			addr := cfg.Workers[machine]
			fail := func(kind FailureKind, err error) {
				we := &WorkerError{Machine: machine, Addr: addr, Kind: kind, Retryable: kind.retryable(), Err: err}
				res.err = we
				noteFailure(we)
				obs.Count(cfg.Obs, MetricWorkerFailures, 1)
			}

			obs.Count(cfg.Obs, MetricDialAttempts, 1)
			conn, err := dialer.DialContext(runCtx, "tcp", addr)
			if err != nil {
				fail(KindDial, err)
				return
			}
			defer conn.Close()
			// Force-close the connection on cancellation so blocked reads and
			// writes fail promptly instead of hanging on a stuck peer.
			stopWatch := closeOnCancel(runCtx, conn)
			defer stopWatch()

			h := hello{version: protocolVersion, task: tb, machine: machine, k: k, known: known, n: nHint, edcs: ep, telem: true, runID: cfg.RunID}
			n, err := writeFrameDeadline(conn, iot, frameHello, encodeHello(h))
			res.sent += n
			countSent(cfg.Obs, machine, n, err)
			if err != nil {
				fail(ioKind(err), fmt.Errorf("handshake: %w", err))
				return
			}
			if kind, err := readAck(conn, iot); err != nil {
				fail(kind, err)
				return
			}
			roundTrip(runCtx, conn, tb, iot, chans[machine], nReady, &nFinal, &res, fail, cfg.Obs)
		}(i)
	}

	closeAll := func() {
		for _, ch := range chans {
			close(ch)
		}
	}

	// Shard stage: identical routing to stream.run — read source batches,
	// assign each edge with the seeded hash, flush per-machine mini-batches
	// as they fill. Sends block on the machine's channel (and transitively on
	// its TCP connection: per-worker backpressure) but never past
	// cancellation.
	total, batches, srcErr, aborted := shardSource(runCtx, src, chans, cfg.batchSize(), cfg.Seed)
	if srcErr != nil || aborted {
		cancelRun() // release goroutines parked on nReady or blocked I/O
		closeAll()
	} else {
		closeAll()
		nFinal = src.NumVertices()
		close(nReady)
	}
	wg.Wait()
	close(results)

	byMachine := make([]workerResult, k)
	for r := range results {
		byMachine[r.machine] = r
	}
	// Error precedence: the caller's cancellation, then a source error, then
	// the worker failures — replayed when every failure is retryable and the
	// run allows it, otherwise joined behind the causally-first one (never
	// one of the secondary errors its cancellation induced on the other
	// connections).
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if srcErr != nil {
		return nil, nil, srcErr
	}
	var nRetries int
	var replayedMachines []int
	if len(fails) > 0 {
		if !replayable || !allRetryable(fails) || aborted {
			ferr := joinFailures(fails)
			// Replay was asked for and every failure was replayable, but the
			// source cannot rewind: name the source kind so the caller knows
			// what to fix, rather than a generic worker failure.
			if cfg.MaxRetries > 0 && !restartable && allRetryable(fails) && !aborted {
				ferr = notRestartable(ferr, src)
			}
			return nil, nil, ferr
		}
		failed := make(map[int]*WorkerError, len(fails))
		for _, we := range fails {
			failed[we.Machine] = we
		}
		addrs := append([]string(nil), cfg.Workers...)
		spares := append([]string(nil), cfg.Spares...)
		rp := &replayer{
			cfg: cfg, task: tb, seed: cfg.Seed, k: k, nFinal: nFinal,
			addrs: addrs, spares: &spares,
			helloFor: func(m int) hello {
				return hello{version: protocolVersion, task: tb, machine: m, k: k, known: known, n: nHint, edcs: ep, telem: true, runID: cfg.RunID}
			},
		}
		var err error
		nRetries, replayedMachines, err = rp.replay(ctx, src, byMachine, failed)
		if err != nil {
			return nil, nil, err
		}
	}
	if aborted { // canceled with no surviving cause: report it as such
		return nil, nil, context.Canceled
	}

	sums := make([]stream.Summary, k)
	st := &Stats{
		K:                k,
		N:                nFinal,
		EdgesTotal:       total,
		Batches:          batches,
		PartEdges:        make([]int, k),
		StoredEdges:      make([]int, k),
		Live:             make([]int, k),
		Retries:          nRetries,
		ReplayedMachines: replayedMachines,
		MachineStats:     make([]graph.MachineStats, k),
	}
	wasReplayed := make(map[int]bool, len(replayedMachines))
	for _, m := range replayedMachines {
		wasReplayed[m] = true
	}
	for _, r := range byMachine {
		sums[r.machine] = r.sum
		st.PartEdges[r.machine] = r.sum.Edges
		st.StoredEdges[r.machine] = r.sum.Stored
		st.Live[r.machine] = r.sum.Live
		st.TotalCommBytes += r.wire
		if r.wire > st.MaxMachineBytes {
			st.MaxMachineBytes = r.wire
		}
		st.EstCommBytes += r.sum.Bytes
		if r.sum.Bytes > st.EstMaxMachineBytes {
			st.EstMaxMachineBytes = r.sum.Bytes
		}
		st.ShardBytes += r.sent
		// Per-machine breakdown: a worker without the telemetry capability
		// still gets an entry (edges from its Summary, phase fields zero).
		ms := graph.MachineStats{Machine: r.machine, EdgesIn: r.sum.Edges}
		if r.telem != nil {
			ms = r.telem.machineStats(r.machine)
		}
		ms.Replayed = wasReplayed[r.machine]
		st.MachineStats[r.machine] = ms
	}
	st.Duration = time.Since(start)
	return sums, st, nil
}

// readAck consumes the worker's handshake reply — an ACK, or the ERROR
// frame it substituted — under the per-frame deadline, and classifies the
// failure: transport errors are retryable kinds, a rejection or unexpected
// frame is KindHandshake (replaying would fail identically).
func readAck(conn net.Conn, iot time.Duration) (FailureKind, error) {
	typ, payload, _, err := readFrameDeadline(conn, iot)
	if err != nil {
		return ioKind(err), fmt.Errorf("handshake: %w", err)
	}
	switch typ {
	case frameAck:
		return KindUnknown, nil
	case frameError:
		return KindHandshake, fmt.Errorf("remote: %s", payload)
	default:
		return KindHandshake, fmt.Errorf("handshake: unexpected frame 0x%02x", typ)
	}
}

// roundTrip speaks the post-handshake frames of one run — or one round of a
// multi-round session — on an open connection: SHARD frames off the batch
// channel (with TCP backpressure), EOS once the sharder publishes the final
// vertex count through the nReady edge, then the CORESET reply. The decoded
// summary and the measured byte counts land in res; failures go through
// fail, which wraps them as *WorkerError with their FailureKind and records
// causal order. Every frame exchange runs under the per-frame IOTimeout, so
// a stalled worker surfaces as a retryable KindDeadline failure rather than
// a hang. On a shard-stream failure the caller's deferred drain consumes
// the remaining batches.
func roundTrip(runCtx context.Context, conn net.Conn, tb byte, iot time.Duration, batches <-chan []graph.Edge, nReady <-chan struct{}, nFinal *int, res *workerResult, fail func(FailureKind, error), sink obs.Sink) {
	var buf []byte
	for batch := range batches {
		buf = graph.AppendEdgeBatch(buf[:0], batch)
		n, err := writeFrameDeadline(conn, iot, frameShard, buf)
		res.sent += n
		countSent(sink, res.machine, n, err)
		if err != nil {
			fail(ioKind(err), fmt.Errorf("shard stream: %w", err))
			return
		}
	}
	select {
	case <-nReady:
	case <-runCtx.Done():
		res.err = runCtx.Err()
		return
	}
	n, err := writeFrameDeadline(conn, iot, frameEOS, binary.AppendUvarint(nil, uint64(*nFinal)))
	res.sent += n
	countSent(sink, res.machine, n, err)
	if err != nil {
		fail(ioKind(err), fmt.Errorf("EOS: %w", err))
		return
	}

	typ, payload, frameLen, err := readFrameDeadline(conn, iot)
	if err != nil {
		fail(ioKind(err), fmt.Errorf("awaiting CORESET: %w", err))
		return
	}
	// A telemetry-capable worker answers EOS with TELEM then CORESET; an old
	// worker sends a bare CORESET and the machine's phase telemetry stays
	// zero. A corrupt TELEM is KindProtocol, like any corrupt frame: a peer
	// that garbles telemetry cannot be trusted about the coreset either.
	if typ == frameTelem {
		t, terr := decodeTelem(payload)
		if terr != nil {
			fail(KindProtocol, terr)
			return
		}
		res.telem = &t
		countTelem(sink, res.machine, frameLen)
		typ, payload, frameLen, err = readFrameDeadline(conn, iot)
		if err != nil {
			fail(ioKind(err), fmt.Errorf("awaiting CORESET: %w", err))
			return
		}
	}
	switch typ {
	case frameCoreset:
		sum, err := decodeSummary(tb, payload)
		if err != nil {
			fail(KindProtocol, err)
			return
		}
		res.sum, res.wire = sum, frameLen
		countReceived(sink, res.machine, frameLen)
	case frameError:
		fail(KindProtocol, fmt.Errorf("remote: %s", payload))
	default:
		fail(KindProtocol, fmt.Errorf("unexpected frame 0x%02x, want CORESET", typ))
	}
}

// countSent reports one coordinator-to-worker frame write to the sink, under
// the writing machine's label: the bytes that made it onto the wire always
// count, the frame only when the write fully succeeded.
func countSent(sink obs.Sink, machine, n int, err error) {
	if sink == nil {
		return
	}
	lbl := strconv.Itoa(machine)
	obs.CountBy(sink, MetricShardBytes, "machine", lbl, int64(n))
	if err == nil {
		obs.CountBy(sink, MetricFramesSent, "machine", lbl, 1)
	}
}

// countReceived reports one CORESET frame read off a worker connection.
func countReceived(sink obs.Sink, machine, frameLen int) {
	if sink == nil {
		return
	}
	lbl := strconv.Itoa(machine)
	obs.CountBy(sink, MetricFramesReceived, "machine", lbl, 1)
	obs.CountBy(sink, MetricCoresetBytes, "machine", lbl, int64(frameLen))
}

// countTelem reports one TELEM frame read off a worker connection. Its bytes
// land in their own metric, never in the coreset communication accounting.
func countTelem(sink obs.Sink, machine, frameLen int) {
	if sink == nil {
		return
	}
	lbl := strconv.Itoa(machine)
	obs.CountBy(sink, MetricFramesReceived, "machine", lbl, 1)
	obs.CountBy(sink, MetricTelemBytes, "machine", lbl, int64(frameLen))
}

// shardSource reads src to exhaustion and routes every edge to the
// per-machine channels with partition.HashAssign(e, len(chans), seed),
// flushing mini-batches of bs edges as they fill. Sends block on a
// machine's channel but never past cancellation. Returns the edge and batch
// totals, a real source error (never a cancellation), and whether the loop
// aborted on runCtx. The caller owns closing the channels.
func shardSource(runCtx context.Context, src stream.EdgeSource, chans []chan []graph.Edge, bs int, seed uint64) (total, batches int, srcErr error, aborted bool) {
	k := len(chans)
	buf := make([]graph.Edge, bs)
	pending := make([][]graph.Edge, k)
	send := func(i int) bool {
		select {
		case chans[i] <- pending[i]:
			pending[i] = nil
			return true
		case <-runCtx.Done():
			return false
		}
	}
shard:
	for {
		if runCtx.Err() != nil {
			aborted = true
			break
		}
		c, err := src.Next(buf)
		if c > 0 {
			total += c
			batches++
			for _, e := range buf[:c] {
				i := partition.HashAssign(e, k, seed)
				if pending[i] == nil {
					pending[i] = make([]graph.Edge, 0, bs)
				}
				pending[i] = append(pending[i], e)
				if len(pending[i]) == bs && !send(i) {
					aborted = true
					break shard
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srcErr = err
			}
			break
		}
	}
	if srcErr == nil && !aborted {
		for i, p := range pending {
			if len(p) > 0 && !send(i) {
				aborted = true
				break
			}
		}
	}
	return total, batches, srcErr, aborted
}

// closeOnCancel force-closes conn when ctx is canceled; the returned stop
// function ends the watch (idempotently) once the connection is done.
//
// The done recheck inside the cancellation case matters for connections
// that outlive the watch (EDCSSession reuses its connections across
// rounds): on a successful round, stop() runs strictly before the round's
// deferred cancel, but a watcher that first wakes with BOTH channels ready
// would pick a select case at random — and must not close a connection the
// next round is about to use.
func closeOnCancel(ctx context.Context, conn net.Conn) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			select {
			case <-done:
				// The conversation finished before the cancellation; leave
				// the connection alone.
			default:
				conn.Close()
			}
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
