package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Worker is a resident coreset worker: it accepts any number of concurrent
// run-assignment connections, hosts one stream.Machine per connection — the
// same incremental builders the in-process runtime uses — and answers each
// with a single CORESET frame. A worker is stateless between runs: all
// per-run state lives on the connection's goroutine and is discarded the
// moment the connection ends, so a coordinator that vanishes mid-shard costs
// the worker nothing but a logged line.
type Worker struct {
	logger *log.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	served atomic.Int64 // runs answered with a CORESET frame
}

// NewWorker returns a worker logging to logger (nil: discard).
func NewWorker(logger *log.Logger) *Worker {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Worker{logger: logger, conns: make(map[net.Conn]struct{})}
}

// Serve accepts run-assignment connections on ln until the listener is
// closed (by Shutdown or externally). It returns nil after a Shutdown-driven
// close and the accept error otherwise.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return errors.New("cluster: worker is shut down")
	}
	w.ln = ln
	w.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			defer func() {
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
				conn.Close()
			}()
			if err := w.handle(conn); err != nil {
				w.logger.Printf("run from %s aborted: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Served returns how many runs this worker has answered.
func (w *Worker) Served() int64 { return w.served.Load() }

// Active returns the number of in-flight run-assignment connections.
func (w *Worker) Active() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.conns)
}

// Shutdown drains the worker: the listener stops accepting, in-flight runs
// finish, and all connection goroutines exit before Shutdown returns. If ctx
// expires first the remaining connections are force-closed (their
// coordinators observe a WorkerError) and Shutdown still waits for the
// goroutines before returning the ctx error.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.mu.Lock()
	w.closed = true
	if w.ln != nil {
		w.ln.Close()
	}
	w.mu.Unlock()

	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		w.mu.Lock()
		for conn := range w.conns {
			conn.Close()
		}
		w.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handle speaks one run-assignment: HELLO/ACK handshake, SHARD frames into
// the machine, EOS, CORESET back. Protocol and decode failures are answered
// with a best-effort ERROR frame before the connection drops. A panic while
// serving one run (a malformed input the validations missed) is confined to
// that connection: the worker is resident and must outlive any single
// coordinator.
func (w *Worker) handle(conn net.Conn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: panic serving run: %v", r)
			_, _ = writeFrame(conn, frameError, []byte(err.Error()))
		}
	}()
	fail := func(err error) error {
		_, _ = writeFrame(conn, frameError, []byte(err.Error()))
		return err
	}

	typ, payload, _, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("reading HELLO: %w", err)
	}
	if typ != frameHello {
		return fail(fmt.Errorf("cluster: expected HELLO, got frame 0x%02x", typ))
	}
	h, err := decodeHello(payload)
	if err != nil {
		return fail(err)
	}
	nHint := 0
	if h.known {
		nHint = h.n
	}
	var m *stream.Machine
	switch h.task {
	case taskMatching:
		m = stream.NewMatchingMachine()
	case taskEDCS:
		m = stream.NewEDCSMachine(nHint, h.edcs)
	default: // taskVC, validated by decodeHello
		m = stream.NewVCMachine(h.k, nHint)
	}
	if _, err := writeFrame(conn, frameAck, []byte{protocolVersion}); err != nil {
		return fmt.Errorf("writing ACK: %w", err)
	}

	for {
		typ, payload, _, err := readFrame(conn)
		if err != nil {
			return fmt.Errorf("machine %d: reading frame: %w", h.machine, err)
		}
		switch typ {
		case frameShard:
			edges, rest, err := graph.DecodeEdgeBatch(payload)
			if err != nil {
				return fail(err)
			}
			if len(rest) != 0 {
				return fail(fmt.Errorf("cluster: %d trailing bytes in SHARD", len(rest)))
			}
			for _, e := range edges {
				m.Add(e)
			}
		case frameEOS:
			n, k := binary.Uvarint(payload)
			if k <= 0 || n > maxVertices {
				// Finish allocates O(n) state; an unvalidated count is the
				// one allocation maxFramePayload cannot bound.
				return fail(errors.New("cluster: corrupt EOS"))
			}
			sum := m.Finish(int(n))
			if _, err := writeFrame(conn, frameCoreset, appendSummary(nil, h.task, sum)); err != nil {
				return fmt.Errorf("machine %d: writing CORESET: %w", h.machine, err)
			}
			w.served.Add(1)
			return nil
		default:
			return fail(fmt.Errorf("cluster: unexpected frame 0x%02x mid-shard", typ))
		}
	}
}
