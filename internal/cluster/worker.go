package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/task"
)

// Worker is a resident coreset worker: it accepts any number of concurrent
// run-assignment connections, hosts one stream.Machine per connection — the
// same incremental builders the in-process runtime uses — and answers each
// with a single CORESET frame. A worker is stateless between runs: all
// per-run state lives on the connection's goroutine and is discarded the
// moment the connection ends, so a coordinator that vanishes mid-shard costs
// the worker nothing but a logged line.
type Worker struct {
	logger *log.Logger
	tracer *obs.Tracer    // nil: silent (Instrument)
	mx     *workerMetrics // nil: unregistered (Instrument)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	served atomic.Int64 // CORESET frames answered (runs, or rounds of multi-round runs)
}

// NewWorker returns a worker logging to logger (nil: discard).
func NewWorker(logger *log.Logger) *Worker {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Worker{logger: logger, conns: make(map[net.Conn]struct{})}
}

// workerMetrics is the worker's registry wiring: frame and byte counters by
// direction, and per-phase wall-time histograms.
type workerMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	phaseDecode         *obs.Histogram
	phaseBuild          *obs.Histogram
	phaseEncode         *obs.Histogram
}

// Instrument attaches a tracer and a metrics registry to the worker; call
// before Serve. A nil tracer keeps spans silent and a nil registry skips
// metric registration entirely, so an uninstrumented worker pays nothing.
// Worker spans are stamped with the run ID each coordinator ships in its
// HELLO, which is what joins a `coresetworker -trace` log to the
// coordinator's trace stream.
func (w *Worker) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	w.tracer = tr
	if reg == nil {
		return
	}
	frames := reg.CounterVec("worker_frames_total", "protocol frames handled, by direction", "dir")
	bytes := reg.CounterVec("worker_bytes_total", "protocol wire bytes (headers included), by direction", "dir")
	phases := reg.HistogramVec("worker_phase_seconds", "per-round phase wall time (shard decode, insert/repair, coreset encode)", obs.DefLatencyBuckets, "phase")
	reg.CounterFunc("worker_runs_total", "CORESET frames answered (runs, or rounds of multi-round runs)", func() float64 {
		return float64(w.served.Load())
	})
	w.mx = &workerMetrics{
		framesIn:    frames.With("in"),
		framesOut:   frames.With("out"),
		bytesIn:     bytes.With("in"),
		bytesOut:    bytes.With("out"),
		phaseDecode: phases.With("decode"),
		phaseBuild:  phases.With("build"),
		phaseEncode: phases.With("encode"),
	}
}

// countIn/countOut record one frame's wire traffic (nil-safe).
func (w *Worker) countIn(n int) {
	if w.mx != nil && n > 0 {
		w.mx.framesIn.Inc()
		w.mx.bytesIn.Add(int64(n))
	}
}

func (w *Worker) countOut(n int) {
	if w.mx != nil && n > 0 {
		w.mx.framesOut.Inc()
		w.mx.bytesOut.Add(int64(n))
	}
}

// observePhases feeds one round's phase times into the histograms (nil-safe).
func (w *Worker) observePhases(t *workerTelem) {
	if w.mx == nil {
		return
	}
	w.mx.phaseDecode.Observe(float64(t.decodeNS) / 1e9)
	w.mx.phaseBuild.Observe(float64(t.buildNS) / 1e9)
	w.mx.phaseEncode.Observe(float64(t.encodeNS) / 1e9)
}

// Serve accepts run-assignment connections on ln until the listener is
// closed (by Shutdown or externally). It returns nil after a Shutdown-driven
// close and the accept error otherwise.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return errors.New("cluster: worker is shut down")
	}
	w.ln = ln
	w.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			defer func() {
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
				conn.Close()
			}()
			if err := w.handle(conn); err != nil {
				w.logger.Printf("run from %s aborted: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Served returns how many CORESET frames this worker has answered — one per
// single-round run, one per completed round of a multi-round assignment.
func (w *Worker) Served() int64 { return w.served.Load() }

// Active returns the number of in-flight run-assignment connections.
func (w *Worker) Active() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.conns)
}

// Shutdown drains the worker: the listener stops accepting, in-flight runs
// finish, and all connection goroutines exit before Shutdown returns. If ctx
// expires first the remaining connections are force-closed (their
// coordinators observe a WorkerError) and Shutdown still waits for the
// goroutines before returning the ctx error.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.mu.Lock()
	w.closed = true
	if w.ln != nil {
		w.ln.Close()
	}
	w.mu.Unlock()

	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		w.mu.Lock()
		for conn := range w.conns {
			conn.Close()
		}
		w.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handle speaks one run-assignment: HELLO/ACK handshake, SHARD frames into
// the machine, EOS, CORESET back. Protocol and decode failures are answered
// with a best-effort ERROR frame before the connection drops. A panic while
// serving one run (a malformed input the validations missed) is confined to
// that connection: the worker is resident and must outlive any single
// coordinator.
func (w *Worker) handle(conn net.Conn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: panic serving run: %v", r)
			_, _ = writeFrame(conn, frameError, []byte(err.Error()))
		}
	}()
	fail := func(err error) error {
		_, _ = writeFrame(conn, frameError, []byte(err.Error()))
		return err
	}

	typ, payload, nr, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("reading HELLO: %w", err)
	}
	w.countIn(nr)
	if typ != frameHello {
		return fail(fmt.Errorf("cluster: expected HELLO, got frame 0x%02x", typ))
	}
	h, err := decodeHello(payload)
	if err != nil {
		return fail(err)
	}
	nHint := 0
	if h.known {
		nHint = h.n
	}
	// The ACK advertises the worker's capabilities (it always supports
	// telemetry); the HELLO's telem bit is what asks it to emit TELEM.
	nw, err := writeFrame(conn, frameAck, []byte{protocolVersion, ackCapTelem})
	if err != nil {
		return fmt.Errorf("writing ACK: %w", err)
	}
	w.countOut(nw)
	// Worker spans join the coordinator's trace stream via the run ID the
	// HELLO carried (empty when the coordinator is not tracing).
	tr := w.tracer.WithRun(h.runID)
	endRun := tr.Span("worker.run", "machine", h.machine, "task", taskName(h.task), "k", h.k)
	defer func() { endRun() }()
	// decodeHello already rejected unknown task bytes, so the registry lookup
	// cannot miss; the descriptor supplies the machine's builder, so the
	// worker itself is task-agnostic.
	d, multiRound, _ := task.ByWire(h.task)
	mk := func() *stream.Machine {
		return stream.NewMachine(d.NewBuilder(h.k, nHint, task.Params{EDCS: h.edcs}))
	}
	if multiRound {
		return w.serveRounds(conn, h, mk, tr)
	}
	m := mk()

	tm := new(workerTelem)
	for {
		typ, payload, nr, err := readFrame(conn)
		if err != nil {
			return fmt.Errorf("machine %d: reading frame: %w", h.machine, err)
		}
		w.countIn(nr)
		done, err := w.consumeFrame(conn, h, m, 0, typ, payload, tm)
		if err != nil || done {
			return err
		}
	}
}

// consumeFrame handles one mid-run frame for the given machine: SHARD feeds
// the builder, EOS finishes it and answers with the CORESET frame (done =
// true), preceded by a TELEM frame when the HELLO requested telemetry.
// Shared by the single-round loop and the multi-round loop, so the two paths
// cannot drift on decoding or validation. tm accumulates the round's phase
// times and build counters; the caller resets it at round boundaries.
func (w *Worker) consumeFrame(conn net.Conn, h hello, m *stream.Machine, round int, typ byte, payload []byte, tm *workerTelem) (done bool, err error) {
	fail := func(err error) error {
		_, _ = writeFrame(conn, frameError, []byte(err.Error()))
		return err
	}
	switch typ {
	case frameShard:
		t0 := time.Now()
		edges, rest, err := graph.DecodeEdgeBatch(payload)
		if err != nil {
			return false, fail(err)
		}
		if len(rest) != 0 {
			return false, fail(fmt.Errorf("cluster: %d trailing bytes in SHARD", len(rest)))
		}
		t1 := time.Now()
		for _, e := range edges {
			m.Add(e)
		}
		tm.decodeNS += uint64(t1.Sub(t0))
		tm.buildNS += uint64(time.Since(t1))
		tm.edgesIn += len(edges)
		return false, nil
	case frameEOS:
		n, k := binary.Uvarint(payload)
		if k <= 0 || n > maxVertices {
			// Finish allocates O(n) state; an unvalidated count is the
			// one allocation maxFramePayload cannot bound.
			return false, fail(errors.New("cluster: corrupt EOS"))
		}
		t0 := time.Now()
		sum := m.Finish(int(n))
		body := appendSummary(nil, h.task, sum)
		tm.encodeNS += uint64(time.Since(t0))
		bt := m.Telem()
		tm.repairIters, tm.removals, tm.peakCoreset = bt.RepairIters, bt.Removals, bt.PeakCoreset
		w.observePhases(tm)
		if h.telem {
			nw, err := writeFrame(conn, frameTelem, appendTelem(nil, *tm))
			if err != nil {
				return false, fmt.Errorf("machine %d round %d: writing TELEM: %w", h.machine, round, err)
			}
			w.countOut(nw)
		}
		nw, err := writeFrame(conn, frameCoreset, body)
		if err != nil {
			return false, fmt.Errorf("machine %d round %d: writing CORESET: %w", h.machine, round, err)
		}
		w.countOut(nw)
		w.served.Add(1)
		return true, nil
	default:
		return false, fail(fmt.Errorf("cluster: unexpected frame 0x%02x mid-shard", typ))
	}
}

// serveRounds speaks a multi-round assignment (internal/rounds): up to
// h.rounds rounds of SHARD*/EOS on this one connection, each answered by one
// CORESET, with a FRESH machine per round (built by mk) — round r's input is
// a different graph (the union of round r-1's coresets across all machines),
// so nothing may carry over. The coordinator cannot know the final round
// count upfront (its early exit fires when the union stops shrinking) and
// may also drop this machine from later rounds (the schedule shrinks k), so
// it ends the assignment by closing the connection at a round boundary; a
// read error before any frame of a new round is therefore a clean end of
// run, while one mid-round is a real abort.
func (w *Worker) serveRounds(conn net.Conn, h hello, mk func() *stream.Machine, tr *obs.Tracer) error {
	for round := 0; round < h.rounds; round++ {
		m := mk()
		tm := new(workerTelem) // fresh per round, like the machine
		inRound := false
		endRound := func(...any) {}
		for {
			typ, payload, nr, err := readFrame(conn)
			if err != nil {
				// Only an orderly close (clean EOF before any frame of a new
				// round) is the documented end-of-run signal; resets,
				// timeouts and mid-header EOFs are real aborts and must be
				// surfaced, exactly as the single-round path surfaces them.
				if !inRound && round > 0 && errors.Is(err, io.EOF) {
					return nil
				}
				return fmt.Errorf("machine %d round %d: reading frame: %w", h.machine, round, err)
			}
			w.countIn(nr)
			if !inRound {
				inRound = true
				endRound = tr.Span("worker.round", "machine", h.machine, "round", round)
			}
			done, err := w.consumeFrame(conn, h, m, round, typ, payload, tm)
			if err != nil {
				return err
			}
			if done {
				endRound("edges", m.Received())
				break
			}
		}
	}
	return nil
}
