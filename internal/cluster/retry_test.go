package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stream"
)

// proxyPlan scripts how the flaky proxy mistreats one connection. The zero
// plan forwards everything faithfully (a healthy connection).
type proxyPlan struct {
	// dropAfterFrames closes both sides after forwarding this many
	// coordinator-to-worker frames (0 = no limit). The HELLO is frame 1, so
	// dropAfterFrames 2 kills the connection on the first SHARD.
	dropAfterFrames int
	// stall changes dropAfterFrames's behavior: instead of closing, the proxy
	// stops forwarding and holds both connections open — a worker that
	// accepted the run and then wedged.
	stall bool
	// dropAfterEOS closes both sides right after forwarding the coordinator's
	// EOS, so the worker computes its coreset but the answer never arrives.
	dropAfterEOS bool
	// dropAfterCoreset closes both sides after forwarding this many
	// worker-to-coordinator CORESET frames (0 = no limit) — a worker that
	// survives exactly one round of a session.
	dropAfterCoreset int
}

// flakyProxy fronts a real worker at backend and misbehaves per connection:
// accepted connection i follows plans[i] (the last plan repeats for any
// further connections, so "fail once, then behave" is plans of length two).
// The returned closer tears down the listener and every tracked connection;
// tests must call it (or register it as cleanup) before asserting goroutine
// baselines.
func flakyProxy(t *testing.T, backend string, plans []proxyPlan) (addr string, closeFn func()) {
	t.Helper()
	if len(plans) == 0 {
		t.Fatal("flakyProxy needs at least one plan")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{ln: ln, done: make(chan struct{})}
	go func() {
		for i := 0; ; i++ {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			p.track(client)
			plan := plans[len(plans)-1]
			if i < len(plans) {
				plan = plans[i]
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				client.Close()
				continue
			}
			p.track(up)
			go p.pipeToWorker(client, up, plan)
			go p.pipeToCoordinator(client, up, plan)
		}
	}()
	return ln.Addr().String(), p.close
}

type proxy struct {
	ln    net.Listener
	done  chan struct{}
	mu    sync.Mutex
	conns []net.Conn
	once  sync.Once
}

func (p *proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *proxy) close() {
	p.once.Do(func() {
		close(p.done)
		p.ln.Close()
		p.mu.Lock()
		for _, c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	})
}

// pipeToWorker relays coordinator-to-worker frames under the plan.
func (p *proxy) pipeToWorker(client, up net.Conn, plan proxyPlan) {
	frames := 0
	for {
		typ, payload, _, err := readFrame(client)
		if err != nil {
			return
		}
		if _, err := writeFrame(up, typ, payload); err != nil {
			return
		}
		frames++
		if plan.dropAfterEOS && typ == frameEOS {
			client.Close()
			up.Close()
			return
		}
		if plan.dropAfterFrames > 0 && frames >= plan.dropAfterFrames {
			if plan.stall {
				<-p.done // wedge: hold both connections open, forward nothing
				return
			}
			client.Close()
			up.Close()
			return
		}
	}
}

// pipeToCoordinator relays worker-to-coordinator frames under the plan.
func (p *proxy) pipeToCoordinator(client, up net.Conn, plan proxyPlan) {
	coresets := 0
	for {
		typ, payload, _, err := readFrame(up)
		if err != nil {
			return
		}
		if _, err := writeFrame(client, typ, payload); err != nil {
			return
		}
		if typ == frameCoreset {
			coresets++
			if plan.dropAfterCoreset > 0 && coresets >= plan.dropAfterCoreset {
				client.Close()
				up.Close()
				return
			}
		}
	}
}

func containsInt(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// deadAddr returns a valid loopback address with nothing listening on it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// assertSummariesEqual is the replay acceptance bar: the disturbed run's
// summaries must be deep-equal to the undisturbed run's — same coresets, same
// per-machine accounting — because replay reproduces the exact shard.
func assertSummariesEqual(t *testing.T, got, want []stream.Summary) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("machine count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Coreset, want[i].Coreset) {
			t.Fatalf("machine %d coreset diverged after replay", i)
		}
		if got[i].Edges != want[i].Edges || got[i].Stored != want[i].Stored || got[i].Live != want[i].Live {
			t.Fatalf("machine %d accounting diverged: got {%d %d %d} want {%d %d %d}",
				i, got[i].Edges, got[i].Stored, got[i].Live, want[i].Edges, want[i].Stored, want[i].Live)
		}
	}
}

// TestReplayRecovery drives the failure modes a worker can inflict mid-round
// through the replay path and demands full recovery with bit-identical
// results: crash during the shard stream, crash after EOS (the coreset never
// arrives), and a stall that only the IOTimeout can detect.
func TestReplayRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan proxyPlan
		cfg  func(c *Config)
		// lax allows extra machines in ReplayedMachines: a short IOTimeout
		// can also trip on healthy-but-slow machines (e.g. under -race), and
		// those replays must recover too.
		lax bool
	}{
		{name: "crash-during-shard", plan: proxyPlan{dropAfterFrames: 2}},
		{name: "crash-awaiting-coreset", plan: proxyPlan{dropAfterEOS: true}},
		{name: "stall-hits-deadline", plan: proxyPlan{dropAfterFrames: 1, stall: true},
			cfg: func(c *Config) { c.IOTimeout = 2 * time.Second }, lax: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			backends := startWorkers(t, 3)
			proxyAddr, closeProxy := flakyProxy(t, backends[1], []proxyPlan{tc.plan, {}})
			t.Cleanup(closeProxy)

			g := gen.GNP(3000, 20.0/3000, rng.New(11))
			cfg := Config{
				Workers: []string{backends[0], proxyAddr, backends[2]},
				Seed:    11, BatchSize: 64,
				MaxRetries: 2, RetryBackoff: time.Millisecond,
			}
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			var sums []stream.Summary
			var st *Stats
			err := runWithTimeout(t, 30*time.Second, func() error {
				var err error
				sums, st, err = run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
				return err
			})
			if err != nil {
				t.Fatalf("replay did not recover: %v", err)
			}
			if st.Retries < 1 {
				t.Fatalf("Retries = %d, want >= 1", st.Retries)
			}
			if tc.lax {
				if !containsInt(st.ReplayedMachines, 1) {
					t.Fatalf("ReplayedMachines = %v, want machine 1 replayed", st.ReplayedMachines)
				}
			} else if !reflect.DeepEqual(st.ReplayedMachines, []int{1}) {
				t.Fatalf("ReplayedMachines = %v, want [1]", st.ReplayedMachines)
			}

			// Oracle: the same run against three healthy workers, undisturbed.
			want, wantSt, err := run(context.Background(), stream.NewGraphSource(g),
				Config{Workers: backends, Seed: 11, BatchSize: 64}, taskMatching, edcs.Params{})
			if err != nil {
				t.Fatal(err)
			}
			assertSummariesEqual(t, sums, want)
			if st.EdgesTotal != wantSt.EdgesTotal {
				t.Fatalf("EdgesTotal %d, want %d", st.EdgesTotal, wantSt.EdgesTotal)
			}
			// Accounting honesty: the replayed machine's failed attempt still
			// cost wire bytes, so the disturbed run must report MORE shard
			// traffic than the clean one, never less.
			if st.ShardBytes <= wantSt.ShardBytes {
				t.Fatalf("ShardBytes %d not > undisturbed %d despite a replayed round", st.ShardBytes, wantSt.ShardBytes)
			}
		})
	}
}

// TestReplayDialRefusedUsesSpare: a worker whose process is gone for good
// (its address refuses dials) burns one replay attempt on the original
// address, then recovers on a Config.Spares standby.
func TestReplayDialRefusedUsesSpare(t *testing.T) {
	backends := startWorkers(t, 2)
	g := gen.GNP(2000, 16.0/2000, rng.New(13))
	cfg := Config{
		Workers: []string{backends[0], deadAddr(t)},
		Spares:  []string{backends[1]},
		Seed:    13, BatchSize: 64,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	}
	var sums []stream.Summary
	var st *Stats
	err := runWithTimeout(t, 30*time.Second, func() error {
		var err error
		sums, st, err = run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
		return err
	})
	if err != nil {
		t.Fatalf("spare did not recover the run: %v", err)
	}
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (one refused re-dial, one spare)", st.Retries)
	}
	if !reflect.DeepEqual(st.ReplayedMachines, []int{1}) {
		t.Fatalf("ReplayedMachines = %v, want [1]", st.ReplayedMachines)
	}
	// The result must not depend on which address served machine 1.
	want, _, err := run(context.Background(), stream.NewGraphSource(g),
		Config{Workers: backends, Seed: 13, BatchSize: 64}, taskMatching, edcs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	assertSummariesEqual(t, sums, want)
}

// TestRetriesExhausted: when every replay attempt fails, the run must end
// with a typed, terminal error — errors.Is finds ErrRetriesExhausted,
// errors.As finds the machine, and Retryable is false.
func TestRetriesExhausted(t *testing.T) {
	backends := startWorkers(t, 1)
	g := gen.GNP(800, 0.01, rng.New(17))
	cfg := Config{
		Workers: []string{backends[0], deadAddr(t)},
		Seed:    17, BatchSize: 64,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
	}
	err := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
		return err
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if we.Machine != 1 || we.Retryable {
		t.Fatalf("terminal error = machine %d retryable %v, want machine 1, not retryable", we.Machine, we.Retryable)
	}
}

// opaqueSource hides the Restart method of its inner source, making it
// non-restartable.
type opaqueSource struct{ inner stream.EdgeSource }

func (s *opaqueSource) Next(buf []graph.Edge) (int, error) { return s.inner.Next(buf) }
func (s *opaqueSource) NumVertices() int                   { return s.inner.NumVertices() }
func (s *opaqueSource) KnownUpfront() bool                 { return s.inner.KnownUpfront() }

// TestReplayNeedsRestartableSource: MaxRetries without a restartable source
// must keep the pre-replay fail-fast behavior — a typed error, not a hang and
// not a bogus replay.
func TestReplayNeedsRestartableSource(t *testing.T) {
	backends := startWorkers(t, 1)
	crash := crashingWorker(t, 1)
	g := gen.GNP(2000, 0.01, rng.New(19))
	cfg := Config{Workers: []string{backends[0], crash}, Seed: 19, BatchSize: 64,
		MaxRetries: 2, RetryBackoff: time.Millisecond}
	err := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := run(context.Background(), &opaqueSource{inner: stream.NewGraphSource(g)}, cfg, taskMatching, edcs.Params{})
		return err
	})
	var we *WorkerError
	if !errors.As(err, &we) || we.Machine != 1 {
		t.Fatalf("err = %v, want *WorkerError for machine 1", err)
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v: replay must not have been attempted without a restartable source", err)
	}
}

// TestIOTimeoutStalledWorker: a worker that accepts the run and then wedges
// must surface as a retryable KindDeadline *WorkerError within the IOTimeout
// — never a hang — even with replay disabled.
func TestIOTimeoutStalledWorker(t *testing.T) {
	backends := startWorkers(t, 2)
	proxyAddr, closeProxy := flakyProxy(t, backends[1], []proxyPlan{{dropAfterFrames: 1, stall: true}})
	t.Cleanup(closeProxy)
	g := gen.GNP(500, 0.02, rng.New(23))
	start := time.Now()
	err := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := Matching(context.Background(), stream.NewGraphSource(g),
			Config{Workers: []string{backends[0], proxyAddr}, Seed: 23, IOTimeout: 2 * time.Second})
		return err
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if we.Kind != KindDeadline || !we.Retryable {
		t.Fatalf("stalled worker classified %s retryable=%v, want deadline retryable", we.Kind, we.Retryable)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("stall took %v to surface; the IOTimeout did not fire", d)
	}
}

// TestJoinFailuresPrimaryFirst: joined concurrent failures must lead with the
// causally-first one and drop teardown-induced secondaries, so errors.Is /
// errors.As classify on the real cause — and never on context.Canceled or
// net.ErrClosed noise from the coordinator's own cleanup.
func TestJoinFailuresPrimaryFirst(t *testing.T) {
	primary := &WorkerError{Machine: 2, Addr: "a", Kind: KindConn, Retryable: true, Err: io.ErrUnexpectedEOF}
	induced := &WorkerError{Machine: 0, Addr: "b", Kind: KindConn, Retryable: true, Err: fmt.Errorf("write: %w", net.ErrClosed)}
	canceled := &WorkerError{Machine: 1, Addr: "c", Kind: KindConn, Retryable: true, Err: context.Canceled}
	genuine := &WorkerError{Machine: 3, Addr: "d", Kind: KindDeadline, Retryable: true, Err: os.ErrDeadlineExceeded}

	err := joinFailures([]*WorkerError{primary, induced, canceled, genuine})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if we.Machine != 2 {
		t.Fatalf("errors.As found machine %d, want the causally-first machine 2", we.Machine)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want Is(io.ErrUnexpectedEOF) via the primary", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v: the genuine secondary failure was dropped", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v: teardown-induced cancellation leaked into the joined error", err)
	}
	if errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v: teardown-induced close leaked into the joined error", err)
	}
	// A single failure joins to itself, unadorned.
	if err := joinFailures([]*WorkerError{primary}); err != error(primary) {
		t.Fatalf("single failure joined to %v, want the failure itself", err)
	}
	if err := joinFailures(nil); err != nil {
		t.Fatalf("no failures joined to %v, want nil", err)
	}
}

// TestConcurrentWorkerFailures: two workers crashing in the same run must
// both fail the run with a *WorkerError primary, and the error must not read
// as a cancellation.
func TestConcurrentWorkerFailures(t *testing.T) {
	backends := startWorkers(t, 1)
	crashA := crashingWorker(t, 0)
	crashB := crashingWorker(t, 0)
	g := gen.GNP(2000, 0.01, rng.New(29))
	err := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := Matching(context.Background(), stream.NewGraphSource(g),
			Config{Workers: []string{backends[0], crashA, crashB}, Seed: 29, BatchSize: 64})
		return err
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if we.Machine == 0 {
		t.Fatalf("primary failure attributed to the healthy machine 0: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v reads as a cancellation", err)
	}
}

// sessionSeeds are the per-round sharding seeds the session replay tests
// share with their in-process oracle.
var sessionSeeds = []uint64{31, 32, 33}

// TestSessionReplayEveryRound is the tentpole acceptance test: a three-round
// EDCS session that loses its machine-1 connection EVERY round — mid-shard in
// round 0, then a connection that dies after each CORESET — must finish with
// per-round coresets deep-equal to the in-process streaming oracle, with each
// round's Stats recording its replay.
func TestSessionReplayEveryRound(t *testing.T) {
	backends := startWorkers(t, 2)
	// Connection 0 dies on its first SHARD frame; every replacement serves
	// exactly one CORESET and dies, so every round needs a replay.
	proxyAddr, closeProxy := flakyProxy(t, backends[1],
		[]proxyPlan{{dropAfterFrames: 2}, {dropAfterCoreset: 1}})
	t.Cleanup(closeProxy)

	const rounds = 3
	g := gen.GNP(600, 30.0/600, rng.New(37))
	p := edcs.ParamsForBeta(16)
	cfg := Config{
		Workers:      []string{backends[0], proxyAddr},
		BatchSize:    64,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}
	sess, err := DialEDCSRounds(context.Background(), cfg, p, rounds, g.N)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	input := []graph.Edge(g.Edges)
	for r := 0; r < rounds; r++ {
		seed := sessionSeeds[r]
		var sums []stream.Summary
		var st *Stats
		err := runWithTimeout(t, 30*time.Second, func() error {
			var err error
			sums, st, err = sess.Round(context.Background(), stream.NewSliceSource(g.N, input), 2, seed)
			return err
		})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if st.Retries < 1 {
			t.Fatalf("round %d: Retries = %d, want >= 1 (the worker is lost every round)", r, st.Retries)
		}
		if !reflect.DeepEqual(st.ReplayedMachines, []int{1}) {
			t.Fatalf("round %d: ReplayedMachines = %v, want [1]", r, st.ReplayedMachines)
		}
		// In-process oracle for the same (input, k, seed).
		want, _, err := stream.EDCSSummaries(context.Background(),
			stream.NewSliceSource(g.N, input), stream.Config{K: 2, Seed: seed, BatchSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSummariesEqual(t, sums, want)

		// Next round's input is the union of this round's coresets, in
		// machine order — exactly what internal/rounds feeds back.
		input = nil
		for _, s := range sums {
			input = append(input, s.Coreset...)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close after a replayed session: %v", err)
	}
}

// TestSessionCloseIdempotent: Close must be safe to call twice on a healthy
// session, and the session must be unusable afterwards.
func TestSessionCloseIdempotent(t *testing.T) {
	backends := startWorkers(t, 2)
	g := gen.GNP(400, 0.05, rng.New(41))
	sess, err := DialEDCSRounds(context.Background(), Config{Workers: backends}, edcs.ParamsForBeta(16), 2, g.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Round(context.Background(), stream.NewGraphSource(g), 2, 41); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v (must be idempotent)", err)
	}
	if _, _, err := sess.Round(context.Background(), stream.NewGraphSource(g), 2, 41); err == nil {
		t.Fatal("Round succeeded on a closed session")
	}
}

// TestSessionCloseAfterFailure: a session poisoned by a mid-round worker
// failure must keep the round's error as the only error — Close returns nil
// (twice), never teardown noise that could mask the cause.
func TestSessionCloseAfterFailure(t *testing.T) {
	backends := startWorkers(t, 2)
	proxyAddr, closeProxy := flakyProxy(t, backends[1], []proxyPlan{{dropAfterFrames: 2}})
	t.Cleanup(closeProxy)
	g := gen.GNP(2000, 16.0/2000, rng.New(43))
	// Replay disabled: the mid-round failure must poison the session.
	sess, err := DialEDCSRounds(context.Background(), Config{Workers: []string{backends[0], proxyAddr}, BatchSize: 64},
		edcs.ParamsForBeta(16), 2, g.N)
	if err != nil {
		t.Fatal(err)
	}
	roundErr := runWithTimeout(t, 30*time.Second, func() error {
		_, _, err := sess.Round(context.Background(), stream.NewGraphSource(g), 2, 43)
		return err
	})
	var we *WorkerError
	if !errors.As(roundErr, &we) || we.Machine != 1 {
		t.Fatalf("Round err = %v, want *WorkerError for machine 1", roundErr)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close after mid-round failure: %v (must not mask the round error)", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("double Close after failure: %v", err)
	}
}

// TestNoGoroutineLeaksReplay: every recovery path — successful replay, spare
// rotation, exhausted retries, deadline-detected stall — must return the
// process to its goroutine baseline.
func TestNoGoroutineLeaksReplay(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addrs, shutdown, err := ServeLoopback(3)
	if err != nil {
		t.Fatal(err)
	}
	proxyAddr, closeProxy := flakyProxy(t, addrs[1], []proxyPlan{{dropAfterFrames: 2}, {}})
	stallAddr, closeStall := flakyProxy(t, addrs[2], []proxyPlan{{dropAfterFrames: 1, stall: true}, {}})
	g := gen.GNP(1500, 0.01, rng.New(47))

	// Successful replay after a crash.
	if _, _, err := Matching(context.Background(), stream.NewGraphSource(g),
		Config{Workers: []string{addrs[0], proxyAddr}, Seed: 47, BatchSize: 64,
			MaxRetries: 2, RetryBackoff: time.Millisecond}); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	// Successful replay after a stall (deadline detection).
	if _, _, err := Matching(context.Background(), stream.NewGraphSource(g),
		Config{Workers: []string{addrs[0], stallAddr}, Seed: 47, BatchSize: 64,
			IOTimeout: 2 * time.Second, MaxRetries: 2, RetryBackoff: time.Millisecond}); err != nil {
		t.Fatalf("stall replay run: %v", err)
	}
	// Exhausted retries.
	if _, _, err := Matching(context.Background(), stream.NewGraphSource(g),
		Config{Workers: []string{addrs[0], deadAddr(t)}, Seed: 47, BatchSize: 64,
			MaxRetries: 1, RetryBackoff: time.Millisecond}); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("exhausted run err = %v", err)
	}

	closeProxy()
	closeStall()
	shutdown()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle: %d (baseline %d)\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
