package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stream"
)

// memSink is a minimal obs.Sink capturing counts for assertions.
type memSink struct {
	mu     sync.Mutex
	counts map[string]int64
}

func newMemSink() *memSink { return &memSink{counts: make(map[string]int64)} }

func (s *memSink) Count(name string, delta int64) {
	s.mu.Lock()
	s.counts[name] += delta
	s.mu.Unlock()
}

func (s *memSink) Observe(name string, v float64) {}

func (s *memSink) get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// TestObsCleanRun: an undisturbed run reports its wire activity through the
// injected sink — dials, frames in both directions, shard and coreset bytes —
// and none of the failure/replay counters move.
func TestObsCleanRun(t *testing.T) {
	backends := startWorkers(t, 3)
	sink := newMemSink()
	g := gen.GNP(1500, 12.0/1500, rng.New(7))
	_, st, err := run(context.Background(), stream.NewGraphSource(g),
		Config{Workers: backends, Seed: 7, BatchSize: 64, Obs: sink}, taskMatching, edcs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.get(MetricDialAttempts); got != 3 {
		t.Errorf("%s = %d, want 3", MetricDialAttempts, got)
	}
	if got := sink.get(MetricFramesReceived); got != 6 {
		t.Errorf("%s = %d, want 6 (one TELEM + one CORESET per machine)", MetricFramesReceived, got)
	}
	// The sink's byte accounting must agree with the Stats the run reports.
	if got := sink.get(MetricShardBytes); got != int64(st.ShardBytes) {
		t.Errorf("%s = %d, want Stats.ShardBytes = %d", MetricShardBytes, got, st.ShardBytes)
	}
	if got := sink.get(MetricCoresetBytes); got != int64(st.TotalCommBytes) {
		t.Errorf("%s = %d, want Stats.TotalCommBytes = %d", MetricCoresetBytes, got, st.TotalCommBytes)
	}
	if sink.get(MetricFramesSent) < 3+3 { // at least one HELLO and one EOS per machine
		t.Errorf("%s = %d, want >= 6", MetricFramesSent, sink.get(MetricFramesSent))
	}
	for _, name := range []string{MetricWorkerFailures, MetricRetries, MetricReplays, MetricBackoffSleeps} {
		if got := sink.get(name); got != 0 {
			t.Errorf("%s = %d on a clean run, want 0", name, got)
		}
	}
}

// TestObsReplayCounters is the observability acceptance bar for fault
// tolerance: a run with an injected worker kill mid-round must increment
// cluster_replays_total (plus the failure, retry and backoff counters) while
// still recovering.
func TestObsReplayCounters(t *testing.T) {
	backends := startWorkers(t, 3)
	// Worker 1's connection dies on the first SHARD frame; the second
	// connection (the replay) behaves.
	proxyAddr, closeProxy := flakyProxy(t, backends[1], []proxyPlan{{dropAfterFrames: 2}, {}})
	t.Cleanup(closeProxy)

	sink := newMemSink()
	g := gen.GNP(3000, 20.0/3000, rng.New(11))
	cfg := Config{
		Workers: []string{backends[0], proxyAddr, backends[2]},
		Seed:    11, BatchSize: 64,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Obs: sink,
	}
	var st *Stats
	err := runWithTimeout(t, 30*time.Second, func() error {
		var err error
		_, st, err = run(context.Background(), stream.NewGraphSource(g), cfg, taskMatching, edcs.Params{})
		return err
	})
	if err != nil {
		t.Fatalf("replay did not recover: %v", err)
	}
	if got := sink.get(MetricReplays); got < 1 {
		t.Errorf("%s = %d after an injected worker kill, want >= 1", MetricReplays, got)
	}
	if got := sink.get(MetricWorkerFailures); got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricWorkerFailures, got)
	}
	if got := sink.get(MetricRetries); got != int64(st.Retries) {
		t.Errorf("%s = %d, want Stats.Retries = %d", MetricRetries, got, st.Retries)
	}
	if got := sink.get(MetricBackoffSleeps); got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricBackoffSleeps, got)
	}
	// Replay re-dials: the original 3 fan-out dials plus at least one more.
	if got := sink.get(MetricDialAttempts); got < 4 {
		t.Errorf("%s = %d, want >= 4", MetricDialAttempts, got)
	}
}
