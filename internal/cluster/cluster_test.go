package cluster

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/vcover"
)

// startWorkers brings up k in-process workers on loopback TCP and returns
// their addresses; they are torn down when the test ends.
func startWorkers(t *testing.T, k int) []string {
	t.Helper()
	addrs, shutdown, err := ServeLoopback(k)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	return addrs
}

func parityGraph(seed uint64, n int, deg float64) *graph.Graph {
	return gen.GNP(n, deg/float64(n), rng.New(seed))
}

func batchHashParts(g *graph.Graph, k int, seed uint64) [][]graph.Edge {
	return partition.ByAssignment(g.Edges, k, partition.HashAssignAll(g.Edges, k, seed))
}

// TestSeedParityAcrossRuntimes is the acceptance gate for the cluster
// runtime: for a fixed (graph, seed, k), the batch pipeline on the hash
// k-partitioning, the in-process stream pipeline, and the cluster runtime
// must produce deep-equal per-machine coresets and identical composed
// solutions — for both tasks, across several seeds. (go test -race keeps it
// race-clean.)
func TestSeedParityAcrossRuntimes(t *testing.T) {
	const k = 4
	addrs := startWorkers(t, k)
	ctx := context.Background()
	edcsP := edcs.ParamsForBeta(16)
	for _, tc := range []struct {
		task string
		n    int
		deg  float64
	}{
		{"matching", 800, 8},
		{"vc", 700, 40},          // high degree so VC peeling fires several levels
		{"edcs", 600, 30},        // dense enough that the EDCS actually trims
		{"edcs-rounds", 600, 30}, // multi-round: reused connections, per-round parity
	} {
		for seed := uint64(1); seed <= 4; seed++ {
			g := parityGraph(seed, tc.n, tc.deg)
			cfg := Config{Workers: addrs, Seed: seed}
			parts := batchHashParts(g, k, seed)
			src := stream.NewGraphSource(g)

			switch tc.task {
			case "matching":
				sums, _, err := run(ctx, src, cfg, taskMatching, edcs.Params{})
				if err != nil {
					t.Fatalf("matching seed %d: %v", seed, err)
				}
				// Per-machine coresets survive the wire deep-equal to the
				// batch oracle on the same partition.
				for i, p := range parts {
					want := core.MatchingCoreset(g.N, p)
					if !reflect.DeepEqual(sums[i].Coreset, want) {
						t.Fatalf("seed %d machine %d: cluster coreset differs from batch", seed, i)
					}
					if sums[i].Edges != len(p) {
						t.Fatalf("seed %d machine %d: worker received %d edges, oracle part has %d", seed, i, sums[i].Edges, len(p))
					}
				}
				// Composed solutions agree across all three runtimes.
				cm, cst, err := Matching(ctx, stream.NewGraphSource(g), cfg)
				if err != nil {
					t.Fatalf("matching seed %d: %v", seed, err)
				}
				if err := matching.Verify(g.N, g.Edges, cm); err != nil {
					t.Fatalf("seed %d: cluster matching invalid: %v", seed, err)
				}
				sm, sst, err := stream.Matching(stream.NewGraphSource(g), stream.Config{K: k, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !reflect.DeepEqual(cm.Edges(), sm.Edges()) {
					t.Fatalf("seed %d: cluster matching differs from stream", seed)
				}
				checkMeasuredBytes(t, cst, sst.TotalCommBytes)

			case "edcs":
				sums, _, err := run(ctx, src, cfg, taskEDCS, edcsP)
				if err != nil {
					t.Fatalf("edcs seed %d: %v", seed, err)
				}
				// Per-machine EDCSs survive the wire deep-equal to the batch
				// oracle on the same partition.
				for i, p := range parts {
					want := edcs.Coreset(g.N, p, edcsP)
					if !reflect.DeepEqual(sums[i].Coreset, want) {
						t.Fatalf("seed %d machine %d: cluster EDCS differs from batch", seed, i)
					}
				}
				cm, cst, err := EDCS(ctx, stream.NewGraphSource(g), cfg, edcsP)
				if err != nil {
					t.Fatalf("edcs seed %d: %v", seed, err)
				}
				if err := matching.Verify(g.N, g.Edges, cm); err != nil {
					t.Fatalf("seed %d: cluster EDCS matching invalid: %v", seed, err)
				}
				sm, sst, err := stream.EDCS(stream.NewGraphSource(g), stream.Config{K: k, Seed: seed}, edcsP)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !reflect.DeepEqual(cm.Edges(), sm.Edges()) {
					t.Fatalf("seed %d: cluster EDCS matching differs from stream", seed)
				}
				checkMeasuredBytes(t, cst, sst.TotalCommBytes)

			case "edcs-rounds":
				// Multi-round MPC: one session, one HELLO, two rounds over the
				// same reused connections. Every round must deep-equal the
				// in-process streaming oracle for the same (input, k, seed) —
				// including round 1, whose input is round 0's union — and every
				// round's bytes are measured.
				sess, err := DialEDCSRounds(ctx, cfg, edcsP, 2, g.N)
				if err != nil {
					t.Fatalf("edcs-rounds seed %d: %v", seed, err)
				}
				input := g.Edges
				for round, rk := range []int{k, 2} {
					rseed := seed + uint64(round)*977
					sums, rst, err := sess.Round(ctx, stream.NewSliceSource(g.N, input), rk, rseed)
					if err != nil {
						t.Fatalf("edcs-rounds seed %d round %d: %v", seed, round, err)
					}
					osums, ost, err := stream.EDCSSummaries(ctx, stream.NewSliceSource(g.N, input),
						stream.Config{K: rk, Seed: rseed}, edcsP)
					if err != nil {
						t.Fatalf("edcs-rounds seed %d round %d oracle: %v", seed, round, err)
					}
					var union []graph.Edge
					for i := range sums {
						if !reflect.DeepEqual(sums[i].Coreset, osums[i].Coreset) {
							t.Fatalf("seed %d round %d machine %d: session EDCS differs from stream", seed, round, i)
						}
						if sums[i].Edges != osums[i].Edges || sums[i].Stored != osums[i].Stored {
							t.Fatalf("seed %d round %d machine %d: accounting differs (%d/%d vs %d/%d)",
								seed, round, i, sums[i].Edges, sums[i].Stored, osums[i].Edges, osums[i].Stored)
						}
						union = append(union, sums[i].Coreset...)
					}
					checkMeasuredBytes(t, rst, ost.TotalCommBytes)
					input = union
				}
				if sess.RoundsRun() != 2 {
					t.Fatalf("seed %d: session ran %d rounds, want 2", seed, sess.RoundsRun())
				}
				// The cap is exhausted: a third round must be refused without
				// touching the wire.
				if _, _, err := sess.Round(ctx, stream.NewSliceSource(g.N, input), 1, seed); err == nil {
					t.Fatalf("seed %d: round beyond the cap accepted", seed)
				}
				if err := sess.Close(); err != nil {
					t.Fatalf("seed %d: close: %v", seed, err)
				}

			case "vc":
				sums, _, err := run(ctx, src, cfg, taskVC, edcs.Params{})
				if err != nil {
					t.Fatalf("vc seed %d: %v", seed, err)
				}
				for i, p := range parts {
					want := core.ComputeVCCoreset(g.N, k, p)
					if !reflect.DeepEqual(sums[i].VC, want) {
						t.Fatalf("seed %d machine %d: cluster VC coreset differs from batch:\ngot  %+v\nwant %+v", seed, i, sums[i].VC, want)
					}
				}
				cc, cst, err := VertexCover(ctx, stream.NewGraphSource(g), cfg)
				if err != nil {
					t.Fatalf("vc seed %d: %v", seed, err)
				}
				if err := vcover.Verify(g.N, g.Edges, cc); err != nil {
					t.Fatalf("seed %d: cluster cover infeasible: %v", seed, err)
				}
				sc, sst, err := stream.VertexCover(stream.NewGraphSource(g), stream.Config{K: k, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !reflect.DeepEqual(cc, sc) {
					t.Fatalf("seed %d: cluster cover differs from stream (%d vs %d vertices)", seed, len(cc), len(sc))
				}
				checkMeasuredBytes(t, cst, sst.TotalCommBytes)
			}
		}
	}
}

// checkMeasuredBytes asserts the acceptance criterion on wire accounting:
// measured bytes are real (nonzero), the simulated estimate matches the
// in-process runtime's accounting exactly, and measured stays within 2x of
// the estimate (the slack is frame headers and per-machine stats varints).
func checkMeasuredBytes(t *testing.T, st *Stats, streamEstimate int) {
	t.Helper()
	if st.TotalCommBytes <= 0 {
		t.Fatal("measured TotalCommBytes is zero")
	}
	if st.EstCommBytes != streamEstimate {
		t.Fatalf("cluster estimate %d differs from stream accounting %d", st.EstCommBytes, streamEstimate)
	}
	if st.TotalCommBytes < st.EstCommBytes || st.TotalCommBytes > 2*st.EstCommBytes {
		t.Fatalf("measured %d bytes not within [est, 2*est] of estimate %d", st.TotalCommBytes, st.EstCommBytes)
	}
	if st.MaxMachineBytes < st.EstMaxMachineBytes {
		t.Fatalf("measured max %d below estimated max %d", st.MaxMachineBytes, st.EstMaxMachineBytes)
	}
	if st.ShardBytes <= 0 {
		t.Fatal("no coordinator-to-worker bytes measured")
	}
}

// unknownNSource hides the vertex count until end of stream, like a
// headerless edge-list file.
type unknownNSource struct{ inner stream.EdgeSource }

func (s *unknownNSource) Next(buf []graph.Edge) (int, error) { return s.inner.Next(buf) }
func (s *unknownNSource) NumVertices() int                   { return s.inner.NumVertices() }
func (s *unknownNSource) KnownUpfront() bool                 { return false }

// TestClusterUnknownN: when n is not declared upfront the workers must fall
// back to the batch peel at EOS (same as the in-process builders) and still
// match the stream pipeline exactly.
func TestClusterUnknownN(t *testing.T) {
	const k = 3
	g := parityGraph(9, 400, 30)
	addrs := startWorkers(t, k)
	cc, _, err := VertexCover(context.Background(), &unknownNSource{stream.NewGraphSource(g)}, Config{Workers: addrs, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := stream.VertexCover(&unknownNSource{stream.NewGraphSource(g)}, stream.Config{K: k, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cc, sc) {
		t.Fatal("cluster cover differs from stream with undeclared n")
	}
}

// TestClusterEmptyStream: zero edges must compose empty answers through the
// full wire protocol, not hang or error.
func TestClusterEmptyStream(t *testing.T) {
	addrs := startWorkers(t, 2)
	cfg := Config{Workers: addrs, Seed: 1}
	m, st, err := Matching(context.Background(), stream.NewSliceSource(0, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || st.EdgesTotal != 0 {
		t.Fatalf("empty stream produced size %d, %d edges", m.Size(), st.EdgesTotal)
	}
	if st.TotalCommBytes <= 0 {
		t.Fatal("even empty coresets cross the wire; measured bytes must be nonzero")
	}
	cover, _, err := VertexCover(context.Background(), stream.NewSliceSource(0, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 0 {
		t.Fatalf("empty stream produced cover of %d", len(cover))
	}
}

// TestClusterBatchSizes: routing is independent of SHARD frame sizing.
func TestClusterBatchSizes(t *testing.T) {
	g := parityGraph(5, 500, 8)
	addrs := startWorkers(t, 3)
	var want []graph.Edge
	for i, bs := range []int{0, 1, 7, 4096} {
		m, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: addrs, Seed: 5, BatchSize: bs})
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		if i == 0 {
			want = m.Edges()
			continue
		}
		if !reflect.DeepEqual(m.Edges(), want) {
			t.Fatalf("batch %d: matching differs from default batch size", bs)
		}
	}
}

// TestWorkerServesManyRuns: one resident worker set serves many sequential
// and concurrent runs without state bleeding between them.
func TestWorkerServesManyRuns(t *testing.T) {
	const k = 2
	addrs := startWorkers(t, k)
	g := parityGraph(7, 400, 8)
	want, _, err := stream.Matching(stream.NewGraphSource(g), stream.Config{K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func() {
			m, _, err := Matching(context.Background(), stream.NewGraphSource(g), Config{Workers: addrs, Seed: 7})
			if err == nil && m.Size() != want.Size() {
				err = &WorkerError{Err: errNotEqual}
			}
			errs <- err
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errNotEqual = errSentinel("concurrent run diverged")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func TestConfigValidation(t *testing.T) {
	if _, _, err := Matching(context.Background(), nil, Config{Workers: []string{"x"}}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, _, err := Matching(context.Background(), stream.NewSliceSource(0, nil), Config{}); err == nil {
		t.Fatal("empty worker list accepted")
	}
}
