package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Streaming vs batch coreset runtime (throughput and quality at fixed k)",
		Paper: "Deployment check: the streaming sharded runtime (internal/stream, hash partitioning, incremental per-machine builders) must reproduce the batch pipeline's quality exactly at fixed k — the coresets are a function of the k-partitioning, not of how it is materialized — while processing edges as a pipeline of concurrent stages.",
		Run:   runE19,
	})
}

func runE19(cfg Config) *Result {
	n := pick(cfg, 4000, 40000)
	k := pick(cfg, 8, 16)
	reps := pick(cfg, 2, 3)

	type workload struct {
		name string
		make func(r *rng.RNG) *graph.Graph
	}
	workloads := []workload{
		{"gnp-deg8", func(r *rng.RNG) *graph.Graph { return gen.GNP(n, 8/float64(n), r) }},
		{"powerlaw", func(r *rng.RNG) *graph.Graph { return gen.ChungLu(n, 2.0, n/16+1, r) }},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E19: streaming vs batch at k=%d (same hash k-partitioning; quality must be identical, throughput is the trade)", k),
		"workload", "rep", "task", "batch answer", "stream answer", "equal", "batch Medges/s", "stream Medges/s", "stream comm KB")
	root := rng.New(cfg.Seed)
	mismatches := 0
	for _, wl := range workloads {
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e19"+wl.name, k, rep)))
			g := wl.make(r)
			if g.M() == 0 {
				continue
			}
			hashSeed := r.Uint64()

			// --- Matching: batch pipeline on the hash k-partitioning.
			t0 := time.Now()
			parts := partition.HashK(g.Edges, k, hashSeed)
			coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) []graph.Edge {
				return core.MatchingCoreset(g.N, part)
			})
			batchM := core.ComposeMatching(g.N, coresets).Size()
			batchDur := time.Since(t0)

			streamM, stM, err := stream.Matching(stream.NewGraphSource(g), stream.Config{K: k, Seed: hashSeed})
			if err != nil {
				panic(err) // experiments fail loudly
			}
			eq := batchM == streamM.Size()
			if !eq {
				mismatches++
			}
			tb.AddRow(wl.name, rep, "matching", batchM, streamM.Size(), eq,
				fmt.Sprintf("%.2f", mEdgesPerSec(g.M(), batchDur)),
				fmt.Sprintf("%.2f", stM.EdgesPerSec()/1e6),
				stM.TotalCommBytes/1024)

			// --- Vertex cover: same comparison.
			t0 = time.Now()
			vcs := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) *core.VCCoreset {
				return core.ComputeVCCoreset(g.N, k, part)
			})
			batchVC := len(core.ComposeVC(g.N, vcs))
			batchDur = time.Since(t0)

			streamVC, stV, err := stream.VertexCover(stream.NewGraphSource(g), stream.Config{K: k, Seed: hashSeed})
			if err != nil {
				panic(err)
			}
			eq = batchVC == len(streamVC)
			if !eq {
				mismatches++
			}
			tb.AddRow(wl.name, rep, "vc", batchVC, len(streamVC), eq,
				fmt.Sprintf("%.2f", mEdgesPerSec(g.M(), batchDur)),
				fmt.Sprintf("%.2f", stV.EdgesPerSec()/1e6),
				stV.TotalCommBytes/1024)
		}
	}
	notes := []string{
		"streaming and batch answers are identical by construction: both apply the same per-machine algorithms to the same hash k-partitioning; the runtime changes the resource profile, not the combinatorics",
		"throughput columns are wall-clock and machine-dependent; the streaming runtime overlaps sharding with per-machine work, the batch path separates the phases",
	}
	if mismatches > 0 {
		notes = append(notes, fmt.Sprintf("PARITY VIOLATION: %d cells differ — the streaming runtime is broken", mismatches))
	}
	return &Result{
		ID:     "E19",
		Title:  "Streaming vs batch runtime",
		Tables: []*stats.Table{tb},
		Notes:  notes,
	}
}

func mEdgesPerSec(m int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(m) / d.Seconds() / 1e6
}
