package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "VC-Coreset approximation and size (Theorem 2)",
		Paper: "Result 1 / Theorem 2: the peeling coreset is an O(log n)-approximate randomized coreset of size O(n log n) for minimum vertex cover.",
		Run:   runE2,
	})
}

func runE2(cfg Config) *Result {
	n := pick(cfg, 1024, 8192)
	reps := pick(cfg, 2, 5)
	ks := pick(cfg, []int{2, 4, 8}, []int{2, 4, 8, 16, 32})

	type wl struct {
		name string
		make func(r *rng.RNG) (*graph.Graph, int) // graph, known OPT (-1 if unknown)
	}
	workloads := []wl{
		{"gnp-dense", func(r *rng.RNG) (*graph.Graph, int) {
			return gen.GNP(n, 64/float64(n), r), -1
		}},
		{"starforest", func(r *rng.RNG) (*graph.Graph, int) {
			count := n / 32
			g := gen.StarForest(count, 31)
			r.Shuffle(len(g.Edges), func(i, j int) { g.Edges[i], g.Edges[j] = g.Edges[j], g.Edges[i] })
			return g, count
		}},
		{"bipartite", func(r *rng.RNG) (*graph.Graph, int) {
			b := gen.BipartiteGNP(n/2, n/2, 24/float64(n), r)
			return b.ToGraph(), len(vcover.KonigCover(b))
		}},
	}

	tb := stats.NewTable(
		"E2: VC-Coreset cover quality vs k (paper: O(log n)-approx, O(n log n) size)",
		"workload", "k", "n", "cover", "opt/LB", "ratio", "log2(n)", "coreset-size/machine", "n*log2(n)")
	worstRatio := 0.0
	root := rng.New(cfg.Seed)
	for _, w := range workloads {
		for _, k := range ks {
			var coverSz, optS, ratioS, csSize stats.Summary
			var nn int
			for rep := 0; rep < reps; rep++ {
				r := root.Split(uint64(hash2(w.name, k, rep)))
				g, opt := w.make(r)
				nn = g.N
				if opt < 0 {
					// Lower bound: any maximal matching size (<= VC).
					opt = matching.MaximalGreedy(g.N, g.Edges).Size()
				}
				if opt == 0 {
					continue
				}
				parts := partition.RandomK(g.Edges, k, r.Split(1))
				coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) *core.VCCoreset {
					return core.ComputeVCCoreset(g.N, k, part)
				})
				for _, cs := range coresets {
					csSize.Add(float64(core.VCCoresetSize(cs)))
				}
				cover := core.ComposeVC(g.N, coresets)
				if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
					panic(fmt.Sprintf("E2: infeasible cover: %v", err))
				}
				coverSz.Add(float64(len(cover)))
				optS.Add(float64(opt))
				ratioS.Add(ratio(float64(len(cover)), float64(opt)))
			}
			if ratioS.Max() > worstRatio {
				worstRatio = ratioS.Max()
			}
			tb.AddRow(w.name, k, nn,
				fmt.Sprintf("%.0f", coverSz.Mean()),
				fmt.Sprintf("%.0f", optS.Mean()),
				ratioS.MeanCI(),
				fmt.Sprintf("%.1f", math.Log2(float64(nn))),
				fmt.Sprintf("%.0f", csSize.Mean()),
				fmt.Sprintf("%.0f", float64(nn)*math.Log2(float64(nn))))
		}
	}
	return &Result{
		ID:     "E2",
		Title:  "VC-Coreset approximation and size",
		Tables: []*stats.Table{tb},
		Notes: []string{
			fmt.Sprintf("worst observed ratio %.2f vs paper bound O(log n) = %.1f at these sizes", worstRatio, math.Log2(float64(n))),
			"per-machine coreset size stays below n*log2(n) as Theorem 2 requires",
		},
	}
}
