package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "D_Matching: size-bounded coresets cannot recover the hidden matching (Theorem 3, Lemma 4.1)",
		Paper: "Result 2 / Theorem 3: any α-approximate randomized coreset for matching has size Ω(n/α²). Lemma 4.1: each machine's induced matching has size Θ(n/α), and hidden edges are indistinguishable within it.",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "D_VC: small summaries lose e* and feasibility collapses (Theorem 4, Lemma 4.2)",
		Paper: "Result 2 / Theorem 4: any α-approximate randomized coreset for vertex cover has size Ω(n/α). Lemma 4.2: |L¹| = Θ(n/α) per machine; e* hides uniformly among the degree-1 edges.",
		Run:   runE6,
	})
}

// runE5: per Theorem 3's proof, a machine's coreset C_i of size s recovers
// only ~s*α/k hidden edges in expectation, because hidden edges are a
// uniform Θ(α/k) fraction of its induced matching M(i) and are locally
// indistinguishable. We emulate the best a size-s summary can do on the
// indistinguishable part: send s uniformly chosen edges of the machine's
// maximum matching. The final matching (and thus the approximation) tracks
// the recovered hidden edges exactly as the proof predicts.
func runE5(cfg Config) *Result {
	n := pick(cfg, 4096, 16384)
	k := pick(cfg, 8, 16)
	reps := pick(cfg, 2, 4)
	alphas := []int{2, 4, 8}

	induced := stats.NewTable(
		"E5a: induced matching size per machine (Lemma 4.1: Θ(n/α))",
		"alpha", "n/alpha", "mean |M(i)|", "min", "max", "|M(i)|/(n/alpha)")
	recover := stats.NewTable(
		"E5b: hidden-edge recovery vs coreset size budget (Theorem 3 shape: recovered ≈ s·α/k until s ≈ |matching|)",
		"alpha", "budget s", "s·alpha/k (predicted)", "recovered hidden/machine", "final matching", "OPT", "ratio")

	root := rng.New(cfg.Seed)
	for _, alpha := range alphas {
		var mi stats.Summary
		// Budgets bracket the Ω(n/α²) threshold.
		budgets := []int{n / (alpha * alpha * 4), n / (alpha * alpha), n / alpha, n}
		type acc struct {
			rec, final, opt stats.Summary
		}
		byBudget := make([]acc, len(budgets))
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e5", alpha, rep)))
			inst := gen.HardMatching(n, alpha, k, r)
			parts := partition.RandomK(inst.B.Edges, k, r.Split(1))
			opt := float64(matching.Maximum(inst.B.ToGraph().N, inst.B.ToGraph().Edges).Size())
			// Per-machine maximum matchings (in bipartite coordinates).
			localMax := make([][]graph.Edge, k)
			for i, p := range parts {
				im := gen.InducedMatching(inst.B.NL, p)
				mi.Add(float64(len(im)))
				b := graph.NewBipartite(inst.B.NL, inst.B.NR, p)
				localMax[i] = matching.MaximumBipartite(b).Edges()
			}
			for bi, s := range budgets {
				var coresets [][]graph.Edge
				recovered := 0
				for i := range parts {
					mm := localMax[i]
					var cs []graph.Edge
					if len(mm) <= s {
						cs = mm
					} else {
						idx := r.Split(uint64(1000+bi*100+i)).SampleK(len(mm), s)
						cs = make([]graph.Edge, 0, s)
						for _, j := range idx {
							cs = append(cs, mm[j])
						}
					}
					// Count hidden edges in the message (bipartite
					// coordinates: convert back from combined ids).
					for _, e := range cs {
						be := graph.Edge{U: e.U, V: e.V - graph.ID(inst.B.NL)}
						if inst.HiddenSet[be] {
							recovered++
						}
					}
					coresets = append(coresets, cs)
				}
				final := float64(core.ComposeMatching(inst.B.N(), coresets).Size())
				byBudget[bi].rec.Add(float64(recovered) / float64(k))
				byBudget[bi].final.Add(final)
				byBudget[bi].opt.Add(opt)
			}
		}
		induced.AddRow(alpha, n/alpha,
			fmt.Sprintf("%.0f", mi.Mean()),
			fmt.Sprintf("%.0f", mi.Min()),
			fmt.Sprintf("%.0f", mi.Max()),
			fmt.Sprintf("%.2f", mi.Mean()/(float64(n)/float64(alpha))))
		for bi, s := range budgets {
			a := &byBudget[bi]
			predicted := float64(s) * float64(alpha) / float64(k)
			recover.AddRow(alpha, s,
				fmt.Sprintf("%.0f", predicted),
				fmt.Sprintf("%.1f", a.rec.Mean()),
				fmt.Sprintf("%.0f", a.final.Mean()),
				fmt.Sprintf("%.0f", a.opt.Mean()),
				fmt.Sprintf("%.2f", ratio(a.opt.Mean(), a.final.Mean())))
		}
	}
	return &Result{
		ID:     "E5",
		Title:  "Matching coreset size lower bound (D_Matching)",
		Tables: []*stats.Table{induced, recover},
		Notes: []string{
			"E5a: |M(i)|/(n/α) is a constant (Lemma 4.1's Θ(n/α), constant ≈ 1/e³ + matching share)",
			"E5b: with budget s ≈ n/α² the recovered hidden edges per machine collapse toward s·α/k and the ratio degrades toward α; at s ≈ n the full coreset restores O(1)",
		},
	}
}

// runE6: the machine holding e* cannot distinguish it inside its degree-1
// edge set (L¹ incident edges). A size-s summary of those edges retains e*
// with probability ≈ s/|L¹|; when e* is lost, the composed cover misses it
// and the coordinator would need Ω(n) blind vertices (Theorem 4's argument).
func runE6(cfg Config) *Result {
	n := pick(cfg, 4096, 16384)
	k := pick(cfg, 8, 16)
	reps := pick(cfg, 30, 100)
	alphas := []int{2, 4, 8}

	l1tab := stats.NewTable(
		"E6a: degree-1 left vertices per machine (Lemma 4.2: Θ(n/α))",
		"alpha", "n/alpha", "mean |L1|", "mean |R1|", "|L1|/(n/alpha)")
	estar := stats.NewTable(
		"E6b: probability the critical machine's size-s summary retains e* (Theorem 4 shape: ≈ min(1, s/|L1-edges|))",
		"alpha", "budget s", "P(e* retained)", "predicted s/|L1|", "P(cover feasible w/o blind vertices)")

	root := rng.New(cfg.Seed)
	for _, alpha := range alphas {
		var l1s, r1s stats.Summary
		budgets := []int{n / (alpha * 8), n / (alpha * 2), n}
		type acc struct {
			kept, feas stats.Summary
		}
		byBudget := make([]acc, len(budgets))
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e6", alpha, rep)))
			inst := gen.HardVC(n, alpha, k, r)
			parts := partition.RandomK(inst.B.Edges, k, r.Split(1))
			// Find the critical machine (the one holding e*).
			crit := -1
			for i, p := range parts {
				for _, e := range p {
					if e == inst.EStar {
						crit = i
						break
					}
				}
				if crit >= 0 {
					break
				}
			}
			if crit < 0 {
				continue
			}
			l1, r1 := gen.DegreeOneLeft(n, parts[crit])
			l1s.Add(float64(len(l1)))
			r1s.Add(float64(len(r1)))
			// Degree-1 edges of the critical machine: e* hides among them.
			deg1Edges := degreeOneEdges(n, parts[crit])
			for bi, s := range budgets {
				kept := 0.0
				if len(deg1Edges) <= s {
					kept = 1
				} else {
					idx := r.Split(uint64(500+bi)).SampleK(len(deg1Edges), s)
					for _, j := range idx {
						if deg1Edges[j] == inst.EStar {
							kept = 1
							break
						}
					}
				}
				byBudget[bi].kept.Add(kept)
				// Feasible without blind vertices iff e* was communicated
				// (all other edges are covered by A, which the summaries
				// of all machines collectively pin down).
				byBudget[bi].feas.Add(kept)
			}
		}
		l1tab.AddRow(alpha, n/alpha,
			fmt.Sprintf("%.0f", l1s.Mean()),
			fmt.Sprintf("%.0f", r1s.Mean()),
			fmt.Sprintf("%.2f", l1s.Mean()/(float64(n)/float64(alpha))))
		for bi, s := range budgets {
			a := &byBudget[bi]
			pred := float64(s) / l1s.Mean()
			if pred > 1 {
				pred = 1
			}
			estar.AddRow(alpha, s,
				fmt.Sprintf("%.2f", a.kept.Mean()),
				fmt.Sprintf("%.2f", pred),
				fmt.Sprintf("%.2f", a.feas.Mean()))
		}
	}
	return &Result{
		ID:     "E6",
		Title:  "Vertex cover coreset size lower bound (D_VC)",
		Tables: []*stats.Table{l1tab, estar},
		Notes: []string{
			"E6a: |L1| tracks Θ(n/α) (constant ≈ 1/(2√e) per Lemma 4.2's calculation)",
			"E6b: summaries of size o(n/α) lose e* with probability → 1, exactly the failure Theorem 4 turns into an Ω(n/α) bound",
		},
	}
}

// degreeOneEdges returns the edges whose left endpoint has degree exactly 1
// in the edge set (bipartite coordinates) — the set e* hides in.
func degreeOneEdges(n int, edges []graph.Edge) []graph.Edge {
	degL := make([]int32, n)
	for _, e := range edges {
		degL[e.U]++
	}
	var out []graph.Edge
	for _, e := range edges {
		if degL[e.U] == 1 {
			out = append(out, e)
		}
	}
	return out
}
