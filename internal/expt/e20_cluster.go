package expt

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Simulated vs measured communication (cluster runtime, bytes per machine as n and k scale)",
		Paper: "Deployment check: the communication the paper bounds per machine — O~(n) coreset messages — is measured on real TCP connections by the cluster runtime (internal/cluster) and compared against the simulated estimate the in-process pipelines report. The two must share one codec (graph.AppendEdgeBatch), so measured exceeds estimated only by the fixed frame overhead, and both scale with n while the per-machine maximum shrinks as k grows.",
		Run:   runE20,
	})
}

func runE20(cfg Config) *Result {
	ns := pick(cfg, []int{2000, 4000}, []int{10000, 20000, 40000})
	ks := pick(cfg, []int{4, 8}, []int{8, 16, 32})

	tb := stats.NewTable(
		"E20: measured wire bytes vs simulated estimate (gnp deg 8; measured = CORESET frames off TCP, est = shared codec)",
		"task", "n", "k", "est KB", "meas KB", "meas/est", "est max B", "meas max B", "shard KB")
	root := rng.New(cfg.Seed)
	ctx := context.Background()
	violations := 0
	for _, n := range ns {
		for _, k := range ks {
			r := root.Split(uint64(hash2("e20", n, k)))
			g := gen.GNP(n, 8/float64(n), r)
			hashSeed := r.Uint64()

			addrs, shutdown, err := cluster.ServeLoopback(k)
			if err != nil {
				panic(err) // experiments fail loudly
			}
			ccfg := cluster.Config{Workers: addrs, Seed: hashSeed}

			for _, task := range []string{"matching", "vc"} {
				var st *cluster.Stats
				if task == "matching" {
					_, st, err = cluster.Matching(ctx, stream.NewGraphSource(g), ccfg)
				} else {
					_, st, err = cluster.VertexCover(ctx, stream.NewGraphSource(g), ccfg)
				}
				if err != nil {
					shutdown()
					panic(err)
				}
				ratio := ratio(float64(st.TotalCommBytes), float64(st.EstCommBytes))
				// The acceptance envelope: measured is real (nonzero) and
				// within 2x of the simulated estimate.
				if st.TotalCommBytes <= 0 || ratio > 2 {
					violations++
				}
				tb.AddRow(task, n, k,
					fmt.Sprintf("%.1f", float64(st.EstCommBytes)/1024),
					fmt.Sprintf("%.1f", float64(st.TotalCommBytes)/1024),
					fmt.Sprintf("%.3f", ratio),
					st.EstMaxMachineBytes, st.MaxMachineBytes,
					st.ShardBytes/1024)
			}
			shutdown()
		}
	}
	notes := []string{
		"measured and estimated sizes share one codec (graph.AppendEdgeBatch), so meas/est stays near 1: the gap is 5 B of frame header plus three stats varints per machine — largest in relative terms at large k, where messages are many and small",
		"total coreset communication grows with n (the paper's O~(n) per machine times k) while the per-machine maximum falls as k grows: each machine's partition, and hence its maximum matching / residual, shrinks",
		"shard traffic (coordinator to workers) is the edge stream itself and dwarfs the coreset messages — the asymmetry the simultaneous model is about",
	}
	if violations > 0 {
		notes = append(notes, fmt.Sprintf("ENVELOPE VIOLATION: %d cells measured zero or beyond 2x the estimate", violations))
	}
	return &Result{
		ID:     "E20",
		Title:  "Simulated vs measured communication",
		Tables: []*stats.Table{tb},
		Notes:  notes,
	}
}
