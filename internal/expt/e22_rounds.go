package expt

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/rounds"
	"repro/internal/stats"
	"repro/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Title: "Multi-round MPC on EDCS: rounds vs matching quality vs communication",
		Paper: "Coresets Meet EDCS (arXiv:1711.03076): iterating the EDCS sketch — shard, build per-machine EDCSs, union, reshard with a shrinking machine count — yields O(log log n)-round MPC algorithms. Each extra round shrinks the graph the coordinator must compose over (the union is at most k*n*beta/2 edges) at the price of another round of communication; the experiment charts that trade on GNP and power-law inputs, with the final round's measured wire cost through the cluster runtime agreeing with the simulated accounting.",
		Run:   runE22,
	})
}

func runE22(cfg Config) *Result {
	ns := pick(cfg, []int{1500, 2500}, []int{10000, 20000})
	k := pick(cfg, 9, 16)
	beta := 8 // aggressive trimming so the per-round shrink is visible
	roundCaps := []int{1, 2, 3}

	type workload struct {
		name string
		make func(n int, r *rng.RNG) *graph.Graph
	}
	workloads := []workload{
		{"gnp-deg24", func(n int, r *rng.RNG) *graph.Graph { return gen.GNP(n, 24/float64(n), r) }},
		{"powerlaw", func(n int, r *rng.RNG) *graph.Graph { return gen.ChungLu(n, 2.0, n/8+1, r) }},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E22: multi-round EDCS (beta=%d) from k=%d machines (schedule k_{r+1} = floor(sqrt(k_r)); ratios vs exact maximum matching)", beta, k),
		"workload", "n", "rounds", "ratio", "compose edges", "total comm KB", "max machine KB", "cluster meas KB", "meas/est")
	root := rng.New(cfg.Seed)
	ctx := context.Background()
	p := edcs.ParamsForBeta(beta)
	violations := 0
	for _, wl := range workloads {
		for _, n := range ns {
			r := root.Split(uint64(hash2("e22"+wl.name, n, k)))
			g := wl.make(n, r)
			if g.M() == 0 {
				continue
			}
			hashSeed := r.Uint64()
			opt := matching.Maximum(g.N, g.Edges).Size()
			if opt == 0 {
				continue
			}
			var prevRatio float64
			for _, rc := range roundCaps {
				rcfg := rounds.Config{K: k, Rounds: rc, Seed: hashSeed, Params: p, Workers: cfg.Workers}
				m, st, err := rounds.Batch(g, rcfg)
				if err != nil {
					panic(err) // experiments fail loudly
				}

				// The same schedule through the cluster runtime: per-round
				// MEASURED wire bytes must agree with the simulated estimate.
				addrs, shutdown, err := cluster.ServeLoopback(k)
				if err != nil {
					panic(err)
				}
				cm, cst, err := rounds.Cluster(ctx, stream.NewGraphSource(g), cluster.Config{Workers: addrs, Seed: hashSeed}, rcfg)
				shutdown()
				if err != nil {
					panic(err)
				}
				if cm.Size() != m.Size() || cst.EstCommBytes != st.TotalCommBytes || cst.RoundsRun != st.RoundsRun {
					violations++ // seed parity broke: the runtimes disagree
				}

				ratioNow := ratio(float64(m.Size()), float64(opt))
				// More rounds must not cost approximation beyond noise: the
				// union always contains an EDCS of the previous union.
				if rc > 1 && ratioNow < prevRatio-0.05 {
					violations++
				}
				prevRatio = ratioNow
				tb.AddRow(wl.name, n, fmt.Sprintf("%d/%d", st.RoundsRun, rc),
					fmt.Sprintf("%.4f", ratioNow),
					st.CompositionEdges,
					fmt.Sprintf("%.1f", float64(st.TotalCommBytes)/1024),
					fmt.Sprintf("%.1f", float64(st.MaxMachineBytes)/1024),
					fmt.Sprintf("%.1f", float64(cst.TotalCommBytes)/1024),
					fmt.Sprintf("%.3f", ratio(float64(cst.TotalCommBytes), float64(cst.EstCommBytes))))
			}
		}
	}
	notes := []string{
		"each extra round shrinks 'compose edges' (the union the coordinator must run an exact matcher over) geometrically while adding one more round of coreset messages to 'total comm KB' — the MPC trade the paper's O(log log n) schedule navigates; the early exit reports rounds run as r/cap when the union stopped shrinking before the cap",
		"the matching ratio holds (or improves) as rounds increase: every round's union contains an EDCS of its input, so the (3/2+eps) guarantee survives iteration while the composition input shrinks",
		"cluster meas KB is every round's CORESET frames read off loopback TCP through one reused session (one HELLO per run); meas/est stays near 1 because the wire and the simulated accounting share one codec",
	}
	if violations > 0 {
		notes = append(notes, fmt.Sprintf("ENVELOPE VIOLATION: %d cells broke seed parity or lost approximation across rounds", violations))
	}
	return &Result{
		ID:     "E22",
		Title:  "Multi-round MPC on EDCS",
		Tables: []*stats.Table{tb},
		Notes:  notes,
	}
}
