package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Arbitrary maximal matching is an Ω(k)-approximate coreset (Section 1.2)",
		Paper: "Section 1.2: 'there are simple instances in which choosing arbitrary maximal matching in the graph G(i) results only in an Ω(k)-approximation', while any maximum matching stays O(1).",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Minimum vertex cover is an Ω(k)-approximate coreset (Section 3.2)",
		Paper: "Section 3.2: minimum vertex cover as a coreset fails on a star; VC-Coreset's fixed-vertices-plus-edges message is necessary.",
		Run:   runE4,
	})
}

func runE3(cfg Config) *Result {
	n := pick(cfg, 2000, 8000)
	reps := pick(cfg, 2, 4)
	ks := pick(cfg, []int{4, 8, 16}, []int{4, 8, 16, 32})

	tb := stats.NewTable(
		"E3: greedy-trap instance, OPT/ALG of maximal- vs maximum-matching coresets (paper: Ω(k) vs O(1))",
		"k", "n", "opt", "maximal-coreset", "maximum-coreset", "ratio-maximal", "ratio-maximum", "ratio-maximal/k")
	root := rng.New(cfg.Seed)
	for _, k := range ks {
		var badR, goodR stats.Summary
		var badSz, goodSz stats.Summary
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e3", k, rep)))
			inst := gen.GreedyTrap(n, k, r)
			g := inst.B.ToGraph()
			hidden := make(map[graph.Edge]bool, n)
			for i, h := range inst.IsHidden {
				if h {
					hidden[g.Edges[i].Canon()] = true
				}
			}
			isHidden := func(e graph.Edge) bool { return hidden[e.Canon()] }
			parts := partition.RandomK(g.Edges, k, r.Split(1))
			var bad, good [][]graph.Edge
			for _, p := range parts {
				bad = append(bad, core.AdversarialMaximalCoreset(g.N, p, isHidden))
				good = append(good, core.MatchingCoreset(g.N, p))
			}
			opt := float64(n) // planted perfect matching on P x Q
			b := float64(core.ComposeMatching(g.N, bad).Size())
			gd := float64(core.ComposeMatching(g.N, good).Size())
			badR.Add(ratio(opt, b))
			goodR.Add(ratio(opt, gd))
			badSz.Add(b)
			goodSz.Add(gd)
		}
		tb.AddRow(k, n, n,
			fmt.Sprintf("%.0f", badSz.Mean()),
			fmt.Sprintf("%.0f", goodSz.Mean()),
			badR.MeanCI(), goodR.MeanCI(),
			fmt.Sprintf("%.2f", badR.Mean()/float64(k)))
	}
	return &Result{
		ID:     "E3",
		Title:  "Maximal vs maximum matching coresets",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"ratio-maximal grows ~linearly with k (ratio-maximal/k roughly constant), ratio-maximum stays O(1): the paper's separation",
		},
	}
}

func runE4(cfg Config) *Result {
	reps := pick(cfg, 3, 8)
	ks := pick(cfg, []int{4, 8, 16, 32}, []int{4, 8, 16, 32, 64, 128})

	tb := stats.NewTable(
		"E4: star instance, cover sizes of min-VC coreset vs VC-Coreset (paper: Ω(k) vs O(log n); OPT = 1)",
		"k", "star-edges", "min-vc-coreset-cover", "vc-coreset-cover", "ratio-min-vc", "ratio-min-vc/k")
	root := rng.New(cfg.Seed)
	for _, k := range ks {
		edges := 2 * k
		var badSz, goodSz stats.Summary
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e4", k, rep)))
			star := gen.Star(edges + 1)
			parts := partition.RandomK(star.Edges, k, r)
			var bad, good []*core.VCCoreset
			for _, p := range parts {
				bad = append(bad, core.MinVCCoreset(star.N, p))
				good = append(good, core.ComputeVCCoreset(star.N, k, p))
			}
			badCover := core.ComposeVC(star.N, bad)
			goodCover := core.ComposeVC(star.N, good)
			if err := vcover.Verify(star.N, star.Edges, badCover); err != nil {
				panic(fmt.Sprintf("E4: bad cover infeasible: %v", err))
			}
			if err := vcover.Verify(star.N, star.Edges, goodCover); err != nil {
				panic(fmt.Sprintf("E4: good cover infeasible: %v", err))
			}
			badSz.Add(float64(len(badCover)))
			goodSz.Add(float64(len(goodCover)))
		}
		tb.AddRow(k, edges,
			badSz.MeanCI(), goodSz.MeanCI(),
			fmt.Sprintf("%.1f", badSz.Mean()),
			fmt.Sprintf("%.2f", badSz.Mean()/float64(k)))
	}
	return &Result{
		ID:     "E4",
		Title:  "Min-VC coreset vs VC-Coreset on a star",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"OPT = 1 (the star center); min-VC-as-coreset accumulates Θ(k) leaves while VC-Coreset stays O(1) on this instance",
		},
	}
}
