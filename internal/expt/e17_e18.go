package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "GreedyMatch growth trajectory (Lemma 3.2)",
		Paper: "Lemma 3.2: while |M^(i-1)| <= c·MM(G), step i adds >= ((1-6c-o(1))/k)·MM(G) edges w.h.p. for i <= k/3 — the engine of Theorem 1's proof, traced step by step.",
		Run:   runE17,
	})
	register(Experiment{
		ID:    "E18",
		Title: "Peeling sandwich (Lemmas 3.5 and 3.6)",
		Paper: "Lemma 3.6: each machine's peeled sets are sandwiched by the hypothetical process on G (A ⊇ O, B ⊆ Obar, prefix-wise) w.h.p.; Lemma 3.5: the hypothetical sets total O(log n)·VC(G).",
		Run:   runE18,
	})
}

func runE17(cfg Config) *Result {
	n := pick(cfg, 4000, 16000)
	k := pick(cfg, 12, 24)
	reps := pick(cfg, 3, 6)

	tb := stats.NewTable(
		"E17: |M^(i)| after each GreedyMatch step, normalized by MM(G) (paper: slope >= (1-6c)/k ≈ 1/(3k) while below c=1/9)",
		"step i", "mean |M^(i)|/MM", "mean increment/(MM/k)", "Lemma 3.2 floor (1-6c)")
	root := rng.New(cfg.Seed)
	steps := make([]stats.Summary, k+1)
	incs := make([]stats.Summary, k+1)
	for rep := 0; rep < reps; rep++ {
		r := root.Split(uint64(hash2("e17", k, rep)))
		g := gen.GNP(n, 8/float64(n), r)
		opt := matching.Maximum(g.N, g.Edges).Size()
		if opt == 0 {
			continue
		}
		parts := partition.RandomK(g.Edges, k, r.Split(1))
		coresets := make([][]graph.Edge, k)
		for i, p := range parts {
			coresets[i] = core.MatchingCoreset(g.N, p)
		}
		sizes := core.GreedyMatchTrajectory(g.N, coresets)
		for i := 1; i <= k; i++ {
			steps[i].Add(float64(sizes[i]) / float64(opt))
			incs[i].Add(float64(sizes[i]-sizes[i-1]) / (float64(opt) / float64(k)))
		}
	}
	c := 1.0 / 9
	for i := 1; i <= k; i++ {
		floor := ""
		if i <= k/3 {
			floor = fmt.Sprintf("%.2f", 1-6*c)
		}
		tb.AddRow(i,
			fmt.Sprintf("%.3f", steps[i].Mean()),
			fmt.Sprintf("%.2f", incs[i].Mean()),
			floor)
	}
	return &Result{
		ID:     "E17",
		Title:  "GreedyMatch trajectory",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"early steps gain ≈ 1 unit of MM/k each (above the Lemma 3.2 floor of 1/3); increments taper only once the matching nears MM — the paper's 'k/3 productive steps' picture",
		},
	}
}

func runE18(cfg Config) *Result {
	n := pick(cfg, 4096, 16384)
	k := pick(cfg, 4, 8)
	reps := pick(cfg, 3, 8)

	tb := stats.NewTable(
		"E18: Lemma 3.6 sandwich checks per machine + Lemma 3.5 size of the hypothetical sets",
		"rep", "machines-sandwich-ok", "hyp-levels-size", "VC(G)", "hyp-size/VC", "8*VC level cap ok")
	root := rng.New(cfg.Seed)
	okTotal, machTotal := 0, 0
	for rep := 0; rep < reps; rep++ {
		r := root.Split(uint64(hash2("e18", k, rep)))
		b := gen.BipartiteGNP(n/2, n/2, 64/float64(n), r)
		g := b.ToGraph()
		optCover := vcover.KonigCover(b)
		inOpt := make([]bool, g.N)
		for _, v := range optCover {
			inOpt[v] = true
		}
		hyp := core.HypotheticalPeeling(g.N, g.Edges, inOpt)
		total := 0
		capOK := true
		for j := range hyp.Opt {
			total += len(hyp.Opt[j]) + len(hyp.Bar[j])
			if len(hyp.Bar[j]) > 8*len(optCover) {
				capOK = false
			}
		}
		parts := partition.RandomK(g.Edges, k, r.Split(1))
		ok := 0
		for _, p := range parts {
			cs := core.ComputeVCCoreset(g.N, k, p)
			if core.CheckSandwich(cs.Levels, hyp, inOpt).Holds {
				ok++
			}
		}
		okTotal += ok
		machTotal += k
		tb.AddRow(rep, fmt.Sprintf("%d/%d", ok, k), total, len(optCover),
			fmt.Sprintf("%.2f", ratio(float64(total), float64(len(optCover)))), capOK)
	}
	return &Result{
		ID:     "E18",
		Title:  "Peeling sandwich",
		Tables: []*stats.Table{tb},
		Notes: []string{
			fmt.Sprintf("sandwich held on %d/%d machine instances (Lemma 3.6 is a w.h.p. statement; failures are the o(1) tail)", okTotal, machTotal),
			"hypothetical sets stay O(log n)·VC with every level under the 8·VC cap of Lemma 3.5's proof",
		},
	}
}
