package expt

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "EDCS coreset vs Theorem-1 matching coreset (approximation, coreset bytes, measured cluster communication)",
		Paper: "Coresets Meet EDCS (arXiv:1711.03076): a per-machine edge-degree constrained subgraph is a randomized composable coreset with a 3/2+eps matching approximation — strictly better than the O(1) of the SPAA'17 maximum-matching coreset — at O(n*polylog) size. The experiment composes both coresets from the same hash k-partitioning, prices both summaries with the shared codec (core.CoresetSizeBytes), and measures the EDCS coreset's real wire cost through the cluster runtime, whose estimate must agree with the simulated accounting exactly.",
		Run:   runE21,
	})
}

func runE21(cfg Config) *Result {
	ns := pick(cfg, []int{1500, 2500}, []int{10000, 20000})
	k := pick(cfg, 4, 8)
	beta := 16 // small enough that the EDCS genuinely trims these densities

	type workload struct {
		name string
		make func(n int, r *rng.RNG) *graph.Graph
	}
	workloads := []workload{
		{"gnp-deg24", func(n int, r *rng.RNG) *graph.Graph { return gen.GNP(n, 24/float64(n), r) }},
		{"powerlaw", func(n int, r *rng.RNG) *graph.Graph { return gen.ChungLu(n, 2.0, n/8+1, r) }},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E21: EDCS (beta=%d) vs Theorem-1 coreset at k=%d (same hash k-partitioning; ratios vs exact maximum matching)", beta, k),
		"workload", "n", "opt", "edcs ratio", "t1-exact ratio", "t1-greedy ratio", "edcs KB", "t1 KB", "cluster meas KB", "meas/est")
	root := rng.New(cfg.Seed)
	ctx := context.Background()
	p := edcs.ParamsForBeta(beta)
	violations := 0
	for _, wl := range workloads {
		for _, n := range ns {
			r := root.Split(uint64(hash2("e21"+wl.name, n, k)))
			g := wl.make(n, r)
			if g.M() == 0 {
				continue
			}
			hashSeed := r.Uint64()
			opt := matching.Maximum(g.N, g.Edges).Size()
			if opt == 0 {
				continue
			}

			// EDCS pipeline on the hash k-partitioning (batch runtime).
			edcsM, edcsSt := edcs.Distributed(g, k, cfg.Workers, hashSeed, p)

			// Theorem-1 coresets on the SAME partitioning, composed both ways.
			parts := partition.HashK(g.Edges, k, hashSeed)
			coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) []graph.Edge {
				return core.MatchingCoreset(g.N, part)
			})
			t1Bytes := 0
			for _, cs := range coresets {
				t1Bytes += core.CoresetSizeBytes(cs)
			}
			t1Exact := core.ComposeMatching(g.N, coresets).Size()
			t1Greedy := core.GreedyMatchCombine(g.N, coresets).Size()

			// The EDCS coreset's measured wire cost through the cluster runtime.
			addrs, shutdown, err := cluster.ServeLoopback(k)
			if err != nil {
				panic(err) // experiments fail loudly
			}
			cm, cst, err := cluster.EDCS(ctx, stream.NewGraphSource(g), cluster.Config{Workers: addrs, Seed: hashSeed}, p)
			shutdown()
			if err != nil {
				panic(err)
			}
			if cm.Size() != edcsM.Size() || cst.EstCommBytes != edcsSt.TotalCommBytes {
				violations++ // seed parity broke: the runtimes disagree
			}

			edcsRatio := ratio(float64(edcsM.Size()), float64(opt))
			greedyRatio := ratio(float64(t1Greedy), float64(opt))
			// The acceptance envelope: the EDCS composition must not lose to
			// the one-pass greedy combiner over the Theorem-1 coresets.
			if edcsRatio < greedyRatio {
				violations++
			}
			tb.AddRow(wl.name, n, opt,
				fmt.Sprintf("%.4f", edcsRatio),
				fmt.Sprintf("%.4f", ratio(float64(t1Exact), float64(opt))),
				fmt.Sprintf("%.4f", greedyRatio),
				fmt.Sprintf("%.1f", float64(edcsSt.TotalCommBytes)/1024),
				fmt.Sprintf("%.1f", float64(t1Bytes)/1024),
				fmt.Sprintf("%.1f", float64(cst.TotalCommBytes)/1024),
				fmt.Sprintf("%.3f", ratio(float64(cst.TotalCommBytes), float64(cst.EstCommBytes))))
		}
	}
	notes := []string{
		"the EDCS union retains far more of each partition than a maximum matching does (beta*n/2 vs n/2 edges per machine), which is what buys its better approximation: here it matches or beats the Theorem-1 greedy combiner on every input, at a coreset-byte cost the table prices honestly",
		"t1-exact composes an exact maximum matching over the union of per-machine maximum matchings (the paper's Theorem 1 pipeline); t1-greedy is the one-pass GreedyMatch combiner of Section 3.1 — the EDCS ratio is required to dominate the greedy column (acceptance criterion), and its gap to t1-exact narrows as beta grows",
		"cluster meas KB is the EDCS CORESET frames read off loopback TCP; meas/est stays near 1 because the wire and the simulated accounting share one codec (graph.AppendEdgeBatch)",
	}
	if violations > 0 {
		notes = append(notes, fmt.Sprintf("ENVELOPE VIOLATION: %d cells broke seed parity or lost to the greedy combiner", violations))
	}
	return &Result{
		ID:     "E21",
		Title:  "EDCS vs Theorem-1 matching coreset",
		Tables: []*stats.Table{tb},
		Notes:  notes,
	}
}
