package expt

import (
	"fmt"

	"repro/internal/commgame"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Exact small-opt coresets via Buss kernels (footnote 3)",
		Paper: "Footnote 3 / Section 1.3: when VC(G) = O(k log n), exact coresets of size O~(k²) exist [20]; composed Buss kernels recover the exact optimum.",
		Run:   runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "Weighted vertex cover via weight classes (Section 1.1)",
		Paper: "Section 1.1: grouping by weight extends the VC coreset to weighted vertex cover with an O(log n) factor loss in approximation and space (construction omitted in the paper; DESIGN.md documents our instantiation).",
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Hidden Vertex Problem: bits vs output size (Lemma 5.7)",
		Paper: "Section 5.3.1 / Lemma 5.7: any HVP protocol with |X ∪ Y| ≤ C·n and success 2/3 needs Ω(n/α) bits. We trace the bits-vs-|X| frontier of the natural strategies.",
		Run:   runE16,
	})
}

func runE14(cfg Config) *Result {
	n := pick(cfg, 2000, 10000)
	reps := pick(cfg, 3, 6)
	k := pick(cfg, 4, 8)
	opts := []int{2, 4, 8, 16}

	tb := stats.NewTable(
		"E14: composed Buss kernels on planted small-VC instances (paper: exact, size O(t²) per machine)",
		"opt", "t", "kernel-size/machine (max)", "t^2+t+1 bound", "composed", "exact?", "match-opt?")
	root := rng.New(cfg.Seed)
	for _, opt := range opts {
		var maxKernel int
		exactAll, matchAll := true, true
		var composedSz stats.Summary
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e14", opt, rep)))
			// Planted instance: `opt` hubs covering everything.
			var edges []graph.Edge
			for c := 0; c < opt; c++ {
				for v := opt; v < n; v++ {
					if r.Bernoulli(0.2) {
						edges = append(edges, graph.Edge{U: graph.ID(c), V: graph.ID(v)}.Canon())
					}
				}
			}
			tParam := opt + 2
			parts := partition.RandomK(edges, k, r.Split(1))
			kernels := make([]*kernel.VCKernel, k)
			for i, p := range parts {
				kernels[i] = kernel.ComputeVCKernel(tParam, n, p)
				if s := kernels[i].Size(); s > maxKernel {
					maxKernel = s
				}
			}
			res := kernel.ComposeVCKernels(tParam, n, kernels)
			if !res.Exact {
				exactAll = false
				continue
			}
			if err := vcover.Verify(n, edges, res.Cover); err != nil {
				panic(fmt.Sprintf("E14: %v", err))
			}
			composedSz.Add(float64(len(res.Cover)))
			if len(res.Cover) != opt {
				matchAll = false
			}
		}
		tParam := opt + 2
		tb.AddRow(opt, tParam, maxKernel, tParam*tParam+tParam+1,
			fmt.Sprintf("%.1f", composedSz.Mean()), exactAll, matchAll)
	}
	return &Result{
		ID:     "E14",
		Title:  "Exact small-opt coresets",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"composed kernels recover the planted optimum exactly; per-machine size stays O(t²) — footnote 3's regime",
		},
	}
}

func runE15(cfg Config) *Result {
	n := pick(cfg, 1024, 8192)
	k := pick(cfg, 4, 8)
	reps := pick(cfg, 2, 4)

	tb := stats.NewTable(
		"E15: weighted VC, distributed class coresets vs centralized local-ratio 2-approx (paper: O(log n) loss)",
		"weights", "eps", "classes(total)", "central-weight", "distributed-weight", "distributed/central")
	root := rng.New(cfg.Seed)
	type wdist struct {
		name string
		draw func(r *rng.RNG, n int) []float64
	}
	dists := []wdist{
		{"uniform[1,64)", func(r *rng.RNG, n int) []float64 {
			w := make([]float64, n)
			for i := range w {
				w[i] = 1 + r.Float64()*63
			}
			return w
		}},
		{"exp(mean 8)", func(r *rng.RNG, n int) []float64 {
			w := make([]float64, n)
			for i := range w {
				w[i] = r.Exp(1.0/8) + 0.1
			}
			return w
		}},
	}
	for _, d := range dists {
		for _, eps := range []float64{0.5, 1.0} {
			var lossS, classesS stats.Summary
			for rep := 0; rep < reps; rep++ {
				r := root.Split(uint64(hash2("e15"+d.name+fmt.Sprint(eps), k, rep)))
				g := gen.GNP(n, 24/float64(n), r)
				vw := d.draw(r, g.N)
				parts := partition.RandomK(g.Edges, k, r.Split(1))
				coresets := make([]*core.WeightedVCCoreset, k)
				classSet := map[int]bool{}
				for i, p := range parts {
					coresets[i] = core.ComputeWeightedVCCoreset(g.N, k, eps, p, vw)
					for c := range coresets[i].Classes {
						classSet[c] = true
					}
				}
				cover := core.ComposeWeightedVC(g.N, coresets)
				if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
					panic(fmt.Sprintf("E15: %v", err))
				}
				dist := vcover.CoverWeight(cover, vw)
				central := vcover.CoverWeight(vcover.WeightedLocalRatio(g.N, g.Edges, vw), vw)
				if central > 0 {
					lossS.Add(dist / central)
				}
				classesS.Add(float64(len(classSet)))
			}
			tb.AddRow(d.name, eps,
				fmt.Sprintf("%.1f", classesS.Mean()),
				"1.00 (reference)",
				"", lossS.MeanCI())
		}
	}
	return &Result{
		ID:     "E15",
		Title:  "Weighted vertex cover extension",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"distributed/central stays a small constant, well inside the paper's O(log n) allowance; class count is the O(log n) space overhead",
		},
	}
}

func runE16(cfg Config) *Result {
	n := pick(cfg, 4096, 16384)
	trials := pick(cfg, 60, 200)
	alphas := []int{2, 4, 8}

	sub := stats.NewTable(
		"E16a: HVP subset strategy — success needs bits ≈ |S|·log n (Lemma 5.7 shape)",
		"alpha", "|S|≈t/3", "bit budget", "budget/(|S|·log n)", "P(success)", "|X| on success")
	hash := stats.NewTable(
		"E16b: HVP hash strategy — always succeeds, |X| shrinks only as bits grow",
		"alpha", "hash bits/elem", "total bits", "mean |X|")

	root := rng.New(cfg.Seed)
	for _, alpha := range alphas {
		t := n / alpha // |T| plays n/α as in the reduction from D_VC
		per := 1
		for 1<<uint(per) < n {
			per++
		}
		expectedS := float64(t) / 3
		fullBits := int(expectedS) * per
		for _, frac := range []float64{0.125, 0.5, 1.0} {
			budget := int(float64(fullBits) * frac)
			wins := 0
			var xs stats.Summary
			for i := 0; i < trials; i++ {
				r := root.Split(uint64(hash2("e16a", alpha, i)))
				inst := commgame.New(n, t, 1.0/3, r)
				res := commgame.SubsetStrategy(inst, budget, r.Split(9))
				if res.Success {
					wins++
					xs.Add(float64(len(res.X)))
				}
			}
			sub.AddRow(alpha, int(expectedS), budget,
				fmt.Sprintf("%.2f", float64(budget)/(expectedS*float64(per))),
				fmt.Sprintf("%.2f", float64(wins)/float64(trials)),
				fmt.Sprintf("%.1f", xs.Mean()))
		}
		for _, hb := range []int{4, 8, 12, 16} {
			var xs stats.Summary
			totalBits := 0
			for i := 0; i < trials/2; i++ {
				r := root.Split(uint64(hash2("e16b", alpha, i)))
				inst := commgame.New(n, t, 1.0/3, r)
				res := commgame.HashStrategy(inst, hb, r.Split(9))
				xs.Add(float64(len(res.X)))
				totalBits = res.BitsUsed
			}
			hash.AddRow(alpha, hb, totalBits, fmt.Sprintf("%.1f", xs.Mean()))
		}
	}
	return &Result{
		ID:     "E16",
		Title:  "Hidden Vertex Problem frontier",
		Tables: []*stats.Table{sub, hash},
		Notes: []string{
			"E16a: success probability tracks budget/(|S|·log n): to win w.p. 2/3 the message must carry a constant fraction of S — the Ω(n/α) bound",
			"E16b: even strategies that always succeed pay bits per element to shrink |X| below o(n): the |X ∪ Y| ≤ C·n clause of Lemma 5.7 cannot be bought cheaply",
		},
	}
}
