package expt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Weighted matching via Crouch-Stubbs weight classes (Section 1.1)",
		Paper: "Section 1.1: grouping edges by weight extends the matching coreset to weighted matching with a factor-2 extra loss and O(log n) space overhead.",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Concentration checks (Claim 3.3, Lemma 4.1, Lemma 4.2)",
		Paper: "The probabilistic workhorses: |M*<i| ≈ (i-1)/k·MM(G) (Claim 3.3); induced matchings Θ(n/α) (Lemma 4.1); |L¹| = Θ(n/α) with constant 1/(2√e) (Lemma 4.2); random partition balance.",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Per-partition parallel scaling (goroutine-per-machine)",
		Paper: "Systems-side: coreset computation is embarrassingly parallel across machines; measure wall-clock speedup of the summary phase.",
		Run:   runE13,
	})
}

func runE11(cfg Config) *Result {
	n := pick(cfg, 2000, 8000)
	k := pick(cfg, 4, 8)
	reps := pick(cfg, 2, 4)

	tb := stats.NewTable(
		"E11: weighted matching, distributed coreset vs centralized references (paper: <= 2x extra loss)",
		"workload", "eps", "classes/machine", "coreset-edges/machine", "reference", "ref-weight", "distributed-weight", "ref/distributed")
	root := rng.New(cfg.Seed)
	type wl struct {
		name string
		make func(r *rng.RNG) *graph.WGraph
		// exact computes the true MWM when feasible (bipartite), else -1.
		exact func(wg *graph.WGraph) float64
	}
	noExact := func(*graph.WGraph) float64 { return -1 }
	bipN := pick(cfg, 400, 1200) // Hungarian is O(n^3): keep the exact case modest
	workloads := []wl{
		{"uniform-weights", func(r *rng.RNG) *graph.WGraph {
			return gen.WeightedGNP(n, 12/float64(n), 64, r)
		}, noExact},
		{"powerlaw-exp-weights", func(r *rng.RNG) *graph.WGraph {
			return gen.WeightedChungLu(n, 2.0, n/16, 8.0, r)
		}, noExact},
		{"bipartite-exact-ref", func(r *rng.RNG) *graph.WGraph {
			b := gen.BipartiteGNP(bipN/2, bipN/2, 10/float64(bipN), r)
			g := b.ToGraph()
			out := &graph.WGraph{N: g.N, Edges: make([]graph.WEdge, len(g.Edges))}
			for i, e := range g.Edges {
				out.Edges[i] = graph.WEdge{U: e.U, V: e.V, W: 1 + r.Float64()*31}
			}
			return out
		}, func(wg *graph.WGraph) float64 {
			// Rebuild the bipartite view (left = [0, bipN/2)).
			nl := bipN / 2
			be := make([]graph.Edge, len(wg.Edges))
			ws := make([]float64, len(wg.Edges))
			for i, e := range wg.Edges {
				be[i] = graph.Edge{U: e.U, V: e.V - graph.ID(nl)}
				ws[i] = e.W
			}
			_, total := matching.MaxWeightBipartite(graph.NewBipartite(nl, nl, be), ws)
			return total
		}},
	}
	for _, w := range workloads {
		for _, eps := range []float64{0.5, 1.0} {
			var classesS, edgesS, refS, distS, lossS stats.Summary
			refName := "greedy 1/2-approx"
			for rep := 0; rep < reps; rep++ {
				r := root.Split(uint64(hash2("e11"+w.name+fmt.Sprint(eps), k, rep)))
				wg := w.make(r)
				parts := make([][]graph.WEdge, k)
				for _, e := range wg.Edges {
					i := r.Intn(k)
					parts[i] = append(parts[i], e)
				}
				coresets := make([]*core.WeightedCoreset, k)
				for i, p := range parts {
					coresets[i] = core.ComputeWeightedCoreset(wg.N, p, eps)
					classesS.Add(float64(len(coresets[i].Classes)))
					edgesS.Add(float64(core.WeightedCoresetEdges(coresets[i])))
				}
				dist := graph.TotalWeight(core.ComposeWeightedMatching(wg.N, coresets))
				ref := w.exact(wg)
				if ref >= 0 {
					refName = "exact MWM (Hungarian)"
				} else {
					ref = graph.TotalWeight(core.GreedyWeightedMatching(wg.N, wg.Edges))
				}
				refS.Add(ref)
				distS.Add(dist)
				lossS.Add(ratio(ref, dist))
			}
			tb.AddRow(w.name, eps,
				fmt.Sprintf("%.1f", classesS.Mean()),
				fmt.Sprintf("%.0f", edgesS.Mean()),
				refName,
				fmt.Sprintf("%.0f", refS.Mean()),
				fmt.Sprintf("%.0f", distS.Mean()),
				lossS.MeanCI())
		}
	}
	return &Result{
		ID:     "E11",
		Title:  "Weighted matching extension",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"central/distributed stays O(1) (and often < 2): the Crouch-Stubbs grouping preserves the coreset guarantee up to the paper's constant-factor loss",
			"classes/machine is O(log_{1+eps}(maxW)): the paper's O(log n) space overhead",
		},
	}
}

func runE12(cfg Config) *Result {
	n := pick(cfg, 4096, 16384)
	k := pick(cfg, 8, 16)
	trials := pick(cfg, 20, 60)
	root := rng.New(cfg.Seed)

	// (a) Claim 3.3: |M*_{<i}| prefix concentration.
	claim := stats.NewTable(
		"E12a: Claim 3.3 — matching-edge prefix |M*<i| vs (i-1)/k · MM(G)",
		"i", "expected-fraction", "measured-fraction", "max-abs-dev(all trials)")
	mm := n / 2
	devByI := make([]stats.Summary, k+1)
	fracByI := make([]stats.Summary, k+1)
	for tr := 0; tr < trials; tr++ {
		r := root.Split(uint64(hash2("e12a", 0, tr)))
		matchingEdges := make([]graph.Edge, mm)
		for i := range matchingEdges {
			matchingEdges[i] = graph.Edge{U: graph.ID(2 * i), V: graph.ID(2*i + 1)}
		}
		parts := partition.RandomK(matchingEdges, k, r)
		prefix := 0
		for i := 1; i <= k; i++ {
			frac := float64(prefix) / float64(mm)
			want := float64(i-1) / float64(k)
			fracByI[i].Add(frac)
			devByI[i].Add(math.Abs(frac - want))
			prefix += len(parts[i-1])
		}
	}
	for _, i := range []int{2, k/2 + 1, k} {
		claim.AddRow(i,
			fmt.Sprintf("%.3f", float64(i-1)/float64(k)),
			fmt.Sprintf("%.3f", fracByI[i].Mean()),
			fmt.Sprintf("%.4f", devByI[i].Max()))
	}

	// (b) Lemma 4.1 and (c) Lemma 4.2 constants.
	lem := stats.NewTable(
		"E12b: Lemma 4.1 / 4.2 — per-machine structure sizes under the hard distributions",
		"quantity", "alpha", "normalized mean (x / (n/alpha))", "paper prediction")
	for _, alpha := range []int{2, 4} {
		var im, l1 stats.Summary
		for tr := 0; tr < trials/4+1; tr++ {
			r := root.Split(uint64(hash2("e12b", alpha, tr)))
			hm := gen.HardMatching(n, alpha, k, r)
			partsM := partition.RandomK(hm.B.Edges, k, r.Split(1))
			for _, p := range partsM {
				im.Add(float64(len(gen.InducedMatching(hm.B.NL, p))) / (float64(n) / float64(alpha)))
			}
			hv := gen.HardVC(n, alpha, k, r.Split(2))
			partsV := partition.RandomK(hv.B.Edges, k, r.Split(3))
			for _, p := range partsV {
				l1v, _ := gen.DegreeOneLeft(n, p)
				l1.Add(float64(len(l1v)) / (float64(n) / float64(alpha)))
			}
		}
		lem.AddRow("induced matching |M(i)|", alpha, fmt.Sprintf("%.3f", im.Mean()), "Θ(1) (Lemma 4.1)")
		lem.AddRow("degree-1 left set |L1|", alpha, fmt.Sprintf("%.3f", l1.Mean()), "≈ 1/(2√e) ≈ 0.303 (Claim 5.6 regime)")
	}

	// (d) Partition balance.
	bal := stats.NewTable(
		"E12c: random k-partition balance (Chernoff regime)",
		"m", "k", "mean-load", "max-load", "max/mean")
	for _, m := range []int{10000, 100000} {
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.ID(i % 1000), V: graph.ID(1000 + i%999)}
		}
		parts := partition.RandomK(edges, k, root.Split(uint64(m)))
		min, max, mean := partition.LoadStats(parts)
		_ = min
		bal.AddRow(m, k, fmt.Sprintf("%.0f", mean), max, fmt.Sprintf("%.3f", float64(max)/mean))
	}

	return &Result{
		ID:     "E12",
		Title:  "Concentration checks",
		Tables: []*stats.Table{claim, lem, bal},
		Notes: []string{
			"E12a deviations shrink as O(sqrt(log/m)): Claim 3.3's Chernoff bound",
			"E12b normalized sizes are stable constants across alpha: the Θ(n/α) laws of Lemmas 4.1/4.2",
		},
	}
}

func runE13(cfg Config) *Result {
	n := pick(cfg, 20000, 100000)
	k := pick(cfg, 32, 64)
	root := rng.New(cfg.Seed)
	g := gen.GNP(n, 16/float64(n), root.Split(0))
	parts := partition.RandomK(g.Edges, k, root.Split(1))

	tb := stats.NewTable(
		"E13: parallel coreset computation speedup (goroutine per machine)",
		"workers", "summary-phase", "speedup-vs-1")
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		// Warm-up pass then timed pass, to stabilize allocator effects.
		core.MapParts(parts, w, func(i int, part []graph.Edge) int {
			return len(core.MatchingCoreset(g.N, part))
		})
		start := time.Now()
		core.MapParts(parts, w, func(i int, part []graph.Edge) int {
			return len(core.MatchingCoreset(g.N, part))
		})
		el := time.Since(start)
		if w == 1 {
			base = el
		}
		tb.AddRow(w, el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(el)))
	}
	return &Result{
		ID:     "E13",
		Title:  "Parallel scaling",
		Tables: []*stats.Table{tb},
		Notes: []string{
			fmt.Sprintf("n=%d, m=%d, k=%d machines; per-partition maximum matchings are independent, so the phase scales with workers up to memory bandwidth", n, g.M(), k),
		},
	}
}
