package expt

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Subsampled matching protocol: α-approx at Õ(nk/α²) bytes (Remark 5.2)",
		Paper: "Remark 5.2 / Theorem 5 tightness: subsampling each machine's maximum matching at rate 1/α gives an α-approximation with O~(nk/α²) total communication.",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Grouped VC protocol: α-approx at Õ(nk/α) bytes (Remark 5.8)",
		Paper: "Remark 5.8 / Theorem 6 tightness: grouping vertices into Θ(α/log n)-size groups and running Theorem 2 gives an α-approximation with O~(nk/α) communication.",
		Run:   runE8,
	})
}

func runE7(cfg Config) *Result {
	n := pick(cfg, 4096, 32768)
	k := pick(cfg, 8, 16)
	reps := pick(cfg, 2, 4)
	alphas := []int{1, 2, 4, 8}

	tb := stats.NewTable(
		"E7: subsampled matching protocol vs alpha (paper: ratio ≈ α, bytes ≈ c·nk/α²)",
		"alpha", "total-bytes", "bytes*alpha^2/(n*k)", "opt", "matching", "ratio", "ratio/alpha")
	root := rng.New(cfg.Seed)
	g := gen.GNP(n, 10/float64(n), root.Split(0))
	opt := matching.Maximum(g.N, g.Edges).Size()
	for _, alpha := range alphas {
		var bytesS, ratioS, sizeS stats.Summary
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(hash2("e7", alpha, rep))
			res, err := protocol.Run(g, k, protocol.SubsampledMatchingProtocol{Alpha: alpha}, seed, cfg.Workers)
			if err != nil {
				panic(err)
			}
			m := matching.FromEdges(g.N, res.Solution.MatchingEdges)
			bytesS.Add(float64(res.TotalBytes))
			sizeS.Add(float64(m.Size()))
			ratioS.Add(ratio(float64(opt), float64(m.Size())))
		}
		norm := bytesS.Mean() * float64(alpha*alpha) / (float64(n) * float64(k))
		tb.AddRow(alpha,
			fmt.Sprintf("%.0f", bytesS.Mean()),
			fmt.Sprintf("%.2f", norm),
			opt,
			fmt.Sprintf("%.0f", sizeS.Mean()),
			ratioS.MeanCI(),
			fmt.Sprintf("%.2f", ratioS.Mean()/float64(alpha)))
	}
	return &Result{
		ID:     "E7",
		Title:  "Subsampled matching protocol",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"bytes*α²/(nk) stays ~constant (the Õ(nk/α²) law); ratio/α stays <= O(1): Theorem 5 is tight",
		},
	}
}

func runE8(cfg Config) *Result {
	n := pick(cfg, 4096, 32768)
	k := pick(cfg, 8, 16)
	reps := pick(cfg, 2, 4)
	alphas := []int{16, 32, 64, 128}

	tb := stats.NewTable(
		"E8: grouped VC protocol vs alpha (paper: ratio <= α, bytes ≈ c·nk/α)",
		"alpha", "group-size", "total-bytes", "bytes*alpha/(n*k)", "opt", "cover", "ratio", "feasible")
	root := rng.New(cfg.Seed)
	b := gen.BipartiteGNP(n/2, n/2, 20/float64(n), root.Split(0))
	g := b.ToGraph()
	opt := len(vcover.KonigCover(b))
	for _, alpha := range alphas {
		var bytesS, coverS, ratioS stats.Summary
		feasible := true
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(hash2("e8", alpha, rep))
			res, err := protocol.Run(g, k, protocol.GroupedVCProtocol{Alpha: alpha}, seed, cfg.Workers)
			if err != nil {
				panic(err)
			}
			if err := vcover.Verify(g.N, g.Edges, res.Solution.Cover); err != nil {
				feasible = false
			}
			bytesS.Add(float64(res.TotalBytes))
			coverS.Add(float64(len(res.Solution.Cover)))
			ratioS.Add(ratio(float64(len(res.Solution.Cover)), float64(opt)))
		}
		gs := groupSizeFor(n, alpha)
		norm := bytesS.Mean() * float64(alpha) / (float64(n) * float64(k))
		tb.AddRow(alpha, gs,
			fmt.Sprintf("%.0f", bytesS.Mean()),
			fmt.Sprintf("%.2f", norm),
			opt,
			fmt.Sprintf("%.0f", coverS.Mean()),
			ratioS.MeanCI(),
			feasible)
	}
	return &Result{
		ID:     "E8",
		Title:  "Grouped VC protocol",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"bytes*α/(nk) stays ~constant (the Õ(nk/α) law) once α exceeds log n; ratio stays below α: Theorem 6 is tight",
		},
	}
}

// groupSizeFor mirrors core.GroupSizeFor without importing core here.
func groupSizeFor(n, alpha int) int {
	lg := 1
	for 1<<uint(lg) < n {
		lg++
	}
	g := alpha / lg
	if g < 1 {
		g = 1
	}
	return g
}
