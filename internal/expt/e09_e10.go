package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "MapReduce: 2-round coreset algorithm vs filtering baseline (Section 1.1)",
		Paper: "Section 1.1: with k=√n machines of memory O~(n√n), the coreset algorithm needs 2 rounds (1 if input already random) for O(1)-approx matching / O(log n) VC; the filtering algorithm of [46] needs >= 3 rounds for its 2-approximation.",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Random vs adversarial partitioning (the paper's central insight)",
		Paper: "Section 1: under adversarial partitioning even polylog(n)-approximation needs Ω~(n²) summaries [10]; random partitioning enables O~(n) coresets. We measure the same coreset pipeline under both partitionings.",
		Run:   runE10,
	})
}

func runE9(cfg Config) *Result {
	reps := pick(cfg, 2, 3)
	sizes := pick(cfg, []int{1024, 2048}, []int{1024, 4096, 16384})

	tb := stats.NewTable(
		"E9: MapReduce rounds / memory / quality (paper: 2 rounds vs >= 3; comparable memory)",
		"n", "m", "algorithm", "rounds", "max-machine-load", "opt", "solution", "ratio")
	root := rng.New(cfg.Seed)
	for _, n := range sizes {
		for rep := 0; rep < reps; rep++ {
			r := root.Split(uint64(hash2("e9", n, rep)))
			g := gen.GNP(n, 24/float64(n), r)
			k := mapreduce.DefaultK(g.N)
			opt := matching.Maximum(g.N, g.Edges).Size()

			m2, st2 := mapreduce.CoresetMatchingMR(g, k, false, cfg.Seed+uint64(rep), cfg.Workers)
			tb.AddRow(n, g.M(), "coreset-2round", st2.Rounds, st2.MaxMachineLoad,
				opt, m2.Size(), fmt.Sprintf("%.2f", ratio(float64(opt), float64(m2.Size()))))

			m1, st1 := mapreduce.CoresetMatchingMR(g, k, true, cfg.Seed+uint64(rep), cfg.Workers)
			tb.AddRow(n, g.M(), "coreset-1round(random input)", st1.Rounds, st1.MaxMachineLoad,
				opt, m1.Size(), fmt.Sprintf("%.2f", ratio(float64(opt), float64(m1.Size()))))

			mem := g.N // same order of memory as one machine's partition
			mf, stf := mapreduce.FilteringMatching(g, mem, cfg.Seed+uint64(rep))
			tb.AddRow(n, g.M(), "filtering[46]", stf.Rounds, stf.MaxMachineLoad,
				opt, mf.Size(), fmt.Sprintf("%.2f", ratio(float64(opt), float64(mf.Size()))))

			cover, stv := mapreduce.CoresetVCMR(g, k, false, cfg.Seed+uint64(rep), cfg.Workers)
			lb := matching.MaximalGreedy(g.N, g.Edges).Size()
			tb.AddRow(n, g.M(), "coreset-vc-2round", stv.Rounds, stv.MaxMachineLoad,
				lb, len(cover), fmt.Sprintf("%.2f", ratio(float64(len(cover)), float64(lb))))
		}
	}
	return &Result{
		ID:     "E9",
		Title:  "MapReduce round comparison",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"coreset algorithm: always 2 rounds (1 with random input); filtering: >= 3 rounds at comparable memory; both O(1)-quality (filtering 2-approx, coreset ~1.1-1.5x observed)",
			"VC rows report cover/LB where LB = maximal-matching lower bound on VC",
		},
	}
}

func runE10(cfg Config) *Result {
	n := pick(cfg, 2000, 8000)
	reps := pick(cfg, 2, 4)
	ks := pick(cfg, []int{4, 8, 16}, []int{4, 8, 16, 32})

	mt := stats.NewTable(
		"E10a: matching pipeline on the trap instance, random vs adversarial partitioning (paper: O(1) vs unbounded)",
		"k", "partitioning", "opt", "matching", "ratio", "ratio/k")
	root := rng.New(cfg.Seed)
	for _, k := range ks {
		for _, strat := range []string{"random", "by-right-vertex"} {
			var ratioS stats.Summary
			for rep := 0; rep < reps; rep++ {
				r := root.Split(uint64(hash2("e10"+strat, k, rep)))
				inst := gen.GreedyTrap(n, k, r)
				g := inst.B.ToGraph()
				var parts [][]graph.Edge
				if strat == "random" {
					parts = partition.RandomK(g.Edges, k, r.Split(1))
				} else {
					// Adversary routes every edge by its right endpoint:
					// each machine sees all confuser edges competing with
					// its hidden edges, so ANY maximum matching can avoid
					// the hidden edges entirely.
					assign := make([]int, len(g.Edges))
					for i, e := range g.Edges {
						assign[i] = int(e.V) % k
					}
					parts = partition.ByAssignment(g.Edges, k, assign)
				}
				coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) []graph.Edge {
					return core.MatchingCoreset(g.N, part)
				})
				got := core.ComposeMatching(g.N, coresets).Size()
				ratioS.Add(ratio(float64(n), float64(got)))
			}
			mt.AddRow(k, strat, n, "", ratioS.MeanCI(), fmt.Sprintf("%.2f", ratioS.Mean()/float64(k)))
		}
	}

	vt := stats.NewTable(
		"E10b: VC-Coreset on G(n,p), random vs adversarial partitioning (robustness check)",
		"k", "partitioning", "LB", "cover", "ratio")
	for _, k := range ks {
		for _, strat := range []string{partition.StrategyRandom, partition.StrategyByVertex} {
			var ratioS stats.Summary
			for rep := 0; rep < reps; rep++ {
				r := root.Split(uint64(hash2("e10vc"+strat, k, rep)))
				g := gen.GNP(n, 32/float64(n), r)
				lb := matching.MaximalGreedy(g.N, g.Edges).Size()
				if lb == 0 {
					continue
				}
				parts := partition.ByName(strat, g.Edges, k, r.Split(1))
				coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) *core.VCCoreset {
					return core.ComputeVCCoreset(g.N, k, part)
				})
				cover := core.ComposeVC(g.N, coresets)
				if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
					panic(fmt.Sprintf("E10: infeasible: %v", err))
				}
				ratioS.Add(ratio(float64(len(cover)), float64(lb)))
			}
			vt.AddRow(k, strat, "", "", ratioS.MeanCI())
		}
	}
	return &Result{
		ID:     "E10",
		Title:  "Random vs adversarial partitioning",
		Tables: []*stats.Table{mt, vt},
		Notes: []string{
			"E10a: adversarial routing sends the matching-coreset ratio to Θ(k) on the trap instance while random partitioning keeps it O(1) — the paper's core insight",
			"E10b: on G(n,p) the VC pipeline is measurably insensitive to the by-vertex adversary (the residual 2-approx dominates); the dramatic adversarial failure in our instance family is matching-specific (E10a), while the paper's general adversarial VC hardness needs the [10]-style constructions that no small summary survives",
		},
	}
}
