package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Maximum-matching coreset approximation (Theorem 1)",
		Paper: "Result 1 / Theorem 1: any maximum matching of G(i) is an O(1)-approximate randomized coreset of size O(n); proof bound 9, GreedyMatch constant c=1/9.",
		Run:   runE1,
	})
}

// e1Workload is one named workload for E1.
type e1Workload struct {
	name string
	make func(r *rng.RNG) *graph.Graph
}

func runE1(cfg Config) *Result {
	n := pick(cfg, 1500, 16384)
	reps := pick(cfg, 2, 5)
	workloads := []e1Workload{
		{"gnp", func(r *rng.RNG) *graph.Graph {
			return gen.GNP(n, 8/float64(n), r)
		}},
		{"bipartite", func(r *rng.RNG) *graph.Graph {
			return gen.BipartiteGNP(n/2, n/2, 16/float64(n), r).ToGraph()
		}},
		{"powerlaw", func(r *rng.RNG) *graph.Graph {
			return gen.ChungLu(n, 2.0, n/16, r)
		}},
	}
	ks := pick(cfg, []int{2, 4, 8, 16}, []int{2, 4, 8, 16, 32, 64})

	tb := stats.NewTable(
		"E1: matching coreset ratio OPT/ALG vs k (paper: O(1), <= 9)",
		"workload", "k", "n", "m", "opt", "coreset-edges/machine", "ratio-compose", "ratio-greedymatch")
	worst := 0.0
	root := rng.New(cfg.Seed)
	for _, wl := range workloads {
		for _, k := range ks {
			var rExact, rGreedy, csEdges stats.Summary
			var mEdges, optSz int
			for rep := 0; rep < reps; rep++ {
				r := root.Split(uint64(hash2(wl.name, k, rep)))
				g := wl.make(r)
				mEdges = g.M()
				opt := matching.Maximum(g.N, g.Edges).Size()
				optSz = opt
				if opt == 0 {
					continue
				}
				parts := partition.RandomK(g.Edges, k, r.Split(1))
				coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) []graph.Edge {
					return core.MatchingCoreset(g.N, part)
				})
				for _, cs := range coresets {
					csEdges.Add(float64(len(cs)))
				}
				exact := core.ComposeMatching(g.N, coresets).Size()
				greedy := core.GreedyMatchCombine(g.N, coresets).Size()
				rExact.Add(ratio(float64(opt), float64(exact)))
				rGreedy.Add(ratio(float64(opt), float64(greedy)))
			}
			if rExact.Max() > worst {
				worst = rExact.Max()
			}
			tb.AddRow(wl.name, k, n, mEdges, optSz,
				fmt.Sprintf("%.0f", csEdges.Mean()), rExact.MeanCI(), rGreedy.MeanCI())
		}
	}
	return &Result{
		ID:     "E1",
		Title:  "Maximum-matching coreset approximation",
		Tables: []*stats.Table{tb},
		Notes: []string{
			fmt.Sprintf("worst observed compose ratio %.3f (paper bound: 9; expected flat in k)", worst),
			"coreset size is <= n/2 edges per machine by construction (a matching)",
		},
	}
}

// hash2 derives a stable per-cell stream label.
func hash2(name string, k, rep int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range name {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h = (h ^ uint64(k)) * 1099511628211
	h = (h ^ uint64(rep)) * 1099511628211
	return h
}
