package expt

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(all))
	}
	for i, e := range all {
		var gotID int
		if _, err := fmt.Sscanf(e.ID, "E%d", &gotID); err != nil {
			t.Fatalf("bad experiment id %q: %v", e.ID, err)
		}
		if gotID != i+1 {
			t.Fatalf("experiment %d has id %s (sorted order broken)", i, e.ID)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

// TestAllExperimentsRunQuick executes every experiment end-to-end in quick
// mode. This is the suite's integration test: every experiment must produce
// at least one non-empty table and must not panic (feasibility violations
// inside experiments panic by design).
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	cfg := Config{Seed: 0xC0FFEE, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(cfg)
			if res.ID != e.ID {
				t.Fatalf("result id %q != %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q empty", tb.Title)
				}
				out := tb.String()
				if !strings.Contains(out, "--") {
					t.Fatalf("table %q did not render", tb.Title)
				}
			}
		})
	}
}

// TestExperimentsDeterministic re-runs one representative experiment and
// compares rendered tables: same seed, same tables.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 42, Quick: true}
	for _, id := range []string{"E1", "E4", "E7"} {
		e, _ := Get(id)
		a := e.Run(cfg)
		b := e.Run(cfg)
		for i := range a.Tables {
			if a.Tables[i].String() != b.Tables[i].String() {
				t.Fatalf("%s table %d not deterministic", id, i)
			}
		}
	}
}
