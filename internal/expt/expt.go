// Package expt is the experiment harness: every formal result of the paper
// is mapped to a named, parameterised, seeded experiment that produces the
// table the paper's claim predicts (DESIGN.md Section 3 is the index).
// The cmd/experiments binary runs them; EXPERIMENTS.md records the measured
// outcomes against the paper's statements.
package expt

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Seed is the root seed; every random choice in the experiment derives
	// from it, so runs are exactly reproducible.
	Seed uint64
	// Quick shrinks instance sizes and repetition counts so the whole
	// suite finishes in seconds (used by `go test` and -quick).
	Quick bool
	// Workers caps goroutine parallelism inside pipelines (0 = GOMAXPROCS).
	Workers int
}

// Result is an executed experiment: one or more tables plus free-form notes
// summarizing the observed vs expected shape.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Experiment is a registered, runnable reproduction unit.
type Experiment struct {
	ID    string // E1..E22
	Title string
	Paper string // the paper result it reproduces
	Run   func(cfg Config) *Result
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the experiments sorted by ID (E1, E2, ..., E22).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// Numeric sort on the suffix after 'E'.
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// pick returns quick when cfg.Quick is set and full otherwise.
func pick[T any](cfg Config, quick, full T) T {
	if cfg.Quick {
		return quick
	}
	return full
}

// ratio returns a/b guarding against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
