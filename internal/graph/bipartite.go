package graph

import "fmt"

// Bipartite is a bipartite graph with NL left vertices and NR right
// vertices. Edges store (left, right) indices in their own ranges:
// e.U in [0, NL) indexes the left side, e.V in [0, NR) the right side.
//
// The paper's hard distributions (Sections 4 and 5) and most of its
// motivating workloads are bipartite, and bipartite instances admit both a
// fast maximum matching (Hopcroft-Karp) and an exact minimum vertex cover
// (Konig's theorem), which the test suite uses as ground truth.
type Bipartite struct {
	NL, NR int
	Edges  []Edge
}

// NewBipartite returns a bipartite graph; edges are (left, right) pairs.
func NewBipartite(nl, nr int, edges []Edge) *Bipartite {
	return &Bipartite{NL: nl, NR: nr, Edges: edges}
}

// N returns the total number of vertices.
func (b *Bipartite) N() int { return b.NL + b.NR }

// M returns the number of edges.
func (b *Bipartite) M() int { return len(b.Edges) }

// Validate checks endpoint ranges.
func (b *Bipartite) Validate() error {
	if b.NL < 0 || b.NR < 0 {
		return fmt.Errorf("graph: negative side sizes (%d, %d)", b.NL, b.NR)
	}
	for i, e := range b.Edges {
		if e.U < 0 || int(e.U) >= b.NL {
			return fmt.Errorf("graph: bipartite edge %d = %v: left endpoint out of [0,%d)", i, e, b.NL)
		}
		if e.V < 0 || int(e.V) >= b.NR {
			return fmt.Errorf("graph: bipartite edge %d = %v: right endpoint out of [0,%d)", i, e, b.NR)
		}
	}
	return nil
}

// ToGraph converts to a general graph: left vertices keep ids [0, NL), right
// vertex r becomes NL+r. This is the embedding used whenever a bipartite
// workload flows into the partition-agnostic coreset pipeline.
func (b *Bipartite) ToGraph() *Graph {
	edges := make([]Edge, len(b.Edges))
	for i, e := range b.Edges {
		edges[i] = Edge{e.U, ID(b.NL) + e.V}
	}
	return &Graph{N: b.N(), Edges: edges}
}

// FromGraphSides reinterprets a general graph as bipartite given a 2-coloring
// side (as produced by Adj.IsBipartiteWithSides). Vertices with side 0 map to
// the left, side 1 to the right. It returns the bipartite graph together with
// the mappings left[i] / right[j] back to original ids.
func FromGraphSides(n int, edges []Edge, side []int8) (b *Bipartite, left, right []ID) {
	toLocal := make([]ID, n)
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			toLocal[v] = ID(len(left))
			left = append(left, ID(v))
		} else {
			toLocal[v] = ID(len(right))
			right = append(right, ID(v))
		}
	}
	be := make([]Edge, len(edges))
	for i, e := range edges {
		u, v := e.U, e.V
		if side[u] != 0 {
			u, v = v, u
		}
		be[i] = Edge{toLocal[u], toLocal[v]}
	}
	return NewBipartite(len(left), len(right), be), left, right
}
