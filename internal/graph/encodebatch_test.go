package graph

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// TestEdgeBatchRoundTrip: encode→decode must reproduce the batch exactly and
// consume exactly the encoded bytes, for sorted, unsorted and empty inputs.
func TestEdgeBatchRoundTrip(t *testing.T) {
	cases := [][]Edge{
		nil,
		{},
		{{0, 0}},
		{{0, 1}, {1, 2}, {2, 3}},
		{{5, 3}, {0, 9}, {1000000, 2}, {7, 7}},
		{{1 << 30, 1<<30 + 1}, {0, 1 << 30}},
		// The ID range boundary: MaxID must round-trip exactly.
		{{MaxID, MaxID}, {0, MaxID}, {MaxID, 0}},
	}
	for i, edges := range cases {
		buf := AppendEdgeBatch([]byte{0xAA}, edges) // nonempty dst: append semantics
		got, rest, err := DecodeEdgeBatch(buf[1:])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d bytes left over", i, len(rest))
		}
		if len(edges) == 0 {
			if got != nil {
				t.Fatalf("case %d: empty batch decoded to %v", i, got)
			}
		} else if !reflect.DeepEqual(got, edges) {
			t.Fatalf("case %d: got %v want %v", i, got, edges)
		}
		if want := EdgeBatchBytes(edges); want != len(buf)-1 {
			t.Fatalf("case %d: EdgeBatchBytes %d, encoding is %d", i, want, len(buf)-1)
		}
	}
}

// TestEdgeBatchSortedBeatsPlain: on a sorted edge list the delta encoding
// must not be larger than the plain encoding (it is the accounting format
// for coreset messages, which are produced sorted).
func TestEdgeBatchSortedBeatsPlain(t *testing.T) {
	var edges []Edge
	for u := ID(0); u < 3000; u += 3 {
		edges = append(edges, Edge{u, u + 1}, Edge{u, u + 257})
	}
	SortEdges(edges)
	if d, p := EdgeBatchBytes(edges), EncodedEdgeBytes(edges); d > p {
		t.Fatalf("delta %d bytes > plain %d bytes on sorted input", d, p)
	}
}

func TestEdgeBatchCorrupt(t *testing.T) {
	for _, data := range [][]byte{
		{},                 // no count
		{0x05},             // count 5, no payload
		{0x01, 0x80},       // truncated varint U
		{0x01, 0x01, 0x80}, // truncated varint V
		{0x01, 0x01},       // count 1, V missing entirely
	} {
		if _, _, err := DecodeEdgeBatch(data); err == nil {
			t.Fatalf("corrupt input %v accepted", data)
		}
	}
	// Negative endpoint: U delta -1 from prev 0. The rejection carries the
	// typed range error.
	neg := binary.AppendVarint(binary.AppendUvarint(nil, 1), -1)
	neg = binary.AppendVarint(neg, 0)
	var ire *IDRangeError
	if _, _, err := DecodeEdgeBatch(neg); err == nil || !errors.As(err, &ire) {
		t.Fatalf("negative endpoint: err = %v, want *IDRangeError", err)
	}
	// Endpoint one past MaxID (V = U + delta overflowing the ID range).
	over := binary.AppendVarint(binary.AppendUvarint(nil, 1), int64(MaxID))
	over = binary.AppendVarint(over, 1)
	if _, _, err := DecodeEdgeBatch(over); err == nil || !errors.As(err, &ire) {
		t.Fatalf("endpoint past MaxID: err = %v, want *IDRangeError", err)
	}
}

// TestEncodersRejectNegativeIDs: every binary encoder (and its accounting
// twin) must panic with the typed *IDRangeError instead of wrapping a
// negative ID through uint32 onto the wire.
func TestEncodersRejectNegativeIDs(t *testing.T) {
	badEdges := []Edge{{0, 1}, {-1, 2}}
	badIDs := []ID{3, -7}
	cases := map[string]func(){
		"AppendEdgeBatch":  func() { AppendEdgeBatch(nil, badEdges) },
		"EdgeBatchBytes":   func() { EdgeBatchBytes(badEdges) },
		"AppendEdges":      func() { AppendEdges(nil, badEdges) },
		"EncodedEdgeBytes": func() { EncodedEdgeBytes(badEdges) },
		"AppendIDs":        func() { AppendIDs(nil, badIDs) },
		"EncodedIDBytes":   func() { EncodedIDBytes(badIDs) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				ire, ok := r.(*IDRangeError)
				if !ok {
					t.Fatalf("panic value %v (%T), want *IDRangeError", r, r)
				}
				if ire.ID >= 0 {
					t.Fatalf("reported ID %d is not the out-of-range one", ire.ID)
				}
			}()
			fn()
			t.Fatal("negative ID encoded without panic")
		})
	}
}

// TestDecodersRejectOversizedIDs: the plain codecs must reject uvarints
// above MaxID instead of truncating them through uint32 — the decode-side
// half of the same silent-wrap bug.
func TestDecodersRejectOversizedIDs(t *testing.T) {
	var ire *IDRangeError
	huge := uint64(MaxID) + 1
	edges := binary.AppendUvarint(nil, 1)
	edges = binary.AppendUvarint(edges, huge)
	edges = binary.AppendUvarint(edges, 0)
	if _, _, err := DecodeEdges(edges); err == nil || !errors.As(err, &ire) {
		t.Fatalf("DecodeEdges: err = %v, want *IDRangeError", err)
	}
	ids := binary.AppendUvarint(nil, 1)
	ids = binary.AppendUvarint(ids, huge)
	if _, _, err := DecodeIDs(ids); err == nil || !errors.As(err, &ire) {
		t.Fatalf("DecodeIDs: err = %v, want *IDRangeError", err)
	}
	// MaxID itself is fine in both codecs.
	if got, _, err := DecodeEdges(EncodeEdges([]Edge{{MaxID, 0}})); err != nil || got[0].U != MaxID {
		t.Fatalf("MaxID edge rejected: %v %v", got, err)
	}
	if got, _, err := DecodeIDs(EncodeIDs([]ID{MaxID})); err != nil || got[0] != MaxID {
		t.Fatalf("MaxID id rejected: %v %v", got, err)
	}
}

// FuzzEdgeBatchCodec fuzzes both directions: arbitrary bytes must decode
// without panicking, and anything that decodes must re-encode to a
// round-trip-stable batch; arbitrary edge lists (derived from the input
// bytes) must survive encode→decode exactly, with EdgeBatchBytes matching
// the real encoding size.
func FuzzEdgeBatchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x02, 0x02})
	f.Add(AppendEdgeBatch(nil, []Edge{{0, 1}, {5, 2}, {1 << 30, 0}}))
	// ID range boundary seeds: MaxID endpoints (largest legal values, the
	// widest deltas the zigzag codec must carry) and hand-built payloads
	// whose deltas land exactly one past the range in each direction.
	f.Add(AppendEdgeBatch(nil, []Edge{{MaxID, 0}, {0, MaxID}, {MaxID, MaxID}}))
	f.Add(binary.AppendVarint(binary.AppendVarint(binary.AppendUvarint(nil, 1), int64(MaxID)), 1))
	f.Add(binary.AppendVarint(binary.AppendVarint(binary.AppendUvarint(nil, 1), -1), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: decode arbitrary bytes; on success the decoded batch
		// must round-trip through the codec.
		if edges, rest, err := DecodeEdgeBatch(data); err == nil {
			re := AppendEdgeBatch(nil, edges)
			if len(re) != EdgeBatchBytes(edges) {
				t.Fatalf("EdgeBatchBytes %d != encoding %d", EdgeBatchBytes(edges), len(re))
			}
			back, rest2, err := DecodeEdgeBatch(re)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if len(rest2) != 0 || !reflect.DeepEqual(back, edges) {
				t.Fatalf("re-decode mismatch: %v vs %v", back, edges)
			}
			_ = rest
		}

		// Direction 2: build an edge list from the raw bytes and round-trip it.
		var edges []Edge
		for i := 0; i+8 <= len(data); i += 8 {
			u := ID(binary.LittleEndian.Uint32(data[i:]) &^ (1 << 31))
			v := ID(binary.LittleEndian.Uint32(data[i+4:]) &^ (1 << 31))
			edges = append(edges, Edge{u, v})
		}
		buf := AppendEdgeBatch(nil, edges)
		if len(buf) != EdgeBatchBytes(edges) {
			t.Fatalf("EdgeBatchBytes %d != encoding %d", EdgeBatchBytes(edges), len(buf))
		}
		got, rest, err := DecodeEdgeBatch(buf)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("round trip left %d bytes", len(rest))
		}
		if len(edges) == 0 {
			if got != nil {
				t.Fatalf("empty batch decoded non-nil")
			}
			return
		}
		if !reflect.DeepEqual(got, edges) {
			t.Fatalf("round trip mismatch")
		}
	})
}
