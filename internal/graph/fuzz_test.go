package graph

import (
	"bytes"
	"io"
	"os"
	"reflect"
	"testing"
)

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input: it
// must never panic, every accepted graph must validate, and the incremental
// EdgeListParser must accept exactly the inputs (and produce exactly the
// edges) that the batch ReadEdgeList does — the parity the streaming runtime
// relies on. The lenient parser rides along under its own invariants: it
// accepts everything the strict parser accepts, yields the strict edge list
// with duplicates removed, and never yields a self-loop or a repeated edge.
func FuzzReadEdgeList(f *testing.F) {
	for _, seed := range []string{
		"p 4 2\n0 1\n2 3\n",
		"# comment\n% other\n0 1\n3 2\n",
		"p 2\n",
		"0 x\n",
		"p 2 1\n0 1\n0 1\n",
		"p 1 1\n0 5\n",
		"-1 0\n",
		"0 0\n",
		"",
		"p 0 0\n",
		"1 2\np 5 1\n",
		"9999999999 1\n",
		"p 3 1\n0\t1\n",
		"0\t1\t1438300800\n", // extra column (timestamped SNAP dump)
		"1 2\r\n2 3\r\n",     // CRLF line endings
		"3 3\n1 2\n2 1\n",    // self-loop + reversed duplicate
	} {
		f.Add([]byte(seed))
	}
	// The checked-in SNAP-style fixture (tabs, CRLF, comments, self-loops,
	// duplicates) seeds the corpus with the real-world shape ingestion sees.
	if fixture, err := os.ReadFile("testdata/snap_sample.txt"); err == nil {
		f.Add(fixture)
	} else {
		f.Fatalf("fixture: %v", err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted graph fails validation: %v", verr)
			}
		}

		p := NewEdgeListParser(bytes.NewReader(data))
		var edges []Edge
		var perr error
		for {
			e, nerr := p.Next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				perr = nerr
				break
			}
			edges = append(edges, e)
		}
		if (err == nil) != (perr == nil) {
			t.Fatalf("batch err = %v, incremental err = %v", err, perr)
		}
		if err == nil {
			if p.NumVertices() != g.N {
				t.Fatalf("incremental n = %d, batch n = %d", p.NumVertices(), g.N)
			}
			if len(edges) != len(g.Edges) || (len(edges) > 0 && !reflect.DeepEqual(edges, g.Edges)) {
				t.Fatalf("incremental edges %v != batch edges %v", edges, g.Edges)
			}
		}

		// Lenient invariants: never yields a self-loop or repeat, and on any
		// strict-accepted input it succeeds with the deduplicated edge list.
		lp := NewLenientEdgeListParser(bytes.NewReader(data))
		var lenientEdges []Edge
		var lerr error
		yielded := make(map[Edge]struct{})
		for {
			e, nerr := lp.Next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				lerr = nerr
				break
			}
			if e.U == e.V {
				t.Fatalf("lenient parser yielded self-loop %v", e)
			}
			if _, dup := yielded[e]; dup {
				t.Fatalf("lenient parser yielded duplicate %v", e)
			}
			yielded[e] = struct{}{}
			lenientEdges = append(lenientEdges, e)
		}
		if err == nil {
			if lerr != nil {
				t.Fatalf("strict accepted but lenient failed: %v", lerr)
			}
			var dedup []Edge
			seen := make(map[Edge]struct{}, len(g.Edges))
			for _, e := range g.Edges {
				if _, ok := seen[e]; ok {
					continue
				}
				seen[e] = struct{}{}
				dedup = append(dedup, e)
			}
			if !reflect.DeepEqual(lenientEdges, dedup) {
				t.Fatalf("lenient edges %v != dedup(strict edges) %v", lenientEdges, dedup)
			}
			if lp.Duplicates() != len(g.Edges)-len(dedup) {
				t.Fatalf("lenient Duplicates() = %d, want %d", lp.Duplicates(), len(g.Edges)-len(dedup))
			}
		}
	})
}
