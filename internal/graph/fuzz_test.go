package graph

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input: it
// must never panic, every accepted graph must validate, and the incremental
// EdgeListParser must accept exactly the inputs (and produce exactly the
// edges) that the batch ReadEdgeList does — the parity the streaming runtime
// relies on.
func FuzzReadEdgeList(f *testing.F) {
	for _, seed := range []string{
		"p 4 2\n0 1\n2 3\n",
		"# comment\n% other\n0 1\n3 2\n",
		"p 2\n",
		"0 x\n",
		"p 2 1\n0 1\n0 1\n",
		"p 1 1\n0 5\n",
		"-1 0\n",
		"0 0\n",
		"",
		"p 0 0\n",
		"1 2\np 5 1\n",
		"9999999999 1\n",
		"p 3 1\n0\t1\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted graph fails validation: %v", verr)
			}
		}

		p := NewEdgeListParser(bytes.NewReader(data))
		var edges []Edge
		var perr error
		for {
			e, nerr := p.Next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				perr = nerr
				break
			}
			edges = append(edges, e)
		}
		if (err == nil) != (perr == nil) {
			t.Fatalf("batch err = %v, incremental err = %v", err, perr)
		}
		if err == nil {
			if p.NumVertices() != g.N {
				t.Fatalf("incremental n = %d, batch n = %d", p.NumVertices(), g.N)
			}
			if len(edges) != len(g.Edges) || (len(edges) > 0 && !reflect.DeepEqual(edges, g.Edges)) {
				t.Fatalf("incremental edges %v != batch edges %v", edges, g.Edges)
			}
		}
	})
}
