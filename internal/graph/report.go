package graph

// RunReport is the JSON-able record of one distributed coreset run: the
// input shape, the partitioning parameters, the composed solution size and
// the per-machine / communication accounting. It is the schema shared by
// cmd/coreset's -json output and the coresetd service API, so a CLI run and
// a service job describe themselves identically and downstream tooling can
// consume either.
//
// Slice fields are indexed by machine. Fields that only one runtime produces
// (StoredEdges, Live, Batches, EdgesPerSec for streaming; nothing is
// batch-only) are omitted from the JSON encoding when empty.
type RunReport struct {
	Task string `json:"task"` // "matching" | "vc" | "edcs"
	Mode string `json:"mode"` // "batch" | "stream" | "cluster"
	N    int    `json:"n"`    // vertices
	M    int    `json:"m"`    // edges read
	K    int    `json:"k"`    // machines
	Seed uint64 `json:"seed"` // partitioning seed
	// Beta is the EDCS degree bound that produced the coresets (task "edcs"
	// only; omitted otherwise). Without it, reports from different bounds on
	// the same (graph, seed, k) would be indistinguishable.
	Beta int `json:"beta,omitempty"`

	// SolutionSize is the composed matching size (edges) or vertex cover
	// size (vertices).
	SolutionSize int `json:"solutionSize"`

	PartEdges []int `json:"partEdges,omitempty"` // edges routed to each machine
	// StoredEdges is how many edges each machine still held at end of
	// stream (streaming only; online peeling can make it < PartEdges).
	StoredEdges []int `json:"storedEdges,omitempty"`
	// Live is each machine's online telemetry at end of stream (streaming
	// only): greedy matching size (matching) or vertices peeled online (vc).
	Live         []int `json:"live,omitempty"`
	CoresetEdges []int `json:"coresetEdges"`           // edges per coreset message
	CoresetFixed []int `json:"coresetFixed,omitempty"` // fixed vertices per message (vc)

	// TotalCommBytes/MaxMachineBytes are the encoded sizes of the coreset
	// messages. In batch and stream mode they are a simulated estimate; in
	// cluster mode they are MEASURED off the TCP connections, and the
	// simulated estimate is carried alongside in EstCommBytes /
	// EstMaxMachineBytes for comparison (experiment E20).
	TotalCommBytes     int `json:"totalCommBytes"`
	MaxMachineBytes    int `json:"maxMachineBytes"`
	EstCommBytes       int `json:"estCommBytes,omitempty"`       // cluster only
	EstMaxMachineBytes int `json:"estMaxMachineBytes,omitempty"` // cluster only
	// ShardBytes is the measured coordinator-to-worker traffic (cluster only),
	// including the traffic of any replayed rounds.
	ShardBytes       int `json:"shardBytes,omitempty"`
	CompositionEdges int `json:"compositionEdges"`
	Batches          int `json:"batches,omitempty"` // source batches (streaming)

	// Retries counts worker-failure replay attempts across the run (cluster
	// only; 0 on an undisturbed run) and ReplayedMachines the machines whose
	// round was successfully replayed — for multi-round runs, aggregated and
	// deduplicated across rounds (the per-round breakdown is in RoundStats).
	Retries          int   `json:"retries,omitempty"`
	ReplayedMachines []int `json:"replayedMachines,omitempty"`

	DurationMS  float64 `json:"durationMs"`
	EdgesPerSec float64 `json:"edgesPerSec,omitempty"`

	// Multi-round MPC fields (task "edcs" driven by internal/rounds;
	// omitted for single-round runs). Rounds is the configured round cap,
	// RoundsRun how many rounds actually executed (the early exit stops
	// below the cap once the union stops shrinking), and RoundStats the
	// per-round breakdown. For multi-round runs the top-level communication
	// fields aggregate across rounds: TotalCommBytes sums every round,
	// MaxMachineBytes is the largest single message of any round, and the
	// per-machine slices describe the FINAL round (whose coresets are what
	// the coordinator composed).
	Rounds     int           `json:"rounds,omitempty"`
	RoundsRun  int           `json:"roundsRun,omitempty"`
	RoundStats []RoundReport `json:"roundStats,omitempty"`

	// MachineStats is the per-machine telemetry breakdown (cluster only):
	// one entry per machine, populated from the TELEM payload each worker
	// returns at round end. For multi-round runs this describes the FINAL
	// round, mirroring the per-machine slices above; the per-round breakdown
	// lives in RoundStats[*].MachineStats. Workers without the telemetry
	// capability still get an entry, with the phase fields left zero.
	MachineStats []MachineStats `json:"machineStats,omitempty"`
}

// MachineStats is one worker machine's round telemetry: where its wall time
// went (shard decode, insert/repair, coreset encode) and what the build did
// (edges ingested, EDCS repair fixpoint iterations and removals, peak |H|).
// Times are measured on the worker's own clock and shipped back in the TELEM
// frame, so they exclude network transfer and coordinator-side queuing; the
// phase sum is a lower bound on the coordinator's measured round wall time.
type MachineStats struct {
	Machine int `json:"machine"` // machine index within the round

	DecodeMS float64 `json:"decodeMs"` // shard frame decode wall time
	BuildMS  float64 `json:"buildMs"`  // insert + repair wall time
	EncodeMS float64 `json:"encodeMs"` // finish + coreset encode wall time

	EdgesIn int `json:"edgesIn"` // edges routed to the machine this round
	// RepairIters/Removals/PeakCoreset are EDCS fixpoint telemetry (zero for
	// matching/vc tasks): dirty-vertex rescans, H evictions, and the largest
	// |H| the machine ever held.
	RepairIters int `json:"repairIters,omitempty"`
	Removals    int `json:"removals,omitempty"`
	PeakCoreset int `json:"peakCoreset,omitempty"`

	// Replayed marks a machine whose telemetry describes a replacement
	// attempt after a worker failure, not the original assignment.
	Replayed bool `json:"replayed,omitempty"`
}

// RoundReport is one round of a multi-round EDCS run: how many machines were
// active, what the round consumed and produced, and what its coreset
// messages cost. In cluster mode TotalCommBytes/MaxMachineBytes are measured
// off the TCP connections per round (the estimate rides alongside, as in the
// top-level fields); in batch and stream mode they are the simulated
// estimate and the Est* fields are omitted.
type RoundReport struct {
	Round      int    `json:"round"`      // 0-based round index
	K          int    `json:"k"`          // machines active this round
	Seed       uint64 `json:"seed"`       // per-round sharding seed
	InputEdges int    `json:"inputEdges"` // edges fed into the round
	UnionEdges int    `json:"unionEdges"` // edges in the union of the round's coresets

	TotalCommBytes     int     `json:"totalCommBytes"`
	MaxMachineBytes    int     `json:"maxMachineBytes"`
	EstCommBytes       int     `json:"estCommBytes,omitempty"`       // cluster only
	EstMaxMachineBytes int     `json:"estMaxMachineBytes,omitempty"` // cluster only
	ShardBytes         int     `json:"shardBytes,omitempty"`         // cluster only
	DurationMS         float64 `json:"durationMs"`

	// Retries counts this round's worker-failure replay attempts and
	// ReplayedMachines the machines recovered by replay (cluster only;
	// omitted on an undisturbed round).
	Retries          int   `json:"retries,omitempty"`
	ReplayedMachines []int `json:"replayedMachines,omitempty"`

	// MachineStats is this round's per-machine telemetry breakdown (cluster
	// only; see RunReport.MachineStats for field semantics).
	MachineStats []MachineStats `json:"machineStats,omitempty"`
}
