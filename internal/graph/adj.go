package graph

// Adj is an immutable CSR (compressed sparse row) adjacency structure built
// from an edge list. Each undirected edge contributes one half-edge in each
// direction, so Nbr has length 2m. CSR gives cache-friendly sequential
// neighbor scans, which dominate the running time of the matching and
// vertex-cover kernels.
type Adj struct {
	N   int
	Off []int32 // len N+1; neighbors of v are Nbr[Off[v]:Off[v+1]]
	Nbr []ID    // len 2m
	EID []int32 // len 2m; EID[i] indexes the originating edge in the source list
}

// BuildAdj constructs the CSR structure in two counting passes (O(n + m),
// no per-vertex allocation).
func BuildAdj(n int, edges []Edge) *Adj {
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	nbr := make([]ID, 2*len(edges))
	eid := make([]int32, 2*len(edges))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for i, e := range edges {
		nbr[cur[e.U]] = e.V
		eid[cur[e.U]] = int32(i)
		cur[e.U]++
		nbr[cur[e.V]] = e.U
		eid[cur[e.V]] = int32(i)
		cur[e.V]++
	}
	return &Adj{N: n, Off: off, Nbr: nbr, EID: eid}
}

// Degree returns the degree of v (counting parallel edges).
func (a *Adj) Degree(v ID) int {
	return int(a.Off[v+1] - a.Off[v])
}

// Neighbors returns the neighbor slice of v. The slice aliases internal
// storage and must not be modified.
func (a *Adj) Neighbors(v ID) []ID {
	return a.Nbr[a.Off[v]:a.Off[v+1]]
}

// M returns the number of (undirected) edges.
func (a *Adj) M() int { return len(a.Nbr) / 2 }

// IsBipartiteWithSides 2-colors the graph by BFS. If the graph is bipartite
// it returns (side, true) where side[v] is 0 or 1 and every edge crosses
// sides; isolated vertices get side 0. Otherwise it returns (nil, false).
//
// The coreset code uses this to route bipartite partitions to Hopcroft-Karp
// (much faster than the general blossom algorithm) without requiring callers
// to declare bipartiteness.
func (a *Adj) IsBipartiteWithSides() ([]int8, bool) {
	side := make([]int8, a.N)
	for i := range side {
		side[i] = -1
	}
	queue := make([]ID, 0, a.N)
	for s := 0; s < a.N; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], ID(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range a.Neighbors(v) {
				if side[w] == -1 {
					side[w] = 1 - side[v]
					queue = append(queue, w)
				} else if side[w] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}
