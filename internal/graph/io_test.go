package graph

import (
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

// drain pulls every edge out of a parser, returning the edges and the
// terminal error (nil after a clean io.EOF).
func drain(p *EdgeListParser) ([]Edge, error) {
	var edges []Edge
	for {
		e, err := p.Next()
		if err == io.EOF {
			return edges, nil
		}
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
}

// TestLenientParserFixture pins the lenient parse of the checked-in
// SNAP-style fixture: tabs, multi-space runs, CRLF endings and both comment
// styles all parse; the two self-loops and two duplicates are dropped and
// counted, never yielded and never an error.
func TestLenientParserFixture(t *testing.T) {
	data, err := os.ReadFile("testdata/snap_sample.txt")
	if err != nil {
		t.Fatal(err)
	}
	p := NewLenientEdgeListParser(strings.NewReader(string(data)))
	edges, err := drain(p)
	if err != nil {
		t.Fatalf("lenient parse of the fixture failed: %v", err)
	}
	if len(edges) != 16 {
		t.Fatalf("kept %d edges, want 16", len(edges))
	}
	if p.SelfLoops() != 2 {
		t.Fatalf("SelfLoops() = %d, want 2", p.SelfLoops())
	}
	if p.Duplicates() != 2 {
		t.Fatalf("Duplicates() = %d, want 2", p.Duplicates())
	}
	if p.NumVertices() != 12 {
		t.Fatalf("NumVertices() = %d, want 12", p.NumVertices())
	}
	// The strict parser must refuse the same bytes (first self-loop).
	if _, err := drain(NewEdgeListParser(strings.NewReader(string(data)))); err == nil {
		t.Fatal("strict parser accepted the messy fixture")
	}
	g := New(p.NumVertices(), edges)
	if err := g.Validate(); err != nil {
		t.Fatalf("lenient output fails validation: %v", err)
	}
}

func TestLenientParserSemantics(t *testing.T) {
	cases := []struct {
		name       string
		in         string
		edges      []Edge
		selfLoops  int
		duplicates int
	}{
		{
			name:  "tabs and multiple spaces",
			in:    "0\t1\n2   3\n\t4 5\r\n",
			edges: []Edge{{0, 1}, {2, 3}, {4, 5}},
		},
		{
			name:       "reversed duplicate collapses",
			in:         "1 2\n2 1\n",
			edges:      []Edge{{1, 2}},
			duplicates: 1,
		},
		{
			name:      "self-loops counted not fatal",
			in:        "0 0\n0 1\n1 1\n",
			edges:     []Edge{{0, 1}},
			selfLoops: 2,
		},
		{
			name:  "extra columns ignored",
			in:    "0\t1\t1438300800\n2\t3\t0.5\n",
			edges: []Edge{{0, 1}, {2, 3}},
		},
		{
			name:  "header with dropped lines tolerated",
			in:    "p 4 3\n0 1\n0 1\n2 3\n",
			edges: []Edge{{0, 1}, {2, 3}}, duplicates: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewLenientEdgeListParser(strings.NewReader(tc.in))
			edges, err := drain(p)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if !reflect.DeepEqual(edges, tc.edges) {
				t.Fatalf("edges = %v, want %v", edges, tc.edges)
			}
			if p.SelfLoops() != tc.selfLoops || p.Duplicates() != tc.duplicates {
				t.Fatalf("counts = %d loops / %d dups, want %d / %d",
					p.SelfLoops(), p.Duplicates(), tc.selfLoops, tc.duplicates)
			}
		})
	}
}

// TestLenientParserStillRejectsCorruptInput: leniency absorbs messy data,
// not corrupt data — malformed ids, headers and out-of-range endpoints fail
// in both modes.
func TestLenientParserStillRejectsCorruptInput(t *testing.T) {
	for _, in := range []string{
		"0 x\n",
		"-1 0\n",
		"9999999999 1\n",
		"p 2\n",
		"p 1 1\n0 5\n",
		"0\n",
	} {
		if _, err := drain(NewLenientEdgeListParser(strings.NewReader(in))); err == nil {
			t.Errorf("lenient parser accepted corrupt input %q", in)
		}
	}
}

// TestStrictParserFieldSplitting: the strict parser shares the hardened
// tokenizer — tabs and aligned columns parse — but demands exactly two
// fields and keeps self-loops fatal.
func TestStrictParserFieldSplitting(t *testing.T) {
	edges, err := drain(NewEdgeListParser(strings.NewReader("0\t1\n2   3\r\n")))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if want := []Edge{{0, 1}, {2, 3}}; !reflect.DeepEqual(edges, want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	if _, err := drain(NewEdgeListParser(strings.NewReader("0 1 99\n"))); err == nil {
		t.Fatal("strict parser accepted a three-column line")
	}
}
