package graph

// Residual is a mutable view of a graph supporting vertex removal with O(1)
// amortized degree maintenance. It is the workhorse of the peeling
// algorithms: VC-Coreset (Theorem 2) repeatedly removes all vertices whose
// residual degree exceeds a threshold, and Parnas-Ron peeling does the same
// on the whole graph.
//
// Removal is lazy on the adjacency side: neighbors are not unlinked, but
// degrees are decremented eagerly and dead vertices are skipped on scans.
type Residual struct {
	adj   *Adj
	alive []bool
	deg   []int32 // residual degree (edges to alive neighbors)
	edges []Edge  // originating edge list (shared, not owned)
	eDead []bool  // edge removed because an endpoint died
}

// NewResidual builds a residual view over (n, edges). The edge slice is
// retained (not copied) and must not be mutated while the Residual is live.
func NewResidual(n int, edges []Edge) *Residual {
	r := &Residual{
		adj:   BuildAdj(n, edges),
		alive: make([]bool, n),
		deg:   make([]int32, n),
		edges: edges,
		eDead: make([]bool, len(edges)),
	}
	for i := range r.alive {
		r.alive[i] = true
		r.deg[i] = int32(r.adj.Degree(ID(i)))
	}
	return r
}

// N returns the vertex-universe size (including removed vertices).
func (r *Residual) N() int { return r.adj.N }

// Alive reports whether v is still present.
func (r *Residual) Alive(v ID) bool { return r.alive[v] }

// Degree returns the residual degree of v (0 if removed).
func (r *Residual) Degree(v ID) int {
	if !r.alive[v] {
		return 0
	}
	return int(r.deg[v])
}

// Remove deletes v and decrements the residual degree of its alive
// neighbors. Removing an already-dead vertex is a no-op.
func (r *Residual) Remove(v ID) {
	if !r.alive[v] {
		return
	}
	r.alive[v] = false
	r.deg[v] = 0
	off := r.adj.Off
	for i := off[v]; i < off[v+1]; i++ {
		w := r.adj.Nbr[i]
		if r.alive[w] {
			r.deg[w]--
		}
		r.eDead[r.adj.EID[i]] = true
	}
}

// RemoveAtLeast removes every alive vertex with residual degree >= threshold
// and returns them. This implements one peeling iteration. The scan is a
// single pass: because removals only decrease degrees, a vertex below the
// threshold now stays below it, so the set selected up front is exactly the
// set the paper's per-iteration definition peels.
func (r *Residual) RemoveAtLeast(threshold int) []ID {
	var peeled []ID
	for v := 0; v < r.adj.N; v++ {
		if r.alive[v] && int(r.deg[v]) >= threshold {
			peeled = append(peeled, ID(v))
		}
	}
	for _, v := range peeled {
		r.Remove(v)
	}
	return peeled
}

// LiveEdges returns the edges with both endpoints alive, preserving input
// order.
func (r *Residual) LiveEdges() []Edge {
	out := make([]Edge, 0, len(r.edges))
	for i, e := range r.edges {
		if !r.eDead[i] {
			out = append(out, e)
		}
	}
	return out
}

// LiveEdgeCount returns the number of edges with both endpoints alive.
func (r *Residual) LiveEdgeCount() int {
	c := 0
	for i := range r.edges {
		if !r.eDead[i] {
			c++
		}
	}
	return c
}

// MaxDegree returns the maximum residual degree.
func (r *Residual) MaxDegree() int {
	max := int32(0)
	for v := 0; v < r.adj.N; v++ {
		if r.alive[v] && r.deg[v] > max {
			max = r.deg[v]
		}
	}
	return int(max)
}
