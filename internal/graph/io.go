package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format, compatible with the common "SNAP-like" layout:
//
//	# comment lines start with '#' or '%'
//	p <n> <m>        (optional header; n inferred from edges if absent)
//	u v              (one edge per line, 0-based vertex ids)
//
// Fields are separated by any run of spaces or tabs, and lines may end in
// CRLF — both are common in published SNAP dumps. The cmd/coreset tool reads
// and writes this format. Parsing is incremental: EdgeListParser yields one
// edge at a time so the streaming runtime (internal/stream) can shard a graph
// without ever materializing it, and ReadEdgeList is a thin accumulator on
// top of the same parser, so batch and streaming consumers accept exactly the
// same inputs.
//
// Real-world dumps are messier than the strict format: they carry self-loops,
// repeated edges and extra columns (weights, timestamps). The lenient parser
// (NewLenientEdgeListParser) absorbs those — dropped self-loops and
// duplicates are surfaced as counts, extra columns are ignored — which is
// what the dataset ingestion path (internal/dataset) runs.

// WriteEdgeList writes g in the text format above, with a header line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EdgeListParser incrementally parses the text edge-list format. It validates
// as it goes — self-loops, out-of-range ids and header mismatches fail on the
// offending line, never by panicking — and holds O(1) state beyond the
// scanner buffer, so arbitrarily large graphs can be parsed in a stream.
//
// The constructor reads ahead to the first edge (skipping comments and the
// header), so HasHeader and the header-declared vertex count are known before
// the first call to Next.
type EdgeListParser struct {
	sc       *bufio.Scanner
	lineNo   int
	header   bool
	n        int // header vertex count (valid iff header)
	declared int // header edge count (valid iff header)
	count    int // edges returned so far
	maxID    ID  // largest endpoint seen
	pending  Edge
	hasPend  bool
	err      error // sticky: io.EOF after a clean end, else the parse error

	// Lenient mode: messy-but-sane lines are dropped and counted instead of
	// failing the parse. seen holds every canonical edge yielded so far, so
	// duplicate suppression costs O(m) memory — acceptable for ingestion,
	// which runs once per dataset, but not free; strict mode stays O(1).
	lenient    bool
	seen       map[Edge]struct{}
	selfLoops  int
	duplicates int
}

// NewEdgeListParser returns a strict parser over r: self-loops, duplicate
// header lines and malformed edges all fail on the offending line. Errors on
// the first line (and end-of-input) are reported by the first call to Next,
// not here.
func NewEdgeListParser(r io.Reader) *EdgeListParser {
	return newParser(r, false)
}

// NewLenientEdgeListParser returns a parser tolerant of real-world SNAP
// dumps: self-loops and repeated edges are dropped and counted (SelfLoops,
// Duplicates) instead of failing, and extra columns after "u v" (weights,
// timestamps) are ignored. Malformed ids and header violations still fail —
// leniency absorbs messy data, not corrupt data. Duplicate suppression keeps
// a set of every edge yielded, so this mode holds O(m) memory.
func NewLenientEdgeListParser(r io.Reader) *EdgeListParser {
	return newParser(r, true)
}

func newParser(r io.Reader, lenient bool) *EdgeListParser {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	p := &EdgeListParser{sc: sc, maxID: -1, lenient: lenient}
	if lenient {
		p.seen = make(map[Edge]struct{})
	}
	// Read ahead so header information is available immediately.
	e, err := p.scan()
	if err != nil {
		p.err = err
		return p
	}
	p.pending, p.hasPend = e, true
	return p
}

// Next returns the next edge, canonicalized, or io.EOF at a clean end of
// input. Any other error is a parse or read failure; errors are sticky.
func (p *EdgeListParser) Next() (Edge, error) {
	if p.hasPend {
		p.hasPend = false
		return p.pending, nil
	}
	if p.err != nil {
		return Edge{}, p.err
	}
	e, err := p.scan()
	if err != nil {
		p.err = err
		return Edge{}, err
	}
	return e, nil
}

// scan advances to the next edge line. Lines are split on any run of spaces
// or tabs (strings.Fields), so single-space, tab-separated and aligned
// multi-space layouts all parse; TrimSpace strips CR from CRLF line endings.
func (p *EdgeListParser) scan() (Edge, error) {
	for p.sc.Scan() {
		p.lineNo++
		line := strings.TrimSpace(p.sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "p" {
			if p.header || p.count > 0 {
				return Edge{}, fmt.Errorf("graph: line %d: unexpected extra header %q", p.lineNo, line)
			}
			if len(fields) != 3 {
				return Edge{}, fmt.Errorf("graph: line %d: bad header %q: want \"p <n> <m>\"", p.lineNo, line)
			}
			n, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return Edge{}, fmt.Errorf("graph: line %d: bad header %q: non-numeric sizes", p.lineNo, line)
			}
			if n < 0 || m < 0 {
				return Edge{}, fmt.Errorf("graph: line %d: negative sizes in header %q", p.lineNo, line)
			}
			p.n, p.declared, p.header = n, m, true
			continue
		}
		// Strict mode demands exactly "u v"; lenient mode ignores extra
		// columns (weighted or timestamped dumps).
		if len(fields) != 2 && !(p.lenient && len(fields) > 2) {
			return Edge{}, fmt.Errorf("graph: line %d: bad edge %q: want \"u v\"", p.lineNo, line)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 64)
		v, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return Edge{}, fmt.Errorf("graph: line %d: bad edge %q: non-numeric endpoint", p.lineNo, line)
		}
		if u < 0 || v < 0 || u > int64(MaxID) || v > int64(MaxID) {
			return Edge{}, fmt.Errorf("graph: line %d: vertex id out of range in %q", p.lineNo, line)
		}
		if u == v {
			if p.lenient {
				p.selfLoops++
				continue
			}
			return Edge{}, fmt.Errorf("graph: line %d: self-loop %q", p.lineNo, line)
		}
		e := Edge{ID(u), ID(v)}.Canon()
		if p.header && int(e.V) >= p.n {
			return Edge{}, fmt.Errorf("graph: line %d: edge %q out of declared range [0,%d)", p.lineNo, line, p.n)
		}
		if p.lenient {
			if _, dup := p.seen[e]; dup {
				p.duplicates++
				continue
			}
			p.seen[e] = struct{}{}
		}
		if e.V > p.maxID {
			p.maxID = e.V
		}
		p.count++
		return e, nil
	}
	if err := p.sc.Err(); err != nil {
		return Edge{}, err
	}
	// Strict mode holds the header to its word. Lenient mode does not: a
	// dump whose header counts the raw lines disagrees with the kept-edge
	// count as soon as a duplicate or self-loop was dropped.
	if p.header && !p.lenient && p.count != p.declared {
		return Edge{}, fmt.Errorf("graph: header declared %d edges, found %d", p.declared, p.count)
	}
	return Edge{}, io.EOF
}

// HasHeader reports whether a "p <n> <m>" header was seen; when true,
// NumVertices is exact before the stream is drained.
func (p *EdgeListParser) HasHeader() bool { return p.header }

// Declared returns the header's edge count, or -1 without a header.
func (p *EdgeListParser) Declared() int {
	if !p.header {
		return -1
	}
	return p.declared
}

// NumVertices returns the header's vertex count, or 1 + the largest endpoint
// seen so far (authoritative only once Next has returned io.EOF).
func (p *EdgeListParser) NumVertices() int {
	if p.header {
		return p.n
	}
	return int(p.maxID) + 1
}

// Count returns the number of edges yielded so far.
func (p *EdgeListParser) Count() int { return p.count }

// SelfLoops returns how many self-loop lines a lenient parser has dropped so
// far (always 0 in strict mode, where the first self-loop is an error).
func (p *EdgeListParser) SelfLoops() int { return p.selfLoops }

// Duplicates returns how many repeated edges a lenient parser has dropped so
// far — repeats of the same canonical {u,v} pair, so "1 2" and "2 1" count as
// the same edge. Always 0 in strict mode, which admits parallel edges just
// like Graph.Validate.
func (p *EdgeListParser) Duplicates() int { return p.duplicates }

// ReadEdgeList parses the text format above into a materialized graph. If no
// header is present, N is set to 1 + the maximum vertex id seen (0 for an
// empty input).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	p := NewEdgeListParser(r)
	var edges []Edge
	if p.HasHeader() {
		edges = make([]Edge, 0, p.Declared())
	}
	for {
		e, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
	g := &Graph{N: p.NumVertices(), Edges: edges}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
