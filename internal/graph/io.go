package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Text edge-list format, compatible with the common "SNAP-like" layout:
//
//	# comment lines start with '#' or '%'
//	p <n> <m>        (optional header; n inferred from edges if absent)
//	u v              (one edge per line, 0-based vertex ids)
//
// The cmd/coreset tool reads and writes this format.

// WriteEdgeList writes g in the text format above, with a header line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format above. If no header is present, N is
// set to 1 + the maximum vertex id seen (0 for an empty input).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		n        = -1
		edges    []Edge
		maxID    = ID(-1)
		lineNo   int
		declared = -1
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		if strings.HasPrefix(line, "p ") {
			if _, err := fmt.Sscanf(line, "p %d %d", &n, &declared); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad header %q: %v", lineNo, line, err)
			}
			if n < 0 || declared < 0 {
				return nil, fmt.Errorf("graph: line %d: negative sizes in header %q", lineNo, line)
			}
			edges = make([]Edge, 0, declared)
			continue
		}
		var u, v int64
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q: %v", lineNo, line, err)
		}
		if u < 0 || v < 0 || u > 1<<31-1 || v > 1<<31-1 {
			return nil, fmt.Errorf("graph: line %d: vertex id out of range in %q", lineNo, line)
		}
		e := Edge{ID(u), ID(v)}.Canon()
		if e.V > maxID {
			maxID = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxID) + 1
	}
	g := &Graph{N: n, Edges: edges}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if declared >= 0 && declared != len(edges) {
		return nil, fmt.Errorf("graph: header declared %d edges, found %d", declared, len(edges))
	}
	return g, nil
}
