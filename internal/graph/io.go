package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Text edge-list format, compatible with the common "SNAP-like" layout:
//
//	# comment lines start with '#' or '%'
//	p <n> <m>        (optional header; n inferred from edges if absent)
//	u v              (one edge per line, 0-based vertex ids)
//
// The cmd/coreset tool reads and writes this format. Parsing is incremental:
// EdgeListParser yields one edge at a time so the streaming runtime
// (internal/stream) can shard a graph without ever materializing it, and
// ReadEdgeList is a thin accumulator on top of the same parser, so batch and
// streaming consumers accept exactly the same inputs.

// WriteEdgeList writes g in the text format above, with a header line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EdgeListParser incrementally parses the text edge-list format. It validates
// as it goes — self-loops, out-of-range ids and header mismatches fail on the
// offending line, never by panicking — and holds O(1) state beyond the
// scanner buffer, so arbitrarily large graphs can be parsed in a stream.
//
// The constructor reads ahead to the first edge (skipping comments and the
// header), so HasHeader and the header-declared vertex count are known before
// the first call to Next.
type EdgeListParser struct {
	sc       *bufio.Scanner
	lineNo   int
	header   bool
	n        int // header vertex count (valid iff header)
	declared int // header edge count (valid iff header)
	count    int // edges returned so far
	maxID    ID  // largest endpoint seen
	pending  Edge
	hasPend  bool
	err      error // sticky: io.EOF after a clean end, else the parse error
}

// NewEdgeListParser returns a parser over r. Errors on the first line (and
// end-of-input) are reported by the first call to Next, not here.
func NewEdgeListParser(r io.Reader) *EdgeListParser {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	p := &EdgeListParser{sc: sc, maxID: -1}
	// Read ahead so header information is available immediately.
	e, err := p.scan()
	if err != nil {
		p.err = err
		return p
	}
	p.pending, p.hasPend = e, true
	return p
}

// Next returns the next edge, canonicalized, or io.EOF at a clean end of
// input. Any other error is a parse or read failure; errors are sticky.
func (p *EdgeListParser) Next() (Edge, error) {
	if p.hasPend {
		p.hasPend = false
		return p.pending, nil
	}
	if p.err != nil {
		return Edge{}, p.err
	}
	e, err := p.scan()
	if err != nil {
		p.err = err
		return Edge{}, err
	}
	return e, nil
}

// scan advances to the next edge line.
func (p *EdgeListParser) scan() (Edge, error) {
	for p.sc.Scan() {
		p.lineNo++
		line := strings.TrimSpace(p.sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		if strings.HasPrefix(line, "p ") {
			if p.header || p.count > 0 {
				return Edge{}, fmt.Errorf("graph: line %d: unexpected extra header %q", p.lineNo, line)
			}
			if _, err := fmt.Sscanf(line, "p %d %d", &p.n, &p.declared); err != nil {
				return Edge{}, fmt.Errorf("graph: line %d: bad header %q: %v", p.lineNo, line, err)
			}
			if p.n < 0 || p.declared < 0 {
				return Edge{}, fmt.Errorf("graph: line %d: negative sizes in header %q", p.lineNo, line)
			}
			p.header = true
			continue
		}
		var u, v int64
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return Edge{}, fmt.Errorf("graph: line %d: bad edge %q: %v", p.lineNo, line, err)
		}
		if u < 0 || v < 0 || u > 1<<31-1 || v > 1<<31-1 {
			return Edge{}, fmt.Errorf("graph: line %d: vertex id out of range in %q", p.lineNo, line)
		}
		if u == v {
			return Edge{}, fmt.Errorf("graph: line %d: self-loop %q", p.lineNo, line)
		}
		e := Edge{ID(u), ID(v)}.Canon()
		if p.header && int(e.V) >= p.n {
			return Edge{}, fmt.Errorf("graph: line %d: edge %q out of declared range [0,%d)", p.lineNo, line, p.n)
		}
		if e.V > p.maxID {
			p.maxID = e.V
		}
		p.count++
		return e, nil
	}
	if err := p.sc.Err(); err != nil {
		return Edge{}, err
	}
	if p.header && p.count != p.declared {
		return Edge{}, fmt.Errorf("graph: header declared %d edges, found %d", p.declared, p.count)
	}
	return Edge{}, io.EOF
}

// HasHeader reports whether a "p <n> <m>" header was seen; when true,
// NumVertices is exact before the stream is drained.
func (p *EdgeListParser) HasHeader() bool { return p.header }

// Declared returns the header's edge count, or -1 without a header.
func (p *EdgeListParser) Declared() int {
	if !p.header {
		return -1
	}
	return p.declared
}

// NumVertices returns the header's vertex count, or 1 + the largest endpoint
// seen so far (authoritative only once Next has returned io.EOF).
func (p *EdgeListParser) NumVertices() int {
	if p.header {
		return p.n
	}
	return int(p.maxID) + 1
}

// Count returns the number of edges yielded so far.
func (p *EdgeListParser) Count() int { return p.count }

// ReadEdgeList parses the text format above into a materialized graph. If no
// header is present, N is set to 1 + the maximum vertex id seen (0 for an
// empty input).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	p := NewEdgeListParser(r)
	var edges []Edge
	if p.HasHeader() {
		edges = make([]Edge, 0, p.Declared())
	}
	for {
		e, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
	g := &Graph{N: p.NumVertices(), Edges: edges}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
