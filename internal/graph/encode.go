package graph

import (
	"encoding/binary"
	"fmt"
)

// Binary edge encoding used for honest communication accounting in the
// simultaneous protocols (internal/protocol). A message is charged the exact
// number of bytes of its encoding, matching how the paper counts
// communication in bits (up to the constant-factor slack the paper's O~
// notation already absorbs).
//
// Format: uvarint count, then per edge uvarint(U) followed by uvarint(V).
// Edges sorted by SortEdges compress well under the delta variant below, but
// the plain format is used for accounting because protocol messages are not
// required to be sorted.

// MaxID is the largest encodable vertex identifier. IDs are int32, so the
// only out-of-range values are negative ones; every encoder rejects them
// with a typed panic instead of letting a uint32 cast wrap them into huge
// (or, after decode, different) identifiers on the wire.
const MaxID = ID(^uint32(0) >> 1)

// IDRangeError reports a vertex identifier outside [0, MaxID]. The binary
// encoders panic with it — an unencodable ID in a coreset message is a
// programming error, exactly like an out-of-range slice index — and the
// decoders return it wrapped for corrupt input.
type IDRangeError struct{ ID int64 }

func (e *IDRangeError) Error() string {
	return fmt.Sprintf("graph: vertex id %d outside the encodable range [0, %d]", e.ID, MaxID)
}

// checkID panics with a typed *IDRangeError on an unencodable identifier.
func checkID(v ID) {
	if v < 0 {
		panic(&IDRangeError{ID: int64(v)})
	}
}

// AppendEdges appends the encoding of edges to dst and returns it. Panics
// with *IDRangeError on out-of-range endpoints.
func AppendEdges(dst []byte, edges []Edge) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	for _, e := range edges {
		checkID(e.U)
		checkID(e.V)
		dst = binary.AppendUvarint(dst, uint64(uint32(e.U)))
		dst = binary.AppendUvarint(dst, uint64(uint32(e.V)))
	}
	return dst
}

// EncodeEdges encodes an edge list.
func EncodeEdges(edges []Edge) []byte {
	return AppendEdges(make([]byte, 0, 1+5*len(edges)), edges)
}

// DecodeEdges decodes an edge list produced by EncodeEdges/AppendEdges and
// returns the remaining bytes.
func DecodeEdges(data []byte) (edges []Edge, rest []byte, err error) {
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("graph: corrupt edge encoding (count)")
	}
	data = data[k:]
	if count > uint64(len(data)) { // each edge needs >= 2 bytes
		return nil, nil, fmt.Errorf("graph: corrupt edge encoding (count %d too large)", count)
	}
	edges = make([]Edge, 0, count)
	for i := uint64(0); i < count; i++ {
		u, ku := binary.Uvarint(data)
		if ku <= 0 {
			return nil, nil, fmt.Errorf("graph: corrupt edge encoding (edge %d U)", i)
		}
		data = data[ku:]
		v, kv := binary.Uvarint(data)
		if kv <= 0 {
			return nil, nil, fmt.Errorf("graph: corrupt edge encoding (edge %d V)", i)
		}
		data = data[kv:]
		if u > uint64(MaxID) {
			return nil, nil, fmt.Errorf("graph: corrupt edge encoding (edge %d): %w", i, &IDRangeError{ID: int64(u)})
		}
		if v > uint64(MaxID) {
			return nil, nil, fmt.Errorf("graph: corrupt edge encoding (edge %d): %w", i, &IDRangeError{ID: int64(v)})
		}
		edges = append(edges, Edge{ID(u), ID(v)})
	}
	return edges, data, nil
}

// AppendIDs appends the encoding of a vertex-id list (uvarint count followed
// by uvarint ids). Used for the "fixed solution" part of vertex-cover
// coreset messages. Panics with *IDRangeError on out-of-range ids.
func AppendIDs(dst []byte, ids []ID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, v := range ids {
		checkID(v)
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// EncodeIDs encodes a vertex-id list.
func EncodeIDs(ids []ID) []byte {
	return AppendIDs(make([]byte, 0, 1+3*len(ids)), ids)
}

// DecodeIDs decodes a list produced by EncodeIDs/AppendIDs and returns the
// remaining bytes.
func DecodeIDs(data []byte) (ids []ID, rest []byte, err error) {
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("graph: corrupt id encoding (count)")
	}
	data = data[k:]
	if count > uint64(len(data))+1 {
		return nil, nil, fmt.Errorf("graph: corrupt id encoding (count %d too large)", count)
	}
	ids = make([]ID, 0, count)
	for i := uint64(0); i < count; i++ {
		v, kv := binary.Uvarint(data)
		if kv <= 0 {
			return nil, nil, fmt.Errorf("graph: corrupt id encoding (id %d)", i)
		}
		data = data[kv:]
		if v > uint64(MaxID) {
			return nil, nil, fmt.Errorf("graph: corrupt id encoding (id %d): %w", i, &IDRangeError{ID: int64(v)})
		}
		ids = append(ids, ID(v))
	}
	return ids, data, nil
}

// EncodedEdgeBytes returns the exact byte size of EncodeEdges(edges) without
// materializing the buffer; used on accounting-only paths. It applies the
// same ID range check as the encoder, so accounting can never succeed on a
// message the encoder would refuse.
func EncodedEdgeBytes(edges []Edge) int {
	n := uvarintLen(uint64(len(edges)))
	for _, e := range edges {
		checkID(e.U)
		checkID(e.V)
		n += uvarintLen(uint64(uint32(e.U))) + uvarintLen(uint64(uint32(e.V)))
	}
	return n
}

// EncodedIDBytes returns the exact byte size of EncodeIDs(ids).
func EncodedIDBytes(ids []ID) int {
	n := uvarintLen(uint64(len(ids)))
	for _, v := range ids {
		checkID(v)
		n += uvarintLen(uint64(uint32(v)))
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Edge-batch codec: the varint delta encoding shared by the cluster wire
// protocol (internal/cluster SHARD and CORESET frames) and the simulated
// communication accounting (core.CoresetSizeBytes), so a measured byte count
// and an estimated one are the same function of the same edge list.
//
// Format: uvarint count, then per edge varint(U - prevU) followed by
// varint(V - U), where prevU starts at 0 and both deltas are zigzag-signed
// (encoding/binary's Varint). Sorted edge lists — coreset messages, residual
// subgraphs — have small nonnegative deltas and compress well; arbitrary
// arrival-order batches pay at most one extra bit per value over the plain
// encoding.

// AppendEdgeBatch appends the delta encoding of edges to dst and returns it.
// Panics with *IDRangeError on out-of-range endpoints — without the check a
// negative ID would encode into a payload this codec's own decoder rejects.
func AppendEdgeBatch(dst []byte, edges []Edge) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	prev := int64(0)
	for _, e := range edges {
		checkID(e.U)
		checkID(e.V)
		dst = binary.AppendVarint(dst, int64(e.U)-prev)
		dst = binary.AppendVarint(dst, int64(e.V)-int64(e.U))
		prev = int64(e.U)
	}
	return dst
}

// DecodeEdgeBatch decodes a batch produced by AppendEdgeBatch and returns
// the remaining bytes. Endpoints outside the int32 ID range are rejected as
// corrupt. A zero-count batch decodes to a nil slice.
func DecodeEdgeBatch(data []byte) (edges []Edge, rest []byte, err error) {
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("graph: corrupt edge batch (count)")
	}
	data = data[k:]
	if count > uint64(len(data)) { // each edge needs >= 2 bytes
		return nil, nil, fmt.Errorf("graph: corrupt edge batch (count %d too large)", count)
	}
	if count == 0 {
		return nil, data, nil
	}
	edges = make([]Edge, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		du, ku := binary.Varint(data)
		if ku <= 0 {
			return nil, nil, fmt.Errorf("graph: corrupt edge batch (edge %d U)", i)
		}
		data = data[ku:]
		dv, kv := binary.Varint(data)
		if kv <= 0 {
			return nil, nil, fmt.Errorf("graph: corrupt edge batch (edge %d V)", i)
		}
		data = data[kv:]
		u := prev + du
		v := u + dv
		if u < 0 || u > int64(MaxID) {
			return nil, nil, fmt.Errorf("graph: corrupt edge batch (edge %d): %w", i, &IDRangeError{ID: u})
		}
		if v < 0 || v > int64(MaxID) {
			return nil, nil, fmt.Errorf("graph: corrupt edge batch (edge %d): %w", i, &IDRangeError{ID: v})
		}
		edges = append(edges, Edge{ID(u), ID(v)})
		prev = u
	}
	return edges, data, nil
}

// EdgeBatchBytes returns the exact byte size of AppendEdgeBatch(nil, edges)
// without materializing the buffer; used on accounting-only paths.
func EdgeBatchBytes(edges []Edge) int {
	n := uvarintLen(uint64(len(edges)))
	prev := int64(0)
	for _, e := range edges {
		checkID(e.U)
		checkID(e.V)
		n += varintLen(int64(e.U)-prev) + varintLen(int64(e.V)-int64(e.U))
		prev = int64(e.U)
	}
	return n
}

func varintLen(x int64) int {
	return uvarintLen(uint64(x)<<1 ^ uint64(x>>63)) // zigzag, as binary.AppendVarint
}
