package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEdgeCanon(t *testing.T) {
	if got := (Edge{3, 1}).Canon(); got != (Edge{1, 3}) {
		t.Fatalf("Canon(3,1) = %v", got)
	}
	if got := (Edge{1, 3}).Canon(); got != (Edge{1, 3}) {
		t.Fatalf("Canon(1,3) = %v", got)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{2, 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(7)
}

func TestValidate(t *testing.T) {
	good := New(4, []Edge{{0, 1}, {2, 3}, {3, 1}})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := []*Graph{
		{N: 2, Edges: []Edge{{0, 2}}},         // out of range
		{N: 2, Edges: []Edge{{1, 1}}},         // self-loop
		{N: 3, Edges: []Edge{{2, 0}}},         // not canonical
		{N: -1, Edges: nil},                   // negative n
		{N: 2, Edges: []Edge{{-1, 0}}},        // negative id
		{N: 3, Edges: []Edge{{0, 1}, {1, 5}}}, // second edge bad
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad graph %d accepted", i)
		}
	}
}

func TestDedupEdges(t *testing.T) {
	edges := []Edge{{1, 0}, {0, 1}, {2, 3}, {3, 2}, {0, 1}, {1, 2}}
	got := DedupEdges(edges)
	want := []Edge{{0, 1}, {1, 2}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DedupEdges = %v, want %v", got, want)
	}
}

func TestUnionEdgesIsMultiset(t *testing.T) {
	a := []Edge{{0, 1}}
	b := []Edge{{0, 1}, {1, 2}}
	u := UnionEdges(a, b)
	if len(u) != 3 {
		t.Fatalf("UnionEdges must not dedup: len = %d", len(u))
	}
}

func TestDegrees(t *testing.T) {
	deg := Degrees(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	want := []int32{3, 2, 2, 1}
	if !reflect.DeepEqual(deg, want) {
		t.Fatalf("Degrees = %v, want %v", deg, want)
	}
	if MaxDegree(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}}) != 3 {
		t.Fatal("MaxDegree wrong")
	}
	if MaxDegree(3, nil) != 0 {
		t.Fatal("MaxDegree of empty graph should be 0")
	}
}

func TestVerticesOf(t *testing.T) {
	vs := VerticesOf([]Edge{{5, 2}, {2, 5}, {0, 7}})
	want := []ID{0, 2, 5, 7}
	if !reflect.DeepEqual(vs, want) {
		t.Fatalf("VerticesOf = %v, want %v", vs, want)
	}
}

func TestInducedSubgraph(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}}
	keep := func(v ID) bool { return v != 2 }
	got := InducedSubgraph(edges, keep)
	want := []Edge{{0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("InducedSubgraph = %v, want %v", got, want)
	}
}

func TestBuildAdjSmall(t *testing.T) {
	a := BuildAdj(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	if a.M() != 4 {
		t.Fatalf("M = %d", a.M())
	}
	wantDeg := []int{2, 2, 3, 1}
	for v, d := range wantDeg {
		if a.Degree(ID(v)) != d {
			t.Errorf("Degree(%d) = %d, want %d", v, a.Degree(ID(v)), d)
		}
	}
	nb := append([]ID(nil), a.Neighbors(2)...)
	seen := map[ID]bool{}
	for _, w := range nb {
		seen[w] = true
	}
	for _, w := range []ID{0, 1, 3} {
		if !seen[w] {
			t.Errorf("neighbor %d of 2 missing", w)
		}
	}
}

func TestBuildAdjParallelEdges(t *testing.T) {
	a := BuildAdj(2, []Edge{{0, 1}, {0, 1}})
	if a.Degree(0) != 2 || a.Degree(1) != 2 {
		t.Fatal("parallel edges must contribute to degree twice")
	}
}

func TestAdjDegreeSumProperty(t *testing.T) {
	r := rng.New(1)
	f := func(nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%50) + 2
		m := int(mRaw % 200)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u := ID(r.Intn(n))
			v := ID(r.Intn(n))
			if u == v {
				continue
			}
			edges = append(edges, Edge{u, v}.Canon())
		}
		a := BuildAdj(n, edges)
		sum := 0
		for v := 0; v < n; v++ {
			sum += a.Degree(ID(v))
		}
		return sum == 2*len(edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIsBipartite(t *testing.T) {
	// Even cycle: bipartite.
	c4 := BuildAdj(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if side, ok := c4.IsBipartiteWithSides(); !ok {
		t.Fatal("C4 should be bipartite")
	} else {
		for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
			if side[e.U] == side[e.V] {
				t.Fatalf("edge %v not crossing sides", e)
			}
		}
	}
	// Odd cycle: not bipartite.
	c5 := BuildAdj(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	if _, ok := c5.IsBipartiteWithSides(); ok {
		t.Fatal("C5 should not be bipartite")
	}
	// Disconnected graph with isolated vertices.
	g := BuildAdj(6, []Edge{{0, 1}, {3, 4}})
	if _, ok := g.IsBipartiteWithSides(); !ok {
		t.Fatal("forest should be bipartite")
	}
}

func TestResidualPeeling(t *testing.T) {
	// Star K_{1,4} plus a pendant path.
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}}
	r := NewResidual(6, edges)
	if r.Degree(0) != 4 || r.Degree(4) != 2 {
		t.Fatal("initial degrees wrong")
	}
	peeled := r.RemoveAtLeast(3)
	if len(peeled) != 1 || peeled[0] != 0 {
		t.Fatalf("RemoveAtLeast(3) = %v, want [0]", peeled)
	}
	if r.Degree(4) != 1 {
		t.Fatalf("degree of 4 after peel = %d, want 1", r.Degree(4))
	}
	live := r.LiveEdges()
	if len(live) != 1 || live[0] != (Edge{4, 5}) {
		t.Fatalf("LiveEdges = %v, want [{4 5}]", live)
	}
	if r.LiveEdgeCount() != 1 {
		t.Fatal("LiveEdgeCount mismatch")
	}
}

func TestResidualRemoveIdempotent(t *testing.T) {
	r := NewResidual(3, []Edge{{0, 1}, {1, 2}})
	r.Remove(1)
	r.Remove(1) // no-op
	if r.Degree(0) != 0 || r.Degree(2) != 0 {
		t.Fatal("degrees after removing center should be 0")
	}
	if r.LiveEdgeCount() != 0 {
		t.Fatal("no live edges expected")
	}
}

func TestResidualMaxDegree(t *testing.T) {
	r := NewResidual(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if r.MaxDegree() != 3 {
		t.Fatal("MaxDegree != 3")
	}
	r.Remove(0)
	if r.MaxDegree() != 0 {
		t.Fatal("MaxDegree after removal != 0")
	}
}

func TestResidualThresholdSemantics(t *testing.T) {
	// Path 0-1-2-3: degrees 1,2,2,1. Peeling >=2 removes both middle
	// vertices in one iteration (selection happens before any removal).
	r := NewResidual(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	peeled := r.RemoveAtLeast(2)
	if len(peeled) != 2 {
		t.Fatalf("peeled = %v, want the two middle vertices", peeled)
	}
}

func TestBipartiteValidateAndConvert(t *testing.T) {
	b := NewBipartite(2, 3, []Edge{{0, 0}, {1, 2}})
	if err := b.Validate(); err != nil {
		t.Fatalf("valid bipartite rejected: %v", err)
	}
	if b.N() != 5 || b.M() != 2 {
		t.Fatal("size accessors wrong")
	}
	g := b.ToGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("converted graph invalid: %v", err)
	}
	want := []Edge{{0, 2}, {1, 4}}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("ToGraph edges = %v, want %v", g.Edges, want)
	}

	bad := NewBipartite(2, 2, []Edge{{0, 2}})
	if err := bad.Validate(); err == nil {
		t.Fatal("right endpoint out of range accepted")
	}
	bad2 := NewBipartite(1, 2, []Edge{{1, 0}})
	if err := bad2.Validate(); err == nil {
		t.Fatal("left endpoint out of range accepted")
	}
}

func TestFromGraphSidesRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	a := BuildAdj(4, edges)
	side, ok := a.IsBipartiteWithSides()
	if !ok {
		t.Fatal("C4 bipartite")
	}
	b, left, right := FromGraphSides(4, edges, side)
	if err := b.Validate(); err != nil {
		t.Fatalf("FromGraphSides produced invalid graph: %v", err)
	}
	if b.M() != len(edges) {
		t.Fatal("edge count changed")
	}
	// Every bipartite edge must map back to an original edge.
	orig := map[Edge]bool{}
	for _, e := range edges {
		orig[e] = true
	}
	for _, e := range b.Edges {
		back := Edge{left[e.U], right[e.V]}.Canon()
		if !orig[back] {
			t.Fatalf("edge %v maps back to %v, not in original", e, back)
		}
	}
}

func TestEncodeDecodeEdgesRoundTrip(t *testing.T) {
	r := rng.New(2)
	f := func(mRaw uint8) bool {
		m := int(mRaw % 100)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{ID(r.Intn(1 << 20)), ID(r.Intn(1 << 20))}
		}
		enc := EncodeEdges(edges)
		if len(enc) != EncodedEdgeBytes(edges) {
			return false
		}
		dec, rest, err := DecodeEdges(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(dec) != len(edges) {
			return false
		}
		for i := range dec {
			if dec[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeIDsRoundTrip(t *testing.T) {
	ids := []ID{0, 1, 127, 128, 1 << 20, 1<<31 - 1}
	enc := EncodeIDs(ids)
	if len(enc) != EncodedIDBytes(ids) {
		t.Fatal("EncodedIDBytes mismatch")
	}
	dec, rest, err := DecodeIDs(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode failed: %v", err)
	}
	if !reflect.DeepEqual(dec, ids) {
		t.Fatalf("roundtrip = %v, want %v", dec, ids)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeEdges(nil); err == nil {
		t.Fatal("decoding empty buffer should fail")
	}
	if _, _, err := DecodeEdges([]byte{0xff}); err == nil {
		t.Fatal("decoding truncated varint should fail")
	}
	// Valid count but missing edges.
	if _, _, err := DecodeEdges([]byte{5, 1}); err == nil {
		t.Fatal("decoding short buffer should fail")
	}
	if _, _, err := DecodeIDs(nil); err == nil {
		t.Fatal("decoding empty id buffer should fail")
	}
}

func TestEdgeListIORoundTrip(t *testing.T) {
	g := New(6, []Edge{{0, 1}, {2, 5}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || !reflect.DeepEqual(got.Edges, g.Edges) {
		t.Fatalf("roundtrip = %+v, want %+v", got, g)
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	in := "# comment\n% another\n0 1\n3 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("inferred N = %d, want 4", g.N)
	}
	want := []Edge{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"p 2\n",             // malformed header
		"0 x\n",             // malformed edge
		"p 2 1\n0 1\n0 1\n", // count mismatch
		"p 1 1\n0 5\n",      // edge out of declared range
		"-1 0\n",            // negative id
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3, []Edge{{0, 1}})
	c := g.Clone()
	c.Edges[0] = Edge{1, 2}
	if g.Edges[0] != (Edge{0, 1}) {
		t.Fatal("Clone shares edge storage")
	}
}
