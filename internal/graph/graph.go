// Package graph provides the graph substrate shared by every algorithm in
// this repository: compact edge-list graphs, CSR adjacency structures,
// mutable residual graphs with degree tracking (for the peeling algorithms),
// bipartite views, and the binary edge encoding used to account for
// communication in the simultaneous protocols.
//
// Vertices are dense integer identifiers 0..N-1 stored as int32 (the paper's
// regime is n up to millions of vertices; 32-bit ids halve memory traffic on
// the hot paths). Edges are undirected and stored once, in canonical (U <= V)
// order for general graphs; bipartite graphs keep (left, right) order.
package graph

import (
	"fmt"
	"sort"
)

// ID is a vertex identifier in [0, N).
type ID = int32

// Edge is an undirected edge. General graphs store it with U <= V.
type Edge struct {
	U, V ID
}

// Canon returns the edge with endpoints in non-decreasing order.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. Panics if v is not an
// endpoint of e.
func (e Edge) Other(v ID) ID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// Graph is an undirected graph on vertices 0..N-1 given as an edge list.
// The edge list is the natural representation for this paper: random
// k-partitioning, coreset messages and MapReduce shuffles all operate on
// edge sets.
type Graph struct {
	N     int
	Edges []Edge
}

// New returns a graph with n vertices and the given edges. The edges are
// canonicalized in place.
func New(n int, edges []Edge) *Graph {
	for i := range edges {
		edges[i] = edges[i].Canon()
	}
	return &Graph{N: n, Edges: edges}
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	e := make([]Edge, len(g.Edges))
	copy(e, g.Edges)
	return &Graph{N: g.N, Edges: e}
}

// Validate checks structural invariants: endpoints in range, no self-loops,
// and canonical edge order. It does not reject parallel edges (the grouped
// vertex-cover protocol of Remark 5.8 works on multigraphs; the paper's
// Theorem 2 explicitly supports them).
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	for i, e := range g.Edges {
		if e.U < 0 || int(e.U) >= g.N || e.V < 0 || int(e.V) >= g.N {
			return fmt.Errorf("graph: edge %d = %v out of range [0,%d)", i, e, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d = %v is a self-loop", i, e)
		}
		if e.U > e.V {
			return fmt.Errorf("graph: edge %d = %v not canonical", i, e)
		}
	}
	return nil
}

// Dedup sorts the edge list and removes parallel edges in place, returning g.
func (g *Graph) Dedup() *Graph {
	g.Edges = DedupEdges(g.Edges)
	return g
}

// DedupEdges canonicalizes, sorts and removes duplicate edges. The input
// slice is modified and the (possibly shorter) deduplicated slice returned.
func DedupEdges(edges []Edge) []Edge {
	for i := range edges {
		edges[i] = edges[i].Canon()
	}
	SortEdges(edges)
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// SortEdges sorts edges lexicographically by (U, V).
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

// UnionEdges concatenates several edge sets into a fresh slice. It does NOT
// deduplicate: composing coresets is a multiset union in the paper's model
// (and dedup would distort communication accounting).
func UnionEdges(sets ...[]Edge) []Edge {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	out := make([]Edge, 0, total)
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}

// Degrees returns the degree of every vertex under the given edge multiset.
func Degrees(n int, edges []Edge) []int32 {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// MaxDegree returns the maximum degree (0 for an empty graph).
func MaxDegree(n int, edges []Edge) int {
	max := int32(0)
	for _, d := range Degrees(n, edges) {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// VerticesOf returns the sorted set of distinct endpoints of the edge set.
// This is V(E') in the paper's notation.
func VerticesOf(edges []Edge) []ID {
	seen := make(map[ID]struct{}, 2*len(edges))
	for _, e := range edges {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	out := make([]ID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InducedSubgraph returns the edges of g whose both endpoints satisfy keep.
func InducedSubgraph(edges []Edge, keep func(ID) bool) []Edge {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if keep(e.U) && keep(e.V) {
			out = append(out, e)
		}
	}
	return out
}
