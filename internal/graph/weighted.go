package graph

// WEdge is an undirected weighted edge. The weighted matching extension
// (Crouch-Stubbs grouping, Section 1.1 of the paper) partitions WEdges into
// geometric weight classes and runs the unweighted coreset per class.
type WEdge struct {
	U, V ID
	W    float64
}

// Canon returns the weighted edge with endpoints in non-decreasing order.
func (e WEdge) Canon() WEdge {
	if e.U > e.V {
		return WEdge{e.V, e.U, e.W}
	}
	return e
}

// Unweighted drops the weight.
func (e WEdge) Unweighted() Edge { return Edge{e.U, e.V} }

// WGraph is an undirected weighted graph on vertices 0..N-1.
type WGraph struct {
	N     int
	Edges []WEdge
}

// TotalWeight sums the weights of a weighted edge set.
func TotalWeight(edges []WEdge) float64 {
	s := 0.0
	for _, e := range edges {
		s += e.W
	}
	return s
}

// StripWeights converts a weighted edge list to an unweighted one.
func StripWeights(edges []WEdge) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = e.Unweighted()
	}
	return out
}
