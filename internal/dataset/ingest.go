package dataset

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// IngestOptions tune dataset construction.
type IngestOptions struct {
	// SegmentEdges is the target edges per segment (DefaultSegmentEdges when
	// zero). Smaller segments lower the reader's resident-memory floor at the
	// cost of more per-segment overhead.
	SegmentEdges int
	// Source is a provenance string recorded in the manifest (a file path,
	// URL, or generator spec).
	Source string
}

func (o IngestOptions) segmentEdges() int {
	if o.SegmentEdges <= 0 {
		return DefaultSegmentEdges
	}
	return o.SegmentEdges
}

// Builder writes a dataset incrementally: edges go straight through the
// varint-delta encoder into the data file (tee'd through sha256), so building
// a dataset never holds more than one segment of edges in memory. Finish
// writes the manifest atomically (tmp+rename); a crashed build leaves no
// manifest, so a half-written directory can never be Opened.
type Builder struct {
	dir      string
	f        *os.File
	w        *bufio.Writer
	h        hash.Hash
	segEdges int
	pending  []graph.Edge
	segments []Segment
	off      int64
	m        int
	maxID    graph.ID
	enc      []byte
	done     bool
}

// NewBuilder starts a dataset build in dir, creating the directory if
// needed. The data file is truncated immediately, so build into a fresh
// directory when an existing dataset must survive a failed build; the
// manifest, by contrast, only appears once Finish succeeds.
func NewBuilder(dir string, opts IngestOptions) (*Builder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: build %s: %w", dir, err)
	}
	f, err := os.Create(filepath.Join(dir, DataName))
	if err != nil {
		return nil, fmt.Errorf("dataset: build %s: %w", dir, err)
	}
	return &Builder{
		dir:      dir,
		f:        f,
		w:        bufio.NewWriterSize(f, 1<<20),
		h:        sha256.New(),
		segEdges: opts.segmentEdges(),
		maxID:    -1,
	}, nil
}

// Add appends edges to the dataset in order. Semantic checks (id ranges,
// self-loops, duplicates) belong to the caller — Ingest runs them via the
// lenient parser, generators are trusted; Finish still cross-checks endpoints
// against the declared vertex count.
func (b *Builder) Add(edges ...graph.Edge) error {
	if b.done {
		return fmt.Errorf("dataset: build %s: Add after Finish", b.dir)
	}
	for _, e := range edges {
		b.pending = append(b.pending, e)
		if e.U > b.maxID {
			b.maxID = e.U
		}
		if e.V > b.maxID {
			b.maxID = e.V
		}
		if len(b.pending) >= b.segEdges {
			if err := b.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush encodes the pending edges as one segment block.
func (b *Builder) flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	b.enc = graph.AppendEdgeBatch(b.enc[:0], b.pending)
	if _, err := b.w.Write(b.enc); err != nil {
		return fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	b.h.Write(b.enc)
	b.segments = append(b.segments, Segment{Offset: b.off, Length: len(b.enc), Edges: len(b.pending)})
	b.off += int64(len(b.enc))
	b.m += len(b.pending)
	b.pending = b.pending[:0]
	return nil
}

// Abort discards a build in progress, closing and best-effort removing the
// partial data file. Safe to call after Finish (no-op).
func (b *Builder) Abort() {
	if b.done {
		return
	}
	b.done = true
	b.f.Close()
	os.Remove(filepath.Join(b.dir, DataName))
}

// Finish flushes the final segment, syncs the data file, and atomically
// writes the manifest. n is the dataset's vertex count; when n < 0 it is
// inferred as 1 + the largest endpoint seen. selfLoops/duplicates record what
// ingestion dropped (zero for trusted inputs).
func (b *Builder) Finish(n int, source string, selfLoops, duplicates int) (*Manifest, error) {
	if b.done {
		return nil, fmt.Errorf("dataset: build %s: Finish twice", b.dir)
	}
	b.done = true
	if err := b.flush(); err != nil {
		b.f.Close()
		return nil, err
	}
	if err := b.w.Flush(); err != nil {
		b.f.Close()
		return nil, fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	if err := b.f.Sync(); err != nil {
		b.f.Close()
		return nil, fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	if err := b.f.Close(); err != nil {
		return nil, fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	if n < 0 {
		n = int(b.maxID) + 1
	} else if b.maxID >= graph.ID(n) {
		return nil, fmt.Errorf("dataset: build %s: endpoint %d out of declared range [0,%d)", b.dir, b.maxID, n)
	}
	man := &Manifest{
		Format:     FormatVersion,
		N:          n,
		M:          b.m,
		Bytes:      b.off,
		Hash:       hex.EncodeToString(b.h.Sum(nil)),
		Segments:   b.segments,
		Source:     source,
		SelfLoops:  selfLoops,
		Duplicates: duplicates,
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	tmp := filepath.Join(b.dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, ManifestName)); err != nil {
		return nil, fmt.Errorf("dataset: build %s: %w", b.dir, err)
	}
	return man, nil
}

// Ingest parses a SNAP-style edge list from r with the lenient parser
// (tabs/CRLF/comments tolerated; self-loops and duplicates dropped and
// recorded in the manifest) and stores it as a dataset in dir. The edge list
// is never materialized: edges flow from the parser straight into segment
// blocks, so ingestion memory is one segment plus the parser's dedup set.
func Ingest(dir string, r io.Reader, opts IngestOptions) (*Manifest, error) {
	b, err := NewBuilder(dir, opts)
	if err != nil {
		return nil, err
	}
	p := graph.NewLenientEdgeListParser(r)
	for {
		e, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Abort()
			return nil, fmt.Errorf("dataset: ingest into %s: %w", dir, err)
		}
		if err := b.Add(e); err != nil {
			b.Abort()
			return nil, err
		}
	}
	return b.Finish(p.NumVertices(), opts.Source, p.SelfLoops(), p.Duplicates())
}

// IngestFile ingests the edge-list file at path, recording the path as the
// manifest source (unless opts.Source overrides it).
func IngestFile(dir, path string, opts IngestOptions) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: ingest: %w", err)
	}
	defer f.Close()
	if opts.Source == "" {
		opts.Source = path
	}
	return Ingest(dir, bufio.NewReaderSize(f, 1<<20), opts)
}
