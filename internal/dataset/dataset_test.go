package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// buildRandom stores a deterministic GNP graph as a dataset and returns both
// the stored handle and the in-memory oracle.
func buildRandom(t *testing.T, dir string, n, m, segEdges int) (*Dataset, *graph.Graph) {
	t.Helper()
	g := gen.GNP(n, float64(2*m)/float64(n*(n-1)), rng.New(7))
	b, err := NewBuilder(dir, IngestOptions{SegmentEdges: segEdges, Source: "test-gnp"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(g.Edges...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(g.N, "test-gnp", 0, 0); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, g
}

// readAll drains a dataset segment by segment.
func readAll(t *testing.T, d *Dataset) []graph.Edge {
	t.Helper()
	var all []graph.Edge
	var scratch []byte
	for i := 0; i < d.Segments(); i++ {
		var seg []graph.Edge
		var err error
		seg, scratch, err = d.ReadSegment(i, scratch)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		all = append(all, seg...)
	}
	return all
}

func TestBuildOpenRoundTrip(t *testing.T) {
	d, g := buildRandom(t, t.TempDir(), 200, 900, 64)
	if d.NumVertices() != g.N || d.Edges() != len(g.Edges) {
		t.Fatalf("dataset shape %d/%d, graph %d/%d", d.NumVertices(), d.Edges(), g.N, len(g.Edges))
	}
	if d.Segments() < 2 {
		t.Fatalf("want multiple segments, got %d", d.Segments())
	}
	if got := readAll(t, d); !reflect.DeepEqual(got, g.Edges) {
		t.Fatal("stored edges differ from the source graph")
	}
	if got, want := d.SegmentReads(), int64(d.Segments()); got != want {
		t.Fatalf("SegmentReads() = %d after one pass, want %d", got, want)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// A second pass decodes identically — the property Restart rides on.
	if got := readAll(t, d); !reflect.DeepEqual(got, g.Edges) {
		t.Fatal("second pass differs from the first")
	}
}

// TestHashIsContentAddressed: identity follows the bytes. The same edges
// stored twice hash identically; a different graph hashes differently.
func TestHashIsContentAddressed(t *testing.T) {
	d1, _ := buildRandom(t, t.TempDir(), 100, 300, 32)
	d2, _ := buildRandom(t, t.TempDir(), 100, 300, 32)
	if d1.Hash() != d2.Hash() {
		t.Fatalf("identical builds hash %s vs %s", d1.Hash(), d2.Hash())
	}
	d3, _ := buildRandom(t, t.TempDir(), 100, 500, 32)
	if d1.Hash() == d3.Hash() {
		t.Fatal("different graphs share a content hash")
	}
}

func TestIngestFixture(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "graph", "testdata", "snap_sample.txt"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := Ingest(dir, strings.NewReader(string(raw)), IngestOptions{SegmentEdges: 5, Source: "snap_sample.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if man.M != 16 || man.N != 12 || man.SelfLoops != 2 || man.Duplicates != 2 {
		t.Fatalf("manifest = m:%d n:%d loops:%d dups:%d, want 16/12/2/2",
			man.M, man.N, man.SelfLoops, man.Duplicates)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	edges := readAll(t, d)
	// The stored edges must equal a direct lenient parse of the same bytes.
	p := graph.NewLenientEdgeListParser(strings.NewReader(string(raw)))
	var want []graph.Edge
	for {
		e, err := p.Next()
		if err != nil {
			break
		}
		want = append(want, e)
	}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("stored edges %v != parsed edges %v", edges, want)
	}
	if err := graph.New(d.NumVertices(), edges).Validate(); err != nil {
		t.Fatalf("ingested graph fails validation: %v", err)
	}
}

func TestIngestRejectsCorruptInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := Ingest(dir, strings.NewReader("0 1\nbad line here extra\n0 x\n"), IngestOptions{}); err == nil {
		t.Fatal("ingest accepted corrupt input")
	}
	// A failed ingest must not leave an openable dataset behind.
	if _, err := Open(dir); err == nil {
		t.Fatal("failed ingest left an openable dataset")
	}
}

// TestOpenRejectsTampering: truncation and manifest/data mismatches fail at
// Open (size check) or Verify (content check).
func TestOpenRejectsTampering(t *testing.T) {
	dir := t.TempDir()
	d, _ := buildRandom(t, dir, 50, 120, 16)
	data := filepath.Join(dir, DataName)

	// Flip a byte: Open still succeeds (size unchanged), Verify catches it.
	raw, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)/2] ^= 0xff
	if err := os.WriteFile(data, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after bit flip: %v", err)
	}
	defer d2.Close()
	if err := d2.Verify(); err == nil {
		t.Fatal("Verify accepted tampered data")
	}

	// Truncate: Open itself refuses.
	if err := os.WriteFile(data, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted truncated data file")
	}
	_ = d
}

func TestStore(t *testing.T) {
	root := t.TempDir()
	st, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", "../escape"} {
		if _, err := st.Path(bad); err == nil {
			t.Errorf("store accepted name %q", bad)
		}
	}
	dir, err := st.Path("web-graph")
	if err != nil {
		t.Fatal(err)
	}
	if _, g := buildRandom(t, dir, 40, 80, 16); g == nil {
		t.Fatal("build failed")
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"web-graph"}) {
		t.Fatalf("List() = %v", names)
	}
	d, err := st.Open("web-graph")
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := st.Open("missing"); err == nil {
		t.Fatal("Open of a missing dataset succeeded")
	}
}

func TestBuilderEmptyAndDeclaredN(t *testing.T) {
	// Empty dataset: zero segments, still opens and round-trips.
	dir := t.TempDir()
	b, err := NewBuilder(dir, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(5, "empty", 0, 0); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumVertices() != 5 || d.Edges() != 0 || d.Segments() != 0 {
		t.Fatalf("empty dataset shape n:%d m:%d segs:%d", d.NumVertices(), d.Edges(), d.Segments())
	}

	// Declared n smaller than an endpoint is refused at Finish.
	b2, err := NewBuilder(t.TempDir(), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Add(graph.Edge{U: 0, V: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Finish(5, "bad", 0, 0); err == nil {
		t.Fatal("Finish accepted endpoint out of declared range")
	}

	// n < 0 infers from the data.
	dir3 := t.TempDir()
	b3, err := NewBuilder(dir3, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b3.Add(graph.Edge{U: 2, V: 7}); err != nil {
		t.Fatal(err)
	}
	man, err := b3.Finish(-1, "inferred", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if man.N != 8 {
		t.Fatalf("inferred n = %d, want 8", man.N)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	buildRandom(t, dir, 30, 60, 16)
	manPath := filepath.Join(dir, ManifestName)
	good, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, tamper := range []struct{ from, to string }{
		{`"format": 1`, `"format": 99`},
		{`"m": `, `"m": 1000000000, "was": `},
	} {
		bad := strings.Replace(string(good), tamper.from, tamper.to, 1)
		if bad == string(good) {
			t.Fatalf("tamper %q did not apply", tamper.from)
		}
		if err := os.WriteFile(manPath, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Errorf("Open accepted manifest tampered via %q", tamper.from)
		}
	}
	if err := os.WriteFile(manPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("restored manifest no longer opens: %v", err)
	}
}

func TestSegmentBoundaries(t *testing.T) {
	// Exact multiples of the segment size must not produce an empty tail.
	for _, m := range []int{16, 32, 33} {
		dir := t.TempDir()
		b, err := NewBuilder(dir, IngestOptions{SegmentEdges: 16})
		if err != nil {
			t.Fatal(err)
		}
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.ID(i), V: graph.ID(i + 1)}
		}
		if err := b.Add(edges...); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Finish(-1, fmt.Sprintf("m=%d", m), 0, 0); err != nil {
			t.Fatal(err)
		}
		d, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wantSegs := (m + 15) / 16
		if d.Segments() != wantSegs {
			t.Errorf("m=%d: %d segments, want %d", m, d.Segments(), wantSegs)
		}
		if got := readAll(t, d); !reflect.DeepEqual(got, edges) {
			t.Errorf("m=%d: round trip mismatch", m)
		}
		d.Close()
	}
}
