// Package dataset is the repository's disk-backed edge store: the one data
// plane every runtime reads real graphs from. A dataset is a directory
// holding a manifest (manifest.json) and a single data file (edges.seg) of
// concatenated segment blocks, each block an independently decodable
// graph.AppendEdgeBatch varint-delta batch — the same fuzzed codec the
// cluster wire protocol ships, so the on-disk format and the on-wire format
// can never drift.
//
// The design target is graphs larger than RAM: ingestion (ingest.go) builds
// segments incrementally off the lenient edge-list parser without ever
// materializing the edge list, and reads are segment-at-a-time through a
// seek-backed reader (os.File.ReadAt on recorded offsets), so peak resident
// memory is one segment regardless of dataset size. Segment offsets in the
// manifest make any position in the stream directly addressable, which is
// what lets stream.DatasetSource restart a pass in O(1) — the property
// cluster round replay and multi-round resharding need.
//
// The manifest carries a SHA-256 content hash over the data file. Identity
// follows the bytes, not the registration: internal/service derives its
// result-cache keys from the hash, so a re-registered (or re-ingested,
// byte-identical) dataset keeps hitting the same cached results.
package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
)

const (
	// FormatVersion is the manifest format this package writes and the only
	// one it reads.
	FormatVersion = 1
	// ManifestName and DataName are the two files of a dataset directory.
	ManifestName = "manifest.json"
	DataName     = "edges.seg"
	// DefaultSegmentEdges is the ingestion default: 64Ki edges per segment
	// (~a few hundred KiB encoded) keeps per-segment resident memory small
	// while amortizing the per-segment read.
	DefaultSegmentEdges = 1 << 16
)

// Segment locates one edge batch inside the data file. Offsets are absolute,
// so a reader can decode any segment without touching the ones before it.
type Segment struct {
	Offset int64 `json:"offset"` // byte offset of the batch in edges.seg
	Length int   `json:"length"` // encoded length in bytes
	Edges  int   `json:"edges"`  // edges in the batch
}

// Manifest describes a stored dataset. It is the sole source of truth for
// the dataset's shape: readers trust it (after a size cross-check) and never
// rescan the data file to answer NumVertices/Edges.
type Manifest struct {
	Format   int       `json:"format"`
	N        int       `json:"n"`     // number of vertices
	M        int       `json:"m"`     // number of stored edges
	Bytes    int64     `json:"bytes"` // data file size; must equal the segment sum
	Hash     string    `json:"hash"`  // sha256 hex of the data file
	Segments []Segment `json:"segments"`
	// Ingestion provenance: where the edges came from and what the lenient
	// parser dropped on the way in.
	Source     string `json:"source,omitempty"`
	SelfLoops  int    `json:"selfLoops,omitempty"`
	Duplicates int    `json:"duplicates,omitempty"`
}

// validate cross-checks the manifest's internal consistency.
func (m *Manifest) validate() error {
	if m.Format != FormatVersion {
		return fmt.Errorf("dataset: unsupported format %d (want %d)", m.Format, FormatVersion)
	}
	if m.N < 0 || m.M < 0 {
		return fmt.Errorf("dataset: negative sizes in manifest (n=%d m=%d)", m.N, m.M)
	}
	var off int64
	edges := 0
	for i, s := range m.Segments {
		if s.Offset != off || s.Length <= 0 || s.Edges < 0 {
			return fmt.Errorf("dataset: segment %d malformed (offset %d want %d, length %d, edges %d)",
				i, s.Offset, off, s.Length, s.Edges)
		}
		off += int64(s.Length)
		edges += s.Edges
	}
	if off != m.Bytes {
		return fmt.Errorf("dataset: segments cover %d bytes, manifest declares %d", off, m.Bytes)
	}
	if edges != m.M {
		return fmt.Errorf("dataset: segments hold %d edges, manifest declares %d", edges, m.M)
	}
	return nil
}

// Dataset is an open read handle on a stored dataset. It is safe for
// concurrent readers: segment reads are positioned (ReadAt), so independent
// sources can stream the same dataset simultaneously.
type Dataset struct {
	dir string
	man Manifest
	f   *os.File
	// segReads counts segment decodes over the dataset's lifetime — the
	// observable the zero-re-parse cache tests pin: a cache-served job must
	// not move it.
	segReads atomic.Int64
}

// Open opens the dataset directory dir, reading and validating its manifest
// and cross-checking the data file's size (a full content-hash check is
// Verify, which costs a scan of the file). The returned handle holds the
// data file open until Close.
func Open(dir string) (*Dataset, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("dataset: %s: corrupt manifest: %w", dir, err)
	}
	if err := man.validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, dir)
	}
	f, err := os.Open(filepath.Join(dir, DataName))
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", dir, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: stat %s: %w", dir, err)
	}
	if fi.Size() != man.Bytes {
		f.Close()
		return nil, fmt.Errorf("dataset: %s: data file is %d bytes, manifest declares %d",
			dir, fi.Size(), man.Bytes)
	}
	return &Dataset{dir: dir, man: man, f: f}, nil
}

// Close releases the data file handle. Reads after Close fail.
func (d *Dataset) Close() error { return d.f.Close() }

// Dir returns the dataset directory.
func (d *Dataset) Dir() string { return d.dir }

// Manifest returns a copy of the manifest (segments shared read-only).
func (d *Dataset) Manifest() Manifest { return d.man }

// NumVertices returns the dataset's vertex count.
func (d *Dataset) NumVertices() int { return d.man.N }

// Edges returns the number of stored edges.
func (d *Dataset) Edges() int { return d.man.M }

// Hash returns the sha256 hex content hash of the data file — the dataset's
// identity for result-cache keying.
func (d *Dataset) Hash() string { return d.man.Hash }

// Segments returns how many segments the data file holds.
func (d *Dataset) Segments() int { return len(d.man.Segments) }

// SegmentEdges returns segment i's edge count without reading it.
func (d *Dataset) SegmentEdges(i int) int { return d.man.Segments[i].Edges }

// SegmentReads returns how many segment decodes this handle has served —
// across every source minted from it. A result served from a cache performs
// zero reads, which is exactly what the service's no-re-parse tests assert.
func (d *Dataset) SegmentReads() int64 { return d.segReads.Load() }

// ReadSegment reads and decodes segment i. buf, when non-nil, is reused for
// the encoded bytes (not the returned edges); pass the previous call's
// scratch to avoid reallocating per segment.
func (d *Dataset) ReadSegment(i int, scratch []byte) (edges []graph.Edge, newScratch []byte, err error) {
	if i < 0 || i >= len(d.man.Segments) {
		return nil, scratch, fmt.Errorf("dataset: segment %d out of range [0,%d)", i, len(d.man.Segments))
	}
	seg := d.man.Segments[i]
	if cap(scratch) < seg.Length {
		scratch = make([]byte, seg.Length)
	}
	scratch = scratch[:seg.Length]
	if _, err := d.f.ReadAt(scratch, seg.Offset); err != nil {
		return nil, scratch, fmt.Errorf("dataset: read segment %d of %s: %w", i, d.dir, err)
	}
	edges, rest, err := graph.DecodeEdgeBatch(scratch)
	if err != nil {
		return nil, scratch, fmt.Errorf("dataset: segment %d of %s: %w", i, d.dir, err)
	}
	if len(rest) != 0 {
		return nil, scratch, fmt.Errorf("dataset: segment %d of %s: %d trailing bytes", i, d.dir, len(rest))
	}
	if len(edges) != seg.Edges {
		return nil, scratch, fmt.Errorf("dataset: segment %d of %s decoded %d edges, manifest declares %d",
			i, d.dir, len(edges), seg.Edges)
	}
	d.segReads.Add(1)
	return edges, scratch, nil
}

// Verify re-hashes the data file and compares it to the manifest — the full
// integrity check Open skips. It costs one sequential scan of the file.
func (d *Dataset) Verify() error {
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(d.f, 0, d.man.Bytes)); err != nil {
		return fmt.Errorf("dataset: verify %s: %w", d.dir, err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != d.man.Hash {
		return fmt.Errorf("dataset: %s: content hash %s does not match manifest %s", d.dir, got, d.man.Hash)
	}
	return nil
}

// Store is a root directory of named datasets, one subdirectory per name —
// the layout coresetd serves with -datasets DIR and coreset ingest writes
// into.
type Store struct{ root string }

// OpenStore opens (creating if needed) a dataset store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: store %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Path returns the directory a named dataset lives in. The name must be a
// single path element — no separators, no traversal — so a store name can
// never escape the root.
func (s *Store) Path(name string) (string, error) {
	if name == "" || name != filepath.Base(name) || name == "." || name == ".." {
		return "", fmt.Errorf("dataset: invalid dataset name %q", name)
	}
	return filepath.Join(s.root, name), nil
}

// Open opens the named dataset.
func (s *Store) Open(name string) (*Dataset, error) {
	dir, err := s.Path(name)
	if err != nil {
		return nil, err
	}
	return Open(dir)
}

// List returns the names of every dataset in the store (directories holding
// a manifest), sorted.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("dataset: list %s: %w", s.root, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.root, e.Name(), ManifestName)); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
