package diversity

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func ids(vs ...int) []graph.ID {
	out := make([]graph.ID, len(vs))
	for i, v := range vs {
		out[i] = graph.ID(v)
	}
	return out
}

func TestCentersGreedyFarthestPoint(t *testing.T) {
	// Seed is the smallest ID (0); the farthest point from it is 100; the
	// next pick maximizes the distance to {0, 100}, which is 40 (min dist
	// 40) against 10 (10) and 90 (10).
	got := Centers(ids(90, 0, 10, 100, 40), 3)
	if want := ids(0, 40, 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("Centers = %v, want %v", got, want)
	}
}

func TestCentersTieBreaksTowardSmallestID(t *testing.T) {
	// After [0, 8], vertices 3 and 5 are both at distance 3 from their
	// nearest center: strict > keeps the first maximizer, i.e. the
	// smallest ID (3).
	got := Centers(ids(5, 8, 0, 3), 3)
	if want := ids(0, 3, 8); !reflect.DeepEqual(got, want) {
		t.Fatalf("Centers = %v, want %v", got, want)
	}
}

func TestCentersDeduplicatesAndSorts(t *testing.T) {
	got := Centers(ids(7, 7, 3, 3, 9), 5)
	if want := ids(3, 7, 9); !reflect.DeepEqual(got, want) {
		t.Fatalf("Centers = %v, want %v", got, want)
	}
}

func TestCentersEdgeCases(t *testing.T) {
	if got := Centers(nil, 4); got == nil || len(got) != 0 {
		t.Fatalf("Centers(nil) = %#v, want non-nil empty", got)
	}
	if got := Centers(ids(1, 2, 3), 0); got == nil || len(got) != 0 {
		t.Fatalf("Centers(k=0) = %#v, want non-nil empty", got)
	}
	if got := Centers(ids(5), 3); !reflect.DeepEqual(got, ids(5)) {
		t.Fatalf("Centers(single) = %v", got)
	}
}

func TestCentersDeterministicUnderInputOrder(t *testing.T) {
	a := Centers(ids(4, 99, 17, 62, 8, 31), 3)
	b := Centers(ids(31, 8, 62, 17, 99, 4), 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("input order changed the centers: %v vs %v", a, b)
	}
}

func TestDispersion(t *testing.T) {
	if got := Dispersion(ids(0, 40, 100)); got != 40 {
		t.Fatalf("Dispersion = %d, want 40", got)
	}
	if got := Dispersion(ids(100, 0, 40)); got != 40 {
		t.Fatalf("Dispersion(unsorted) = %d, want 40", got)
	}
	if got := Dispersion(ids(7)); got != 0 {
		t.Fatalf("Dispersion(single) = %d, want 0", got)
	}
	if got := Dispersion(nil); got != 0 {
		t.Fatalf("Dispersion(nil) = %d, want 0", got)
	}
}

func TestVerify(t *testing.T) {
	if err := Verify(101, ids(0, 40, 100)); err != nil {
		t.Fatalf("valid centers rejected: %v", err)
	}
	if err := Verify(100, ids(0, 100)); err == nil {
		t.Fatal("out-of-range center accepted")
	}
	if err := Verify(100, ids(40, 40)); err == nil {
		t.Fatal("duplicate centers accepted")
	}
	if err := Verify(100, ids(40, 20)); err == nil {
		t.Fatal("descending centers accepted")
	}
	if err := Verify(100, nil); err != nil {
		t.Fatalf("empty centers rejected: %v", err)
	}
}

// Composability sanity: the greedy over the union of per-part greedy
// summaries must pick a spread no worse than half the single-machine
// optimum's adjacent structure on a line — here we just pin that composing
// summaries of a split input yields the same answer as the whole input when
// every part's summary retains the extremes.
func TestComposeOverSummaries(t *testing.T) {
	all := ids(0, 5, 9, 50, 55, 60, 95, 99, 100)
	whole := Centers(all, 3)

	partA := ids(0, 5, 50, 95, 100)
	partB := ids(9, 55, 60, 99)
	union := append(Centers(partA, 3), Centers(partB, 3)...)
	composed := Centers(union, 3)

	if Dispersion(composed) == 0 || Dispersion(whole) == 0 {
		t.Fatal("degenerate dispersion")
	}
	if Dispersion(composed) < Dispersion(whole)/2 {
		t.Fatalf("composed dispersion %d collapsed below half of %d", Dispersion(composed), Dispersion(whole))
	}
}
