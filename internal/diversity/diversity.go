// Package diversity implements a randomized composable core-set for
// dispersion (diversity) maximization in the style of "Randomized
// Composable Core-sets for Distributed Submodular Maximization" (Mirrokni,
// Zadimoghaddam; arXiv:1506.06715): each machine summarizes its partition
// with a greedy k-center selection, and the coordinator re-runs the same
// greedy on the union of the summaries.
//
// The ground set here is the graph's touched vertices and the metric is the
// line metric d(u, v) = |u - v| over vertex IDs — deliberately simple, so
// the family exercises the task registry (a vertex-set summary with its own
// wire body, composer and CLI labels) without dragging in a geometry
// dependency. The objective is max-min dispersion: choose at most k points
// maximizing the minimum pairwise distance.
//
// Everything here is a pure function of the (sorted, deduplicated) input
// vertex set, so per-machine summaries and the composed solution are
// bit-for-bit identical across the batch, stream and cluster runtimes for
// the same hash k-partitioning — the same seed-parity guarantee the
// matching and vertex-cover coresets carry.
package diversity

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// DefaultK is the number of centers a per-machine summary (and the composed
// solution) selects. It parallels edcs.DefaultBeta: a fixed, surface-wide
// default rather than a per-request knob.
const DefaultK = 8

// Centers selects up to k centers from verts by the Gonzalez greedy
// (farthest-point traversal) on the line metric: seed with the smallest ID,
// then repeatedly add the vertex maximizing the distance to its nearest
// chosen center, breaking ties toward the smallest ID. Duplicates in verts
// are ignored. The result is sorted ascending and never nil — the canonical
// form the wire codec round-trips.
func Centers(verts []graph.ID, k int) []graph.ID {
	vs := append([]graph.ID(nil), verts...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	vs = dedupSorted(vs)
	centers := make([]graph.ID, 0, min(k, len(vs)))
	if len(vs) == 0 || k <= 0 {
		return centers
	}
	centers = append(centers, vs[0])
	// minDist[i] is vs[i]'s distance to its nearest chosen center; chosen
	// vertices sit at 0 and are never re-picked.
	minDist := make([]int64, len(vs))
	for i, v := range vs {
		minDist[i] = dist(v, vs[0])
	}
	for len(centers) < k && len(centers) < len(vs) {
		best, bestD := -1, int64(0)
		for i := range vs {
			// Strict > keeps the first (smallest-ID) maximizer: the
			// deterministic tie-break every runtime reproduces.
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if best < 0 {
			break
		}
		c := vs[best]
		centers = append(centers, c)
		for i, v := range vs {
			if d := dist(v, c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
	return centers
}

// Dispersion returns the max-min objective of a center set: the minimum
// pairwise distance under the line metric (0 for fewer than two centers).
// For a sorted set the minimum pairwise distance is the minimum adjacent
// gap.
func Dispersion(centers []graph.ID) int {
	if len(centers) < 2 {
		return 0
	}
	cs := append([]graph.ID(nil), centers...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	best := dist(cs[0], cs[1])
	for i := 2; i < len(cs); i++ {
		if d := dist(cs[i-1], cs[i]); d < best {
			best = d
		}
	}
	return int(best)
}

// Verify checks a composed center set: strictly ascending (sorted, no
// duplicates) with every center a valid vertex of an n-vertex graph.
func Verify(n int, centers []graph.ID) error {
	for i, c := range centers {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("diversity: center %d outside [0, %d)", c, n)
		}
		if i > 0 && centers[i-1] >= c {
			return fmt.Errorf("diversity: centers not strictly ascending at index %d", i)
		}
	}
	return nil
}

func dist(u, v graph.ID) int64 {
	d := int64(u) - int64(v)
	if d < 0 {
		return -d
	}
	return d
}

func dedupSorted(vs []graph.ID) []graph.ID {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}
