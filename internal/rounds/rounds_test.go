package rounds

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/stream"
)

func TestNextK(t *testing.T) {
	for _, tc := range []struct{ k, want int }{
		{1, 1}, {2, 1}, {3, 1}, {4, 2}, {9, 3}, {10, 3}, {16, 4}, {64, 8}, {100, 10}, {0, 1},
	} {
		if got := NextK(tc.k); got != tc.want {
			t.Fatalf("NextK(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
	// The recursion reaches 1 from any realistic fleet in O(log log k) steps.
	k, steps := 1<<16, 0
	for k > 1 {
		k = NextK(k)
		steps++
	}
	if steps > 5 {
		t.Fatalf("NextK took %d steps from 65536 to 1", steps)
	}
}

func TestSeedForRound(t *testing.T) {
	if SeedForRound(42, 0) != 42 {
		t.Fatal("round 0 must use the root seed verbatim (single-round parity)")
	}
	seen := map[uint64]int{42: 0}
	for r := 1; r <= 8; r++ {
		s := SeedForRound(42, r)
		if prev, dup := seen[s]; dup {
			t.Fatalf("rounds %d and %d share seed %d", prev, r, s)
		}
		seen[s] = r
	}
}

func TestConfigValidate(t *testing.T) {
	p := edcs.ParamsForBeta(8)
	for _, cfg := range []Config{
		{K: 0, Rounds: 1, Params: p},
		{K: 4, Rounds: 0, Params: p},
		{K: 4, Rounds: MaxRounds + 1, Params: p},
		{K: 4, Rounds: 2, Params: edcs.Params{Beta: 1, BetaMinus: 0}},
	} {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if err := (Config{K: 4, Rounds: 2, Params: p}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundsOneMatchesSingleRound: a Rounds=1 run is the single-round EDCS
// pipeline — deep-equal per-machine coresets and the identical composed
// matching, in batch and stream mode alike. This is the spine of the
// multi-round design: round 0 shards with the root seed through the very
// same code path.
func TestRoundsOneMatchesSingleRound(t *testing.T) {
	p := edcs.ParamsForBeta(16)
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.GNP(500, 24.0/500, rng.New(seed))
		const k = 4
		wantM, wantSt := edcs.Distributed(g, k, 0, seed, p)

		m, st, err := Batch(g, Config{K: k, Rounds: 1, Seed: seed, Params: p})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.RoundsRun != 1 || len(st.Rounds) != 1 {
			t.Fatalf("seed %d: Rounds=1 ran %d rounds", seed, st.RoundsRun)
		}
		if len(st.Coresets) != k {
			t.Fatalf("seed %d: %d coresets, want %d", seed, len(st.Coresets), k)
		}
		for i, cs := range st.Coresets {
			if wantSt.CoresetEdges[i] != len(cs) {
				t.Fatalf("seed %d machine %d: coreset %d edges, single-round had %d",
					seed, i, len(cs), wantSt.CoresetEdges[i])
			}
		}
		if !reflect.DeepEqual(m.Edges(), wantM.Edges()) {
			t.Fatalf("seed %d: Rounds=1 matching differs from edcs.Distributed", seed)
		}
		if st.TotalCommBytes != wantSt.TotalCommBytes || st.MaxMachineBytes != wantSt.MaxMachineBytes {
			t.Fatalf("seed %d: comm accounting diverged: %d/%d vs %d/%d", seed,
				st.TotalCommBytes, st.MaxMachineBytes, wantSt.TotalCommBytes, wantSt.MaxMachineBytes)
		}

		sm, sst, err := Stream(context.Background(), stream.NewGraphSource(g), Config{K: k, Rounds: 1, Seed: seed, Params: p})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(sst.Coresets, st.Coresets) {
			t.Fatalf("seed %d: stream Rounds=1 coresets differ from batch", seed)
		}
		if !reflect.DeepEqual(sm.Edges(), m.Edges()) {
			t.Fatalf("seed %d: stream Rounds=1 matching differs from batch", seed)
		}
	}
}

// TestMultiRoundParityAcrossRuntimes is the multi-round seed-parity gate:
// batch, stream and a real TCP cluster must run the identical schedule and
// produce deep-equal per-round breakdowns and final coresets for the same
// (graph, seed, k, β, rounds).
func TestMultiRoundParityAcrossRuntimes(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(4)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	p := edcs.ParamsForBeta(8) // aggressive trimming so several rounds shrink
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.GNP(400, 40.0/400, rng.New(seed))
		cfg := Config{K: 4, Rounds: 3, Seed: seed, Params: p}

		bm, bst, err := Batch(g, cfg)
		if err != nil {
			t.Fatalf("seed %d batch: %v", seed, err)
		}
		sm, sst, err := Stream(context.Background(), stream.NewGraphSource(g), cfg)
		if err != nil {
			t.Fatalf("seed %d stream: %v", seed, err)
		}
		cm, cst, err := Cluster(context.Background(), stream.NewGraphSource(g), cluster.Config{Workers: addrs, Seed: seed}, cfg)
		if err != nil {
			t.Fatalf("seed %d cluster: %v", seed, err)
		}

		if !reflect.DeepEqual(bst.Coresets, sst.Coresets) || !reflect.DeepEqual(bst.Coresets, cst.Coresets) {
			t.Fatalf("seed %d: final coresets differ across runtimes", seed)
		}
		if !reflect.DeepEqual(bm.Edges(), sm.Edges()) || !reflect.DeepEqual(bm.Edges(), cm.Edges()) {
			t.Fatalf("seed %d: composed matchings differ across runtimes", seed)
		}
		if err := matching.Verify(g.N, g.Edges, bm); err == nil {
			// The final matching uses only coreset edges, all of which are
			// input edges, so it must verify against the input graph.
		} else {
			t.Fatalf("seed %d: composed matching invalid: %v", seed, err)
		}
		if bst.RoundsRun != sst.RoundsRun || bst.RoundsRun != cst.RoundsRun {
			t.Fatalf("seed %d: round counts differ: batch %d stream %d cluster %d",
				seed, bst.RoundsRun, sst.RoundsRun, cst.RoundsRun)
		}
		for r := range bst.Rounds {
			b, s, c := bst.Rounds[r], sst.Rounds[r], cst.Rounds[r]
			for _, o := range []RoundStat{s, c} {
				if b.K != o.K || b.Seed != o.Seed || b.InputEdges != o.InputEdges ||
					b.UnionEdges != o.UnionEdges || !reflect.DeepEqual(b.CoresetEdges, o.CoresetEdges) {
					t.Fatalf("seed %d round %d: breakdown differs: batch %+v vs %+v", seed, r, b, o)
				}
			}
			// Cluster rounds measure the wire; the measured bytes must cover
			// the simulated estimate and stay within frame-header slack.
			if c.TotalCommBytes < c.EstCommBytes {
				t.Fatalf("seed %d round %d: measured %d below estimate %d", seed, r, c.TotalCommBytes, c.EstCommBytes)
			}
			if c.EstCommBytes > 0 && float64(c.TotalCommBytes) > 1.1*float64(c.EstCommBytes) {
				t.Fatalf("seed %d round %d: measured %d not ~= estimate %d", seed, r, c.TotalCommBytes, c.EstCommBytes)
			}
			if b.TotalCommBytes != c.EstCommBytes {
				t.Fatalf("seed %d round %d: batch estimate %d differs from cluster estimate %d",
					seed, r, b.TotalCommBytes, c.EstCommBytes)
			}
		}
	}
}

// TestScheduleShrinks: on a dense input with a small β the union shrinks
// every round, k follows the ⌊√k⌋ recursion, and the composed matching is
// still a valid, large matching of the original graph.
func TestScheduleShrinks(t *testing.T) {
	g := gen.GNP(300, 0.4, rng.New(7))
	opt := matching.Maximum(g.N, g.Edges).Size()
	cfg := Config{K: 16, Rounds: 4, Seed: 7, Params: edcs.ParamsForBeta(8)}
	m, st, err := Batch(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsRun < 2 {
		t.Fatalf("dense input ran only %d rounds", st.RoundsRun)
	}
	wantK := 16
	for r, rs := range st.Rounds {
		if rs.K != wantK {
			t.Fatalf("round %d ran k=%d, schedule says %d", r, rs.K, wantK)
		}
		if r > 0 && rs.InputEdges != st.Rounds[r-1].UnionEdges {
			t.Fatalf("round %d input %d != round %d union %d", r, rs.InputEdges, r-1, st.Rounds[r-1].UnionEdges)
		}
		wantK = NextK(wantK)
	}
	last := st.Rounds[len(st.Rounds)-1]
	if st.RoundsRun < cfg.Rounds && last.UnionEdges < last.InputEdges {
		t.Fatal("driver stopped early although the union was still shrinking")
	}
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatalf("composed matching invalid: %v", err)
	}
	if 2*m.Size() < opt {
		t.Fatalf("multi-round matching %d below half of optimum %d", m.Size(), opt)
	}
}

// TestEarlyExit: a bounded-degree input the EDCS keeps whole (P2 forces
// every edge in) cannot shrink, so the driver must stop after round 0
// regardless of the cap.
func TestEarlyExit(t *testing.T) {
	var path []graph.Edge
	for v := graph.ID(0); v < 199; v++ {
		path = append(path, graph.Edge{U: v, V: v + 1})
	}
	g := &graph.Graph{N: 200, Edges: path}
	_, st, err := Batch(g, Config{K: 4, Rounds: 8, Seed: 1, Params: edcs.ParamsForBeta(8)})
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsRun != 1 {
		t.Fatalf("non-shrinking input ran %d rounds, want 1", st.RoundsRun)
	}
	if st.Rounds[0].UnionEdges != len(path) {
		t.Fatalf("path union %d edges, want all %d", st.Rounds[0].UnionEdges, len(path))
	}
}

// TestEmptyGraph: degenerate inputs terminate immediately with an empty
// matching and a single zero-edge round.
func TestEmptyGraph(t *testing.T) {
	g := &graph.Graph{N: 10}
	m, st, err := Batch(g, Config{K: 4, Rounds: 3, Seed: 1, Params: edcs.ParamsForBeta(8)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || st.RoundsRun != 1 || st.TotalCommBytes == 0 {
		t.Fatalf("empty graph: size=%d rounds=%d comm=%d", m.Size(), st.RoundsRun, st.TotalCommBytes)
	}
}

// TestReport: the JSON-able report carries the multi-round fields and the
// per-round breakdown, and the aggregates tie out against the rounds.
func TestReport(t *testing.T) {
	g := gen.GNP(300, 0.3, rng.New(5))
	cfg := Config{K: 9, Rounds: 3, Seed: 5, Params: edcs.ParamsForBeta(8)}
	m, st, err := Batch(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Report("batch", cfg.Seed, m.Size(), cfg.Params.Beta)
	if rep.Task != "edcs" || rep.Mode != "batch" || rep.Beta != 8 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.Rounds != 3 || rep.RoundsRun != st.RoundsRun || len(rep.RoundStats) != st.RoundsRun {
		t.Fatalf("round fields wrong: rounds=%d roundsRun=%d stats=%d", rep.Rounds, rep.RoundsRun, len(rep.RoundStats))
	}
	sum := 0
	for _, rr := range rep.RoundStats {
		sum += rr.TotalCommBytes
	}
	if sum != rep.TotalCommBytes {
		t.Fatalf("per-round comm %d does not sum to total %d", sum, rep.TotalCommBytes)
	}
	if len(rep.CoresetEdges) != st.Rounds[st.RoundsRun-1].K {
		t.Fatalf("top-level coreset slice describes %d machines, final round had %d",
			len(rep.CoresetEdges), st.Rounds[st.RoundsRun-1].K)
	}
}

// TestClusterSessionReuse: one session serves every round over the same
// connections — the Fleet/RoundsRun accounting proves the conversation
// shape (one HELLO, several rounds) rather than per-round redials.
func TestClusterSessionReuse(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(4)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	g := gen.GNP(300, 0.4, rng.New(9))
	_, st, err := Cluster(context.Background(), stream.NewGraphSource(g),
		cluster.Config{Workers: addrs, Seed: 9}, Config{K: 4, Rounds: 3, Seed: 9, Params: edcs.ParamsForBeta(8)})
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsRun < 2 {
		t.Fatalf("expected a multi-round run, got %d rounds", st.RoundsRun)
	}
	// Only round 0 pays the handshake: later rounds' shard traffic must not
	// re-include HELLO bytes (ShardBytes strictly dominated by round 0 per
	// sharded edge is hard to assert; instead check every round charged some
	// shard traffic and the sum matches the aggregate).
	sum := 0
	for _, rs := range st.Rounds {
		if rs.ShardBytes <= 0 {
			t.Fatalf("round %d has no shard traffic", rs.Round)
		}
		sum += rs.ShardBytes
	}
	if sum != st.ShardBytes {
		t.Fatalf("per-round shard bytes %d do not sum to %d", sum, st.ShardBytes)
	}
}
