// Package rounds is the multi-round MPC driver on the EDCS sketch,
// following the O(log log n)-round algorithms of
//
//	Assadi, Bateni, Bernstein, Mirrokni, Stein.
//	"Coresets Meet EDCS" (arXiv:1711.03076).
//
// The single-round pipeline (internal/edcs) shards the input over k
// machines, builds one EDCS per machine, and composes a matching from the
// union of the coresets. This package iterates that step: round r takes the
// union of round r−1's per-machine EDCSs as its input graph, reshards it
// with the same seeded hash partitioning every runtime uses
// (partition.HashAssign / partition.HashK), and rebuilds. Because the union
// of k EDCSs has at most k·n·β/2 edges — a geometric shrink for dense
// inputs — the machine count can shrink with it: the schedule here is the
// paper's recursion k_{r+1} = ⌊√k_r⌋, which reaches a single machine after
// O(log log k) rounds while per-machine load stays within the space the
// model grants (NextK). Each round draws a fresh seed from the root seed
// (SeedForRound; round 0 uses the root seed itself, which is what makes a
// Rounds=1 run reproduce today's single-round EDCS coresets bit for bit).
//
// The driver runs over all three execution runtimes:
//
//   - Batch materializes each round's input and partitions with
//     partition.HashK.
//   - Stream feeds round 0 from any stream.EdgeSource (never materializing
//     the original input) and later rounds from the in-memory union, which
//     is coordinator state the MPC model already charges for.
//   - Cluster drives a real worker fleet through one cluster.EDCSSession:
//     the connections are dialed once, one HELLO carries the round cap, and
//     every round's communication is MEASURED off the TCP connections.
//
// All three produce deep-equal per-machine coresets for the same
// (graph, seed, k, β, rounds) — the multi-round extension of the seed
// parity the single-round runtimes already guarantee — because each round
// is itself a parity-checked single-round run and the union is concatenated
// in machine order. Rounds end at the configured cap or earlier, when the
// union stops shrinking (|union| ≥ |input| means the sketch has converged
// and further rounds would only burn communication).
package rounds

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/task"
)

// Metric names this package reports through Config.Obs (see internal/obs):
// one event per completed round carrying the union size, the shrink ratio
// (union edges over input edges — < 1 while the sketch is still shrinking)
// and the round's communication bytes.
const (
	MetricRounds      = "rounds_completed_total"
	MetricUnionEdges  = "rounds_union_edges"
	MetricShrinkRatio = "rounds_shrink_ratio"
	MetricCommBytes   = "rounds_comm_bytes_total"
)

// MaxRounds is the sanity cap every user-facing surface (CLI flag, service
// request) applies to the round cap. The paper's schedule needs
// O(log log n) rounds — single digits for any real input — so anything near
// this cap is already nonsense. It restates the registry-wide task.MaxRounds
// so every surface shares one bound.
const MaxRounds = task.MaxRounds

// Config parameterizes a multi-round run.
type Config struct {
	// K is the round-0 machine count (required, > 0). In cluster mode it
	// must equal the worker fleet size.
	K int
	// Rounds is the round cap (required, in [1, MaxRounds]). Rounds = 1
	// reproduces the single-round EDCS pipeline exactly.
	Rounds int
	// Seed is the root seed; round r shards with SeedForRound(Seed, r).
	Seed uint64
	// Params are the EDCS degree constraints, fixed across rounds.
	Params edcs.Params
	// BatchSize is the per-shard-frame edge count for the stream and
	// cluster runtimes (0 = their default).
	BatchSize int
	// Workers caps goroutine parallelism in batch mode (0 = GOMAXPROCS).
	Workers int
	// Obs receives per-round events (the Metric* names above). Nil keeps
	// the driver silent.
	Obs obs.Sink
	// Trace receives span-style round events (round.start/round.end with
	// union size and shrink ratio, plus a compose event). Nil disables
	// tracing.
	Trace *obs.Tracer
}

// Validate rejects configurations no driver can run.
func (c Config) Validate() error {
	if c.K <= 0 {
		return errors.New("rounds: config K must be > 0")
	}
	if c.Rounds < 1 || c.Rounds > MaxRounds {
		return fmt.Errorf("rounds: round cap %d outside [1, %d]", c.Rounds, MaxRounds)
	}
	return c.Params.Validate()
}

// NextK is the paper's machine-shrink recursion: the union of k per-machine
// EDCSs is enough smaller than the round's input that ⌊√k⌋ machines can
// hold it at the same per-machine space, so k_{r+1} = ⌊√k_r⌋ (never below
// 1). Iterating reaches 1 after O(log log k) rounds — the paper's round
// complexity.
func NextK(k int) int {
	if k <= 1 {
		return 1
	}
	// Integer square root by Newton iteration; k is a machine count, so the
	// loop runs a handful of times.
	x := k
	for y := (x + k/x) / 2; y < x; y = (x + k/x) / 2 {
		x = y
	}
	return x
}

// SeedForRound derives round r's sharding seed from the root seed. Round 0
// uses the root seed verbatim — a Rounds=1 run must reproduce today's
// single-round EDCS coresets bit for bit, across every runtime — and later
// rounds mix the round index through the splitmix64 finalizer so resharding
// a round's union is a fresh random k-partitioning rather than a replay of
// the previous round's cuts.
func SeedForRound(seed uint64, round int) uint64 {
	if round == 0 {
		return seed
	}
	x := seed + uint64(round)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RoundStat is one round's accounting. The byte fields follow the runtime's
// convention: measured off the wire in cluster mode (with the simulated
// estimate alongside), the simulated estimate itself in batch and stream
// mode.
type RoundStat struct {
	Round        int    // 0-based
	K            int    // machines active this round
	Seed         uint64 // sharding seed (SeedForRound)
	InputEdges   int    // edges fed into the round
	UnionEdges   int    // edges in the union of the round's coresets
	CoresetEdges []int  // per-machine coreset sizes

	TotalCommBytes     int
	MaxMachineBytes    int
	EstCommBytes       int // cluster only
	EstMaxMachineBytes int // cluster only
	ShardBytes         int // cluster only
	// Retries counts the round's worker-failure replay attempts and
	// ReplayedMachines the machines recovered by replay (cluster only; zero
	// on an undisturbed round).
	Retries          int
	ReplayedMachines []int
	// MachineStats is the round's per-machine telemetry breakdown (cluster
	// only): phase wall times, repair work and peak coreset size as reported
	// by each worker's TELEM frame. Entries exist for every machine; phase
	// fields are zero when a worker lacks the telemetry capability.
	MachineStats []graph.MachineStats
	Duration     time.Duration
}

// Stats reports a whole multi-round run: per-round breakdowns plus
// aggregates. The final round's coresets — whose union the coordinator
// composed — are retained so callers (parity tests, the CLI's JSON report)
// can inspect exactly what was composed.
type Stats struct {
	K          int // round-0 machine count
	N          int // vertex count
	EdgesTotal int // round-0 input edges
	RoundCap   int // configured cap
	RoundsRun  int
	Rounds     []RoundStat

	// Coresets are the final round's per-machine EDCS edge lists, indexed
	// by machine.
	Coresets [][]graph.Edge

	// TotalCommBytes sums every round's coreset messages; MaxMachineBytes
	// is the largest single message of any round. Est*/ShardBytes aggregate
	// the same way (cluster only).
	TotalCommBytes     int
	MaxMachineBytes    int
	EstCommBytes       int
	EstMaxMachineBytes int
	ShardBytes         int
	// Retries sums replay attempts across rounds; ReplayedMachines is the
	// ascending union of the machines any round replayed (cluster only).
	Retries          int
	ReplayedMachines []int
	CompositionEdges int // final-round union size (what composition saw)
	Duration         time.Duration
}

// accumulate folds one finished round into the aggregates.
func (s *Stats) accumulate(rs RoundStat, coresets [][]graph.Edge) {
	s.Rounds = append(s.Rounds, rs)
	s.RoundsRun++
	s.Coresets = coresets
	s.TotalCommBytes += rs.TotalCommBytes
	if rs.MaxMachineBytes > s.MaxMachineBytes {
		s.MaxMachineBytes = rs.MaxMachineBytes
	}
	s.EstCommBytes += rs.EstCommBytes
	if rs.EstMaxMachineBytes > s.EstMaxMachineBytes {
		s.EstMaxMachineBytes = rs.EstMaxMachineBytes
	}
	s.ShardBytes += rs.ShardBytes
	s.Retries += rs.Retries
	s.ReplayedMachines = mergeMachines(s.ReplayedMachines, rs.ReplayedMachines)
	s.CompositionEdges = rs.UnionEdges
}

// mergeMachines folds a round's replayed machines into the run-level list,
// kept ascending and deduplicated.
func mergeMachines(acc, add []int) []int {
	for _, m := range add {
		i := sort.SearchInts(acc, m)
		if i < len(acc) && acc[i] == m {
			continue
		}
		acc = append(acc, 0)
		copy(acc[i+1:], acc[i:])
		acc[i] = m
	}
	return acc
}

// Report assembles the shared JSON-able run report. Mode names the runtime
// ("batch" | "stream" | "cluster"); the per-machine slices describe the
// final round, the communication fields aggregate across rounds, and the
// per-round breakdown rides in RoundStats.
func (s *Stats) Report(mode string, seed uint64, solutionSize, beta int) *graph.RunReport {
	rep := &graph.RunReport{
		Task:               task.RoundsCapable().Name,
		Mode:               mode,
		N:                  s.N,
		M:                  s.EdgesTotal,
		K:                  s.K,
		Seed:               seed,
		Beta:               beta,
		SolutionSize:       solutionSize,
		TotalCommBytes:     s.TotalCommBytes,
		MaxMachineBytes:    s.MaxMachineBytes,
		EstCommBytes:       s.EstCommBytes,
		EstMaxMachineBytes: s.EstMaxMachineBytes,
		ShardBytes:         s.ShardBytes,
		Retries:            s.Retries,
		ReplayedMachines:   s.ReplayedMachines,
		CompositionEdges:   s.CompositionEdges,
		DurationMS:         float64(s.Duration.Microseconds()) / 1000,
		Rounds:             s.RoundCap,
		RoundsRun:          s.RoundsRun,
	}
	for _, cs := range s.Coresets {
		rep.CoresetEdges = append(rep.CoresetEdges, len(cs))
	}
	for _, rs := range s.Rounds {
		rep.RoundStats = append(rep.RoundStats, graph.RoundReport{
			Round:              rs.Round,
			K:                  rs.K,
			Seed:               rs.Seed,
			InputEdges:         rs.InputEdges,
			UnionEdges:         rs.UnionEdges,
			TotalCommBytes:     rs.TotalCommBytes,
			MaxMachineBytes:    rs.MaxMachineBytes,
			EstCommBytes:       rs.EstCommBytes,
			EstMaxMachineBytes: rs.EstMaxMachineBytes,
			ShardBytes:         rs.ShardBytes,
			Retries:            rs.Retries,
			ReplayedMachines:   rs.ReplayedMachines,
			MachineStats:       rs.MachineStats,
			DurationMS:         float64(rs.Duration.Microseconds()) / 1000,
		})
	}
	if n := len(s.Rounds); n > 0 {
		// The run-level breakdown mirrors the final round — the one whose
		// coresets the coordinator composed.
		rep.MachineStats = s.Rounds[n-1].MachineStats
	}
	return rep
}

// union concatenates per-machine coresets in machine order — the
// deterministic next-round input every runtime reproduces identically. Each
// coreset is already sorted and the per-round shards are disjoint edge sets
// (edge hygiene in edcs.Insert guarantees no machine stores a duplicate),
// so the union is a simple graph.
func union(coresets [][]graph.Edge) []graph.Edge {
	total := 0
	for _, cs := range coresets {
		total += len(cs)
	}
	out := make([]graph.Edge, 0, total)
	for _, cs := range coresets {
		out = append(out, cs...)
	}
	return out
}

// runRound executes one round and returns its per-machine coresets, the
// round accounting and the vertex count the round observed (constant across
// rounds; drive records it from round 0). Implementations: batch HashK +
// edcs.Coreset, the streaming pipeline, one cluster.EDCSSession round.
type runRound func(ctx context.Context, input stream.EdgeSource, k int, seed uint64) (coresets [][]graph.Edge, rs RoundStat, n int, err error)

// drive is the schedule shared by the three runtimes: run rounds with
// shrinking k and per-round seeds until the cap, or until the union stops
// shrinking, then compose a maximum matching of the final union. src feeds
// round 0; later rounds stream the previous union from memory.
func drive(ctx context.Context, src stream.EdgeSource, cfg Config, exec runRound) (*matching.Matching, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if src == nil {
		return nil, nil, errors.New("rounds: nil source")
	}
	start := time.Now()
	st := &Stats{K: cfg.K, RoundCap: cfg.Rounds}
	k := cfg.K
	var prevUnion []graph.Edge
	for round := 0; round < cfg.Rounds; round++ {
		input := src
		if round > 0 {
			input = stream.NewSliceSource(st.N, prevUnion)
		}
		seed := SeedForRound(cfg.Seed, round)
		endRound := cfg.Trace.Span("round", "round", round, "k", k)
		coresets, rs, n, err := exec(ctx, input, k, seed)
		if err != nil {
			endRound("err", err.Error())
			return nil, nil, err
		}
		rs.Round, rs.K, rs.Seed = round, k, seed
		prevUnion = union(coresets)
		rs.UnionEdges = len(prevUnion)
		if round == 0 {
			st.EdgesTotal = rs.InputEdges
			st.N = n
		}
		st.accumulate(rs, coresets)
		shrink := 1.0
		if rs.InputEdges > 0 {
			shrink = float64(rs.UnionEdges) / float64(rs.InputEdges)
		}
		endRound("input_edges", rs.InputEdges, "union_edges", rs.UnionEdges)
		obs.Count(cfg.Obs, MetricRounds, 1)
		obs.Count(cfg.Obs, MetricCommBytes, int64(rs.TotalCommBytes))
		obs.Observe(cfg.Obs, MetricUnionEdges, float64(rs.UnionEdges))
		obs.Observe(cfg.Obs, MetricShrinkRatio, shrink)
		if rs.UnionEdges >= rs.InputEdges {
			break // the sketch converged; further rounds only burn communication
		}
		k = NextK(k)
	}
	cfg.Trace.Event("compose", "machines", len(st.Coresets), "union_edges", st.CompositionEdges)
	m := core.ComposeMatching(st.N, st.Coresets)
	st.Duration = time.Since(start)
	return m, st, nil
}

// Batch runs the multi-round driver over the materialized batch runtime:
// every round partitions its input with partition.HashK and builds the
// per-machine EDCSs in parallel (cfg.Workers goroutines), exactly as
// edcs.Distributed does for a single round.
func Batch(g *graph.Graph, cfg Config) (*matching.Matching, *Stats, error) {
	exec := func(ctx context.Context, input stream.EdgeSource, k int, seed uint64) ([][]graph.Edge, RoundStat, int, error) {
		t0 := time.Now()
		edges, n, err := drain(input)
		if err != nil {
			return nil, RoundStat{}, 0, err
		}
		parts := partition.HashK(edges, k, seed)
		coresets := core.MapParts(parts, cfg.Workers, func(i int, part []graph.Edge) []graph.Edge {
			return edcs.Coreset(n, part, cfg.Params)
		})
		rs := RoundStat{InputEdges: len(edges)}
		chargeEstimated(&rs, coresets)
		rs.Duration = time.Since(t0)
		return coresets, rs, n, nil
	}
	return drive(context.Background(), stream.NewGraphSource(g), cfg, exec)
}

// Stream runs the multi-round driver over the in-process streaming runtime:
// round 0 shards src through the concurrent pipeline without materializing
// it; later rounds stream the in-memory union. Cancellation is cooperative
// at batch granularity, as in stream.EDCSContext.
func Stream(ctx context.Context, src stream.EdgeSource, cfg Config) (*matching.Matching, *Stats, error) {
	exec := func(ctx context.Context, input stream.EdgeSource, k int, seed uint64) ([][]graph.Edge, RoundStat, int, error) {
		sums, sst, err := stream.EDCSSummaries(ctx, input, stream.Config{K: k, Seed: seed, BatchSize: cfg.BatchSize}, cfg.Params)
		if err != nil {
			return nil, RoundStat{}, 0, err
		}
		coresets := make([][]graph.Edge, len(sums))
		for i, s := range sums {
			coresets[i] = s.Coreset
		}
		rs := RoundStat{InputEdges: sst.EdgesTotal}
		chargeEstimated(&rs, coresets)
		rs.Duration = sst.Duration
		return coresets, rs, sst.N, nil
	}
	return drive(ctx, src, cfg, exec)
}

// Cluster runs the multi-round driver over a real worker fleet through one
// cluster.EDCSSession: the worker connections are dialed once and reused
// across rounds, one HELLO per run carries the round cap, and every round's
// communication lands in the round breakdown as MEASURED wire bytes. The
// fleet size overrides cfg.K (one machine per worker, as everywhere in the
// cluster runtime).
func Cluster(ctx context.Context, src stream.EdgeSource, ccfg cluster.Config, cfg Config) (*matching.Matching, *Stats, error) {
	cfg.K = len(ccfg.Workers)
	if cfg.BatchSize > 0 && ccfg.BatchSize == 0 {
		ccfg.BatchSize = cfg.BatchSize
	}
	if ccfg.Obs == nil {
		// One sink covers the whole run: a caller that wired the driver's
		// events gets the session's wire-level events too.
		ccfg.Obs = cfg.Obs
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	nHint := 0
	if src != nil && src.KnownUpfront() {
		nHint = src.NumVertices()
	}
	sess, err := cluster.DialEDCSRounds(ctx, ccfg, cfg.Params, cfg.Rounds, nHint)
	if err != nil {
		return nil, nil, err
	}
	defer sess.Close()
	exec := func(ctx context.Context, input stream.EdgeSource, k int, seed uint64) ([][]graph.Edge, RoundStat, int, error) {
		sums, cst, err := sess.Round(ctx, input, k, seed)
		if err != nil {
			return nil, RoundStat{}, 0, err
		}
		coresets := make([][]graph.Edge, len(sums))
		for i, s := range sums {
			coresets[i] = s.Coreset
		}
		rs := RoundStat{
			InputEdges:         cst.EdgesTotal,
			TotalCommBytes:     cst.TotalCommBytes,
			MaxMachineBytes:    cst.MaxMachineBytes,
			EstCommBytes:       cst.EstCommBytes,
			EstMaxMachineBytes: cst.EstMaxMachineBytes,
			ShardBytes:         cst.ShardBytes,
			Retries:            cst.Retries,
			ReplayedMachines:   cst.ReplayedMachines,
			MachineStats:       cst.MachineStats,
			Duration:           cst.Duration,
		}
		for _, cs := range coresets {
			rs.CoresetEdges = append(rs.CoresetEdges, len(cs))
		}
		return coresets, rs, cst.N, nil
	}
	return drive(ctx, src, cfg, exec)
}

// chargeEstimated fills an in-process round's communication fields with the
// simulated estimate — core.CoresetSizeBytes, the same function of the edge
// list the cluster runtime's measured frames encode.
func chargeEstimated(rs *RoundStat, coresets [][]graph.Edge) {
	for _, cs := range coresets {
		rs.CoresetEdges = append(rs.CoresetEdges, len(cs))
		b := core.CoresetSizeBytes(cs)
		rs.TotalCommBytes += b
		if b > rs.MaxMachineBytes {
			rs.MaxMachineBytes = b
		}
	}
}

// drain materializes a source (batch mode's view of a round input).
func drain(src stream.EdgeSource) ([]graph.Edge, int, error) {
	var edges []graph.Edge
	buf := make([]graph.Edge, 4096)
	for {
		c, err := src.Next(buf)
		edges = append(edges, buf[:c]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, 0, err
		}
	}
	return edges, src.NumVertices(), nil
}
