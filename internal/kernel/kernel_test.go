package kernel

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func TestComputeVCKernelForcesHighDegree(t *testing.T) {
	// Star with 10 leaves, t = 3: the center has degree 10 > 3, forced.
	star := gen.Star(11)
	k := ComputeVCKernel(3, star.N, star.Edges)
	if len(k.Forced) != 1 || k.Forced[0] != 0 {
		t.Fatalf("Forced = %v, want [0]", k.Forced)
	}
	if len(k.Residual) != 0 {
		t.Fatalf("Residual = %v, want empty", k.Residual)
	}
	if k.Overflow {
		t.Fatal("no overflow expected")
	}
}

func TestComputeVCKernelCascade(t *testing.T) {
	// Two stars sharing leaves: peeling the first center drops the second
	// center's degree; iteration must reach a fixpoint.
	// Center 0 -> leaves 2..11; center 1 -> leaves 2..5 (degree 4).
	var edges []graph.Edge
	for v := graph.ID(2); v <= 11; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	for v := graph.ID(2); v <= 5; v++ {
		edges = append(edges, graph.Edge{U: 1, V: v})
	}
	k := ComputeVCKernel(3, 12, edges)
	// Center 0 (deg 10) forced; then center 1 still has degree 4 > 3,
	// forced too.
	if len(k.Forced) != 2 {
		t.Fatalf("Forced = %v, want two centers", k.Forced)
	}
}

func TestKernelOverflowCertifiesLargeVC(t *testing.T) {
	// Complete graph K20 with t=2: after forcing (no vertex exceeds t
	// within... K20 degrees are 19 > 2 so all get forced, leaving nothing).
	// Instead use a perfect matching of 10 edges with t = 2: no forced
	// vertices (degrees 1), residual 10 > t² = 4: overflow.
	var edges []graph.Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{U: graph.ID(2 * i), V: graph.ID(2*i + 1)})
	}
	k := ComputeVCKernel(2, 20, edges)
	if !k.Overflow {
		t.Fatal("expected overflow: VC of 10 disjoint edges is 10 > 2")
	}
	if len(k.Residual) != 2*2+1 {
		t.Fatalf("truncation wrong: %d edges", len(k.Residual))
	}
}

func TestExactVCBoundedKnownInstances(t *testing.T) {
	tri := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	if _, ok := ExactVCBounded(3, tri, 1); ok {
		t.Fatal("triangle has no cover of size 1")
	}
	cover, ok := ExactVCBounded(3, tri, 2)
	if !ok || len(cover) != 2 {
		t.Fatalf("triangle: got %v ok=%v", cover, ok)
	}
	if err := vcover.Verify(3, tri, cover); err != nil {
		t.Fatal(err)
	}
	// Empty graph.
	if cover, ok := ExactVCBounded(3, nil, 0); !ok || len(cover) != 0 {
		t.Fatalf("empty graph: %v %v", cover, ok)
	}
}

func TestExactVCBoundedMatchesOracle(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(12) + 2
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bernoulli(0.3) {
					edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
				}
			}
		}
		opt := vcover.ExactSmall(n, edges)
		got, ok := ExactVCBounded(n, edges, len(opt))
		if !ok {
			t.Fatalf("trial %d: solver failed at budget=opt=%d", trial, len(opt))
		}
		if len(got) != len(opt) {
			t.Fatalf("trial %d: got %d, opt %d", trial, len(got), len(opt))
		}
		if err := vcover.Verify(n, edges, got); err != nil {
			t.Fatal(err)
		}
		if _, ok := ExactVCBounded(n, edges, len(opt)-1); ok && len(opt) > 0 {
			t.Fatalf("trial %d: found cover below optimum", trial)
		}
	}
}

// TestKernelCompositionExact is the footnote-3 reproduction: on instances
// with small vertex cover, composing per-machine Buss kernels yields the
// EXACT optimum, with per-machine messages of size O(t²).
func TestKernelCompositionExact(t *testing.T) {
	r := rng.New(7)
	const k = 6
	for trial := 0; trial < 30; trial++ {
		// Planted small-VC instance: a few centers plus random edges from
		// centers to a big leaf set (VC = #centers once degree is high).
		centers := r.Intn(4) + 1
		n := 200
		var edges []graph.Edge
		for c := 0; c < centers; c++ {
			for v := centers; v < n; v++ {
				if r.Bernoulli(0.4) {
					edges = append(edges, graph.Edge{U: graph.ID(c), V: graph.ID(v)}.Canon())
				}
			}
		}
		if len(edges) == 0 {
			continue
		}
		// OPT = centers: the centers cover everything, and a matching of
		// size `centers` (each center to a private leaf) matches it.
		if matching.Maximum(n, edges).Size() != centers {
			continue // improbable degenerate draw
		}
		opt := centers
		tParam := opt + 2
		parts := partition.RandomK(edges, k, r)
		kernels := make([]*VCKernel, k)
		for i, p := range parts {
			kernels[i] = ComputeVCKernel(tParam, n, p)
			if s := kernels[i].Size(); s > tParam*tParam+tParam+1+n {
				t.Fatalf("kernel too large: %d", s)
			}
		}
		res := ComposeVCKernels(tParam, n, kernels)
		if res.LowerBoundExceeded {
			t.Fatalf("trial %d: spurious lower-bound claim (opt=%d, t=%d)", trial, opt, tParam)
		}
		if !res.Exact {
			t.Fatalf("trial %d: composition not exact", trial)
		}
		if err := vcover.Verify(n, edges, res.Cover); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Cover) != opt {
			t.Fatalf("trial %d: composed cover %d != opt %d", trial, len(res.Cover), opt)
		}
	}
}

func TestKernelCompositionDetectsLargeVC(t *testing.T) {
	// Perfect matching of 50 edges: VC = 50. With t = 5 the kernels must
	// report the lower bound rather than an undersized cover.
	var edges []graph.Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, graph.Edge{U: graph.ID(2 * i), V: graph.ID(2*i + 1)})
	}
	r := rng.New(11)
	parts := partition.RandomK(edges, 4, r)
	kernels := make([]*VCKernel, 4)
	for i, p := range parts {
		kernels[i] = ComputeVCKernel(5, 100, p)
	}
	res := ComposeVCKernels(5, 100, kernels)
	if !res.LowerBoundExceeded {
		t.Fatal("composition failed to certify VC > t")
	}
}

func TestKernelPanicsOnNegativeT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ComputeVCKernel(-1, 3, nil)
}

func BenchmarkVCKernel(b *testing.B) {
	r := rng.New(1)
	// Small-VC instance at scale.
	var edges []graph.Edge
	n := 20000
	for c := 0; c < 8; c++ {
		for v := 8; v < n; v++ {
			if r.Bernoulli(0.2) {
				edges = append(edges, graph.Edge{U: graph.ID(c), V: graph.ID(v)}.Canon())
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeVCKernel(16, n, edges)
	}
}
