// Package kernel implements exact composable coresets for the small-optimum
// regime, reproducing the paper's footnote 3: "Otherwise [when
// VC(G) = O(k log n)], we can use the algorithm of [20] to obtain exact
// coresets of size O~(k²)".
//
// The construction is classical Buss kernelization, which composes cleanly
// under edge partitioning:
//
//   - any vertex whose degree (even within a single machine's partition)
//     exceeds the parameter t must belong to every vertex cover of G of
//     size <= t, so machines report such vertices as forced;
//   - after removing forced vertices, a residual graph with more than t²
//     edges certifies VC(G) > t (max degree <= t, so t vertices cover at
//     most t² edges), letting machines truncate their messages at t²+1
//     edges without losing exactness.
//
// The composed kernel preserves every vertex cover of size <= t exactly,
// so running an exact solver on the union of the k kernels (each of size
// O(t²) = O~(k²) when t = O(k log n)) yields the true optimum.
package kernel

import (
	"repro/internal/graph"
	"repro/internal/vcover"
)

// VCKernel is one machine's exact coreset for vertex cover with parameter t.
type VCKernel struct {
	// Forced vertices have degree > t within this machine's partition, so
	// they belong to every vertex cover of G of size <= t.
	Forced []graph.ID
	// Residual is the partition minus edges covered by Forced, truncated
	// at t²+1 edges (more than t² residual edges certify VC(G) > t).
	Residual []graph.Edge
	// Overflow reports that the residual exceeded t² edges (a proof that
	// VC(G) > t, in which case the kernel's exactness promise is void and
	// the caller should fall back to the Theorem 2 coreset).
	Overflow bool
	// T is the parameter the kernel was built with.
	T int
}

// ComputeVCKernel builds the Buss kernel of one partition with parameter t.
func ComputeVCKernel(t int, n int, part []graph.Edge) *VCKernel {
	if t < 0 {
		panic("kernel: negative parameter")
	}
	k := &VCKernel{T: t}
	res := graph.NewResidual(n, part)
	// Repeatedly peel vertices of residual degree > t: removal can only
	// decrease degrees, so one pass per round until fixpoint.
	for {
		peeled := res.RemoveAtLeast(t + 1)
		if len(peeled) == 0 {
			break
		}
		k.Forced = append(k.Forced, peeled...)
	}
	live := res.LiveEdges()
	if len(live) > t*t {
		k.Overflow = true
		live = live[:t*t+1]
	}
	k.Residual = live
	return k
}

// Size returns the paper's size measure: forced vertices plus residual edges.
func (k *VCKernel) Size() int { return len(k.Forced) + len(k.Residual) }

// ComposeResult is the outcome of combining per-machine kernels.
type ComposeResult struct {
	// Cover is the exact minimum vertex cover of G restricted to covers of
	// size <= t, when Exact is true.
	Cover []graph.ID
	// Exact reports whether the composition could certify exactness: no
	// machine overflowed and the solver proved optimality.
	Exact bool
	// LowerBoundExceeded reports that the kernels certify VC(G) > t.
	LowerBoundExceeded bool
}

// ComposeVCKernels combines the k kernels: forced vertices are fixed, the
// residual union is solved exactly with a bounded search tree (feasible
// because the union has O(k·t²) edges and the remaining budget is small).
// If any machine overflowed, the composition reports LowerBoundExceeded.
func ComposeVCKernels(t int, n int, kernels []*VCKernel) *ComposeResult {
	out := &ComposeResult{}
	forcedSet := make(map[graph.ID]bool)
	var residuals [][]graph.Edge
	for _, k := range kernels {
		if k.Overflow {
			out.LowerBoundExceeded = true
		}
		for _, v := range k.Forced {
			forcedSet[v] = true
		}
		residuals = append(residuals, k.Residual)
	}
	if out.LowerBoundExceeded {
		return out
	}
	forced := make([]graph.ID, 0, len(forcedSet))
	for v := range forcedSet {
		forced = append(forced, v)
	}
	if len(forced) > t {
		// More than t forced vertices already certify VC(G) > t.
		out.LowerBoundExceeded = true
		return out
	}
	// Remove edges covered by forced vertices; solve the rest exactly with
	// budget t - |forced|.
	union := graph.UnionEdges(residuals...)
	var open []graph.Edge
	for _, e := range union {
		if !forcedSet[e.U] && !forcedSet[e.V] {
			open = append(open, e)
		}
	}
	open = graph.DedupEdges(open)
	budget := t - len(forced)
	rest, ok := ExactVCBounded(n, open, budget)
	if !ok {
		out.LowerBoundExceeded = true
		return out
	}
	out.Cover = vcover.Dedup(append(forced, rest...))
	out.Exact = true
	return out
}

// ExactVCBounded finds a vertex cover of size <= budget if one exists,
// using the classic O(2^budget * m) bounded search tree: pick an uncovered
// edge, branch on which endpoint joins the cover. Returns (cover, true) on
// success and (nil, false) if no cover of size <= budget exists.
func ExactVCBounded(n int, edges []graph.Edge, budget int) ([]graph.ID, bool) {
	inCover := make([]bool, n)
	var cur []graph.ID
	var solve func(remaining []graph.Edge, budget int) bool
	solve = func(remaining []graph.Edge, budget int) bool {
		// Drop covered edges from the front.
		for len(remaining) > 0 {
			e := remaining[0]
			if inCover[e.U] || inCover[e.V] {
				remaining = remaining[1:]
				continue
			}
			break
		}
		if len(remaining) == 0 {
			return true
		}
		if budget == 0 {
			return false
		}
		e := remaining[0]
		for _, w := range []graph.ID{e.U, e.V} {
			inCover[w] = true
			cur = append(cur, w)
			if solve(remaining[1:], budget-1) {
				return true
			}
			cur = cur[:len(cur)-1]
			inCover[w] = false
		}
		return false
	}
	if !solve(edges, budget) {
		return nil, false
	}
	// Shrink to a minimum cover within the budget by retrying smaller
	// budgets (the search tree finds *a* cover of size <= budget, not
	// necessarily minimum).
	best := append([]graph.ID(nil), cur...)
	for b := len(best) - 1; b >= 0; b-- {
		inCover = make([]bool, n)
		cur = cur[:0]
		if !solve(edges, b) {
			break
		}
		best = append(best[:0:0], cur...)
	}
	return vcover.Dedup(best), true
}
