// Package mapreduce simulates the MapReduce computation model of Karloff,
// Suri and Vassilvitskii (the model the paper targets in Section 1.1) and
// implements both algorithms the paper compares:
//
//   - the paper's coreset algorithm: 2 rounds (1 if the input is already
//     randomly distributed) with k = sqrt(n) machines of memory O~(n*sqrt(n));
//     round 1 randomly redistributes edges, round 2 sends each machine's
//     coreset to a designated machine M which composes the final answer;
//   - the filtering algorithm of Lattanzi et al. [46]: repeatedly sample a
//     memory-sized subgraph, compute a maximal matching, and drop all edges
//     touching matched vertices; ≥ 3 rounds in theory, 6 in the
//     configuration the paper cites, yielding a 2-approximation.
//
// The simulation tracks the model's costs: number of rounds, the maximum
// number of edges resident on any machine in any round, and total shuffle
// volume. Machines within a round run concurrently.
package mapreduce

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

// RunStats are the MapReduce cost measures of one job.
type RunStats struct {
	Rounds         int
	MaxMachineLoad int // max edges resident on one machine in any round
	ShuffleEdges   int // total edges moved between machines across rounds
	Machines       int
}

// note records a load observation.
func (s *RunStats) observeLoad(edges int) {
	if edges > s.MaxMachineLoad {
		s.MaxMachineLoad = edges
	}
}

// DefaultK returns the paper's machine count for MapReduce: ceil(sqrt(n)).
func DefaultK(n int) int {
	k := int(math.Ceil(math.Sqrt(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// CoresetMatchingMR runs the paper's 2-round MapReduce algorithm for
// maximum matching. Round 1: every machine randomly re-partitions its
// (arbitrary) input chunk across the k machines, realizing a random
// k-partitioning. Round 2: every machine computes its maximum-matching
// coreset and sends it to machine M=0, which composes the answer.
//
// If alreadyRandom is true the input is assumed randomly distributed and
// round 1 is skipped (the paper's 1-round regime).
func CoresetMatchingMR(g *graph.Graph, k int, alreadyRandom bool, seed uint64, workers int) (*matching.Matching, *RunStats) {
	root := rng.New(seed)
	st := &RunStats{Machines: k}
	parts := distribute(g, k, alreadyRandom, root, st)

	// Coreset round: machines compute coresets in parallel, send to M.
	st.Rounds++
	coresets := core.MapParts(parts, workers, func(i int, part []graph.Edge) []graph.Edge {
		return core.MatchingCoreset(g.N, part)
	})
	atM := 0
	for _, cs := range coresets {
		atM += len(cs)
		st.ShuffleEdges += len(cs)
	}
	st.observeLoad(atM)
	return core.ComposeMatching(g.N, coresets), st
}

// CoresetVCMR runs the paper's 2-round MapReduce algorithm for vertex
// cover, mirroring CoresetMatchingMR with VC-Coreset summaries.
func CoresetVCMR(g *graph.Graph, k int, alreadyRandom bool, seed uint64, workers int) ([]graph.ID, *RunStats) {
	root := rng.New(seed)
	st := &RunStats{Machines: k}
	parts := distribute(g, k, alreadyRandom, root, st)

	st.Rounds++
	coresets := core.MapParts(parts, workers, func(i int, part []graph.Edge) *core.VCCoreset {
		return core.ComputeVCCoreset(g.N, k, part)
	})
	atM := 0
	for _, cs := range coresets {
		atM += len(cs.Residual) + len(cs.Fixed)
		st.ShuffleEdges += len(cs.Residual) + len(cs.Fixed)
	}
	st.observeLoad(atM)
	return core.ComposeVC(g.N, coresets), st
}

// distribute performs round 1 (random redistribution) unless the input is
// already randomly distributed, and returns the per-machine edge sets.
func distribute(g *graph.Graph, k int, alreadyRandom bool, root *rng.RNG, st *RunStats) [][]graph.Edge {
	if alreadyRandom {
		// The random k-partitioning exists by assumption; materialize it
		// without charging a round or shuffle.
		parts := partition.RandomK(g.Edges, k, root.Split(0))
		for _, p := range parts {
			st.observeLoad(len(p))
		}
		return parts
	}
	// Adversarial initial placement: contiguous chunks.
	st.Rounds++
	chunks := partition.AdversarialChunks(g.Edges, k)
	parts := make([][]graph.Edge, k)
	for i, chunk := range chunks {
		st.observeLoad(len(chunk))
		// Machine i deals its chunk uniformly across all k machines.
		r := root.Split(uint64(i) + 1)
		for _, e := range chunk {
			j := r.Intn(k)
			parts[j] = append(parts[j], e)
			st.ShuffleEdges++
		}
	}
	for _, p := range parts {
		st.observeLoad(len(p))
	}
	return parts
}

// FilteringMatching runs the Lattanzi et al. [46] filtering algorithm for
// maximal matching with per-machine memory memLimit (in edges): in each
// round the surviving edges are subsampled to fit on one machine, a maximal
// matching of the sample is computed centrally and all edges touching
// matched vertices are filtered out; when the survivors fit in memory a
// final maximal matching round finishes. Returns a maximal matching of G
// (2-approximation) and the cost stats.
func FilteringMatching(g *graph.Graph, memLimit int, seed uint64) (*matching.Matching, *RunStats) {
	if memLimit < 1 {
		panic("mapreduce: FilteringMatching with memLimit < 1")
	}
	root := rng.New(seed)
	st := &RunStats{Machines: DefaultK(g.N)}
	m := matching.NewEmpty(g.N)
	alive := g.Edges
	round := 0
	for len(alive) > memLimit {
		round++
		r := root.Split(uint64(round))
		p := float64(memLimit) / float64(2*len(alive))
		var sample []graph.Edge
		for _, e := range alive {
			if r.Bernoulli(p) {
				sample = append(sample, e)
			}
		}
		st.Rounds++
		st.ShuffleEdges += len(sample)
		st.observeLoad(len(sample))
		// Central machine: extend m maximally within the sample. Matched
		// vertices then filter the remaining edge set.
		m.AugmentGreedily(sample)
		filtered := alive[:0:0]
		for _, e := range alive {
			if !m.Covers(e.U) && !m.Covers(e.V) {
				filtered = append(filtered, e)
			}
		}
		alive = filtered
	}
	// Final round: survivors fit on one machine.
	st.Rounds++
	st.ShuffleEdges += len(alive)
	st.observeLoad(len(alive))
	m.AugmentGreedily(alive)
	return m, st
}

// FilteringVC derives the 2-approximate vertex cover from the filtering
// maximal matching (endpoints of matched edges), with the same costs.
func FilteringVC(g *graph.Graph, memLimit int, seed uint64) ([]graph.ID, *RunStats) {
	m, st := FilteringMatching(g, memLimit, seed)
	var cover []graph.ID
	for _, e := range m.Edges() {
		cover = append(cover, e.U, e.V)
	}
	return vcover.Dedup(cover), st
}
