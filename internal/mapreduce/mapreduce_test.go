package mapreduce

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func TestDefaultK(t *testing.T) {
	if DefaultK(100) != 10 {
		t.Fatalf("DefaultK(100) = %d", DefaultK(100))
	}
	if DefaultK(0) != 1 {
		t.Fatal("DefaultK(0) != 1")
	}
	if DefaultK(101) != 11 {
		t.Fatalf("DefaultK(101) = %d", DefaultK(101))
	}
}

func TestCoresetMatchingMRTwoRounds(t *testing.T) {
	r := rng.New(1)
	g := gen.GNP(900, 0.01, r)
	k := DefaultK(g.N)
	m, st := CoresetMatchingMR(g, k, false, 7, 0)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", st.Rounds)
	}
	opt := matching.Maximum(g.N, g.Edges).Size()
	if float64(opt)/float64(m.Size()) > 3 {
		t.Fatalf("MR matching ratio too large: opt=%d got=%d", opt, m.Size())
	}
	if st.MaxMachineLoad <= 0 || st.ShuffleEdges <= 0 {
		t.Fatal("cost accounting missing")
	}
}

func TestCoresetMatchingMROneRound(t *testing.T) {
	r := rng.New(3)
	g := gen.GNP(900, 0.01, r)
	m, st := CoresetMatchingMR(g, 30, true, 11, 0)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 when input already random", st.Rounds)
	}
}

func TestCoresetVCMR(t *testing.T) {
	r := rng.New(5)
	g := gen.GNP(800, 0.02, r)
	cover, st := CoresetVCMR(g, DefaultK(g.N), false, 13, 0)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", st.Rounds)
	}
}

func TestCoresetMRMemoryWithinPaperBound(t *testing.T) {
	// Paper: memory O~(n*sqrt(n)) per machine with k = sqrt(n). Machine M
	// receives k coresets of <= n/2 edges each: <= n*sqrt(n)/2.
	r := rng.New(7)
	g := gen.GNP(1600, 0.01, r)
	k := DefaultK(g.N)
	_, st := CoresetMatchingMR(g, k, false, 17, 0)
	bound := g.N * k // very generous O~(n*sqrt(n))
	if st.MaxMachineLoad > bound {
		t.Fatalf("machine load %d exceeds n*sqrt(n) = %d", st.MaxMachineLoad, bound)
	}
}

func TestFilteringMatchingIsMaximal(t *testing.T) {
	r := rng.New(9)
	g := gen.GNP(500, 0.05, r)
	m, st := FilteringMatching(g, 600, 19)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
	if !matching.IsMaximal(g.Edges, m) {
		t.Fatal("filtering result not maximal")
	}
	if st.Rounds < 2 {
		t.Fatalf("filtering used %d rounds on an out-of-memory instance", st.Rounds)
	}
	// Maximal matching is a 2-approximation.
	opt := matching.Maximum(g.N, g.Edges).Size()
	if m.Size()*2 < opt {
		t.Fatalf("filtering below 1/2 of optimum: %d vs %d", m.Size(), opt)
	}
}

func TestFilteringSingleRoundWhenFits(t *testing.T) {
	r := rng.New(11)
	g := gen.GNP(100, 0.05, r)
	_, st := FilteringMatching(g, g.M()+1, 23)
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 when everything fits", st.Rounds)
	}
}

func TestFilteringVCFeasible(t *testing.T) {
	r := rng.New(13)
	g := gen.GNP(400, 0.04, r)
	cover, _ := FilteringVC(g, 500, 29)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		t.Fatal(err)
	}
}

func TestFilteringRespectsMemory(t *testing.T) {
	r := rng.New(17)
	g := gen.GNP(600, 0.05, r)
	const mem = 400
	_, st := FilteringMatching(g, mem, 31)
	// Sampled loads concentrate around mem/2; assert they never blow past
	// the cap by more than 2x (Chernoff slack).
	if st.MaxMachineLoad > 2*mem {
		t.Fatalf("central machine load %d far exceeds memory %d", st.MaxMachineLoad, mem)
	}
}

// TestRoundComparison reproduces the paper's MapReduce claim: the coreset
// algorithm needs 2 rounds where filtering needs at least 3 under the same
// memory budget.
func TestRoundComparison(t *testing.T) {
	r := rng.New(19)
	g := gen.GNP(2000, 0.05, r) // ~100k edges
	k := DefaultK(g.N)
	_, coresetStats := CoresetMatchingMR(g, k, false, 37, 0)
	mem := g.N // tight memory: forces filtering to iterate
	_, filterStats := FilteringMatching(g, mem, 37)
	t.Logf("coreset rounds=%d, filtering rounds=%d (mem=%d)", coresetStats.Rounds, filterStats.Rounds, mem)
	if coresetStats.Rounds != 2 {
		t.Fatalf("coreset rounds = %d", coresetStats.Rounds)
	}
	if filterStats.Rounds < 3 {
		t.Fatalf("filtering rounds = %d, expected >= 3 in low-memory regime", filterStats.Rounds)
	}
}

func TestFilteringPanicsOnBadMemory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on memLimit < 1")
		}
	}()
	FilteringMatching(gen.GNP(10, 0.5, rng.New(1)), 0, 1)
}
