package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// Workers is the job worker pool size (default 4).
	Workers int
	// QueueDepth is the pending-job queue length; a full queue returns
	// HTTP 503 (default 64).
	QueueDepth int
	// MaxGraphs caps resident registry entries; idle graphs beyond it are
	// evicted LRU-first (default 64, < 0 for unlimited).
	MaxGraphs int
	// CacheSize caps cached run reports (default 256, < 0 for unlimited).
	CacheSize int
	// MaxUploadBytes caps a POST /v1/graphs body (default 256 MiB).
	MaxUploadBytes int64
	// JobRetention is how many terminal jobs stay pollable before the
	// oldest are pruned (default 4096, < 0 to keep everything).
	JobRetention int
	// ClusterWorkers lists cluster worker addresses (host:port). When
	// non-empty, jobs with mode "cluster" are dispatched to them (k must
	// equal the fleet size); when empty such jobs are rejected.
	ClusterWorkers []string
	// ClusterSpares lists standby worker addresses round replay may
	// substitute for a failed fleet member.
	ClusterSpares []string
	// ClusterMaxRetries is the per-machine, per-round replay budget for
	// cluster jobs. 0 means the service default (cluster.DefaultMaxRetries);
	// negative disables replay, restoring fail-fast cluster jobs.
	ClusterMaxRetries int
	// Tracer receives structured run-trace events (job spans with run IDs).
	// Nil disables tracing; see internal/obs.
	Tracer *obs.Tracer
	// DatasetDir is the root of a dataset store (coresetd -datasets): POST
	// /v1/graphs with {"dataset": NAME} registers DatasetDir/NAME. Empty
	// rejects dataset registrations.
	DatasetDir string
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxGraphs == 0 {
		c.MaxGraphs = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.JobRetention == 0 {
		c.JobRetention = 4096
	}
	return c
}

// Server wires the registry, job manager and result cache behind the HTTP
// API. It is an http.Handler; the caller owns the http.Server (and so the
// listener lifecycle), and calls Shutdown to drain the job pool.
type Server struct {
	cfg      Config
	reg      *Registry
	mgr      *Manager
	cache    *Cache
	store    *dataset.Store // nil without Config.DatasetDir
	mux      *http.ServeMux
	start    time.Time
	metrics  *obs.Registry
	ins      *Instruments
	draining atomic.Bool
}

// New builds a ready-to-serve service.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.MaxGraphs),
		cache:   NewCache(cfg.CacheSize),
		start:   time.Now(),
		metrics: obs.NewRegistry(),
	}
	if cfg.DatasetDir != "" {
		// OpenStore only fails on an uncreatable root; surface that on the
		// first registration attempt rather than turning New fallible.
		s.store, _ = dataset.OpenStore(cfg.DatasetDir)
	}
	s.ins = newInstruments(s.metrics, cfg.Tracer)
	s.mgr = NewManager(s.reg, s.cache, cfg.Workers, cfg.QueueDepth, cfg.JobRetention, ClusterConfig{
		Workers:    cfg.ClusterWorkers,
		Spares:     cfg.ClusterSpares,
		MaxRetries: cfg.ClusterMaxRetries,
	}, s.ins)
	s.registerStatFuncs()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/graphs", s.handleCreateGraph)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	return s
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain flips /healthz to "draining" (HTTP 503) without stopping any
// work. Call it before http.Server.Shutdown so load balancers stop routing
// new traffic while in-flight requests and queued jobs finish.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown drains the job manager; see Manager.Shutdown. Call it after the
// http.Server has stopped accepting requests. It implies BeginDrain, so a
// caller that skipped the explicit drain step still reports draining on any
// health probe that races the listener teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	return s.mgr.Shutdown(ctx)
}

// Manager exposes the job manager (load tools and tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Registry exposes the graph registry (tests).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server's metrics registry — cmd/coresetd mounts it on
// the admin listener next to net/http/pprof.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleCreateGraph ingests a graph. A JSON body carries a
// CreateGraphRequest (generator spec or inline edge list); any other
// content type is treated as raw edge-list text with the ID taken from the
// ?id= query parameter.
func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))

	// Non-JSON bodies are raw edge-list text, parsed incrementally straight
	// off the wire — the body is never buffered whole.
	if ct != "application/json" {
		s.addEdgeList(w, r.URL.Query().Get("id"), r.Body)
		return
	}

	var req CreateGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	set := 0
	for _, has := range []bool{req.Gen != nil, req.EdgeList != "", req.Dataset != ""} {
		if has {
			set++
		}
	}
	switch {
	case set != 1:
		writeErr(w, http.StatusBadRequest, "body must set exactly one of gen, edgeList and dataset")
	case req.Gen != nil:
		s.addSpec(w, req.ID, req.Gen)
	case req.EdgeList != "":
		s.addEdgeList(w, req.ID, strings.NewReader(req.EdgeList))
	default:
		s.addDataset(w, req.ID, req.Dataset)
	}
}

// addDataset registers a dataset from the configured store by name. The ID
// defaults to the dataset name, so `{"dataset": "web"}` registers graph
// "web". The open handle stays with the registry entry for the daemon's
// lifetime; the edges never leave disk here.
func (s *Server) addDataset(w http.ResponseWriter, id, name string) {
	if s.store == nil {
		writeErr(w, http.StatusBadRequest, "this daemon has no dataset store configured (coresetd -datasets)")
		return
	}
	ds, err := s.store.Open(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, "dataset %q: %v", name, err)
		return
	}
	if id == "" {
		id = name
	}
	s.finishAdd(w, func() (GraphInfo, error) { return s.reg.AddDataset(id, ds) })
}

func (s *Server) addEdgeList(w http.ResponseWriter, id string, body io.Reader) {
	g, err := graph.ReadEdgeList(body)
	if err == nil {
		err = g.Validate()
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid edge list: %v", err)
		return
	}
	s.finishAdd(w, func() (GraphInfo, error) { return s.reg.AddGraph(id, g) })
}

func (s *Server) addSpec(w http.ResponseWriter, id string, spec *GenSpec) {
	s.finishAdd(w, func() (GraphInfo, error) { return s.reg.AddSpec(id, spec) })
}

func (s *Server) finishAdd(w http.ResponseWriter, add func() (GraphInfo, error)) {
	info, err := add()
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") {
			code = http.StatusConflict
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	info, ok := s.reg.Info(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Remove(r.PathValue("id")); err != nil {
		code := http.StatusNotFound
		if strings.Contains(err.Error(), "in use") {
			code = http.StatusConflict
		}
		writeErr(w, code, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCreateJob submits a job. Cache hits come back already done (HTTP
// 200); fresh submissions are accepted asynchronously (HTTP 202).
func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	// A job request is a handful of scalars; cap the body so a hostile
	// client cannot make the decoder buffer arbitrary memory.
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req CreateJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	j, err := s.mgr.Submit(req)
	// Submission errors classify strictly: client mistakes (validation
	// failures, a mode this deployment cannot serve, an unknown graph) are
	// 4xx, transient capacity is 503, and anything unrecognized is an
	// internal fault — 500, never blamed on the client.
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownGraph):
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, ErrInvalidRequest), errors.Is(err, ErrNoCluster):
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	v := j.View()
	if v.State == string(JobDone) {
		writeJSON(w, http.StatusOK, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// handleGetJob returns a job, optionally long-polling: ?wait=2s blocks until
// the job reaches a terminal state or the duration (capped at 30s) elapses,
// whichever comes first. Pollers get the job's current view either way.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeErr(w, http.StatusBadRequest, "invalid wait duration %q", waitStr)
			return
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.Done():
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.View())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	up := time.Since(s.start)
	writeJSON(w, http.StatusOK, StatsView{
		UptimeMS:      float64(up.Microseconds()) / 1000,
		UptimeSeconds: up.Seconds(),
		Workers:       s.mgr.Workers(),
		Graphs:        s.reg.Stats(),
		Jobs:          s.mgr.Stats(),
		Cache:         s.cache.Stats(),
	})
}

// handleHealth distinguishes a serving daemon ("ok") from one draining for
// shutdown ("draining", HTTP 503) so load balancers stop routing before the
// listener closes.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
