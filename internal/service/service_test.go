package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// client is a thin typed wrapper over the httptest server.
type client struct {
	t   testing.TB
	srv *httptest.Server
}

func newTestService(t testing.TB, cfg Config) (*Server, *client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, &client{t: t, srv: ts}
}

func (c *client) do(method, path, contentType string, body []byte, out any) int {
	c.t.Helper()
	req, err := http.NewRequest(method, c.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

func (c *client) postJSON(path string, body any, out any) int {
	c.t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	return c.do("POST", path, "application/json", data, out)
}

// runJob submits a job and long-polls it to a terminal state.
func (c *client) runJob(req CreateJobRequest) JobView {
	c.t.Helper()
	var v JobView
	code := c.postJSON("/v1/jobs", req, &v)
	if code != http.StatusAccepted && code != http.StatusOK {
		c.t.Fatalf("POST /v1/jobs: status %d (%+v)", code, v)
	}
	deadline := time.Now().Add(30 * time.Second)
	for v.State == string(JobQueued) || v.State == string(JobRunning) {
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s stuck in state %s", v.ID, v.State)
		}
		if code := c.do("GET", "/v1/jobs/"+v.ID+"?wait=1s", "", nil, &v); code != http.StatusOK {
			c.t.Fatalf("GET job: status %d", code)
		}
	}
	return v
}

func (c *client) stats() StatsView {
	c.t.Helper()
	var st StatsView
	if code := c.do("GET", "/v1/stats", "", nil, &st); code != http.StatusOK {
		c.t.Fatalf("GET /v1/stats: status %d", code)
	}
	return st
}

const path10 = "p 10 9\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\n8 9\n"

// TestEndToEnd is the acceptance flow: upload a graph, run a job, re-query
// the same key and observe that the cached result is identical and came
// from the cache (hit counter, no second pipeline run).
func TestEndToEnd(t *testing.T) {
	for _, task := range []string{TaskMatching, TaskVC} {
		for _, mode := range []string{ModeStream, ModeBatch} {
			t.Run(task+"/"+mode, func(t *testing.T) {
				_, c := newTestService(t, Config{Workers: 2})

				var info GraphInfo
				if code := c.do("POST", "/v1/graphs", "text/plain", []byte(path10), &info); code != http.StatusCreated {
					t.Fatalf("upload: status %d", code)
				}
				if info.N != 10 || info.M != 9 {
					t.Fatalf("uploaded graph: %+v", info)
				}

				req := CreateJobRequest{Graph: info.ID, Task: task, K: 2, Seed: 3, Mode: mode}
				first := c.runJob(req)
				if first.State != string(JobDone) {
					t.Fatalf("first job: %+v", first)
				}
				if first.Cached {
					t.Fatal("first job claims cached")
				}
				if first.Result == nil || first.Result.SolutionSize == 0 {
					t.Fatalf("first job missing result: %+v", first)
				}

				second := c.runJob(req)
				if !second.Cached {
					t.Fatalf("repeat query not served from cache: %+v", second)
				}
				if !reflect.DeepEqual(first.Result, second.Result) {
					t.Fatalf("cached result differs:\n%+v\n%+v", first.Result, second.Result)
				}

				st := c.stats()
				if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
					t.Fatalf("cache counters: %+v", st.Cache)
				}
				if st.Jobs.Done != 2 {
					t.Fatalf("job counters: %+v", st.Jobs)
				}
			})
		}
	}
}

// TestMultiRoundJobs: a rounds >= 1 EDCS job runs the multi-round driver in
// every mode, its report carries the per-round breakdown, batch and stream
// agree (seed parity through the service), and the round cap is part of the
// cache key — the same request repeats from cache, while rounds=0 and
// rounds=1 are distinct entries.
func TestMultiRoundJobs(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	var info GraphInfo
	spec := CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 800, Deg: 30, Seed: 1}}
	if code := c.postJSON("/v1/graphs", spec, &info); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	req := CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: 4, Seed: 7, Beta: 8, Rounds: 3}
	req.Mode = ModeStream
	streamJob := c.runJob(req)
	req.Mode = ModeBatch
	batchJob := c.runJob(req)
	for _, v := range []JobView{streamJob, batchJob} {
		if v.State != string(JobDone) {
			t.Fatalf("job %+v", v)
		}
		r := v.Result
		if r.Rounds != 3 || r.RoundsRun < 2 || len(r.RoundStats) != r.RoundsRun {
			t.Fatalf("missing round breakdown: %+v", r)
		}
	}
	if streamJob.Result.SolutionSize != batchJob.Result.SolutionSize ||
		streamJob.Result.RoundsRun != batchJob.Result.RoundsRun ||
		streamJob.Result.TotalCommBytes != batchJob.Result.TotalCommBytes {
		t.Fatalf("modes disagree:\nstream %+v\nbatch  %+v", streamJob.Result, batchJob.Result)
	}

	// Same request again: cache hit. rounds=0 (single-round) instead: a
	// different key, so a fresh run — whose report has no round breakdown.
	if again := c.runJob(req); !again.Cached {
		t.Fatalf("repeat multi-round query not cached: %+v", again)
	}
	req.Rounds = 0
	single := c.runJob(req)
	if single.Cached {
		t.Fatal("rounds=0 must not share the rounds=3 cache entry")
	}
	if single.Result.RoundsRun != 0 || len(single.Result.RoundStats) != 0 {
		t.Fatalf("single-round report grew round fields: %+v", single.Result)
	}
}

// Batch and stream jobs on the same generator spec must agree with the CLI
// parameter mapping: same spec, same seed, same composed answer per mode.
func TestGeneratorGraphJobs(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	for _, name := range []string{"gnp", "star", "powerlaw"} {
		var info GraphInfo
		spec := CreateGraphRequest{Gen: &GenSpec{Name: name, N: 500, Deg: 6, Seed: 1}}
		if code := c.postJSON("/v1/graphs", spec, &info); code != http.StatusCreated {
			t.Fatalf("%s: create status %d", name, code)
		}
		if info.Source != "gen" || info.M != -1 {
			t.Fatalf("%s: info %+v", name, info)
		}
		stream := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 3, Seed: 7, Mode: ModeStream})
		batch := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 3, Seed: 7, Mode: ModeBatch})
		if stream.State != string(JobDone) || batch.State != string(JobDone) {
			t.Fatalf("%s: states %s / %s (%s %s)", name, stream.State, batch.State, stream.Error, batch.Error)
		}
		if stream.Result.M != batch.Result.M {
			t.Fatalf("%s: modes saw different edge counts: %d vs %d", name, stream.Result.M, batch.Result.M)
		}
	}
}

func TestGraphAPIErrors(t *testing.T) {
	_, c := newTestService(t, Config{})

	var errBody map[string]string
	if code := c.do("POST", "/v1/graphs", "text/plain", []byte("p 2 1\n0 5\n"), &errBody); code != http.StatusBadRequest {
		t.Fatalf("invalid edge list: status %d", code)
	}
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("empty request: status %d", code)
	}
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "nope", N: 5}}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("unknown generator: status %d", code)
	}

	var info GraphInfo
	if code := c.do("POST", "/v1/graphs?id=mine", "text/plain", []byte(path10), &info); code != http.StatusCreated {
		t.Fatalf("named upload: status %d", code)
	}
	if info.ID != "mine" {
		t.Fatalf("named upload got id %q", info.ID)
	}
	if code := c.do("POST", "/v1/graphs?id=mine", "text/plain", []byte(path10), &errBody); code != http.StatusConflict {
		t.Fatalf("duplicate id: status %d", code)
	}
	if code := c.do("GET", "/v1/graphs/nope", "", nil, &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	if code := c.do("DELETE", "/v1/graphs/mine", "", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := c.do("GET", "/v1/graphs/mine", "", nil, &errBody); code != http.StatusNotFound {
		t.Fatalf("deleted graph still visible: status %d", code)
	}
}

func TestJobAPIErrors(t *testing.T) {
	_, c := newTestService(t, Config{})
	var info GraphInfo
	if code := c.do("POST", "/v1/graphs", "text/plain", []byte(path10), &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	var errBody map[string]string
	cases := []struct {
		req  CreateJobRequest
		code int
	}{
		{CreateJobRequest{Graph: "nope", Task: TaskMatching, K: 2}, http.StatusNotFound},
		{CreateJobRequest{Graph: info.ID, Task: "nope", K: 2}, http.StatusBadRequest},
		{CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 0}, http.StatusBadRequest},
		{CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 2, Mode: "warp"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := c.postJSON("/v1/jobs", tc.req, &errBody); code != tc.code {
			t.Fatalf("%+v: status %d, want %d", tc.req, code, tc.code)
		}
	}
	if code := c.do("GET", "/v1/jobs/j-999", "", nil, &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
	if code := c.do("GET", "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
}

// A queued job canceled before any worker picks it up must come back
// canceled, deterministically: the single worker is busy with an earlier
// long job while we cancel.
func TestCancelQueuedJob(t *testing.T) {
	s, c := newTestService(t, Config{Workers: 1})
	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 300000, Deg: 8, Seed: 1}}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	var blocker JobView
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 4, Seed: 1}, &blocker); code != http.StatusAccepted {
		t.Fatalf("blocker: status %d", code)
	}
	var victim JobView
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 4, Seed: 2}, &victim); code != http.StatusAccepted {
		t.Fatalf("victim: status %d", code)
	}
	if code := c.do("DELETE", "/v1/jobs/"+victim.ID, "", nil, &victim); code != http.StatusAccepted {
		t.Fatalf("cancel: status %d", code)
	}

	j, ok := s.Manager().Get(victim.ID)
	if !ok {
		t.Fatal("victim vanished")
	}
	<-j.Done()
	if got := j.State(); got != JobCanceled {
		t.Fatalf("victim state %s, want canceled", got)
	}
}

func TestRegistryEviction(t *testing.T) {
	r := NewRegistry(2)
	for i := 0; i < 3; i++ {
		if _, err := r.AddSpec(fmt.Sprintf("s-%d", i), &GenSpec{Name: "star", N: 10}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Count != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
	if r.Has("s-0") {
		t.Fatal("LRU entry s-0 survived eviction")
	}

	// Pinned entries survive even when they are the LRU choice.
	e, err := r.Acquire("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddSpec("s-3", &GenSpec{Name: "star", N: 10}); err != nil {
		t.Fatal(err)
	}
	if !r.Has("s-1") {
		t.Fatal("pinned entry evicted")
	}
	if err := r.Remove("s-1"); err == nil {
		t.Fatal("removed a pinned entry")
	}
	r.Release(e)
	if err := r.Remove("s-1"); err != nil {
		t.Fatal(err)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	k := func(i int) Key { return Key{Graph: fmt.Sprintf("g-%d", i), Task: TaskMatching, K: 1, Mode: ModeStream} }
	rep := func(i int) *graph.RunReport { return &graph.RunReport{SolutionSize: i} }
	c.Put(k(1), rep(1))
	c.Put(k(2), rep(2))
	if _, ok := c.Get(k(1)); !ok { // bumps k(1) to front
		t.Fatal("k1 missing")
	}
	c.Put(k(3), rep(3)) // evicts k(2)
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("k2 survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("k1 evicted despite recent use")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Submissions beyond the queue depth are rejected with 503, not blocked.
func TestQueueFull(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 300000, Deg: 8, Seed: 1}}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	full := 0
	for i := 0; i < 8; i++ {
		req := CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 4, Seed: uint64(100 + i)}
		var out map[string]any
		if code := c.postJSON("/v1/jobs", req, &out); code == http.StatusServiceUnavailable {
			full++
		}
	}
	if full == 0 {
		t.Fatal("queue never reported full")
	}
}

// TestUploadTooLarge pins the MaxBytesReader wiring.
func TestUploadTooLarge(t *testing.T) {
	_, c := newTestService(t, Config{MaxUploadBytes: 64})
	body := path10 + strings.Repeat("# padding\n", 20)
	var errBody map[string]string
	if code := c.do("POST", "/v1/graphs", "text/plain", []byte(body), &errBody); code != http.StatusBadRequest {
		t.Fatalf("oversized upload: status %d", code)
	}
}

// A graph re-registered under a reused ID must never be served the old
// graph's cached results: the cache key carries the registry generation.
func TestCacheNotReusedAcrossGraphReplacement(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	if code := c.do("POST", "/v1/graphs?id=g", "text/plain", []byte(path10), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	req := CreateJobRequest{Graph: "g", Task: TaskMatching, K: 2, Seed: 3, Mode: ModeStream}
	first := c.runJob(req)
	if first.State != string(JobDone) || first.Result.M != 9 {
		t.Fatalf("first: %+v", first)
	}

	if code := c.do("DELETE", "/v1/graphs/g", "", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	// Re-register a DIFFERENT graph under the same ID: a 4-cycle.
	if code := c.do("POST", "/v1/graphs?id=g", "text/plain", []byte("p 4 4\n0 1\n1 2\n2 3\n0 3\n"), nil); code != http.StatusCreated {
		t.Fatalf("re-upload: status %d", code)
	}
	second := c.runJob(req)
	if second.Cached {
		t.Fatal("replacement graph served the old graph's cached result")
	}
	if second.Result.M != 4 {
		t.Fatalf("second job saw m=%d, want the new graph's 4", second.Result.M)
	}
}

// Adding a graph while every other entry is pinned must never evict the
// entry being added.
func TestEvictionSparesJustAddedEntry(t *testing.T) {
	r := NewRegistry(1)
	if _, err := r.AddSpec("a", &GenSpec{Name: "star", N: 10}); err != nil {
		t.Fatal(err)
	}
	ea, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release(ea)
	if _, err := r.AddSpec("b", &GenSpec{Name: "star", N: 10}); err != nil {
		t.Fatal(err)
	}
	if !r.Has("b") {
		t.Fatal("the just-added entry was evicted")
	}
	if st := r.Stats(); st.Count != 2 {
		t.Fatalf("stats %+v (cap is soft while entries are pinned)", st)
	}
}

// Terminal jobs beyond the retention window are pruned, but the lifetime
// counters in /v1/stats keep counting.
func TestJobRetentionPrunes(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, JobRetention: 2})
	if code := c.do("POST", "/v1/graphs?id=g", "text/plain", []byte(path10), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	var first JobView
	for i := 0; i < 5; i++ {
		v := c.runJob(CreateJobRequest{Graph: "g", Task: TaskMatching, K: 2, Seed: uint64(i)})
		if i == 0 {
			first = v
		}
	}
	if code := c.do("GET", "/v1/jobs/"+first.ID, "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("pruned job still pollable: status %d", code)
	}
	st := c.stats()
	if st.Jobs.Done != 5 || st.Jobs.Submitted != 5 {
		t.Fatalf("lifetime counters lost jobs: %+v", st.Jobs)
	}
}

// Request parameters have hard sanity caps.
func TestRequestCaps(t *testing.T) {
	_, c := newTestService(t, Config{})
	if code := c.do("POST", "/v1/graphs?id=g", "text/plain", []byte(path10), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	var errBody map[string]string
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: "g", Task: TaskMatching, K: MaxJobK + 1}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("oversized k: status %d", code)
	}
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: "g", Task: TaskMatching, K: 2, Batch: MaxJobBatch + 1}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", code)
	}
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "star", N: MaxGraphN + 1}}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("oversized n: status %d", code)
	}
}
