package service

import (
	"container/list"
	"sync"

	"repro/internal/graph"
)

// Key identifies a coreset computation completely: same graph, task,
// machine count, seed and mode means the pipeline is deterministic and the
// composed report is byte-for-byte reusable. That determinism — the batch
// partitioner and the streaming hash sharder are both pure functions of the
// seed — is what makes result caching sound. Graph and Gen together are the
// registry entry's cache scope (Registry.CacheScope): for uploads and
// generator specs that is the ID plus the registry generation, so a
// different graph re-registered under a reused ID can never be served the
// old graph's results; for dataset entries it is the manifest's content
// hash (with Gen pinned to 0), so identity follows the stored bytes and a
// re-registered dataset keeps hitting results already computed for it —
// repeated jobs on the same stored graph never re-parse. Batch is included
// because, while the composed solution is batch-size-invariant, the report's
// telemetry (batches, duration, throughput) is not. Beta is the EDCS degree
// bound and Rounds the multi-round cap (normalize pins both to 0 where they
// do not apply, so they never split the other tasks' keys; Rounds = 0 and
// Rounds = 1 are distinct keys because their reports differ — the latter
// carries the per-round breakdown — even though the composed coresets are
// identical by construction).
type Key struct {
	Graph  string
	Gen    int64
	Task   string
	K      int
	Seed   uint64
	Mode   string
	Batch  int
	Beta   int
	Rounds int
}

// jobKey builds the cache key from a normalized request and the graph's
// cache scope (Registry.CacheScope), which replaces the raw registry ID.
func jobKey(r CreateJobRequest, scope string, gen int64) Key {
	return Key{Graph: scope, Gen: gen, Task: r.Task, K: r.K, Seed: r.Seed, Mode: r.Mode, Batch: r.Batch, Beta: r.Beta, Rounds: r.Rounds}
}

// Cache is an LRU result cache with hit/miss counters. Stored reports are
// treated as immutable by all readers.
type Cache struct {
	mu     sync.Mutex
	cap    int // max entries (<= 0: unbounded)
	ll     *list.List
	byKey  map[Key]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key Key
	rep *graph.RunReport
}

// NewCache returns a cache holding up to cap reports (<= 0: unbounded).
func NewCache(cap int) *Cache {
	return &Cache{cap: cap, ll: list.New(), byKey: make(map[Key]*list.Element)}
}

// Get returns the cached report for k, counting a hit or a miss.
func (c *Cache) Get(k Key) (*graph.RunReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// Put stores a report, evicting the least-recently-used entry beyond cap.
func (c *Cache) Put(k Key, rep *graph.RunReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, rep: rep})
	if c.cap > 0 && c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// Stats returns the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
