package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// buildStoredGraph writes a deterministic GNP graph into root/name as a
// dataset and returns the in-memory original.
func buildStoredGraph(t *testing.T, root, name string, n int, seed uint64) *graph.Graph {
	t.Helper()
	g := gen.GNP(n, 8.0/float64(n), rng.New(seed))
	st, err := dataset.OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := st.Path(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.NewBuilder(dir, dataset.IngestOptions{SegmentEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(g.Edges...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(g.N, name, 0, 0); err != nil {
		t.Fatal(err)
	}
	return g
}

// edgeListBytes renders g in the cmd/coreset text format for uploads.
func edgeListBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "p %d %d\n", g.N, g.M())
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
	}
	return []byte(sb.String())
}

// datasetHandle digs the registered entry's dataset handle out of the
// registry, for asserting on its SegmentReads counter.
func datasetHandle(t *testing.T, s *Server, id string) *dataset.Dataset {
	t.Helper()
	e, err := s.reg.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	defer s.reg.Release(e)
	if e.DS == nil {
		t.Fatalf("graph %q is not dataset-backed", id)
	}
	return e.DS
}

// TestDatasetRegisterAndJob: registering a stored dataset and running jobs
// against it must agree with the same edges uploaded in-memory, in both
// stream and batch modes.
func TestDatasetRegisterAndJob(t *testing.T) {
	root := t.TempDir()
	g := buildStoredGraph(t, root, "web", 400, 3)
	_, c := newTestService(t, Config{DatasetDir: root})

	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Dataset: "web"}, &info); code != http.StatusCreated {
		t.Fatalf("register dataset: status %d", code)
	}
	if info.ID != "web" || info.Source != "dataset" || info.Hash == "" {
		t.Fatalf("info = %+v, want id web, source dataset, a content hash", info)
	}
	if info.N != g.N || info.M != g.M() {
		t.Fatalf("info shape %d/%d, want %d/%d", info.N, info.M, g.N, g.M())
	}

	// The in-memory oracle: the same graph uploaded as an edge list.
	var up GraphInfo
	if code := c.do("POST", "/v1/graphs?id=oracle", "text/plain", edgeListBytes(t, g), &up); code != http.StatusCreated {
		t.Fatalf("upload oracle: status %d", code)
	}
	for _, mode := range []string{ModeStream, ModeBatch} {
		got := c.runJob(CreateJobRequest{Graph: "web", Task: TaskMatching, K: 3, Seed: 7, Mode: mode})
		want := c.runJob(CreateJobRequest{Graph: "oracle", Task: TaskMatching, K: 3, Seed: 7, Mode: mode})
		if got.State != string(JobDone) {
			t.Fatalf("%s: dataset job failed: %s", mode, got.Error)
		}
		if got.Result.SolutionSize != want.Result.SolutionSize {
			t.Fatalf("%s: dataset job solution %d, in-memory %d", mode, got.Result.SolutionSize, want.Result.SolutionSize)
		}
	}

	// Unknown dataset names and daemons without a store reject cleanly.
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Dataset: "missing"}, nil); code != http.StatusNotFound {
		t.Fatalf("missing dataset: status %d, want 404", code)
	}
	_, noStore := newTestService(t, Config{})
	if code := noStore.postJSON("/v1/graphs", CreateGraphRequest{Dataset: "web"}, nil); code != http.StatusBadRequest {
		t.Fatalf("dataset without a store: status %d, want 400", code)
	}
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Dataset: "web", EdgeList: "0 1\n"}, nil); code != http.StatusBadRequest {
		t.Fatalf("dataset+edgeList: status %d, want 400", code)
	}
}

// TestDatasetCacheHitZeroReparse pins the acceptance criterion: a repeated
// job on a registered dataset is served from the cache with ZERO re-parse —
// the dataset's segment-read counter must not move for the cached job. And
// because the cache key is the manifest's content hash, re-registering the
// same bytes under a different ID keeps hitting the same cached results.
func TestDatasetCacheHitZeroReparse(t *testing.T) {
	root := t.TempDir()
	buildStoredGraph(t, root, "web", 300, 5)
	s, c := newTestService(t, Config{DatasetDir: root})
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Dataset: "web"}, nil); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	ds := datasetHandle(t, s, "web")

	req := CreateJobRequest{Graph: "web", Task: TaskMatching, K: 2, Seed: 9, Mode: ModeStream}
	first := c.runJob(req)
	if first.State != string(JobDone) || first.Cached {
		t.Fatalf("first job: state %s cached %v", first.State, first.Cached)
	}
	reads := ds.SegmentReads()
	if reads == 0 {
		t.Fatal("first job did not read the dataset — the test is not testing anything")
	}

	second := c.runJob(req)
	if !second.Cached {
		t.Fatal("repeated job was not served from the cache")
	}
	if got := ds.SegmentReads(); got != reads {
		t.Fatalf("cached job read the dataset: %d segment reads, was %d", got, reads)
	}
	if second.Result.SolutionSize != first.Result.SolutionSize {
		t.Fatal("cached result differs from the original")
	}

	// Same bytes, different registration: still a cache hit, still no reads.
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{ID: "web2", Dataset: "web"}, nil); code != http.StatusCreated {
		t.Fatalf("re-register: status %d", code)
	}
	req2 := req
	req2.Graph = "web2"
	third := c.runJob(req2)
	if !third.Cached {
		t.Fatal("same-bytes dataset under a new ID missed the cache")
	}
	if got := ds.SegmentReads(); got != reads {
		t.Fatalf("hash-keyed cache hit still read the dataset: %d reads, was %d", got, reads)
	}
}

// TestRegistryEvictionVsDatasetPins is the satellite coverage: an entry
// backing an in-flight job (Acquired) is never evicted no matter how stale,
// and LRU eviction picks the oldest unpinned entry instead.
func TestRegistryEvictionVsDatasetPins(t *testing.T) {
	root := t.TempDir()
	buildStoredGraph(t, root, "pinned", 100, 1)
	buildStoredGraph(t, root, "idle", 100, 2)
	st, err := dataset.OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	open := func(name string) *dataset.Dataset {
		d, err := st.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}

	reg := NewRegistry(2)
	if _, err := reg.AddDataset("pinned", open("pinned")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddDataset("idle", open("idle")); err != nil {
		t.Fatal(err)
	}
	// Pin "pinned" as an in-flight job would, then touch "idle" so "pinned"
	// becomes the least-recently-used entry — the LRU victim candidate.
	e, err := reg.Acquire("pinned")
	if err != nil {
		t.Fatal(err)
	}
	reg.Release(mustEntry(t, reg, "idle"))

	// Push past the cap: the zero-ref "idle" must go, the pinned entry stays
	// even though it is least-recently-used.
	if _, err := reg.AddSpec("fresh", &GenSpec{Name: "gnp", N: 100, Deg: 4}); err != nil {
		t.Fatal(err)
	}
	if !reg.Has("pinned") {
		t.Fatal("pinned dataset entry was evicted while a job held it")
	}
	if reg.Has("idle") {
		t.Fatal("LRU did not evict the idle entry")
	}

	// Released and stale, the dataset entry becomes evictable like any other.
	reg.Release(e)
	if _, err := reg.AddSpec("fresh2", &GenSpec{Name: "gnp", N: 100, Deg: 4}); err != nil {
		t.Fatal(err)
	}
	if reg.Has("pinned") {
		t.Fatal("released LRU dataset entry survived eviction")
	}

	// Cache scope sanity: dataset entries key by hash, others by ID+gen.
	sF, gF, _ := reg.CacheScope("fresh2")
	if sF != "fresh2" || gF == 0 {
		t.Fatalf("spec scope = (%q, %d), want the ID with a nonzero generation", sF, gF)
	}
	buildStoredGraph(t, root, "other", 120, 9)
	if _, err := reg.AddDataset("again", open("pinned")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddDataset("other", open("other")); err != nil {
		t.Fatal(err)
	}
	sA, gA, _ := reg.CacheScope("again")
	sO, _, _ := reg.CacheScope("other")
	if gA != 0 || !strings.HasPrefix(sA, "ds:") {
		t.Fatalf("dataset scope = (%q, %d), want a ds: hash with gen 0", sA, gA)
	}
	if sA == sO {
		t.Fatal("different datasets share a cache scope")
	}
}

func mustEntry(t *testing.T, reg *Registry, id string) *GraphEntry {
	t.Helper()
	e, err := reg.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
