package service

import (
	"time"

	"repro/internal/obs"
	"repro/internal/task"
)

// Metric names the service exposes at GET /metrics. Everything here is
// rendered from the same structures /v1/stats reads — the counters are the
// monotonic lifetime totals (they survive job-retention pruning), the gauges
// are instantaneous reads of queue and registry state.
const (
	MetricJobDuration   = "service_job_duration_seconds"
	MetricJobsTotal     = "service_jobs_total"
	MetricJobsInflight  = "service_jobs_inflight"
	MetricQueueDepth    = "service_queue_depth"
	MetricJobsSubmitted = "service_jobs_submitted_total"
	MetricJobsDone      = "service_jobs_done_total"
	MetricJobsFailed    = "service_jobs_failed_total"
	MetricJobsCanceled  = "service_jobs_canceled_total"
	MetricCacheHits     = "service_cache_hits_total"
	MetricCacheMisses   = "service_cache_misses_total"
	MetricCacheEntries  = "service_cache_entries"
	MetricGraphs        = "service_graphs_resident"
	MetricGraphBytes    = "service_graph_bytes"
	MetricGraphAdds     = "service_graph_adds_total"
	MetricGraphEvicted  = "service_graph_evictions_total"
	MetricUptime        = "service_uptime_seconds"
)

// Instruments bundles the collectors the job pipeline writes to directly plus
// the Sink the cluster and rounds layers report through. A nil *Instruments
// is valid and silent, so Manager never nil-checks it mid-loop.
type Instruments struct {
	reg    *obs.Registry
	sink   obs.Sink
	tracer *obs.Tracer

	jobDur    *obs.HistogramVec // label values: task, mode
	jobsTotal *obs.CounterVec   // label values: task
	inflight  *obs.Gauge
}

// newInstruments creates the write-side collectors; the function-backed
// metrics over existing stats structures are registered later by
// registerStatFuncs, once the structures exist.
func newInstruments(reg *obs.Registry, tracer *obs.Tracer) *Instruments {
	ins := &Instruments{
		reg:    reg,
		sink:   obs.NewRegistrySink(reg),
		tracer: tracer,
		jobDur: reg.HistogramVec(MetricJobDuration,
			"Wall-clock seconds per executed job (cache hits never reach the pipeline).",
			nil, "task", "mode"),
		jobsTotal: reg.CounterVec(MetricJobsTotal,
			"Jobs accepted per task (lifetime, cache hits included).", "task"),
		inflight: reg.Gauge(MetricJobsInflight, "Jobs currently executing on the worker pool."),
	}
	// Pre-touch one child per registered task so every task renders a
	// zero-valued series from the first scrape. The label values come from
	// the task registry — registering a new task is the only step needed
	// for it to appear here.
	for _, name := range task.Names() {
		ins.jobsTotal.With(name).Add(0)
	}
	return ins
}

// observeJob records one executed job's latency.
func (ins *Instruments) observeJob(task, mode string, d time.Duration) {
	if ins != nil {
		ins.jobDur.With(task, mode).Observe(d.Seconds())
	}
}

// noteJob counts one accepted job against its task's series.
func (ins *Instruments) noteJob(task string) {
	if ins != nil {
		ins.jobsTotal.With(task).Inc()
	}
}

func (ins *Instruments) jobStarted() {
	if ins != nil {
		ins.inflight.Inc()
	}
}

func (ins *Instruments) jobFinished() {
	if ins != nil {
		ins.inflight.Dec()
	}
}

// eventSink returns the Sink the cluster and rounds runtimes report through
// (nil when instrumentation is off — library code stays silent).
func (ins *Instruments) eventSink() obs.Sink {
	if ins == nil {
		return nil
	}
	return ins.sink
}

func (ins *Instruments) trace() *obs.Tracer {
	if ins == nil {
		return nil
	}
	return ins.tracer
}

// registerStatFuncs exposes the server's existing stats structures as
// function-backed metrics, read at scrape time. The cache hit/miss and
// lifetime job counters are genuinely monotonic (Cache never resets its
// counters; Manager's terminal totals survive retention pruning), which is
// what lets them carry the _total contract here while /v1/stats keeps
// serving the same numbers as point-in-time JSON.
func (s *Server) registerStatFuncs() {
	reg := s.metrics
	reg.GaugeFunc(MetricUptime, "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc(MetricQueueDepth, "Jobs waiting in the bounded submission queue.",
		func() float64 { return float64(len(s.mgr.queue)) })

	reg.CounterFunc(MetricJobsSubmitted, "Jobs accepted by POST /v1/jobs (including cache hits).",
		func() float64 { s, _, _, _ := s.mgr.lifetime(); return float64(s) })
	reg.CounterFunc(MetricJobsDone, "Jobs finished successfully (lifetime).",
		func() float64 { _, d, _, _ := s.mgr.lifetime(); return float64(d) })
	reg.CounterFunc(MetricJobsFailed, "Jobs finished in error (lifetime).",
		func() float64 { _, _, f, _ := s.mgr.lifetime(); return float64(f) })
	reg.CounterFunc(MetricJobsCanceled, "Jobs canceled before completion (lifetime).",
		func() float64 { _, _, _, c := s.mgr.lifetime(); return float64(c) })

	reg.CounterFunc(MetricCacheHits, "Result-cache hits (lifetime).",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc(MetricCacheMisses, "Result-cache misses (lifetime).",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.GaugeFunc(MetricCacheEntries, "Reports currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	reg.GaugeFunc(MetricGraphs, "Graphs currently resident in the registry.",
		func() float64 { return float64(s.reg.Stats().Count) })
	reg.GaugeFunc(MetricGraphBytes, "Approximate bytes of resident graph data.",
		func() float64 { return float64(s.reg.Stats().Bytes) })
	reg.CounterFunc(MetricGraphAdds, "Graphs ever registered (lifetime).",
		func() float64 { return float64(s.reg.Stats().Adds) })
	reg.CounterFunc(MetricGraphEvicted, "Idle graphs evicted beyond the resident cap (lifetime).",
		func() float64 { return float64(s.reg.Stats().Evictions) })
}
