package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/stream"
	"repro/internal/task"
)

// Sentinel errors Submit maps to HTTP statuses.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: shutting down")
	ErrUnknownGraph = errors.New("service: unknown graph")
	// ErrNoCluster rejects mode "cluster" jobs on a daemon started without
	// a worker fleet (coresetd -cluster).
	ErrNoCluster = errors.New("service: no cluster workers configured")
)

// JobState is a job's lifecycle position. Transitions are
// queued → running → {done, failed, canceled}; a queued job canceled before
// a worker picks it up goes straight to canceled.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one coreset computation tracked by the manager. All mutable state
// is behind mu; done is closed exactly once when the job reaches a terminal
// state, which is what GET /v1/jobs/{id}?wait= blocks on.
type Job struct {
	ID  string
	Req CreateJobRequest
	key Key // cache key, pinned at submission (includes the graph generation)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// runID is the job's trace run ID, set by the executing worker goroutine
	// before execute runs; cluster jobs ship it to the worker fleet so their
	// spans join the job's trace stream.
	runID string

	mu     sync.Mutex
	state  JobState
	cached bool
	err    error
	result *graph.RunReport
}

// Cancel requests cancellation: a queued job is dropped when dequeued, a
// running streaming job stops at the next batch boundary. Safe to call in
// any state, any number of times.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// View returns the API representation of the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, State: string(j.state), Cached: j.cached, Request: j.Req, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

// finish moves the job to its terminal state and releases waiters.
func (j *Job) finish(rep *graph.RunReport, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state, j.result = JobDone, rep
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state, j.err = JobCanceled, err
	default:
		j.state, j.err = JobFailed, err
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources in every path
	close(j.done)
}

// Manager runs coreset jobs on a bounded worker pool fed by a bounded
// queue. Submission is admission-controlled (a full queue rejects rather
// than blocks), results of successful runs are published to the cache, and
// Shutdown drains: no new submissions, every already-accepted job runs (or
// observes its cancellation), and all workers exit before Shutdown returns.
type Manager struct {
	reg       *Registry
	cache     *Cache
	queue     chan *Job
	workers   int
	retention int
	// cluster configures the worker fleet mode "cluster" jobs dispatch to
	// (immutable after construction; an empty fleet means cluster jobs are
	// rejected).
	cluster ClusterConfig
	// ins carries the metrics collectors and tracer the worker loop writes
	// to; nil (the zero-instrumentation default in library tests) is valid.
	ins *Instruments
	wg  sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	jobs      map[string]*Job
	terminal  []string // terminal job IDs, oldest first (retention FIFO)
	seq       int
	closed    bool
	submitted int64
	// byTask counts submissions per task name (cache hits included). Keys
	// are seeded from the task registry at construction so every registered
	// task reports a zero-valued series from startup.
	byTask map[string]int64
	// Cumulative terminal-state counters: they survive retention pruning,
	// so /v1/stats keeps honest lifetime totals.
	nDone, nFailed, nCanceled int64
}

// ClusterConfig configures the worker fleet mode "cluster" jobs dispatch
// to. Zero MaxRetries means the service default (cluster.DefaultMaxRetries
// — a daemon-dispatched job rides out a transient worker loss and reports
// the retries instead of failing); negative disables replay entirely.
type ClusterConfig struct {
	Workers    []string
	Spares     []string
	MaxRetries int
}

// maxRetries resolves the service-level retry default.
func (c ClusterConfig) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return cluster.DefaultMaxRetries
	}
	return c.MaxRetries
}

// NewManager starts workers goroutines consuming a queue of queueDepth
// pending jobs. The most recent `retention` terminal jobs stay pollable;
// older ones are pruned so a long-running daemon's memory stays bounded
// (<= 0: keep everything). clusterCfg's fleet, when non-empty, is what
// mode "cluster" jobs run against. ins (nil for none) receives job latency
// and in-flight instrumentation and supplies the event sink threaded into
// cluster and rounds runs.
func NewManager(reg *Registry, cache *Cache, workers, queueDepth, retention int, clusterCfg ClusterConfig, ins *Instruments) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		reg:       reg,
		cache:     cache,
		queue:     make(chan *Job, queueDepth),
		workers:   workers,
		retention: retention,
		cluster: ClusterConfig{
			Workers:    append([]string(nil), clusterCfg.Workers...),
			Spares:     append([]string(nil), clusterCfg.Spares...),
			MaxRetries: clusterCfg.MaxRetries,
		},
		ins:        ins,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		byTask:     make(map[string]int64, len(task.Names())),
	}
	for _, name := range task.Names() {
		m.byTask[name] = 0
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Workers returns the pool size.
func (m *Manager) Workers() int { return m.workers }

// Submit validates and enqueues a job. On a cache hit the returned job is
// already done, carries the cached report, and never touches the queue — the
// service's core promise: a repeated query re-runs nothing.
func (m *Manager) Submit(req CreateJobRequest) (*Job, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	if req.Mode == ModeCluster {
		if len(m.cluster.Workers) == 0 {
			return nil, ErrNoCluster
		}
		// One machine per worker address: the request's k must name the
		// fleet size, or the cache key would lie about the partitioning.
		if req.K != len(m.cluster.Workers) {
			return nil, badRequestf("cluster mode requires k = %d (the fleet size), got %d",
				len(m.cluster.Workers), req.K)
		}
	}
	scope, gen, ok := m.reg.CacheScope(req.Graph)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, req.Graph)
	}
	key := jobKey(req, scope, gen)
	rep, hit := m.cache.Get(key)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.seq++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:     fmt.Sprintf("j-%d", m.seq),
		Req:    req,
		key:    key,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  JobQueued,
	}
	if hit {
		j.state, j.cached, j.result = JobDone, true, rep
		cancel()
		close(j.done)
		m.jobs[j.ID] = j
		m.submitted++
		m.byTask[req.Task]++
		m.ins.noteJob(req.Task)
		m.noteTerminalLocked(j)
		return j, nil
	}
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.submitted++
	m.byTask[req.Task]++
	m.ins.noteJob(req.Task)
	return j, nil
}

// noteTerminalLocked records a terminal transition: bump the lifetime
// counter and prune the oldest terminal jobs beyond the retention window.
func (m *Manager) noteTerminalLocked(j *Job) {
	switch j.State() {
	case JobDone:
		m.nDone++
	case JobFailed:
		m.nFailed++
	case JobCanceled:
		m.nCanceled++
	}
	m.terminal = append(m.terminal, j.ID)
	if m.retention <= 0 {
		return
	}
	for len(m.terminal) > m.retention {
		delete(m.jobs, m.terminal[0])
		m.terminal = m.terminal[1:]
	}
}

// Get returns a tracked job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		if j.ctx.Err() != nil {
			j.finish(nil, j.ctx.Err())
		} else {
			m.ins.jobStarted()
			j.setRunning()
			j.runID = obs.NewRunID()
			tr := m.ins.trace().WithRun(j.runID)
			end := tr.Span("job", "job", j.ID, "task", j.Req.Task, "mode", j.Req.Mode, "k", j.Req.K)
			start := time.Now()
			rep, err := m.execute(j)
			m.ins.observeJob(j.Req.Task, j.Req.Mode, time.Since(start))
			m.ins.jobFinished()
			if err == nil {
				m.cache.Put(j.key, rep)
				end("state", string(JobDone))
			} else {
				end("state", "error", "err", err.Error())
			}
			j.finish(rep, err)
		}
		m.mu.Lock()
		m.noteTerminalLocked(j)
		m.mu.Unlock()
	}
}

// lifetime returns the monotonic lifetime totals (submitted and per-terminal-
// state counts) backing the /metrics counter functions.
func (m *Manager) lifetime() (submitted, done, failed, canceled int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.submitted, m.nDone, m.nFailed, m.nCanceled
}

// roundsConfig assembles the multi-round driver configuration for a
// normalized EDCS job with Rounds >= 1. The cluster driver overrides K with
// the fleet size, exactly as Submit already validated.
func (m *Manager) roundsConfig(req CreateJobRequest) rounds.Config {
	return rounds.Config{
		K:         req.K,
		Rounds:    req.Rounds,
		Seed:      req.Seed,
		Params:    edcs.ParamsForBeta(req.Beta),
		BatchSize: req.Batch,
		Obs:       m.ins.eventSink(),
	}
}

// execute pins the job's graph and runs the requested pipeline. Streaming
// jobs honor the job context at batch granularity; batch jobs check it
// before and after the (uninterruptible) core pipeline call.
func (m *Manager) execute(j *Job) (*graph.RunReport, error) {
	entry, err := m.reg.Acquire(j.Req.Graph)
	if err != nil {
		return nil, err // evicted or removed since submission
	}
	defer m.reg.Release(entry)
	if scope, gen := entry.cacheScope(); scope != j.key.Graph || gen != j.key.Gen {
		// The ID was re-registered with a different graph between submission
		// and execution; running against it would publish its result under
		// the old key. A dataset re-registered with identical bytes passes —
		// its scope is the content hash, which did not change.
		return nil, fmt.Errorf("service: graph %q was replaced while job %s was queued", j.Req.Graph, j.ID)
	}

	req := j.Req
	// normalize admitted the task, so the registry lookup cannot miss; the
	// descriptor is the single dispatch point for every mode below — no
	// per-task branching here, so a newly registered task runs through all
	// three modes without a service change.
	desc, ok := task.Get(req.Task)
	if !ok {
		return nil, fmt.Errorf("service: task %q vanished from the registry", req.Task)
	}
	p := task.Params{}
	if desc.UsesBeta {
		p.EDCS = edcs.ParamsForBeta(req.Beta)
	}
	// Multi-round execution is a registry capability: normalize already
	// rejected Rounds on tasks without it.
	multiRound := desc.WireRounds != 0 && req.Rounds >= 1

	if req.Mode == ModeStream {
		src, err := entry.Source()
		if err != nil {
			return nil, err
		}
		if multiRound {
			sol, st, err := rounds.Stream(j.ctx, src, m.roundsConfig(req))
			if err != nil {
				return nil, err
			}
			return st.Report(ModeStream, req.Seed, sol.Size(), req.Beta), nil
		}
		cfg := stream.Config{K: req.K, Seed: req.Seed, BatchSize: req.Batch}
		sol, st, err := stream.Solve(j.ctx, src, cfg, desc, p)
		if err != nil {
			return nil, err
		}
		rep := st.Report(req.Task, req.Seed, sol.Size)
		rep.Beta = req.Beta // nonzero only for beta-capable tasks (normalize pins the rest to 0)
		return rep, nil
	}
	if req.Mode == ModeCluster {
		src, err := entry.Source()
		if err != nil {
			return nil, err
		}
		// Replay is on by default for daemon-dispatched jobs: generator
		// sources are restartable, so a worker lost mid-round costs the job
		// one round replay (reported in the result's retry fields) instead
		// of a 500.
		cfg := cluster.Config{
			Workers:    m.cluster.Workers,
			Seed:       req.Seed,
			BatchSize:  req.Batch,
			Spares:     m.cluster.Spares,
			MaxRetries: m.cluster.maxRetries(),
			Obs:        m.ins.eventSink(),
			RunID:      j.runID,
		}
		if multiRound {
			sol, st, err := rounds.Cluster(j.ctx, src, cfg, m.roundsConfig(req))
			if err != nil {
				return nil, err
			}
			return st.Report(ModeCluster, req.Seed, sol.Size(), req.Beta), nil
		}
		sol, st, err := cluster.Solve(j.ctx, src, cfg, desc, p)
		if err != nil {
			return nil, err
		}
		rep := st.Report(req.Task, req.Seed, sol.Size)
		rep.Beta = req.Beta
		return rep, nil
	}

	g, err := entry.Materialize()
	if err != nil {
		return nil, err
	}
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	if multiRound {
		sol, st, err := rounds.Batch(g, m.roundsConfig(req))
		if err != nil {
			return nil, err
		}
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		return st.Report(ModeBatch, req.Seed, sol.Size(), req.Beta), nil
	}
	start := time.Now()
	sol, st := desc.Batch(g, req.K, 0, req.Seed, p)
	d := time.Since(start)
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	rep := st.Report(req.Task, g.N, g.M(), req.Seed, sol.Size, d)
	rep.Beta = req.Beta
	return rep, nil
}

// Stats counts jobs by state. Terminal counts are lifetime totals (they
// survive retention pruning); queued/running are scanned from the retained
// set, which always contains every non-terminal job.
func (m *Manager) Stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := JobStats{
		Submitted: m.submitted,
		QueueLen:  len(m.queue),
		Done:      int(m.nDone),
		Failed:    int(m.nFailed),
		Canceled:  int(m.nCanceled),
		ByTask:    make(map[string]int64, len(m.byTask)),
	}
	for name, n := range m.byTask {
		st.ByTask[name] = n
	}
	for _, j := range m.jobs {
		switch j.State() {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		}
	}
	return st
}

// Shutdown stops accepting jobs and drains the pool: every accepted job
// reaches a terminal state and every worker goroutine exits before Shutdown
// returns. If ctx expires first, all outstanding job contexts are canceled
// (streaming jobs stop at the next batch boundary) and Shutdown still waits
// for the workers to exit, returning the ctx error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.baseCancel()
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}
