package service

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/stream"
)

// Registry holds the graphs the service can run jobs against, keyed by
// string ID. An entry is one of three kinds: an uploaded graph (edges
// resident in memory), a generator spec (edges re-derived on demand from
// O(1) parameters — the registry's cheap tier), or a reference to a stored
// dataset (internal/dataset — edges on disk, streamed segment by segment,
// so a registered billion-edge graph costs the registry a file handle).
// Entries are ref-counted: a job Acquires its graph for the duration of the
// run, and eviction only ever removes zero-ref entries, least-recently-used
// first, once the resident count exceeds the configured cap.
type Registry struct {
	mu          sync.Mutex
	maxResident int // soft cap on entries (<= 0: unlimited)
	seq         int // for assigned IDs
	tick        int64
	entries     map[string]*GraphEntry
	adds        int64
	evictions   int64
}

// GraphEntry is one registered graph. The descriptive fields are immutable
// after creation; refs and lastUse are guarded by the registry mutex.
type GraphEntry struct {
	ID    string
	Gen   *GenSpec         // non-nil for generator-backed entries
	G     *graph.Graph     // non-nil for uploaded entries
	DS    *dataset.Dataset // non-nil for dataset-backed entries
	N     int
	M     int // -1 when unknown (generator-backed)
	Bytes int64

	// generation is unique across every entry the registry has ever held.
	// It is part of the result-cache key, so a graph re-registered under a
	// reused ID can never be served another graph's cached results.
	generation int64

	refs    int
	lastUse int64
}

// Generation returns the entry's registry-unique generation number.
func (e *GraphEntry) Generation() int64 { return e.generation }

// NewRegistry returns a registry evicting idle graphs beyond maxResident
// entries (<= 0 disables eviction).
func NewRegistry(maxResident int) *Registry {
	return &Registry{maxResident: maxResident, entries: make(map[string]*GraphEntry)}
}

// AddGraph registers an uploaded, already-validated graph under id (assigned
// when empty) and returns its registered view.
func (r *Registry) AddGraph(id string, g *graph.Graph) (GraphInfo, error) {
	if g.N > MaxGraphN {
		return GraphInfo{}, fmt.Errorf("service: n=%d exceeds the cap of %d vertices", g.N, MaxGraphN)
	}
	e := &GraphEntry{
		G: g,
		N: g.N,
		M: g.M(),
		// Edge{U,V int32} is 8 bytes; charge the slice plus a small fixed
		// overhead for the entry itself.
		Bytes: int64(g.M())*8 + 128,
	}
	return r.add(id, e)
}

// AddSpec registers a generator-backed graph under id (assigned when empty).
func (r *Registry) AddSpec(id string, spec *GenSpec) (GraphInfo, error) {
	if err := spec.Validate(); err != nil {
		return GraphInfo{}, err
	}
	cp := *spec
	e := &GraphEntry{Gen: &cp, N: spec.N, M: -1, Bytes: 128}
	return r.add(id, e)
}

// AddDataset registers a stored dataset under id (the registry assigns one
// when empty). The registry borrows the caller's open handle and never
// closes it: the daemon keeps its store handles for its lifetime, and tests
// can watch the same handle's SegmentReads counter a job increments. Only a
// manifest-sized view is resident — the edges stay on disk.
func (r *Registry) AddDataset(id string, ds *dataset.Dataset) (GraphInfo, error) {
	if ds.NumVertices() > MaxGraphN {
		return GraphInfo{}, fmt.Errorf("service: n=%d exceeds the cap of %d vertices", ds.NumVertices(), MaxGraphN)
	}
	e := &GraphEntry{DS: ds, N: ds.NumVertices(), M: ds.Edges(), Bytes: 256}
	return r.add(id, e)
}

// add registers e and returns its view, built under the same lock so the
// response can never observe a concurrent eviction or mutation.
func (r *Registry) add(id string, e *GraphEntry) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id == "" {
		r.seq++
		id = fmt.Sprintf("g-%d", r.seq)
	} else if _, dup := r.entries[id]; dup {
		return GraphInfo{}, fmt.Errorf("service: graph %q already exists", id)
	}
	e.ID = id
	r.tick++
	e.lastUse = r.tick
	r.entries[id] = e
	r.adds++
	e.generation = r.adds
	r.evictLocked(e)
	return e.infoLocked(), nil
}

// evictLocked removes zero-ref entries, least-recently-used first, until the
// resident count is within the cap. The entry being added (just) and entries
// pinned by running jobs are never removed, so the cap is soft under load.
func (r *Registry) evictLocked(just *GraphEntry) {
	if r.maxResident <= 0 {
		return
	}
	for len(r.entries) > r.maxResident {
		var victim *GraphEntry
		for _, e := range r.entries {
			if e.refs > 0 || e == just {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victim.ID)
		r.evictions++
	}
}

// Generation returns the current generation of id.
func (r *Registry) Generation(id string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return 0, false
	}
	return e.generation, true
}

// cacheScope returns the (graph, generation) pair result-cache keys use for
// this entry. Dataset entries key by content hash with generation 0:
// identity follows the bytes, so re-registering the same dataset — under
// the same ID after an eviction, or under a different ID entirely — keeps
// hitting the results already computed for those bytes. Upload and
// generator entries keep the (ID, registry generation) scope, where a
// reused ID must never see the previous graph's results.
func (e *GraphEntry) cacheScope() (string, int64) {
	if e.DS != nil {
		return "ds:" + e.DS.Hash(), 0
	}
	return e.ID, e.generation
}

// CacheScope returns the cache keying scope for id; see cacheScope.
func (r *Registry) CacheScope(id string) (string, int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return "", 0, false
	}
	scope, gen := e.cacheScope()
	return scope, gen, true
}

// Acquire pins the graph for a job: the entry cannot be evicted until the
// matching Release. It returns an error if the graph is unknown (possibly
// already evicted).
func (r *Registry) Acquire(id string) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown graph %q", id)
	}
	e.refs++
	r.tick++
	e.lastUse = r.tick
	return e, nil
}

// Release undoes an Acquire.
func (r *Registry) Release(e *GraphEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.refs > 0 {
		e.refs--
	}
}

// Info returns the API view of a graph.
func (r *Registry) Info(id string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return GraphInfo{}, false
	}
	return e.infoLocked(), true
}

func (e *GraphEntry) infoLocked() GraphInfo {
	src, hash := "upload", ""
	switch {
	case e.Gen != nil:
		src = "gen"
	case e.DS != nil:
		src, hash = "dataset", e.DS.Hash()
	}
	return GraphInfo{ID: e.ID, Source: src, N: e.N, M: e.M, Bytes: e.Bytes, Refs: e.refs, Gen: e.Gen, Hash: hash}
}

// Has reports whether id is registered.
func (r *Registry) Has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[id]
	return ok
}

// Remove deletes an idle graph. It refuses while jobs hold references.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return fmt.Errorf("service: unknown graph %q", id)
	}
	if e.refs > 0 {
		return fmt.Errorf("service: graph %q is in use by %d job(s)", id, e.refs)
	}
	delete(r.entries, id)
	return nil
}

// Stats summarizes the registry.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegistryStats{Count: len(r.entries), Adds: r.adds, Evictions: r.evictions}
	for _, e := range r.entries {
		st.Bytes += e.Bytes
	}
	return st
}

// Source mints a fresh streaming edge source for a job. Uploaded entries
// stream their resident edge slice (read-only, safe to share across
// concurrent jobs); generator entries replay their draw sequence; dataset
// entries stream segments off disk. All three are stream.Restartable, so
// every registry-backed cluster job can replay a lost round.
func (e *GraphEntry) Source() (stream.EdgeSource, error) {
	switch {
	case e.Gen != nil:
		return e.Gen.Source()
	case e.DS != nil:
		return stream.NewDatasetSource(e.DS), nil
	}
	return stream.NewGraphSource(e.G), nil
}

// Materialize returns the full graph for batch-mode jobs, collecting
// generator and dataset entries into a transient edge list that is dropped
// when the job finishes (only uploads stay resident).
func (e *GraphEntry) Materialize() (*graph.Graph, error) {
	if e.G != nil {
		return e.G, nil
	}
	src, err := e.Source()
	if err != nil {
		return nil, err
	}
	var edges []graph.Edge
	buf := make([]graph.Edge, 4096)
	for {
		c, err := src.Next(buf)
		edges = append(edges, buf[:c]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return &graph.Graph{N: src.NumVertices(), Edges: edges}, nil
}
