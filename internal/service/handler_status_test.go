package service

import (
	"net/http"
	"testing"

	"repro/internal/cluster"
)

// TestJobSubmissionStatusCodes pins the HTTP classification of every job
// rejection: client mistakes are 4xx (validation failures, unsupported
// deployment modes, unknown graphs), capacity is 503, and nothing a client
// can type may surface as a 5xx. Submit-side validation is where this
// regressed historically, so each rejection is asserted by its exact code.
func TestJobSubmissionStatusCodes(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1})
	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "star", N: 50}}, &info); code != http.StatusCreated {
		t.Fatalf("register graph: status %d", code)
	}

	cases := []struct {
		name string
		req  CreateJobRequest
		want int
	}{
		{"unknown-task", CreateJobRequest{Graph: info.ID, Task: "nope", K: 2}, http.StatusBadRequest},
		{"unknown-mode", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 2, Mode: "nope"}, http.StatusBadRequest},
		{"zero-k", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 0}, http.StatusBadRequest},
		{"huge-k", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: MaxJobK + 1}, http.StatusBadRequest},
		{"negative-batch", CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 2, Batch: -1}, http.StatusBadRequest},
		{"beta-on-matching", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 2, Beta: 8}, http.StatusBadRequest},
		{"beta-too-small", CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: 2, Beta: 1}, http.StatusBadRequest},
		{"beta-too-large", CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: 2, Beta: MaxJobBeta + 1}, http.StatusBadRequest},
		{"rounds-on-matching", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 2, Rounds: 2}, http.StatusBadRequest},
		{"rounds-on-vc", CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 2, Rounds: 1}, http.StatusBadRequest},
		{"rounds-negative", CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: 2, Rounds: -1}, http.StatusBadRequest},
		{"rounds-too-large", CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: 2, Rounds: MaxJobRounds + 1}, http.StatusBadRequest},
		{"rounds-valid", CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: 2, Rounds: 2}, http.StatusAccepted},
		{"no-cluster-fleet", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 2, Mode: ModeCluster}, http.StatusBadRequest},
		{"unknown-graph", CreateJobRequest{Graph: "ghost", Task: TaskMatching, K: 2}, http.StatusNotFound},
		{"valid", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: 2}, http.StatusAccepted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code := c.postJSON("/v1/jobs", tc.req, nil)
			if code != tc.want {
				t.Fatalf("status %d, want %d", code, tc.want)
			}
			if tc.want >= 500 || (code >= 500 && tc.want < 500) {
				t.Fatalf("client-caused rejection surfaced as server error %d", code)
			}
		})
	}

	// The cluster k-mismatch needs a configured fleet to get past the
	// ErrNoCluster check.
	addrs, shutdown, err := cluster.ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	_, cf := newTestService(t, Config{Workers: 1, ClusterWorkers: addrs})
	var finfo GraphInfo
	if code := cf.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "star", N: 50}}, &finfo); code != http.StatusCreated {
		t.Fatalf("register graph: status %d", code)
	}
	if code := cf.postJSON("/v1/jobs", CreateJobRequest{Graph: finfo.ID, Task: TaskMatching, K: 3, Mode: ModeCluster}, nil); code != http.StatusBadRequest {
		t.Fatalf("cluster k mismatch: status %d, want %d", code, http.StatusBadRequest)
	}
}

// TestEDCSJobsAcrossModes: task "edcs" runs in all three modes, the three
// reports agree on the composed solution (seed parity through the service
// layer), and a repeated query hits the cache.
func TestEDCSJobsAcrossModes(t *testing.T) {
	const k = 2
	addrs, shutdown, err := cluster.ServeLoopback(k)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	_, c := newTestService(t, Config{Workers: 2, ClusterWorkers: addrs})

	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 1500, Deg: 20, Seed: 9}}, &info); code != http.StatusCreated {
		t.Fatalf("register graph: status %d", code)
	}

	sizes := map[string]int{}
	for _, mode := range []string{ModeBatch, ModeStream, ModeCluster} {
		v := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: k, Seed: 4, Mode: mode, Beta: 16})
		if v.State != string(JobDone) {
			t.Fatalf("edcs %s job ended %s: %s", mode, v.State, v.Error)
		}
		if v.Result.Task != TaskEDCS || v.Result.SolutionSize == 0 {
			t.Fatalf("edcs %s report: %+v", mode, v.Result)
		}
		sizes[mode] = v.Result.SolutionSize
	}
	if sizes[ModeBatch] != sizes[ModeStream] || sizes[ModeStream] != sizes[ModeCluster] {
		t.Fatalf("edcs solutions disagree across modes: %v", sizes)
	}

	again := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: k, Seed: 4, Mode: ModeStream, Beta: 16})
	if !again.Cached {
		t.Fatal("repeated edcs job missed the cache")
	}
	// A different beta is a different computation: it must not hit the
	// beta=16 entry.
	other := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: k, Seed: 4, Mode: ModeStream, Beta: 32})
	if other.Cached {
		t.Fatal("different beta served from the old cache entry")
	}
}
