package service

import (
	"net/http"
	"testing"
)

// BenchmarkServiceQuery measures the full HTTP query path of the service in
// its two regimes: "cold" submits a fresh (graph, task, k, seed, mode) key
// every iteration, so each query runs the whole streaming pipeline; "hit"
// replays one key, so after the first iteration every query is served from
// the result cache. The gap between the two sub-benchmarks is the value of
// keeping coresets resident — the service's reason to exist. Baselines live
// in BENCH_service.json.
func BenchmarkServiceQuery(b *testing.B) {
	_, c := newTestService(b, Config{Workers: 4, QueueDepth: 256, CacheSize: -1})
	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 20000, Deg: 8, Seed: 1}}, &info); code != http.StatusCreated {
		b.Fatalf("create: status %d", code)
	}
	query := func(b *testing.B, seed uint64) {
		b.Helper()
		var v JobView
		if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 4, Seed: seed}, &v); code != http.StatusAccepted && code != http.StatusOK {
			b.Fatalf("submit: status %d", code)
		}
		for v.State == string(JobQueued) || v.State == string(JobRunning) {
			if code := c.do("GET", "/v1/jobs/"+v.ID+"?wait=5s", "", nil, &v); code != http.StatusOK {
				b.Fatalf("poll: status %d", code)
			}
		}
		if v.State != string(JobDone) {
			b.Fatalf("job state %s (%s)", v.State, v.Error)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query(b, uint64(1000+i)) // fresh key every iteration
		}
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/query")
	})
	b.Run("hit", func(b *testing.B) {
		query(b, 7) // warm the key once, outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query(b, 7)
		}
		b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/1000, "ms/query")
	})
}
