// Package service is the long-running coreset daemon: it keeps graphs and
// their coresets resident so that the summaries the paper proves reusable
// (a randomized composable coreset is computed once and composed into many
// answers) are actually reused across queries instead of being recomputed
// per CLI invocation.
//
// The subsystem has four parts, each in its own file:
//
//   - Registry (registry.go): graphs ingested by upload (edge-list text) or
//     by generator spec, held under string IDs with ref-counting and LRU
//     eviction.
//   - Manager (jobs.go): an async job manager with a bounded worker pool;
//     coreset jobs (task, k, seed, mode) run off a bounded queue with
//     context cancellation and graceful drain.
//   - Cache (cache.go): composed run reports keyed by
//     (graph, task, k, seed, mode) with hit/miss counters, so repeated
//     queries are served from memory.
//   - Server (server.go): the stdlib HTTP/JSON API wiring the three
//     together — POST /v1/graphs, POST /v1/jobs, GET /v1/jobs/{id},
//     GET /v1/stats, plus /healthz.
//
// The server is also instrumented end to end (metrics.go): an internal/obs
// registry rendered at GET /metrics carries job latency histograms per
// task×mode, queue depth, in-flight jobs, cache hit/miss and registry
// add/eviction counters, and every cluster/rounds event (wire bytes, dial
// attempts, retries, replays) reported through the injected obs.Sink.
// cmd/coresetd can additionally mount the same registry together with
// net/http/pprof on an opt-in admin listener (-admin), keeping profiling
// endpoints off the public API port. /healthz returns "ok" while serving and
// "draining" (HTTP 503) once shutdown begins.
//
// This file holds the wire types shared by the handlers, the CLI tools and
// the tests.
package service

import (
	"errors"
	"fmt"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rounds"
	"repro/internal/stream"
	"repro/internal/task"
)

// Task names accepted by the job API. The authoritative list is the task
// registry (internal/task) — normalize admits exactly the registered names,
// so a new task is accepted the moment it registers, with no change here.
// The constants below name the built-in tasks for call sites and tests.
// TaskEDCS composes a matching from per-machine edge-degree constrained
// subgraphs (arXiv:1711.03076) instead of the SPAA'17 maximum-matching
// coresets.
const (
	TaskMatching = "matching"
	TaskVC       = "vc"
	TaskEDCS     = "edcs"
)

// Execution modes accepted by the job API. ModeCluster dispatches the job
// to the worker fleet the daemon was configured with (coresetd -cluster);
// it is rejected when no fleet is configured.
const (
	ModeBatch   = "batch"
	ModeStream  = "stream"
	ModeCluster = "cluster"
)

// Hard sanity caps on request parameters: a single unauthenticated request
// must not be able to make the daemon allocate per-machine or per-vertex
// state without bound. Both are far above every workload in this repository.
const (
	// MaxJobK caps machines per job (k goroutines, channels and coreset
	// slices are allocated per machine).
	MaxJobK = 1 << 16
	// MaxGraphN caps vertices in a generator spec or upload (per-machine VC
	// state is O(n)).
	MaxGraphN = 1 << 28
	// MaxJobBatch caps the streaming batch size (the sharder allocates
	// O(k*batch) buffer space).
	MaxJobBatch = 1 << 20
	// MaxJobBeta caps the EDCS degree bound — the one cap (edcs.MaxBeta)
	// every surface shares, so a request the daemon admits can never be
	// rejected downstream by the cluster wire protocol.
	MaxJobBeta = edcs.MaxBeta
	// MaxJobRounds caps the multi-round cap, shared with the CLI and (well
	// under) the cluster wire protocol's own bound for the same reason.
	MaxJobRounds = rounds.MaxRounds
)

// GenSpec describes a synthetic graph by generator name and parameters. The
// parameter mapping matches cmd/coreset's -gen flags exactly, so a spec
// submitted to the service names the same graph a CLI run would build:
// gnp is G(n, Deg/n), star is K_{1,n-1}, powerlaw is Chung-Lu with exponent
// 2 and weight cap n/16+1.
type GenSpec struct {
	Name string  `json:"name"`           // gnp | star | powerlaw
	N    int     `json:"n"`              // vertices
	Deg  float64 `json:"deg,omitempty"`  // average degree (gnp)
	Seed uint64  `json:"seed,omitempty"` // generator seed
}

// Validate checks the spec without sampling anything.
func (s *GenSpec) Validate() error {
	if s.N > MaxGraphN {
		return fmt.Errorf("service: n=%d exceeds the cap of %d vertices", s.N, MaxGraphN)
	}
	switch s.Name {
	case "gnp", "powerlaw":
		if s.N < 0 || s.Deg < 0 || (s.N > 0 && s.Deg > float64(s.N)) {
			return fmt.Errorf("service: invalid %s spec (n=%d deg=%g)", s.Name, s.N, s.Deg)
		}
	case "star":
		if s.N < 1 {
			return fmt.Errorf("service: invalid star spec (n=%d)", s.N)
		}
	default:
		return fmt.Errorf("service: unknown generator %q", s.Name)
	}
	return nil
}

// Iter mints a fresh edge iterator replaying the spec's draw sequence from
// its seed. Every call returns an independent iterator, so concurrent jobs
// can stream the same spec simultaneously.
func (s *GenSpec) Iter() (gen.EdgeIter, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Name {
	case "gnp":
		return gen.GNPIter(s.N, s.Deg/float64(s.N), rng.New(s.Seed)), nil
	case "star":
		return gen.StarIter(s.N), nil
	default: // powerlaw
		return gen.PowerlawIter(s.N, 2.0, s.N/16+1, rng.New(s.Seed)), nil
	}
}

// Source mints a fresh streaming edge source for the spec. The source is
// restartable — each pass replays the spec's draw sequence from its seed —
// so cluster jobs over generator graphs can replay a lost round.
func (s *GenSpec) Source() (stream.EdgeSource, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	spec := *s
	return stream.NewIterSource(s.N, func() gen.EdgeIter {
		it, _ := spec.Iter() // validated above; cannot fail
		return it
	}), nil
}

// CreateGraphRequest is the JSON body of POST /v1/graphs. Exactly one of
// Gen, EdgeList and Dataset must be set. ID is optional; Dataset
// registrations default it to the dataset's name, others get a registry-
// assigned one.
type CreateGraphRequest struct {
	ID       string   `json:"id,omitempty"`
	Gen      *GenSpec `json:"gen,omitempty"`
	EdgeList string   `json:"edgeList,omitempty"` // inline text edge list (cmd/coreset format)
	// Dataset names a dataset in the daemon's store (coresetd -datasets);
	// the edges stay on disk and jobs stream them segment by segment.
	Dataset string `json:"dataset,omitempty"`
}

// GraphInfo describes a registered graph. M is -1 for generator-backed
// entries, whose edge count is not known until a job streams them.
type GraphInfo struct {
	ID     string   `json:"id"`
	Source string   `json:"source"` // "upload" | "gen" | "dataset"
	N      int      `json:"n"`
	M      int      `json:"m"`
	Bytes  int64    `json:"bytes"` // approximate resident size
	Refs   int      `json:"refs"`  // jobs currently using the graph
	Gen    *GenSpec `json:"gen,omitempty"`
	Hash   string   `json:"hash,omitempty"` // dataset content hash (source "dataset")
}

// CreateJobRequest is the JSON body of POST /v1/jobs.
type CreateJobRequest struct {
	Graph string `json:"graph"`           // registry ID
	Task  string `json:"task"`            // matching | vc | edcs
	K     int    `json:"k"`               // number of machines
	Seed  uint64 `json:"seed"`            // partitioning seed
	Mode  string `json:"mode,omitempty"`  // batch | stream (default stream)
	Batch int    `json:"batch,omitempty"` // streaming batch size (0 = default)
	Beta  int    `json:"beta,omitempty"`  // EDCS degree bound (task edcs; 0 = default)
	// Rounds engages the multi-round MPC driver for task edcs: iterate the
	// EDCS sketch for up to Rounds rounds (internal/rounds). 0 keeps the
	// single-round pipeline; Rounds = 1 runs the driver but reproduces the
	// single-round coresets exactly.
	Rounds int `json:"rounds,omitempty"`
}

// ErrInvalidRequest tags every job-submission validation failure, so the
// HTTP layer can map client mistakes to 4xx without string matching. Server
// faults stay untagged and surface as 5xx.
var ErrInvalidRequest = errors.New("service: invalid job request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalidRequest}, args...)...)
}

// ValidateTaskParams checks the task-scoped EDCS parameters — the degree
// bound and the multi-round cap — shared by every user-facing surface:
// cmd/coreset's flags, cmd/coresetload's flags and this service's job API
// all call it, so the three cannot drift on bounds or message text. The
// actual table lives with the task registry (task.ValidateParams, driven by
// the descriptors' capability flags); this wrapper keeps the service-level
// name the other surfaces import. Zero means "not set" for both parameters;
// the returned error text is the canonical vocabulary, to which each caller
// adds its own prefix (the service wraps it in ErrInvalidRequest for 4xx
// classification).
func ValidateTaskParams(taskName string, beta, rounds int) error {
	return task.ValidateParams(taskName, beta, rounds)
}

func (r *CreateJobRequest) normalize() error {
	if r.Mode == "" {
		r.Mode = ModeStream
	}
	d, ok := task.Get(r.Task)
	if !ok {
		return badRequestf("unknown task %q", r.Task)
	}
	if err := ValidateTaskParams(r.Task, r.Beta, r.Rounds); err != nil {
		return badRequestf("%s", err)
	}
	if d.UsesBeta && r.Beta == 0 {
		// Pin the default so cache keys are canonical; ParamsForBeta clamps
		// any bound >= 2 into a valid pair, so ValidateTaskParams' range
		// check was the whole validation.
		r.Beta = edcs.DefaultBeta
	}
	if r.Mode != ModeBatch && r.Mode != ModeStream && r.Mode != ModeCluster {
		return badRequestf("unknown mode %q", r.Mode)
	}
	if r.K <= 0 || r.K > MaxJobK {
		return badRequestf("k must be in [1, %d] (got %d)", MaxJobK, r.K)
	}
	if r.Batch < 0 || r.Batch > MaxJobBatch {
		return badRequestf("batch must be in [0, %d] (got %d)", MaxJobBatch, r.Batch)
	}
	return nil
}

// JobView is the API representation of a job, returned by POST /v1/jobs and
// GET /v1/jobs/{id}. Result is set once State is "done".
type JobView struct {
	ID      string           `json:"id"`
	State   string           `json:"state"` // queued | running | done | failed | canceled
	Cached  bool             `json:"cached,omitempty"`
	Error   string           `json:"error,omitempty"`
	Request CreateJobRequest `json:"request"`
	Result  *graph.RunReport `json:"result,omitempty"`
}

// StatsView is the JSON body of GET /v1/stats — a point-in-time JSON mirror
// of the counters GET /metrics exposes in Prometheus form. UptimeSeconds
// duplicates UptimeMS in the unit monitoring tooling expects; UptimeMS stays
// for existing consumers.
type StatsView struct {
	UptimeMS      float64       `json:"uptimeMs"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Workers       int           `json:"workers"`
	Graphs        RegistryStats `json:"graphs"`
	Jobs          JobStats      `json:"jobs"`
	Cache         CacheStats    `json:"cache"`
}

// RegistryStats summarizes the graph registry.
type RegistryStats struct {
	Count     int   `json:"count"`
	Bytes     int64 `json:"bytes"`
	Adds      int64 `json:"adds"`
	Evictions int64 `json:"evictions"`
}

// JobStats counts jobs by state plus queue occupancy.
//
// Retention-window caveat: Done, Failed, Canceled and Submitted are
// monotonic lifetime totals that survive retention pruning (they are the
// numbers behind the service_jobs_*_total counters in /metrics), but Queued
// and Running are scanned from the *retained* job set — after the retention
// window prunes a terminal job it no longer appears anywhere except the
// lifetime totals, so Done+Failed+Canceled will exceed the number of jobs
// still pollable via GET /v1/jobs/{id}.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Canceled  int   `json:"canceled"`
	QueueLen  int   `json:"queueLen"`
	// ByTask counts submissions per task name (lifetime, cache hits
	// included). Every registered task appears from startup with a zero
	// count — the keys come from the task registry, so a newly registered
	// task shows up here and in the service_jobs_total metric without any
	// service change.
	ByTask map[string]int64 `json:"byTask"`
}

// CacheStats reports result-cache effectiveness.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}
