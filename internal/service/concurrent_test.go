package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentClients hammers one service from many goroutines with a
// deliberately colliding key space, so cache hits, fresh runs and queue
// pressure interleave. Run with -race; the assertions are about coherence:
// every job terminates, and every response for the same key carries the
// same solution size.
func TestConcurrentClients(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 4, QueueDepth: 256})

	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 3000, Deg: 6, Seed: 1}}, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	const clients = 8
	const jobsPerClient = 6
	var (
		mu    sync.Mutex
		sizes = map[Key]int{}
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for i := 0; i < jobsPerClient; i++ {
				req := CreateJobRequest{
					Graph: info.ID,
					Task:  []string{TaskMatching, TaskVC}[i%2],
					K:     2 + i%3,
					Seed:  uint64(i % 4), // collisions across clients → cache hits
					Mode:  []string{ModeStream, ModeBatch}[ci%2],
				}
				v := c.runJob(req)
				if v.State != string(JobDone) {
					errs <- fmt.Errorf("client %d: job %s state %s (%s)", ci, v.ID, v.State, v.Error)
					return
				}
				mu.Lock()
				k := jobKey(req, req.Graph, 1)
				if prev, seen := sizes[k]; seen && prev != v.Result.SolutionSize {
					mu.Unlock()
					errs <- fmt.Errorf("key %+v: solution size %d then %d", k, prev, v.Result.SolutionSize)
					return
				}
				sizes[k] = v.Result.SolutionSize
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.stats()
	if st.Cache.Hits == 0 {
		t.Fatalf("colliding workload produced no cache hits: %+v", st.Cache)
	}
	if got := st.Jobs.Done; int(st.Jobs.Submitted) != clients*jobsPerClient || got != clients*jobsPerClient {
		t.Fatalf("job accounting: %+v", st.Jobs)
	}
}

// TestGracefulShutdownDrainsInflight submits more slow jobs than workers,
// shuts down while they are queued/running, and requires that (1) Shutdown
// returns only after every accepted job reached a terminal state, and
// (2) the worker goroutines are actually gone afterwards.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 2, QueueDepth: 32})
	reg := s.Registry()
	if _, err := reg.AddSpec("g", &GenSpec{Name: "gnp", N: 100000, Deg: 8, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Manager().Submit(CreateJobRequest{Graph: "g", Task: TaskVC, K: 4, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after shutdown (state %s)", j.ID, j.State())
		}
		if st := j.State(); st != JobDone {
			t.Fatalf("job %s drained to %s, want done", j.ID, st)
		}
	}
	if _, err := s.Manager().Submit(CreateJobRequest{Graph: "g", Task: TaskMatching, K: 4, Seed: 99}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: %v", err)
	}

	// The pool's goroutines must be gone. Give the runtime a moment to
	// retire exiting goroutines before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, after)
	}
}

// TestShutdownDeadlineCancelsJobs: when the drain deadline expires, running
// streaming jobs are canceled via their contexts and Shutdown still leaves
// no goroutine behind.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	if _, err := s.Registry().AddSpec("g", &GenSpec{Name: "gnp", N: 1000000, Deg: 8, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Manager().Submit(CreateJobRequest{Graph: "g", Task: TaskVC, K: 4, Seed: uint64(i), Batch: 256})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		// The machine may genuinely finish everything in 50ms; accept a
		// clean drain but require terminal jobs either way.
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after forced shutdown (state %s)", j.ID, j.State())
		}
	}
}
