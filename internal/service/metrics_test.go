package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrape fetches and parses GET /metrics.
func (c *client) scrape() map[string]float64 {
	c.t.Helper()
	resp, err := c.srv.Client().Get(c.srv.URL + "/metrics")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		c.t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	parsed, err := obs.ParseText(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return parsed
}

// TestMetricsEndpoint runs jobs (one executed, one cache hit) and checks the
// counters /metrics reports against what actually happened.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2})
	c.postJSON("/v1/graphs", CreateGraphRequest{ID: "g", Gen: &GenSpec{Name: "gnp", N: 300, Deg: 4, Seed: 1}}, nil)

	req := CreateJobRequest{Graph: "g", Task: TaskMatching, K: 3, Seed: 5}
	if v := c.runJob(req); v.State != string(JobDone) {
		t.Fatalf("job state %s", v.State)
	}
	if v := c.runJob(req); !v.Cached {
		t.Fatal("second submission was not a cache hit")
	}

	m := c.scrape()
	if got := m[MetricJobsSubmitted]; got != 2 {
		t.Errorf("%s = %v, want 2", MetricJobsSubmitted, got)
	}
	if got := m[MetricJobsDone]; got != 2 { // the cache hit is terminal too
		t.Errorf("%s = %v, want 2", MetricJobsDone, got)
	}
	if got := m[MetricCacheHits]; got != 1 {
		t.Errorf("%s = %v, want 1", MetricCacheHits, got)
	}
	if got := m[MetricCacheMisses]; got != 1 {
		t.Errorf("%s = %v, want 1", MetricCacheMisses, got)
	}
	if got := m[MetricGraphs]; got != 1 {
		t.Errorf("%s = %v, want 1", MetricGraphs, got)
	}
	if m[MetricUptime] <= 0 {
		t.Errorf("%s = %v, want > 0", MetricUptime, m[MetricUptime])
	}
	// The executed job (not the cache hit) must have landed exactly one
	// sample in the task×mode latency histogram.
	countKey := fmt.Sprintf(`%s_count{task="%s",mode="%s"}`, MetricJobDuration, TaskMatching, ModeStream)
	if got := m[countKey]; got != 1 {
		t.Errorf("%s = %v, want 1", countKey, got)
	}
	if got := m[MetricJobsInflight]; got != 0 {
		t.Errorf("%s = %v after all jobs finished, want 0", MetricJobsInflight, got)
	}
}

// TestMetricsScrapeWhileSubmitting is the scrape-while-submitting race test:
// concurrent job submissions and /metrics scrapes must be data-race free
// (run under -race) and every scrape must stay parseable.
func TestMetricsScrapeWhileSubmitting(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 4, QueueDepth: 256, CacheSize: -1})
	c.postJSON("/v1/graphs", CreateGraphRequest{ID: "g", Gen: &GenSpec{Name: "gnp", N: 200, Deg: 4, Seed: 1}}, nil)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				// Distinct seeds defeat the cache, so jobs really execute.
				c.runJob(CreateJobRequest{Graph: "g", Task: TaskMatching, K: 2, Seed: uint64(1000*w + i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		m := c.scrape()
		if m[MetricJobsSubmitted] < 0 {
			t.Fatal("negative counter")
		}
		select {
		case <-done:
			if got := c.scrape()[MetricJobsDone]; got != 45 {
				t.Fatalf("%s = %v, want 45", MetricJobsDone, got)
			}
			return
		default:
		}
	}
}

// TestHealthzDraining pins the shutdown sequence: /healthz serves "ok" while
// running, flips to 503 "draining" at BeginDrain, and Shutdown still drains
// every accepted job.
func TestHealthzDraining(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	get := func() (int, string) {
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code, strings.TrimSpace(rec.Body.String())
	}
	if code, body := get(); code != http.StatusOK || body != "ok" {
		t.Fatalf("healthz before drain: %d %q, want 200 ok", code, body)
	}
	s.BeginDrain()
	if code, body := get(); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("healthz during drain: %d %q, want 503 draining", code, body)
	}
}

// TestShutdownSequence exercises the full drain path over HTTP: submit work,
// BeginDrain, observe 503 on /healthz while the job still completes.
func TestShutdownSequence(t *testing.T) {
	s, c := newTestService(t, Config{Workers: 1})
	c.postJSON("/v1/graphs", CreateGraphRequest{ID: "g", Gen: &GenSpec{Name: "gnp", N: 300, Deg: 4, Seed: 1}}, nil)
	var v JobView
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: "g", Task: TaskMatching, K: 2, Seed: 9}, &v); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	s.BeginDrain()
	resp, err := c.srv.Client().Get(c.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "draining" {
		t.Fatalf("healthz during drain: %d %q", resp.StatusCode, body)
	}
	// The accepted job still reaches a terminal state.
	var got JobView
	c.do("GET", "/v1/jobs/"+v.ID+"?wait=30s", "", nil, &got)
	if got.State != string(JobDone) {
		t.Fatalf("job after drain: %s", got.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStatsUptime: /v1/stats carries uptime_seconds consistent with uptimeMs.
func TestStatsUptime(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1})
	time.Sleep(10 * time.Millisecond)
	st := c.stats()
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", st.UptimeSeconds)
	}
	if ratio := st.UptimeMS / 1000 / st.UptimeSeconds; ratio < 0.5 || ratio > 2 {
		t.Fatalf("uptimeMs %v inconsistent with uptime_seconds %v", st.UptimeMS, st.UptimeSeconds)
	}
}

// TestJobTracing: a server configured with a Tracer emits job span events
// stamped with a run ID.
func TestJobTracing(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	s := New(Config{Workers: 1, Tracer: obs.NewTextTracer(&syncWriter{mu: &mu, w: &buf}, "")})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	c := &client{t: t, srv: ts}
	c.postJSON("/v1/graphs", CreateGraphRequest{ID: "g", Gen: &GenSpec{Name: "gnp", N: 200, Deg: 4, Seed: 1}}, nil)
	c.runJob(CreateJobRequest{Graph: "g", Task: TaskMatching, K: 2, Seed: 3})

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "msg=job.start") || !strings.Contains(out, "msg=job.end") {
		t.Fatalf("trace missing job span:\n%s", out)
	}
	if !strings.Contains(out, "run=r-") {
		t.Fatalf("trace events not stamped with a run ID:\n%s", out)
	}
	if !strings.Contains(out, "state=done") {
		t.Fatalf("job.end missing terminal state:\n%s", out)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
