package service

import (
	"net/http"
	"testing"

	"repro/internal/cluster"
)

// TestClusterModeJobs: a daemon configured with a worker fleet runs mode
// "cluster" jobs against it, the report carries measured wire bytes, and
// the composed solution matches the in-process stream pipeline for the same
// (graph, seed, k).
func TestClusterModeJobs(t *testing.T) {
	const k = 2
	addrs, shutdown, err := cluster.ServeLoopback(k)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	_, c := newTestService(t, Config{Workers: 2, ClusterWorkers: addrs})

	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 2000, Deg: 8, Seed: 3}}, &info); code != http.StatusCreated {
		t.Fatalf("register graph: status %d", code)
	}

	run := func(mode string) JobView {
		v := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: k, Seed: 5, Mode: mode})
		if v.State != string(JobDone) {
			t.Fatalf("%s job ended %s: %s", mode, v.State, v.Error)
		}
		return v
	}
	cr := run(ModeCluster).Result
	sr := run(ModeStream).Result

	if cr.Mode != "cluster" {
		t.Fatalf("cluster job reported mode %q", cr.Mode)
	}
	if cr.SolutionSize != sr.SolutionSize {
		t.Fatalf("cluster solution %d differs from stream %d", cr.SolutionSize, sr.SolutionSize)
	}
	if cr.TotalCommBytes <= 0 || cr.EstCommBytes != sr.TotalCommBytes {
		t.Fatalf("cluster bytes measured %d / est %d, stream %d",
			cr.TotalCommBytes, cr.EstCommBytes, sr.TotalCommBytes)
	}

	// A repeated cluster query is a cache hit, like any other mode.
	again := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: k, Seed: 5, Mode: ModeCluster})
	if !again.Cached {
		t.Fatal("repeated cluster job missed the cache")
	}

	// k must name the fleet size.
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: info.ID, Task: TaskMatching, K: k + 1, Seed: 5, Mode: ModeCluster}, nil); code != http.StatusBadRequest {
		t.Fatalf("k mismatch accepted with status %d", code)
	}
}

// TestClusterModeRejectedWithoutFleet: without -cluster the daemon rejects
// cluster jobs up front with a client error, not a failed job.
// TestClusterModeMultiRoundJobs: mode "cluster" with rounds >= 1 drives one
// multi-round session over the daemon's fleet; the report's per-round
// breakdown carries measured bytes, and the composed solution matches the
// in-process multi-round stream job for the same request.
func TestClusterModeMultiRoundJobs(t *testing.T) {
	const k = 2
	addrs, shutdown, err := cluster.ServeLoopback(k)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	_, c := newTestService(t, Config{Workers: 2, ClusterWorkers: addrs})

	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "gnp", N: 1000, Deg: 30, Seed: 3}}, &info); code != http.StatusCreated {
		t.Fatalf("register graph: status %d", code)
	}
	run := func(mode string) JobView {
		v := c.runJob(CreateJobRequest{Graph: info.ID, Task: TaskEDCS, K: k, Seed: 5, Mode: mode, Beta: 8, Rounds: 2})
		if v.State != string(JobDone) {
			t.Fatalf("%s job ended %s: %s", mode, v.State, v.Error)
		}
		return v
	}
	cr := run(ModeCluster).Result
	sr := run(ModeStream).Result
	if cr.Mode != "cluster" || cr.RoundsRun != sr.RoundsRun || len(cr.RoundStats) != cr.RoundsRun {
		t.Fatalf("cluster multi-round report: %+v", cr)
	}
	if cr.SolutionSize != sr.SolutionSize {
		t.Fatalf("cluster solution %d differs from stream %d", cr.SolutionSize, sr.SolutionSize)
	}
	if cr.TotalCommBytes <= 0 || cr.EstCommBytes != sr.TotalCommBytes {
		t.Fatalf("cluster bytes measured %d / est %d, stream %d", cr.TotalCommBytes, cr.EstCommBytes, sr.TotalCommBytes)
	}
	for _, rr := range cr.RoundStats {
		if rr.TotalCommBytes < rr.EstCommBytes || rr.EstCommBytes <= 0 {
			t.Fatalf("round %d bytes not measured: %+v", rr.Round, rr)
		}
	}
}

func TestClusterModeRejectedWithoutFleet(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1})
	var info GraphInfo
	if code := c.postJSON("/v1/graphs", CreateGraphRequest{Gen: &GenSpec{Name: "star", N: 100}}, &info); code != http.StatusCreated {
		t.Fatalf("register graph: status %d", code)
	}
	if code := c.postJSON("/v1/jobs", CreateJobRequest{Graph: info.ID, Task: TaskVC, K: 2, Seed: 1, Mode: ModeCluster}, nil); code != http.StatusBadRequest {
		t.Fatalf("cluster job accepted with status %d on a fleetless daemon", code)
	}
}
