package edcs

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// decodeArrivals turns fuzz bytes into an edge arrival sequence over a small
// vertex universe. Consecutive byte pairs become endpoints, so the corpus
// naturally contains self-loops (equal bytes) and parallel duplicates
// (repeated pairs, both orientations) — exactly the arrivals the insertion
// hygiene must absorb.
func decodeArrivals(data []byte) []graph.Edge {
	edges := make([]graph.Edge, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		edges = append(edges, graph.Edge{U: graph.ID(data[i] % 64), V: graph.ID(data[i+1] % 64)})
	}
	return edges
}

// FuzzEDCSInsert feeds arbitrary arrival sequences — self-loops, duplicates,
// any orientation — through Insert and checks the three properties every
// runtime leans on: insertion terminates, the invariant oracle
// (CheckInvariants: P1/P2, edge hygiene, degree recount) passes, and the
// coreset is a pure function of the arrival order (a replay builds the
// identical H).
func FuzzEDCSInsert(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 2, 0, 1}, uint8(8))         // duplicate both ways + loop
	f.Add([]byte{3, 3, 3, 3, 3, 4, 4, 3}, uint8(2))         // loop spam around one vertex
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5}, uint8(200)) // path, large beta
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, betaRaw uint8) {
		if len(data) > 1<<12 {
			t.Skip("bound the per-input work")
		}
		p := ParamsForBeta(2 + int(betaRaw)%62)
		edges := decodeArrivals(data)

		s := New(0, p)
		for _, e := range edges {
			s.Insert(e)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("params %+v, %d arrivals: %v", p, len(edges), err)
		}
		if s.Size() != len(s.Edges()) {
			t.Fatalf("Size %d != len(Edges) %d", s.Size(), len(s.Edges()))
		}
		if s.Stored() > len(edges) {
			t.Fatalf("stored %d of %d arrivals", s.Stored(), len(edges))
		}

		replay := New(0, p)
		for _, e := range edges {
			replay.Insert(e)
		}
		if !reflect.DeepEqual(s.Edges(), replay.Edges()) {
			t.Fatal("same arrival order produced different EDCSs")
		}
	})
}
