// Package edcs implements the edge-degree constrained subgraph (EDCS)
// randomized composable coreset for maximum matching, following
//
//	Assadi, Bateni, Bernstein, Mirrokni, Stein.
//	"Coresets Meet EDCS: Algorithms for Matching and Vertex Cover on
//	Massive Graphs" (arXiv:1711.03076).
//
// A subgraph H of G is an EDCS(G, β, β⁻) if
//
//	(P1) every edge (u,v) ∈ H has deg_H(u) + deg_H(v) ≤ β, and
//	(P2) every edge (u,v) ∈ G \ H has deg_H(u) + deg_H(v) ≥ β⁻,
//
// where deg_H counts edges of H (an edge contributes to its own endpoints'
// degrees for P1). An EDCS has at most n·β/2 edges, and the paper shows the
// union of per-machine EDCSs over a random k-partitioning contains a
// (3/2+ε)-approximate maximum matching — a strictly better approximation
// than the O(1) of the SPAA'17 maximum-matching coreset (Theorem 1 in
// internal/core), at the same O(n·polylog) coreset size.
//
// The construction here is the edge-insertion algorithm with
// degree-constraint repair: edges arrive one at a time; an arriving edge
// whose H-degrees would violate P2 is added to H, and each mutation repairs
// the invariants locally (an overfull H-edge is removed, an underfull
// non-H-edge is added) until both hold again. Termination follows from the
// standard potential argument — every repair step strictly increases
// Φ(H) = (β − 1/2)·Σ_v deg_H(v) − Σ_{(u,v)∈H} (deg_H(u) + deg_H(v)),
// which is bounded — and violations are located and fixed in a fixed
// deterministic order, so the resulting H is a pure function of the arrival
// sequence. Insertion applies edge hygiene first: self-loops (useless to a
// matching, and a +2 skew on one endpoint's degree) and parallel duplicates
// (two indices that could both enter H) are dropped before they can touch
// the degree tables. All four
// runtimes (batch, stream, cluster, service) feed a machine's partition in
// the same order, which is what makes EDCS coresets bit-for-bit identical
// across them (see TestSeedParityAcrossRuntimes in internal/cluster).
package edcs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
)

// DefaultBeta is the degree bound used when a caller does not choose one.
// The paper's analysis wants β = O(poly(log n, 1/ε)); 64 keeps per-machine
// subgraphs at most 32·n edges while leaving P2 enough room to force a dense
// core on the workloads in this repository.
const DefaultBeta = 64

// MaxBeta is the sanity cap every user-facing surface (CLI flag, service
// request, cluster HELLO frame) applies to the degree bound; β is
// O(polylog) in the paper, so anything near this cap is already nonsense.
const MaxBeta = 1 << 20

// Params are the EDCS degree constraints. Valid parameters satisfy
// 1 ≤ BetaMinus < Beta; the paper uses β⁻ = (1−λ)β for a small spectral
// slack λ.
type Params struct {
	Beta      int // P1: deg_H(u) + deg_H(v) ≤ Beta for H-edges
	BetaMinus int // P2: deg_H(u) + deg_H(v) ≥ BetaMinus for non-H-edges
}

// Validate rejects parameter pairs for which no EDCS need exist.
func (p Params) Validate() error {
	if p.Beta < 2 || p.BetaMinus < 1 || p.BetaMinus >= p.Beta {
		return fmt.Errorf("edcs: invalid params (beta=%d, betaMinus=%d; need 1 <= betaMinus < beta, beta >= 2)",
			p.Beta, p.BetaMinus)
	}
	return nil
}

// ParamsForBeta returns the canonical parameters for a degree bound: the
// paper's β⁻ = (1−λ)β with λ = 1/4, clamped into validity. Beta values
// below 2 fall back to DefaultBeta.
func ParamsForBeta(beta int) Params {
	if beta < 2 {
		beta = DefaultBeta
	}
	bm := beta - beta/4
	if bm >= beta {
		bm = beta - 1
	}
	return Params{Beta: beta, BetaMinus: bm}
}

// Subgraph is the dynamic EDCS state: edges are inserted one at a time and
// the degree constraints are repaired after every mutation. The zero value
// is not usable; construct with New.
type Subgraph struct {
	p     Params
	edges []graph.Edge            // stored edges, arrival order (loops and duplicates dropped)
	inH   []bool                  // edges[i] ∈ H
	deg   []int32                 // H-degree per vertex
	adj   [][]int32               // stored-edge indices incident to each vertex
	size  int                     // |H|
	seen  map[graph.Edge]struct{} // canonical endpoints of stored edges (dedup)

	dirty       []graph.ID // vertices whose H-degree changed since last repair
	isDirty     []bool
	removals    int // lifetime H removals (repair churn telemetry)
	repairIters int // dirty-vertex rescans performed across all repairs
	peak        int // largest |H| ever reached (repair can shrink it back)
}

// New returns an empty dynamic EDCS. nHint > 0 pre-sizes the per-vertex
// tables; vertices beyond the hint grow on demand. Panics on invalid params
// (the constructors taking user input validate first).
func New(nHint int, p Params) *Subgraph {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if nHint < 0 {
		nHint = 0
	}
	return &Subgraph{
		p:       p,
		deg:     make([]int32, nHint),
		adj:     make([][]int32, nHint),
		isDirty: make([]bool, nHint),
		seen:    make(map[graph.Edge]struct{}),
	}
}

func (s *Subgraph) grow(v graph.ID) {
	for int(v) >= len(s.deg) {
		s.deg = append(s.deg, 0)
		s.adj = append(s.adj, nil)
		s.isDirty = append(s.isDirty, false)
	}
}

// Insert feeds one edge in arrival order and restores both invariants
// before returning. Two kinds of arrivals are dropped at the door, before
// they can touch any degree table:
//
//   - Self-loops: a matching can never use one, and admitting it would add
//     2 to a single endpoint's H-degree, skewing every P1/P2 sum that
//     vertex participates in.
//   - Parallel duplicates of an already-stored edge (either orientation):
//     two copies would get distinct indices and could both enter H,
//     inflating H-degrees and the coreset byte charge. This matters most to
//     the multi-round driver (internal/rounds), whose round-r unions can
//     re-feed edges the EDCS has already seen.
//
// Dropped arrivals do not count toward Stored.
func (s *Subgraph) Insert(e graph.Edge) {
	if e.U == e.V {
		return
	}
	c := e.Canon()
	if _, dup := s.seen[c]; dup {
		return
	}
	s.seen[c] = struct{}{}
	s.grow(e.U)
	s.grow(e.V)
	idx := int32(len(s.edges))
	s.edges = append(s.edges, e)
	s.inH = append(s.inH, false)
	s.adj[e.U] = append(s.adj[e.U], idx)
	s.adj[e.V] = append(s.adj[e.V], idx)
	// P2: a new edge left out of H must already see β⁻ worth of H-degree.
	if int(s.deg[e.U]+s.deg[e.V]) < s.p.BetaMinus {
		s.addH(idx)
		s.repair()
	}
}

func (s *Subgraph) addH(j int32) {
	e := s.edges[j]
	s.inH[j] = true
	s.deg[e.U]++
	s.deg[e.V]++
	s.size++
	if s.size > s.peak {
		s.peak = s.size
	}
	s.markDirty(e.U)
	s.markDirty(e.V)
}

func (s *Subgraph) removeH(j int32) {
	e := s.edges[j]
	s.inH[j] = false
	s.deg[e.U]--
	s.deg[e.V]--
	s.size--
	s.removals++
	s.markDirty(e.U)
	s.markDirty(e.V)
}

func (s *Subgraph) markDirty(v graph.ID) {
	if !s.isDirty[v] {
		s.isDirty[v] = true
		s.dirty = append(s.dirty, v)
	}
}

// repair restores P1 and P2 by local moves: any invariant violation is
// incident to a vertex whose H-degree changed, so only dirty vertices need
// rescanning. Each mutation strictly increases the bounded potential named
// in the package comment (the standard EDCS termination argument), so the
// loop terminates after O(n·β²) moves.
func (s *Subgraph) repair() {
	for len(s.dirty) > 0 {
		s.repairIters++
		v := s.dirty[len(s.dirty)-1]
		s.dirty = s.dirty[:len(s.dirty)-1]
		s.isDirty[v] = false
		for _, j := range s.adj[v] {
			e := s.edges[j]
			sum := int(s.deg[e.U] + s.deg[e.V])
			if s.inH[j] && sum > s.p.Beta {
				s.removeH(j)
			} else if !s.inH[j] && sum < s.p.BetaMinus {
				s.addH(j)
			}
		}
	}
}

// Size returns |H|, the current EDCS edge count.
func (s *Subgraph) Size() int { return s.size }

// Stored returns how many edges the subgraph holds — the machine's
// partition after edge hygiene (self-loops and parallel duplicates are
// dropped at Insert and never stored), within the O(m/k) space the model
// grants each machine.
func (s *Subgraph) Stored() int { return len(s.edges) }

// Removals returns the lifetime count of repair removals — how often an
// H-edge became overfull and was evicted. It is the builder's streaming
// telemetry: zero means insertions alone kept the invariants.
func (s *Subgraph) Removals() int { return s.removals }

// RepairIters returns how many dirty-vertex rescans the repair fixpoint has
// performed over the subgraph's lifetime — the per-machine measure of how
// much work P1/P2 maintenance cost beyond the raw insertions.
func (s *Subgraph) RepairIters() int { return s.repairIters }

// PeakSize returns the largest |H| the subgraph ever held. Repair can evict
// edges, so the final Size may undercount the memory high-water mark.
func (s *Subgraph) PeakSize() int { return s.peak }

// Edges returns H as a sorted, always non-nil edge list — the machine's
// coreset message. Sorting canonicalizes the set (arrival order is an
// implementation detail) and compresses well under the delta wire codec.
func (s *Subgraph) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, s.size)
	for j, in := range s.inH {
		if in {
			out = append(out, s.edges[j])
		}
	}
	graph.SortEdges(out)
	return out
}

// CheckInvariants verifies P1 and P2 over every stored edge, that the
// store obeys edge hygiene (no self-loops, no parallel duplicates — both
// classes of arrival Insert must drop), and that the incremental H-degree
// table matches a from-scratch recount of H. Tests use it as the
// ground-truth oracle for the insertion and repair logic: the degree
// recount is what catches bookkeeping skew (e.g. a self-loop charging +2
// to one endpoint) even when P1/P2 happen to hold on the skewed sums.
func (s *Subgraph) CheckInvariants() error {
	seen := make(map[graph.Edge]struct{}, len(s.edges))
	recount := make([]int32, len(s.deg))
	for j, e := range s.edges {
		if e.U == e.V {
			return fmt.Errorf("edcs: self-loop %v stored at index %d", e, j)
		}
		c := e.Canon()
		if _, dup := seen[c]; dup {
			return fmt.Errorf("edcs: duplicate edge %v stored at index %d", e, j)
		}
		seen[c] = struct{}{}
		if s.inH[j] {
			recount[e.U]++
			recount[e.V]++
		}
		sum := int(s.deg[e.U] + s.deg[e.V])
		if s.inH[j] && sum > s.p.Beta {
			return fmt.Errorf("edcs: P1 violated at edge %d=%v (deg sum %d > beta %d)", j, e, sum, s.p.Beta)
		}
		if !s.inH[j] && sum < s.p.BetaMinus {
			return fmt.Errorf("edcs: P2 violated at edge %d=%v (deg sum %d < betaMinus %d)", j, e, sum, s.p.BetaMinus)
		}
	}
	for v, d := range recount {
		if d != s.deg[v] {
			return fmt.Errorf("edcs: H-degree of vertex %d is tracked as %d but recounts to %d", v, s.deg[v], d)
		}
	}
	return nil
}

// Coreset computes one machine's EDCS coreset: an EDCS(part, β, β⁻) built
// by inserting the partition's edges in the given order. The result is the
// sorted H edge list, never nil.
func Coreset(n int, part []graph.Edge, p Params) []graph.Edge {
	s := New(n, p)
	for _, e := range part {
		s.Insert(e)
	}
	return s.Edges()
}

// Distributed runs the full EDCS pipeline on g: seeded hash k-partitioning
// (the position-independent partition.HashK every runtime shards with, so
// batch, stream and cluster runs over the same (graph, seed, k) produce
// deep-equal coresets), one EDCS per machine, and an exact maximum matching
// of the union of the coresets at the coordinator. Returns the composed
// matching and batch-pipeline stats.
func Distributed(g *graph.Graph, k int, workers int, seed uint64, p Params) (*matching.Matching, *core.PipelineStats) {
	parts := partition.HashK(g.Edges, k, seed)
	coresets := core.MapParts(parts, workers, func(i int, part []graph.Edge) []graph.Edge {
		return Coreset(g.N, part, p)
	})
	st := &core.PipelineStats{K: k}
	for i, part := range parts {
		st.PartEdges = append(st.PartEdges, len(part))
		b := core.CoresetSizeBytes(coresets[i])
		st.TotalCommBytes += b
		if b > st.MaxMachineBytes {
			st.MaxMachineBytes = b
		}
		st.CoresetEdges = append(st.CoresetEdges, len(coresets[i]))
		st.CompositionEdges += len(coresets[i])
	}
	return core.ComposeMatching(g.N, coresets), st
}
