package edcs

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{{Beta: 1, BetaMinus: 0}, {Beta: 4, BetaMinus: 4}, {Beta: 4, BetaMinus: 5}, {Beta: 0, BetaMinus: 0}} {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if err := (Params{Beta: 2, BetaMinus: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsForBeta(t *testing.T) {
	for _, beta := range []int{2, 3, 4, 16, 64, 1000} {
		p := ParamsForBeta(beta)
		if err := p.Validate(); err != nil {
			t.Fatalf("beta %d: %v", beta, err)
		}
		if p.Beta != beta {
			t.Fatalf("beta %d mangled to %d", beta, p.Beta)
		}
	}
	if p := ParamsForBeta(0); p.Beta != DefaultBeta {
		t.Fatalf("beta 0 should fall back to default, got %d", p.Beta)
	}
}

// TestInvariantsHold: after inserting an arbitrary edge sequence, both EDCS
// degree constraints must hold over every stored edge — across densities
// (sparse partitions where H swallows everything, dense ones where repair
// churns) and parameter choices.
func TestInvariantsHold(t *testing.T) {
	for _, tc := range []struct {
		n    int
		deg  float64
		p    Params
		seed uint64
	}{
		{300, 4, ParamsForBeta(8), 1},
		{300, 30, ParamsForBeta(8), 2},
		{200, 60, Params{Beta: 4, BetaMinus: 2}, 3},
		{500, 12, ParamsForBeta(DefaultBeta), 4},
		{120, 100, Params{Beta: 2, BetaMinus: 1}, 5},
	} {
		g := gen.GNP(tc.n, tc.deg/float64(tc.n), rng.New(tc.seed))
		s := New(g.N, tc.p)
		for _, e := range g.Edges {
			s.Insert(e)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("n=%d deg=%g %+v: %v", tc.n, tc.deg, tc.p, err)
		}
		if s.Stored() != g.M() {
			t.Fatalf("stored %d of %d edges", s.Stored(), g.M())
		}
		if s.Size() != len(s.Edges()) {
			t.Fatalf("Size %d != len(Edges) %d", s.Size(), len(s.Edges()))
		}
		// |H| <= n*beta/2: each H-edge consumes 2 units of total degree and
		// every vertex's H-degree is < beta (P1 with a positive partner).
		if 2*s.Size() > g.N*tc.p.Beta {
			t.Fatalf("|H| = %d exceeds n*beta/2 = %d", s.Size(), g.N*tc.p.Beta/2)
		}
	}
}

// TestDeterministic: the EDCS is a pure function of the arrival sequence.
func TestDeterministic(t *testing.T) {
	g := gen.GNP(250, 0.2, rng.New(7))
	p := ParamsForBeta(8)
	a := Coreset(g.N, g.Edges, p)
	b := Coreset(g.N, g.Edges, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same arrival order produced different EDCSs")
	}
}

// TestDenseTrimming: on a dense partition the EDCS must actually discard
// edges (that is the point of the summary), while a bounded-degree partition
// is kept whole — P2 forces every edge into H when degree sums stay below β⁻.
func TestDenseTrimming(t *testing.T) {
	p := ParamsForBeta(8) // β⁻ = 6
	dense := gen.GNP(200, 0.5, rng.New(9))
	if cs := Coreset(dense.N, dense.Edges, p); len(cs) >= dense.M() {
		t.Fatalf("dense graph: EDCS kept all %d edges", dense.M())
	}
	// A path has maximum degree 2, so every degree sum is at most 4 < β⁻.
	var path []graph.Edge
	for v := graph.ID(0); v < 99; v++ {
		path = append(path, graph.Edge{U: v, V: v + 1})
	}
	if cs := Coreset(100, path, p); len(cs) != len(path) {
		t.Fatalf("path: EDCS dropped edges (%d of %d) although P2 forces them in", len(cs), len(path))
	}
}

// TestEmptyAndTiny: degenerate inputs produce sane, non-nil coresets.
func TestEmptyAndTiny(t *testing.T) {
	p := ParamsForBeta(DefaultBeta)
	cs := Coreset(0, nil, p)
	if cs == nil || len(cs) != 0 {
		t.Fatalf("empty input: coreset = %v", cs)
	}
	cs = Coreset(2, []graph.Edge{{U: 0, V: 1}}, p)
	if len(cs) != 1 {
		t.Fatalf("single edge not kept: %v", cs)
	}
}

// TestMatchingApproximation: the matching composed from per-machine EDCS
// coresets must be at least half the maximum (the union contains a maximal
// matching certificate far below what the 3/2+ε theory promises, so this is
// a conservative floor) and, with the default β, must not lose to the
// one-pass greedy combiner on the SPAA'17 coresets.
func TestMatchingApproximation(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.GNP(600, 20.0/600, rng.New(seed))
		opt := matching.Maximum(g.N, g.Edges).Size()
		if opt == 0 {
			t.Fatal("degenerate instance")
		}
		const k = 4
		m, st := Distributed(g, k, 0, seed, ParamsForBeta(DefaultBeta))
		if err := matching.Verify(g.N, g.Edges, m); err != nil {
			t.Fatalf("seed %d: composed matching invalid: %v", seed, err)
		}
		if 2*m.Size() < opt {
			t.Fatalf("seed %d: EDCS matching %d below half of optimum %d", seed, m.Size(), opt)
		}
		if len(st.PartEdges) != k || len(st.CoresetEdges) != k {
			t.Fatalf("seed %d: stats not per-machine: %+v", seed, st)
		}
		if st.TotalCommBytes <= 0 {
			t.Fatalf("seed %d: no communication accounted", seed)
		}

		// Same hash partitioning, SPAA'17 maximum-matching coresets, greedy
		// combiner: the EDCS exact-compose must match or beat it.
		parts := partition.HashK(g.Edges, k, seed)
		coresets := make([][]graph.Edge, k)
		for i, part := range parts {
			coresets[i] = core.MatchingCoreset(g.N, part)
		}
		greedy := core.GreedyMatchCombine(g.N, coresets)
		if m.Size() < greedy.Size() {
			t.Fatalf("seed %d: EDCS matching %d below greedy-combine %d", seed, m.Size(), greedy.Size())
		}
	}
}

// TestCoresetComposesWithCombiners: EDCS coresets are plain edge lists, so
// both existing combiners consume them directly.
func TestCoresetComposesWithCombiners(t *testing.T) {
	g := gen.GNP(400, 30.0/400, rng.New(11))
	const k = 3
	parts := partition.HashK(g.Edges, k, 11)
	coresets := make([][]graph.Edge, k)
	for i, part := range parts {
		coresets[i] = Coreset(g.N, part, ParamsForBeta(16))
	}
	exact := core.ComposeMatching(g.N, coresets)
	greedy := core.GreedyMatchCombine(g.N, coresets)
	if exact.Size() == 0 || greedy.Size() == 0 {
		t.Fatal("combiners produced empty matchings")
	}
	if exact.Size() < greedy.Size() {
		t.Fatalf("exact compose %d below greedy %d on the same union", exact.Size(), greedy.Size())
	}
}

// TestRemovalsTelemetry: dense inputs must show repair churn; the counter is
// the EDCS analogue of the other builders' live telemetry.
func TestRemovalsTelemetry(t *testing.T) {
	// β⁻ = β − 1 makes insertions aggressive enough that later insertions
	// push earlier H-edges over β, forcing repair removals.
	g := gen.GNP(150, 0.6, rng.New(13))
	s := New(g.N, Params{Beta: 4, BetaMinus: 3})
	for _, e := range g.Edges {
		s.Insert(e)
	}
	if s.Removals() == 0 {
		t.Fatal("dense instance triggered no repair removals")
	}
}

// TestSelfLoopsDropped: a self-loop can never be used by a matching, and
// pre-fix it double-counted one endpoint's H-degree (addH incremented
// deg[e.U] and deg[e.V] even when they were the same vertex), skewing every
// P1/P2 sum that vertex participates in. Loops must be dropped at Insert:
// they never enter the store, never move a degree, and a build with loops
// interleaved is identical to the loop-free build.
func TestSelfLoopsDropped(t *testing.T) {
	p := ParamsForBeta(8)
	s := New(4, p)
	s.Insert(graph.Edge{U: 2, V: 2})
	if s.Size() != 0 || s.Stored() != 0 {
		t.Fatalf("self-loop entered the subgraph: |H|=%d stored=%d", s.Size(), s.Stored())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A star centered on vertex 0, with self-loops on the center interleaved
	// between every real arrival: the loop-free build is the oracle. Pre-fix,
	// each loop added 2 to deg[0] and P2 stopped forcing later star edges
	// into H, so the coresets diverged.
	const n = 20
	loopy, clean := New(n, p), New(n, p)
	for v := graph.ID(1); v < n; v++ {
		loopy.Insert(graph.Edge{U: 0, V: 0})
		loopy.Insert(graph.Edge{U: 0, V: v})
		clean.Insert(graph.Edge{U: 0, V: v})
	}
	if err := loopy.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loopy.Edges(), clean.Edges()) {
		t.Fatalf("self-loops changed the coreset: %v vs %v", loopy.Edges(), clean.Edges())
	}
}

// TestDuplicateEdgesDropped: pre-fix, parallel copies of an edge got
// distinct indices and could all enter H, inflating both endpoints'
// H-degrees and the coreset byte charge. Duplicates (in either orientation)
// must be dropped at Insert — which the multi-round driver depends on, since
// round-r unions can re-feed edges.
func TestDuplicateEdgesDropped(t *testing.T) {
	p := ParamsForBeta(8) // β⁻ = 6 admits several parallel copies pre-fix
	s := New(2, p)
	for i := 0; i < 3; i++ {
		s.Insert(graph.Edge{U: 0, V: 1})
		s.Insert(graph.Edge{U: 1, V: 0}) // reversed orientation, same edge
	}
	if s.Size() != 1 || s.Stored() != 1 {
		t.Fatalf("duplicates entered the subgraph: |H|=%d stored=%d", s.Size(), s.Stored())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if cs := s.Edges(); len(cs) != 1 || cs[0] != (graph.Edge{U: 0, V: 1}) {
		t.Fatalf("coreset = %v, want the single canonical edge", cs)
	}

	// Replaying a whole graph twice must be a no-op — exactly the multi-round
	// situation where a union is re-fed into a fresh build mid-stream.
	g := gen.GNP(200, 0.2, rng.New(3))
	once, twice := New(g.N, p), New(g.N, p)
	for _, e := range g.Edges {
		once.Insert(e)
		twice.Insert(e)
	}
	for _, e := range g.Edges {
		twice.Insert(e)
	}
	if err := twice.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(once.Edges(), twice.Edges()) {
		t.Fatal("replaying the edge list changed the coreset")
	}
}

// TestCheckInvariantsCatchesHygieneViolations: the oracle must reject a
// store containing a self-loop or a duplicate, and a tracked degree table
// that disagrees with a recount of H — the three symptoms the Insert
// hygiene exists to prevent.
func TestCheckInvariantsCatchesHygieneViolations(t *testing.T) {
	p := ParamsForBeta(8)
	corrupt := func(mutate func(s *Subgraph)) error {
		s := New(4, p)
		s.Insert(graph.Edge{U: 0, V: 1})
		mutate(s)
		return s.CheckInvariants()
	}
	if err := corrupt(func(s *Subgraph) {
		s.edges = append(s.edges, graph.Edge{U: 2, V: 2})
		s.inH = append(s.inH, false)
	}); err == nil {
		t.Fatal("stored self-loop passed CheckInvariants")
	}
	if err := corrupt(func(s *Subgraph) {
		s.edges = append(s.edges, graph.Edge{U: 1, V: 0})
		s.inH = append(s.inH, false)
	}); err == nil {
		t.Fatal("stored duplicate passed CheckInvariants")
	}
	if err := corrupt(func(s *Subgraph) {
		s.deg[3] = 2 // skewed bookkeeping, the pre-fix self-loop symptom
	}); err == nil {
		t.Fatal("skewed H-degree table passed CheckInvariants")
	}
}

// TestGrowWithoutHint: inserting past the size hint must grow the tables
// instead of panicking (headerless sources discover n late).
func TestGrowWithoutHint(t *testing.T) {
	s := New(0, ParamsForBeta(8))
	s.Insert(graph.Edge{U: 5, V: 9})
	s.Insert(graph.Edge{U: 900, V: 2})
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 {
		t.Fatalf("|H| = %d, want 2", s.Size())
	}
}
