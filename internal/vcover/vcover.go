// Package vcover implements the vertex-cover substrate: the classic
// 2-approximation via maximal matching, a bucket-queue greedy (H_n
// approximation), an exact branch-and-bound reference for small instances,
// Konig's-theorem exact minimum vertex cover for bipartite graphs (the test
// suite's ground truth), and the Parnas-Ron global peeling baseline that the
// paper's VC-Coreset (Theorem 2) modifies.
package vcover

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/matching"
)

// Verify checks that cover is a feasible vertex cover of (n, edges):
// ids in range and every edge has at least one covered endpoint.
func Verify(n int, edges []graph.Edge, cover []graph.ID) error {
	in := make([]bool, n)
	for _, v := range cover {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("vcover: vertex %d out of range [0,%d)", v, n)
		}
		in[v] = true
	}
	for _, e := range edges {
		if !in[e.U] && !in[e.V] {
			return fmt.Errorf("vcover: edge %v uncovered", e)
		}
	}
	return nil
}

// Dedup sorts and deduplicates a cover in place, returning the result.
func Dedup(cover []graph.ID) []graph.ID {
	sort.Slice(cover, func(i, j int) bool { return cover[i] < cover[j] })
	out := cover[:0]
	for i, v := range cover {
		if i == 0 || v != cover[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// FromMatching returns the endpoints of a maximal matching of the edge set,
// the classic 2-approximation: any vertex cover must contain at least one
// endpoint of each matched edge.
func FromMatching(n int, edges []graph.Edge) []graph.ID {
	m := matching.MaximalGreedy(n, edges)
	out := make([]graph.ID, 0, 2*m.Size())
	for _, e := range m.Edges() {
		out = append(out, e.U, e.V)
	}
	return Dedup(out)
}

// GreedyDegree repeatedly adds a maximum-residual-degree vertex to the cover
// until no edges remain — the H_n-approximation. Implemented with a lazy
// bucket queue for O(n + m) total time.
func GreedyDegree(n int, edges []graph.Edge) []graph.ID {
	res := graph.NewResidual(n, edges)
	maxDeg := res.MaxDegree()
	buckets := make([][]graph.ID, maxDeg+1)
	for v := 0; v < n; v++ {
		if d := res.Degree(graph.ID(v)); d > 0 {
			buckets[d] = append(buckets[d], graph.ID(v))
		}
	}
	var cover []graph.ID
	for d := maxDeg; d > 0; {
		if len(buckets[d]) == 0 {
			d--
			continue
		}
		v := buckets[d][len(buckets[d])-1]
		buckets[d] = buckets[d][:len(buckets[d])-1]
		cur := res.Degree(v)
		if cur == 0 {
			continue // stale entry: already isolated or removed
		}
		if cur != d {
			// Degree decayed since enqueue; requeue at the true bucket.
			buckets[cur] = append(buckets[cur], v)
			continue
		}
		cover = append(cover, v)
		res.Remove(v)
	}
	return Dedup(cover)
}

// ExactSmall computes a minimum vertex cover by branch and bound. Intended
// as a test oracle; panics if n > 64 to prevent accidental use on large
// inputs (worst-case exponential time).
func ExactSmall(n int, edges []graph.Edge) []graph.ID {
	if n > 64 {
		panic("vcover: ExactSmall limited to n <= 64")
	}
	edges = graph.DedupEdges(append([]graph.Edge(nil), edges...))
	// Upper bound from greedy seeds the pruning.
	best := GreedyDegree(n, edges)
	inCover := make([]bool, n)
	cur := make([]graph.ID, 0, n)

	adj := graph.BuildAdj(n, edges)
	var rec func()
	rec = func() {
		if len(cur) >= len(best) {
			return
		}
		// Find the first uncovered edge.
		var pick graph.Edge
		found := false
		for _, e := range edges {
			if !inCover[e.U] && !inCover[e.V] {
				pick = e
				found = true
				break
			}
		}
		if !found {
			best = append(best[:0:0], cur...)
			return
		}
		// Degree-aware branching: try the higher-degree endpoint first.
		u, v := pick.U, pick.V
		if adj.Degree(v) > adj.Degree(u) {
			u, v = v, u
		}
		for _, w := range []graph.ID{u, v} {
			inCover[w] = true
			cur = append(cur, w)
			rec()
			cur = cur[:len(cur)-1]
			inCover[w] = false
		}
	}
	rec()
	return Dedup(best)
}

// KonigCover computes an exact minimum vertex cover of a bipartite graph via
// Konig's theorem: compute a maximum matching, take Z = vertices reachable
// from unmatched left vertices by alternating paths; the cover is
// (L \ Z) ∪ (R ∩ Z) and its size equals the maximum matching size.
// It returns cover vertex ids in the combined space of b.ToGraph()
// (left ids [0,NL), right ids NL+r).
func KonigCover(b *graph.Bipartite) []graph.ID {
	matchL, matchR, _ := HKAdapter(b)
	nl := b.NL
	// Right adjacency of each left vertex.
	adjL := make([][]graph.ID, nl)
	for _, e := range b.Edges {
		adjL[e.U] = append(adjL[e.U], e.V)
	}
	visitedL := make([]bool, nl)
	visitedR := make([]bool, b.NR)
	var queue []graph.ID
	for u := 0; u < nl; u++ {
		if matchL[u] == -1 {
			visitedL[u] = true
			queue = append(queue, graph.ID(u))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range adjL[u] {
			if visitedR[v] {
				continue
			}
			// Traverse a non-matching edge L->R ...
			visitedR[v] = true
			// ... then the matching edge R->L, if any.
			if w := matchR[v]; w != -1 && !visitedL[w] {
				visitedL[w] = true
				queue = append(queue, w)
			}
		}
	}
	var cover []graph.ID
	for u := 0; u < nl; u++ {
		if !visitedL[u] {
			cover = append(cover, graph.ID(u))
		}
	}
	for v := 0; v < b.NR; v++ {
		if visitedR[v] {
			cover = append(cover, graph.ID(nl+v))
		}
	}
	return cover
}

// HKAdapter exposes the Hopcroft-Karp result in bipartite-local ids; split
// out so KonigCover and tests share one call.
func HKAdapter(b *graph.Bipartite) (matchL, matchR []graph.ID, size int) {
	return matching.HopcroftKarp(b)
}

// ParnasRon is the global peeling baseline the paper's coreset modifies
// (Parnas & Ron 2007): iteratively remove all vertices with residual degree
// at least n/2^j for j = 1, 2, ..., until the threshold reaches the floor
// maxFloor (the removed vertices form the cover's core), then finish with
// the 2-approximation on the sparse remainder. Returns the cover.
func ParnasRon(n int, edges []graph.Edge, maxFloor int) []graph.ID {
	if maxFloor < 1 {
		maxFloor = 1
	}
	res := graph.NewResidual(n, edges)
	var cover []graph.ID
	for thr := n / 2; thr >= maxFloor; thr /= 2 {
		cover = append(cover, res.RemoveAtLeast(thr)...)
		if thr == 1 {
			break
		}
	}
	rest := res.LiveEdges()
	cover = append(cover, FromMatching(n, rest)...)
	return Dedup(cover)
}

// MinCoverSizeLowerBound returns a trivial lower bound on VC(G): the size of
// any maximal matching (each matched edge needs a distinct cover vertex).
func MinCoverSizeLowerBound(n int, edges []graph.Edge) int {
	return matching.MaximalGreedy(n, edges).Size()
}
