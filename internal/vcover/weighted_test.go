package vcover

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestWeightedLocalRatioFeasible(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(30) + 2
		edges := randGraph(r, n, 0.3)
		w := make([]float64, n)
		for i := range w {
			w[i] = 1 + r.Float64()*9
		}
		cover := WeightedLocalRatio(n, edges, w)
		if err := Verify(n, edges, cover); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWeightedLocalRatioPrefersCheapCenter(t *testing.T) {
	// Star with cheap center and expensive leaves: local ratio takes the
	// center (its residual empties first on every edge).
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}
	w := []float64{1, 100, 100, 100}
	cover := WeightedLocalRatio(4, edges, w)
	if len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("cover = %v, want [0]", cover)
	}
}

func TestWeightedLocalRatioIs2Approx(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 80; trial++ {
		n := r.Intn(12) + 2
		edges := randGraph(r, n, 0.35)
		w := make([]float64, n)
		for i := range w {
			w[i] = 1 + float64(r.Intn(20))
		}
		lr := CoverWeight(WeightedLocalRatio(n, edges, w), w)
		opt := CoverWeight(ExactWeightedSmall(n, edges, w), w)
		if lr > 2*opt+1e-9 {
			t.Fatalf("trial %d: local ratio %v > 2*opt %v", trial, lr, opt)
		}
		if lr < opt-1e-9 {
			t.Fatalf("trial %d: local ratio %v below opt %v (infeasible oracle?)", trial, lr, opt)
		}
	}
}

func TestExactWeightedSmallKnown(t *testing.T) {
	// Triangle with one heavy vertex: cover must be the two light ones.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	w := []float64{1, 50, 1}
	cover := ExactWeightedSmall(3, edges, w)
	if err := Verify(3, edges, cover); err != nil {
		t.Fatal(err)
	}
	if got := CoverWeight(cover, w); math.Abs(got-2) > 1e-9 {
		t.Fatalf("weight = %v, want 2", got)
	}
	// Unweighted behavior when all weights equal.
	edges2 := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}
	cover2 := ExactWeightedSmall(4, edges2, []float64{1, 1, 1, 1})
	if len(cover2) != 1 || cover2[0] != 0 {
		t.Fatalf("cover = %v, want [0]", cover2)
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"len mismatch":    func() { WeightedLocalRatio(3, nil, []float64{1}) },
		"negative weight": func() { WeightedLocalRatio(1, nil, []float64{-1}) },
		"oracle too big":  func() { ExactWeightedSmall(41, nil, make([]float64, 41)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCoverWeight(t *testing.T) {
	if got := CoverWeight([]graph.ID{0, 2}, []float64{1.5, 7, 2.5}); got != 4 {
		t.Fatalf("CoverWeight = %v", got)
	}
	if got := CoverWeight(nil, nil); got != 0 {
		t.Fatalf("empty CoverWeight = %v", got)
	}
}
