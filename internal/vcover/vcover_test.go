package vcover

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
)

func randGraph(r *rng.RNG, n int, p float64) []graph.Edge {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
			}
		}
	}
	return edges
}

func TestVerify(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	if err := Verify(3, edges, []graph.ID{1}); err != nil {
		t.Fatalf("vertex 1 covers both edges: %v", err)
	}
	if err := Verify(3, edges, []graph.ID{0}); err == nil {
		t.Fatal("accepted infeasible cover")
	}
	if err := Verify(3, edges, []graph.ID{5}); err == nil {
		t.Fatal("accepted out-of-range vertex")
	}
}

func TestDedup(t *testing.T) {
	got := Dedup([]graph.ID{3, 1, 3, 2, 1})
	want := []graph.ID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dedup = %v, want %v", got, want)
		}
	}
}

func TestFromMatchingFeasibleAnd2Approx(t *testing.T) {
	r := rng.New(1)
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%25) + 2
		p := float64(pRaw) / 255
		edges := randGraph(r, n, p)
		cover := FromMatching(n, edges)
		if Verify(n, edges, cover) != nil {
			return false
		}
		// 2-approximation: |cover| <= 2 * MM(G) <= 2 * VC(G) * ... but
		// MM <= VC always, so |cover| = 2*|maximal matching| <= 2*VC.
		lb := MinCoverSizeLowerBound(n, edges)
		return len(cover) <= 2*lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDegreeFeasible(t *testing.T) {
	r := rng.New(3)
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		p := float64(pRaw) / 255
		edges := randGraph(r, n, p)
		cover := GreedyDegree(n, edges)
		return Verify(n, edges, cover) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDegreeStar(t *testing.T) {
	// Star: greedy must pick only the center.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}
	cover := GreedyDegree(5, edges)
	if len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("GreedyDegree on star = %v, want [0]", cover)
	}
}

func TestExactSmallKnownValues(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []graph.Edge
		want  int
	}{
		{"triangle", 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, 2},
		{"star", 5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}, 1},
		{"P4", 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, 2},
		{"C4", 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}}, 2},
		{"C5", 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}}, 3},
		{"empty", 4, nil, 0},
		{"K4", 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cover := ExactSmall(tc.n, tc.edges)
			if err := Verify(tc.n, tc.edges, cover); err != nil {
				t.Fatal(err)
			}
			if len(cover) != tc.want {
				t.Fatalf("got %d, want %d (%v)", len(cover), tc.want, cover)
			}
		})
	}
}

func TestExactSmallMatchesMatchingDuality(t *testing.T) {
	// On any graph, MM(G) <= VC(G) <= 2*MM(G).
	r := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(12) + 2
		edges := randGraph(r, n, 0.3)
		vc := len(ExactSmall(n, edges))
		mm := matching.BruteForceSize(n, edges)
		if vc < mm || vc > 2*mm {
			t.Fatalf("duality violated: VC=%d MM=%d (n=%d, edges=%v)", vc, mm, n, edges)
		}
	}
}

func TestKonigMatchesExactAndMatching(t *testing.T) {
	// Konig: on bipartite graphs min VC size == max matching size, and it
	// must agree with the branch-and-bound oracle.
	r := rng.New(7)
	for trial := 0; trial < 150; trial++ {
		nl := r.Intn(7) + 1
		nr := r.Intn(7) + 1
		var edges []graph.Edge
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if r.Bernoulli(0.35) {
					edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
				}
			}
		}
		b := graph.NewBipartite(nl, nr, edges)
		cover := KonigCover(b)
		g := b.ToGraph()
		if err := Verify(g.N, g.Edges, cover); err != nil {
			t.Fatalf("trial %d: Konig cover infeasible: %v", trial, err)
		}
		_, _, mm := HKAdapter(b)
		if len(cover) != mm {
			t.Fatalf("trial %d: |Konig| = %d, MM = %d", trial, len(cover), mm)
		}
		exact := ExactSmall(g.N, g.Edges)
		if len(cover) != len(exact) {
			t.Fatalf("trial %d: Konig = %d, exact = %d", trial, len(cover), len(exact))
		}
	}
}

func TestParnasRonFeasible(t *testing.T) {
	r := rng.New(11)
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 2
		p := float64(pRaw) / 510 // up to 0.5
		edges := randGraph(r, n, p)
		cover := ParnasRon(n, edges, 4)
		return Verify(n, edges, cover) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestParnasRonOnStarIsSmall(t *testing.T) {
	// Star with 1000 leaves: peeling removes the center immediately; the
	// cover should be tiny (1 vertex), not the leaves.
	n := 1001
	edges := make([]graph.Edge, 0, 1000)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.ID(v)})
	}
	cover := ParnasRon(n, edges, 4)
	if err := Verify(n, edges, cover); err != nil {
		t.Fatal(err)
	}
	if len(cover) > 2 {
		t.Fatalf("ParnasRon on star = %d vertices, want <= 2", len(cover))
	}
}

func TestGreedyVsExactRatio(t *testing.T) {
	// Greedy is an H_n approximation; on small instances the observed
	// ratio should stay below ln(n)+1.
	r := rng.New(13)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(14) + 4
		edges := randGraph(r, n, 0.3)
		if len(edges) == 0 {
			continue
		}
		g := len(GreedyDegree(n, edges))
		e := len(ExactSmall(n, edges))
		if e > 0 && float64(g) > 3.9*float64(e) {
			t.Fatalf("greedy ratio %d/%d too large", g, e)
		}
	}
}

func TestExactSmallPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExactSmall accepted n > 64")
		}
	}()
	ExactSmall(65, nil)
}

func BenchmarkGreedyDegree(b *testing.B) {
	r := rng.New(1)
	edges := randGraph(r, 2000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyDegree(2000, edges)
	}
}

func BenchmarkFromMatching(b *testing.B) {
	r := rng.New(2)
	edges := randGraph(r, 2000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromMatching(2000, edges)
	}
}
