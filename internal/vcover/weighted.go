package vcover

import (
	"repro/internal/graph"
)

// Weighted vertex cover substrate: vertices carry non-negative weights and
// the goal is a minimum-weight cover. Used by the weighted extension of the
// paper's VC coreset (Section 1.1) and its experiment E15.

// CoverWeight sums the weights of a cover.
func CoverWeight(cover []graph.ID, w []float64) float64 {
	total := 0.0
	for _, v := range cover {
		total += w[v]
	}
	return total
}

// WeightedLocalRatio is the classical Bar-Yehuda-Even local-ratio
// 2-approximation for minimum-weight vertex cover: scan the edges; for each
// uncovered edge pay delta = min(residual weight of endpoints) on both
// endpoints; vertices whose residual reaches zero join the cover. It is the
// centralized reference for the distributed weighted pipeline. Panics on
// negative weights.
func WeightedLocalRatio(n int, edges []graph.Edge, w []float64) []graph.ID {
	if len(w) != n {
		panic("vcover: weight vector length mismatch")
	}
	residual := make([]float64, n)
	for i, x := range w {
		if x < 0 {
			panic("vcover: negative vertex weight")
		}
		residual[i] = x
	}
	inCover := make([]bool, n)
	var cover []graph.ID
	take := func(v graph.ID) {
		if !inCover[v] {
			inCover[v] = true
			cover = append(cover, v)
		}
	}
	for _, e := range edges {
		if e.U == e.V || inCover[e.U] || inCover[e.V] {
			continue
		}
		delta := residual[e.U]
		if residual[e.V] < delta {
			delta = residual[e.V]
		}
		residual[e.U] -= delta
		residual[e.V] -= delta
		if residual[e.U] <= 0 {
			take(e.U)
		}
		if residual[e.V] <= 0 {
			take(e.V)
		}
	}
	return Dedup(cover)
}

// ExactWeightedSmall computes a minimum-weight vertex cover by branch and
// bound; test oracle only (panics if n > 40).
func ExactWeightedSmall(n int, edges []graph.Edge, w []float64) []graph.ID {
	if n > 40 {
		panic("vcover: ExactWeightedSmall limited to n <= 40")
	}
	if len(w) != n {
		panic("vcover: weight vector length mismatch")
	}
	dedup := graph.DedupEdges(append([]graph.Edge(nil), edges...))
	bestCover := WeightedLocalRatio(n, dedup, w)
	bestCost := CoverWeight(bestCover, w)
	inCover := make([]bool, n)
	var cur []graph.ID
	var rec func(cost float64)
	rec = func(cost float64) {
		if cost >= bestCost {
			return
		}
		var pick graph.Edge
		found := false
		for _, e := range dedup {
			if !inCover[e.U] && !inCover[e.V] {
				pick = e
				found = true
				break
			}
		}
		if !found {
			bestCost = cost
			bestCover = append(bestCover[:0:0], cur...)
			return
		}
		for _, v := range []graph.ID{pick.U, pick.V} {
			inCover[v] = true
			cur = append(cur, v)
			rec(cost + w[v])
			cur = cur[:len(cur)-1]
			inCover[v] = false
		}
	}
	rec(0)
	return Dedup(bestCover)
}
