package commgame

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestInstanceStructure(t *testing.T) {
	r := rng.New(1)
	inst := New(1000, 300, 1.0/3, r)
	if inst.InT[inst.UStar] {
		t.Fatal("u* must lie outside T")
	}
	// Alice holds S ∪ {u*}; S ⊆ T.
	found := false
	for _, v := range inst.Alice {
		if v == inst.UStar {
			found = true
		} else if !inst.InT[v] {
			t.Fatalf("Alice element %d outside T is not u*", v)
		}
	}
	if !found {
		t.Fatal("u* missing from Alice's input")
	}
	// |S| concentrates near t/3.
	s := len(inst.Alice) - 1
	if math.Abs(float64(s)-100) > 40 {
		t.Fatalf("|S| = %d, want ~100", s)
	}
}

func TestSubsetStrategyFullBudgetAlwaysWins(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		inst := New(500, 150, 1.0/3, r)
		res := SubsetStrategy(inst, 1<<20, r) // unbounded budget
		if !res.Success {
			t.Fatalf("trial %d: full-input subset strategy failed", trial)
		}
		if len(res.X) != 1 {
			t.Fatalf("trial %d: |X| = %d, want 1 (Bob filters by T)", trial, len(res.X))
		}
	}
}

func TestSubsetStrategySuccessScalesWithBudget(t *testing.T) {
	// P(success) ≈ sent/|Alice|: quarter budget ≈ 25%.
	r := rng.New(5)
	const trials = 400
	wins := 0
	var fracSum float64
	for i := 0; i < trials; i++ {
		inst := New(1024, 300, 1.0/3, r)
		per := idBits(inst.N)
		budget := per * len(inst.Alice) / 4
		res := SubsetStrategy(inst, budget, r)
		fracSum += 0.25
		if res.Success {
			wins++
		}
		if res.BitsUsed > budget {
			t.Fatalf("strategy overspent: %d > %d", res.BitsUsed, budget)
		}
	}
	got := float64(wins) / trials
	want := fracSum / trials
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("success rate %.3f, want ~%.3f", got, want)
	}
}

func TestHashStrategyAlwaysSucceeds(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		inst := New(800, 200, 1.0/3, r)
		res := HashStrategy(inst, 12, r)
		if !res.Success {
			t.Fatalf("trial %d: hash strategy must never miss u*", trial)
		}
	}
}

func TestHashStrategyOutputShrinksWithBits(t *testing.T) {
	r := rng.New(9)
	var small, large float64
	const trials = 30
	for i := 0; i < trials; i++ {
		inst := New(2048, 512, 1.0/3, r)
		small += float64(len(HashStrategy(inst, 4, r).X))
		large += float64(len(HashStrategy(inst, 16, r).X))
	}
	small /= trials
	large /= trials
	if large >= small {
		t.Fatalf("more hash bits should shrink |X|: 4 bits -> %.1f, 16 bits -> %.1f", small, large)
	}
	if large > 8 {
		t.Fatalf("16-bit hashes should isolate u*: |X| = %.1f", large)
	}
}

func TestHashStrategyBitAccounting(t *testing.T) {
	r := rng.New(11)
	inst := New(512, 128, 1.0/3, r)
	res := HashStrategy(inst, 10, r)
	if res.BitsUsed != len(inst.Alice)*10 {
		t.Fatalf("bits = %d, want %d", res.BitsUsed, len(inst.Alice)*10)
	}
}

func TestPanics(t *testing.T) {
	r := rng.New(13)
	for name, f := range map[string]func(){
		"t >= n":    func() { New(5, 5, 0.3, r) },
		"hash bits": func() { HashStrategy(New(10, 3, 0.3, r), 0, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIDBits(t *testing.T) {
	if idBits(2) != 1 || idBits(1024) != 10 || idBits(1025) != 11 {
		t.Fatalf("idBits wrong: %d %d %d", idBits(2), idBits(1024), idBits(1025))
	}
}
