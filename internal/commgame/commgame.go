// Package commgame simulates the Hidden Vertex Problem (HVP), the two-player
// one-way communication game at the heart of the paper's Ω(nk/α) vertex
// cover lower bound (Section 5.3.1, Lemma 5.7).
//
// In HVP there are disjoint universes U and V and a public map σ: U → V.
// Bob holds T ⊆ U. Alice holds the unordered set S ∪ {u*}, where S ⊆ T and
// u* is a uniform element of U \ T — Alice cannot tell which of her elements
// is u* because she does not know T. After a single message from Alice, Bob
// must output sets X ⊆ U and Y ⊆ V with u* ∈ X or σ(u*) ∈ Y, and the goal
// is to keep |X ∪ Y| small (o(n)).
//
// Lemma 5.7 proves any protocol achieving |X ∪ Y| ≤ C·n with probability
// 2/3 needs Ω(n/α) = Ω(|S|) bits. The package implements the distribution
// D_HVP (derived from D_VC exactly as in Claim 5.6: each element of T is in
// S independently with probability ≈ 1/3) and the natural protocol
// strategies, so experiment E16 can trace the bits-vs-output-size frontier
// that the lemma bounds.
package commgame

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Instance is one draw from D_HVP.
type Instance struct {
	N     int        // |U|
	InT   []bool     // Bob's input: membership of U in T
	Alice []graph.ID // Alice's input: S ∪ {u*}, in random order
	UStar graph.ID   // ground truth (hidden from both players)
}

// New draws an instance: T is a uniform subset of U of size t, each element
// of T joins S independently with probability pS (Claim 5.6 has pS ≈ 1/3),
// and u* is uniform over U \ T.
func New(n, t int, pS float64, r *rng.RNG) *Instance {
	if t < 0 || t >= n {
		panic("commgame: need 0 <= t < n")
	}
	inst := &Instance{N: n, InT: make([]bool, n)}
	for _, v := range r.SampleK(n, t) {
		inst.InT[v] = true
	}
	var outside []graph.ID
	for v := 0; v < n; v++ {
		if inst.InT[v] {
			if r.Bernoulli(pS) {
				inst.Alice = append(inst.Alice, graph.ID(v))
			}
		} else {
			outside = append(outside, graph.ID(v))
		}
	}
	inst.UStar = outside[r.Intn(len(outside))]
	inst.Alice = append(inst.Alice, inst.UStar)
	r.Shuffle(len(inst.Alice), func(i, j int) {
		inst.Alice[i], inst.Alice[j] = inst.Alice[j], inst.Alice[i]
	})
	return inst
}

// Result of running a strategy.
type Result struct {
	X        []graph.ID // Bob's output set (X ⊆ U; Y is analogous under σ)
	BitsUsed int
	Success  bool // u* ∈ X
}

func (inst *Instance) finish(candidates []graph.ID, bits int) *Result {
	res := &Result{X: candidates, BitsUsed: bits}
	for _, v := range candidates {
		if v == inst.UStar {
			res.Success = true
			break
		}
	}
	return res
}

// idBits is the per-element cost of sending an identifier.
func idBits(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// SubsetStrategy: Alice sends as many of her elements (verbatim) as the bit
// budget allows, chosen uniformly. Bob knows T, so any received element
// outside T is u* (output size 1); if no received element falls outside T,
// Bob fails (equivalently, must output all of U \ T). This is the honest
// "send part of your input" protocol a size-bounded coreset induces.
func SubsetStrategy(inst *Instance, bitBudget int, r *rng.RNG) *Result {
	per := idBits(inst.N)
	s := bitBudget / per
	if s > len(inst.Alice) {
		s = len(inst.Alice)
	}
	var sent []graph.ID
	if s == len(inst.Alice) {
		sent = inst.Alice
	} else {
		for _, i := range r.SampleK(len(inst.Alice), s) {
			sent = append(sent, inst.Alice[i])
		}
	}
	var candidates []graph.ID
	for _, v := range sent {
		if !inst.InT[v] {
			candidates = append(candidates, v)
		}
	}
	return inst.finish(candidates, s*per)
}

// HashStrategy: Alice sends an h-bit hash of EVERY element of her input.
// Bob outputs every element of U \ T whose hash matches one of the received
// hashes: u* is always included (success probability 1) but false positives
// make |X| ≈ (n - t)·|Alice|/2^h. Shrinking |X| to O(1) forces
// h ≈ log(n) and therefore Ω(|S|·log n) bits — the bits-vs-|X| trade-off
// of Lemma 5.7.
func HashStrategy(inst *Instance, hashBits int, r *rng.RNG) *Result {
	if hashBits < 1 || hashBits > 62 {
		panic("commgame: hashBits out of range")
	}
	// Public-coin hash: both parties derive it from a shared stream.
	salt := r.Uint64()
	h := func(v graph.ID) uint64 {
		x := salt ^ (uint64(uint32(v))+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
		x ^= x >> 29
		x *= 0x94d049bb133111eb
		x ^= x >> 32
		return x & (1<<uint(hashBits) - 1)
	}
	sentHashes := make(map[uint64]struct{}, len(inst.Alice))
	for _, v := range inst.Alice {
		sentHashes[h(v)] = struct{}{}
	}
	var candidates []graph.ID
	for v := 0; v < inst.N; v++ {
		if inst.InT[v] {
			continue
		}
		if _, ok := sentHashes[h(graph.ID(v))]; ok {
			candidates = append(candidates, graph.ID(v))
		}
	}
	return inst.finish(candidates, len(inst.Alice)*hashBits)
}
