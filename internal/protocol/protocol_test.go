package protocol

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Fixed: []graph.ID{1, 5, 1 << 20},
		Edges: []graph.Edge{{U: 0, V: 9}, {U: 3, V: 4}},
	}
	dec, err := DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Fixed) != 3 || len(dec.Edges) != 2 {
		t.Fatalf("roundtrip lost data: %+v", dec)
	}
	if dec.Fixed[2] != 1<<20 || dec.Edges[1] != (graph.Edge{U: 3, V: 4}) {
		t.Fatalf("roundtrip corrupted: %+v", dec)
	}
}

func TestMessageEmptyRoundTrip(t *testing.T) {
	m := &Message{}
	dec, err := DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Fixed) != 0 || len(dec.Edges) != 0 {
		t.Fatal("empty message roundtrip wrong")
	}
}

func TestDecodeMessageRejectsTrailing(t *testing.T) {
	buf := (&Message{}).Encode()
	buf = append(buf, 0xAA)
	if _, err := DecodeMessage(buf); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestMatchingProtocolEndToEnd(t *testing.T) {
	r := rng.New(1)
	g := gen.GNP(400, 0.03, r)
	res, err := Run(g, 5, MatchingCoresetProtocol{}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := matching.FromEdges(g.N, res.Solution.MatchingEdges)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
	opt := matching.Maximum(g.N, g.Edges).Size()
	if float64(opt)/float64(m.Size()) > 3 {
		t.Fatalf("protocol ratio too large: opt=%d got=%d", opt, m.Size())
	}
	if res.TotalBytes <= 0 || res.MaxMessageBytes <= 0 || len(res.PerMachineBytes) != 5 {
		t.Fatalf("communication accounting broken: %+v", res)
	}
}

func TestSubsampledProtocolSavesBytes(t *testing.T) {
	r := rng.New(3)
	g := gen.GNP(600, 0.02, r)
	base, err := Run(g, 4, MatchingCoresetProtocol{}, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Run(g, 4, SubsampledMatchingProtocol{Alpha: 4}, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.TotalBytes >= base.TotalBytes {
		t.Fatalf("subsampling saved nothing: %d vs %d", sub.TotalBytes, base.TotalBytes)
	}
	// Solution must still be a valid matching.
	m := matching.FromEdges(g.N, sub.Solution.MatchingEdges)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
}

func TestVCProtocolEndToEnd(t *testing.T) {
	r := rng.New(5)
	g := gen.GNP(500, 0.04, r)
	res, err := Run(g, 4, VCCoresetProtocol{}, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vcover.Verify(g.N, g.Edges, res.Solution.Cover); err != nil {
		t.Fatalf("protocol cover infeasible: %v", err)
	}
}

func TestGroupedVCProtocolEndToEnd(t *testing.T) {
	r := rng.New(7)
	g := gen.GNP(512, 0.04, r)
	res, err := Run(g, 4, GroupedVCProtocol{Alpha: 32}, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vcover.Verify(g.N, g.Edges, res.Solution.Cover); err != nil {
		t.Fatalf("grouped cover infeasible: %v", err)
	}
	// Grouping must reduce communication versus plain VC coresets.
	base, err := Run(g, 4, VCCoresetProtocol{}, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes >= base.TotalBytes {
		t.Fatalf("grouping saved nothing: %d vs %d", res.TotalBytes, base.TotalBytes)
	}
}

func TestMinVCProtocolFeasibleOnSinglePartition(t *testing.T) {
	// With k=1 the baseline is just a local min VC: feasible.
	r := rng.New(9)
	g := gen.GNP(100, 0.05, r)
	res, err := Run(g, 1, MinVCProtocol{}, 19, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vcover.Verify(g.N, g.Edges, res.Solution.Cover); err != nil {
		t.Fatalf("k=1 min-VC baseline infeasible: %v", err)
	}
}

func TestFullGraphProtocolIsExact(t *testing.T) {
	r := rng.New(11)
	g := gen.GNP(200, 0.05, r)
	res, err := Run(g, 4, FullGraphProtocol{Task: "matching"}, 23, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := matching.Maximum(g.N, g.Edges).Size()
	if len(res.Solution.MatchingEdges) != opt {
		t.Fatalf("full-graph protocol not exact: %d vs %d", len(res.Solution.MatchingEdges), opt)
	}
	resVC, err := Run(g, 4, FullGraphProtocol{Task: "vc"}, 23, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vcover.Verify(g.N, g.Edges, resVC.Solution.Cover); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnPartsAdversarial(t *testing.T) {
	r := rng.New(13)
	g := gen.GNP(300, 0.04, r)
	parts := partition.AdversarialByVertex(g.Edges, 4)
	res, err := RunOnParts(g.N, parts, MatchingCoresetProtocol{}, rng.New(29), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := matching.FromEdges(g.N, res.Solution.MatchingEdges)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolDeterministicAcrossWorkerCounts(t *testing.T) {
	r := rng.New(17)
	g := gen.GNP(300, 0.03, r)
	r1, err := Run(g, 6, SubsampledMatchingProtocol{Alpha: 3}, 31, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(g, 6, SubsampledMatchingProtocol{Alpha: 3}, 31, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalBytes != r8.TotalBytes {
		t.Fatalf("worker count changed transcript: %d vs %d bytes", r1.TotalBytes, r8.TotalBytes)
	}
	if len(r1.Solution.MatchingEdges) != len(r8.Solution.MatchingEdges) {
		t.Fatal("worker count changed solution")
	}
}

func TestProtocolNames(t *testing.T) {
	for _, p := range []Protocol{
		MatchingCoresetProtocol{},
		SubsampledMatchingProtocol{Alpha: 2},
		GreedyMaximalProtocol{},
		VCCoresetProtocol{},
		GroupedVCProtocol{Alpha: 8},
		MinVCProtocol{},
		FullGraphProtocol{Task: "vc"},
	} {
		if strings.TrimSpace(p.Name()) == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestCommunicationScalesWithAlpha(t *testing.T) {
	// Remark 5.2 shape: doubling alpha should cut subsampled bytes
	// roughly in half (per-machine matchings are subsampled at 1/alpha).
	r := rng.New(19)
	g := gen.GNP(2000, 0.005, r)
	b2, err := Run(g, 4, SubsampledMatchingProtocol{Alpha: 2}, 37, 0)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := Run(g, 4, SubsampledMatchingProtocol{Alpha: 8}, 37, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b2.TotalBytes) / float64(b8.TotalBytes)
	if ratio < 2 {
		t.Fatalf("alpha scaling too weak: bytes(2)/bytes(8) = %.2f, want >= 2", ratio)
	}
}

func TestDecodeMessageNeverPanicsOnRandomBytes(t *testing.T) {
	// The coordinator decodes machine messages from the wire; arbitrary
	// bytes must produce an error or a valid message, never a panic or an
	// absurd allocation.
	r := rng.New(97)
	for trial := 0; trial < 5000; trial++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r.Uint64())
		}
		msg, err := DecodeMessage(buf)
		if err == nil {
			// Decoded cleanly: re-encoding must reproduce content sizes.
			if len(msg.Fixed) > 8*n+1 || len(msg.Edges) > 8*n+1 {
				t.Fatalf("decoder fabricated data from %d bytes: %d ids, %d edges",
					n, len(msg.Fixed), len(msg.Edges))
			}
		}
	}
}
