// Package protocol simulates the simultaneous communication (coordinator)
// model of the paper: the input graph is randomly k-partitioned, each of the
// k machines computes one summary message of its partition with no
// interaction, and a coordinator computes the final solution from the k
// messages alone.
//
// Faithfulness measures:
//   - one message per machine, no further rounds (simultaneous protocols);
//   - machines run concurrently as goroutines (they share nothing but the
//     public seed, mirroring the model's public randomness);
//   - communication is accounted in real bytes: every message is actually
//     encoded with the varint wire format and decoded by the coordinator,
//     so a protocol cannot cheat by passing pointers.
package protocol

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Message is what a machine sends to the coordinator: a set of vertices to
// fix directly into the solution (vertex-cover protocols) and a set of
// edges. Either part may be empty.
type Message struct {
	Fixed []graph.ID
	Edges []graph.Edge
}

// Encode serializes the message with the varint wire format.
func (m *Message) Encode() []byte {
	buf := graph.AppendIDs(nil, m.Fixed)
	return graph.AppendEdges(buf, m.Edges)
}

// DecodeMessage parses a message produced by Encode.
func DecodeMessage(data []byte) (*Message, error) {
	ids, rest, err := graph.DecodeIDs(data)
	if err != nil {
		return nil, fmt.Errorf("protocol: bad fixed set: %w", err)
	}
	edges, rest, err := graph.DecodeEdges(rest)
	if err != nil {
		return nil, fmt.Errorf("protocol: bad edge set: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes", len(rest))
	}
	return &Message{Fixed: ids, Edges: edges}, nil
}

// Solution is the coordinator's output: a matching (edge list) or a vertex
// cover (vertex list), depending on the protocol.
type Solution struct {
	MatchingEdges []graph.Edge
	Cover         []graph.ID
}

// Protocol is a simultaneous protocol: Summarize runs on each machine
// independently (i is the machine index, r a machine-private stream split
// from the public seed) and Combine runs on the coordinator.
type Protocol interface {
	Name() string
	Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message
	Combine(n, k int, msgs []*Message) *Solution
}

// Result is one protocol execution with its communication transcript.
type Result struct {
	Protocol        string
	K               int
	Solution        *Solution
	PerMachineBytes []int
	TotalBytes      int
	MaxMessageBytes int
	SummarizeTime   time.Duration // wall time of the parallel summary phase
	CombineTime     time.Duration
}

// Run executes the protocol on g with a random k-partitioning derived from
// seed. Machines run concurrently (workers caps the parallelism; 0 means
// GOMAXPROCS). All messages pass through encode/decode.
func Run(g *graph.Graph, k int, p Protocol, seed uint64, workers int) (*Result, error) {
	root := rng.New(seed)
	parts := partition.RandomK(g.Edges, k, root.Split(0))
	return RunOnParts(g.N, parts, p, root, workers)
}

// RunOnParts executes the protocol on an existing partitioning; used by
// experiments that re-use one partitioning across protocols (paired runs
// reduce variance) or that partition adversarially.
func RunOnParts(n int, parts [][]graph.Edge, p Protocol, root *rng.RNG, workers int) (*Result, error) {
	k := len(parts)
	start := time.Now()
	encoded := core.MapParts(parts, workers, func(i int, part []graph.Edge) []byte {
		msg := p.Summarize(n, k, i, part, root.Split(uint64(i)+1))
		return msg.Encode()
	})
	summarizeTime := time.Since(start)

	res := &Result{Protocol: p.Name(), K: k, SummarizeTime: summarizeTime}
	msgs := make([]*Message, k)
	for i, buf := range encoded {
		m, err := DecodeMessage(buf)
		if err != nil {
			return nil, fmt.Errorf("machine %d: %w", i, err)
		}
		msgs[i] = m
		res.PerMachineBytes = append(res.PerMachineBytes, len(buf))
		res.TotalBytes += len(buf)
		if len(buf) > res.MaxMessageBytes {
			res.MaxMessageBytes = len(buf)
		}
	}
	start = time.Now()
	res.Solution = p.Combine(n, k, msgs)
	res.CombineTime = time.Since(start)
	return res, nil
}
