package protocol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/vcover"
)

// MatchingCoresetProtocol is the Theorem 1 protocol: each machine sends a
// maximum matching of its partition (O~(n) bytes); the coordinator outputs a
// maximum matching of the union. O(1)-approximation, O~(nk) communication.
type MatchingCoresetProtocol struct{}

// Name implements Protocol.
func (MatchingCoresetProtocol) Name() string { return "matching-coreset" }

// Summarize implements Protocol.
func (MatchingCoresetProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	return &Message{Edges: core.MatchingCoreset(n, part)}
}

// Combine implements Protocol.
func (MatchingCoresetProtocol) Combine(n, k int, msgs []*Message) *Solution {
	coresets := make([][]graph.Edge, len(msgs))
	for i, m := range msgs {
		coresets[i] = m.Edges
	}
	return &Solution{MatchingEdges: core.ComposeMatching(n, coresets).Edges()}
}

// SubsampledMatchingProtocol is the Remark 5.2 protocol: maximum matchings
// subsampled at rate 1/alpha. O(alpha)-approximation, O~(nk/alpha^2)
// communication — the tight upper bound for Theorem 5.
type SubsampledMatchingProtocol struct {
	Alpha int
}

// Name implements Protocol.
func (p SubsampledMatchingProtocol) Name() string {
	return fmt.Sprintf("subsampled-matching(alpha=%d)", p.Alpha)
}

// Summarize implements Protocol.
func (p SubsampledMatchingProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	return &Message{Edges: core.SubsampledMatchingCoreset(n, part, p.Alpha, r)}
}

// Combine implements Protocol.
func (p SubsampledMatchingProtocol) Combine(n, k int, msgs []*Message) *Solution {
	coresets := make([][]graph.Edge, len(msgs))
	for i, m := range msgs {
		coresets[i] = m.Edges
	}
	return &Solution{MatchingEdges: core.ComposeMatching(n, coresets).Edges()}
}

// GreedyMaximalProtocol is the negative baseline: each machine sends an
// arbitrary (greedy, input-order) maximal matching. The paper shows this is
// only an Ω(k)-approximate coreset in the worst case.
type GreedyMaximalProtocol struct{}

// Name implements Protocol.
func (GreedyMaximalProtocol) Name() string { return "greedy-maximal" }

// Summarize implements Protocol.
func (GreedyMaximalProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	return &Message{Edges: core.MaximalMatchingCoreset(n, part)}
}

// Combine implements Protocol.
func (GreedyMaximalProtocol) Combine(n, k int, msgs []*Message) *Solution {
	coresets := make([][]graph.Edge, len(msgs))
	for i, m := range msgs {
		coresets[i] = m.Edges
	}
	return &Solution{MatchingEdges: core.ComposeMatching(n, coresets).Edges()}
}

// VCCoresetProtocol is the Theorem 2 protocol: each machine peels and sends
// (fixed vertices, residual edges); the coordinator adds a 2-approximate
// cover of the residual union. O(log n)-approximation, O~(nk) communication.
type VCCoresetProtocol struct{}

// Name implements Protocol.
func (VCCoresetProtocol) Name() string { return "vc-coreset" }

// Summarize implements Protocol.
func (VCCoresetProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	cs := core.ComputeVCCoreset(n, k, part)
	return &Message{Fixed: cs.Fixed, Edges: cs.Residual}
}

// Combine implements Protocol.
func (VCCoresetProtocol) Combine(n, k int, msgs []*Message) *Solution {
	coresets := make([]*core.VCCoreset, len(msgs))
	for i, m := range msgs {
		coresets[i] = &core.VCCoreset{Fixed: m.Fixed, Residual: m.Edges}
	}
	return &Solution{Cover: core.ComposeVC(n, coresets)}
}

// GroupedVCProtocol is the Remark 5.8 protocol: vertices are grouped into
// groups of size Θ(alpha/log n) consistently across machines, VC-Coreset
// runs on the contracted multigraph, and the coordinator expands groups.
// O(alpha)-approximation, O~(nk/alpha) communication — the tight upper
// bound for Theorem 6.
type GroupedVCProtocol struct {
	Alpha int
}

// Name implements Protocol.
func (p GroupedVCProtocol) Name() string {
	return fmt.Sprintf("grouped-vc(alpha=%d)", p.Alpha)
}

// Summarize implements Protocol.
func (p GroupedVCProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	gs := core.GroupSizeFor(n, p.Alpha)
	cs := core.GroupedVCCoreset(n, k, gs, part)
	return &Message{Fixed: cs.Fixed, Edges: cs.Residual}
}

// Combine implements Protocol.
func (p GroupedVCProtocol) Combine(n, k int, msgs []*Message) *Solution {
	gs := core.GroupSizeFor(n, p.Alpha)
	coresets := make([]*core.VCCoreset, len(msgs))
	for i, m := range msgs {
		coresets[i] = &core.VCCoreset{Fixed: m.Fixed, Residual: m.Edges}
	}
	return &Solution{Cover: core.ComposeGroupedVC(n, gs, coresets)}
}

// MinVCProtocol is the negative vertex-cover baseline of Section 3.2: each
// machine sends (an adversarially tie-broken) minimum vertex cover of its
// own partition as fixed vertices with no edges.
type MinVCProtocol struct{}

// Name implements Protocol.
func (MinVCProtocol) Name() string { return "min-vc-baseline" }

// Summarize implements Protocol.
func (MinVCProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	cs := core.MinVCCoreset(n, part)
	return &Message{Fixed: cs.Fixed}
}

// Combine implements Protocol.
func (MinVCProtocol) Combine(n, k int, msgs []*Message) *Solution {
	var cover []graph.ID
	for _, m := range msgs {
		cover = append(cover, m.Fixed...)
	}
	return &Solution{Cover: vcover.Dedup(cover)}
}

// FullGraphProtocol is the trivial exact protocol: every machine forwards
// its entire partition. It is the communication ceiling (Θ(m) bytes total)
// against which coreset savings are reported.
type FullGraphProtocol struct {
	// Task selects the coordinator computation: "matching" or "vc".
	Task string
}

// Name implements Protocol.
func (p FullGraphProtocol) Name() string { return "full-graph-" + p.Task }

// Summarize implements Protocol.
func (FullGraphProtocol) Summarize(n, k, i int, part []graph.Edge, r *rng.RNG) *Message {
	return &Message{Edges: part}
}

// Combine implements Protocol.
func (p FullGraphProtocol) Combine(n, k int, msgs []*Message) *Solution {
	var all [][]graph.Edge
	for _, m := range msgs {
		all = append(all, m.Edges)
	}
	union := graph.UnionEdges(all...)
	switch p.Task {
	case "vc":
		return &Solution{Cover: vcover.GreedyDegree(n, union)}
	default:
		return &Solution{MatchingEdges: matching.Maximum(n, union).Edges()}
	}
}
