// Package task is the pluggable task registry: one descriptor per coreset
// family, bundling everything a runtime needs to execute it — the
// per-machine incremental builder (the stream.Machine contract), the wire
// codec for its summary body (byte layout and simulated byte charge), the
// composer that turns a set of summaries into a final solution, and the
// parameter validation every user-facing surface shares.
//
// The paper's framework is generic: ALG(G(i)) summaries over a random
// k-partitioning, composed by any downstream solver. The runtimes reflect
// that — batch (internal/core), stream (internal/stream), cluster
// (internal/cluster) and the coresetd service (internal/service) all
// dispatch through a *Descriptor instead of switching on task names, so a
// new coreset family is a package plus one Register call: no runtime, wire
// or service code changes, and the CLI task lists, the service's
// task-labeled metrics and the worker's HELLO validation pick it up from
// the registry.
//
// Wire compatibility: a descriptor's Wire byte is its identity in the
// cluster protocol's HELLO frame. The bytes of the pre-registry protocol
// are preserved verbatim (matching=1, vc=2, edcs=3, with 4 as the EDCS
// multi-round assignment), so registry-dispatching coordinators and workers
// interoperate with older peers without a protocol version bump.
package task

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/matching"
)

// Params carries the per-run task parameters a descriptor may consume.
// Tasks ignore the fields they do not declare: only descriptors with
// UsesBeta read the EDCS degree constraints.
type Params struct {
	// EDCS is the degree-constraint pair for beta-parameterized tasks
	// (zero otherwise).
	EDCS edcs.Params
}

// Summary is a machine's end-of-stream message to the coordinator: exactly
// one of the coreset fields is set, plus accounting. It is the one message
// type every runtime emits — the streaming goroutines, the cluster
// runtime's worker processes and the batch pipeline's map stage — so the
// seed-parity guarantee (deep-equal summaries for the same (graph, seed,
// k)) is a statement about a single struct.
type Summary struct {
	Coreset []graph.Edge    // edge-list coresets: Theorem 1 matching, EDCS H-edges
	VC      *core.VCCoreset // Theorem 2: peeled vertices + sparse residual
	Verts   []graph.ID      // vertex-set coresets: diversity centers
	Edges   int             // edges routed to this machine
	Stored  int             // edges (or distinct vertices) still held at end of stream
	Live    int             // online telemetry: greedy size, peel count, repair removals
	Bytes   int             // encoded message size (simulated estimate)
}

// Builder is one machine's incremental coreset state. Add is called once
// per routed edge, in arrival order, by that machine's goroutine (or worker
// process) only; Finish is called exactly once, after the stream is
// drained, with the final vertex count.
type Builder interface {
	Add(e graph.Edge)
	Finish(n int) Summary
}

// MachineTelem is a machine's build-phase telemetry, separate from Summary
// (whose wire shape is pinned by the seed-parity codec tests): EDCS
// fixpoint counters that describe how much repair work the build did. All
// fields are zero for builders without incremental repair.
type MachineTelem struct {
	RepairIters int // dirty-vertex rescans in the EDCS repair fixpoint
	Removals    int // H evictions (overfull edges removed by repair)
	PeakCoreset int // largest |H| the machine ever held
}

// Telemetered is the optional Builder extension for build telemetry.
type Telemetered interface {
	Telem() MachineTelem
}

// Solution is a composed final answer. Size is always set (it is the
// cross-runtime parity number); exactly one of the typed fields carries the
// task's solution object.
type Solution struct {
	Size     int                // solution size: matching edges, cover vertices, dispersion
	Matching *matching.Matching // matching-flavored tasks
	Cover    []graph.ID         // vertex cover
	Verts    []graph.ID         // vertex-set solutions (diversity centers)
}

// Descriptor bundles everything the runtimes need to execute one task.
// All function fields except Validate, FixedLen and Verify are required.
type Descriptor struct {
	// Name is the task's user-facing identity: CLI -task values, service
	// job requests, run reports and metric labels.
	Name string
	// Wire is the task byte carried in the cluster protocol's HELLO frame.
	Wire byte
	// WireRounds, when nonzero, is the HELLO task byte of this task's
	// multi-round assignment (internal/rounds); zero means the task is not
	// rounds-capable.
	WireRounds byte
	// UsesBeta declares that the task consumes the EDCS degree constraints:
	// the HELLO frame carries them, the CLI/service accept -beta for it,
	// and Params.EDCS is populated.
	UsesBeta bool

	// NewBuilder returns a fresh per-machine builder for a k-machine run.
	// nHint > 0 declares the vertex count upfront (enables online peeling
	// and table pre-sizing); it never changes the result.
	NewBuilder func(k, nHint int, p Params) Builder
	// AppendBody encodes the task-specific coreset body of s (everything
	// after the shared stats prefix) and returns the extended buffer.
	AppendBody func(dst []byte, s Summary) []byte
	// DecodeBody decodes the coreset body into s — including the simulated
	// byte charge and the exact nil-versus-empty slice shapes Finish
	// produces, which the seed-parity guarantee depends on — and returns
	// the unconsumed tail.
	DecodeBody func(s *Summary, data []byte) (rest []byte, err error)
	// Validate rejects unusable task parameters before a run starts
	// (nil: the task takes none).
	Validate func(p Params) error
	// Batch runs the materialized batch pipeline on g (the simulator's
	// view, internal/core) and returns the composed solution and stats.
	Batch func(g *graph.Graph, k, workers int, seed uint64, p Params) (Solution, *core.PipelineStats)
	// Compose unions the per-machine summaries and solves on the union.
	Compose func(n int, sums []Summary) Solution
	// CoresetLen is the per-machine coreset size folded into run stats.
	CoresetLen func(s Summary) int
	// FixedLen is the per-machine fixed-vertex count (nil: the task has no
	// fixed vertices; vc reports its peeled levels through it).
	FixedLen func(s Summary) int
	// Verify checks a composed solution against the full edge list
	// (nil: no verifier). The batch CLI path runs it as a self-check.
	Verify func(n int, edges []graph.Edge, sol Solution) error

	// CLI display metadata: how cmd/coreset labels this task's output.
	// The summary line is "<SolutionNoun>: <size> <SolutionUnit> (<mode>,
	// k machines)"; the per-machine lines use the *Label fields (empty:
	// the line is omitted).
	SolutionNoun string // e.g. "vertex cover"
	SolutionUnit string // e.g. "vertices"
	CoresetLabel string // e.g. "residual edges per machine"
	FixedLabel   string // e.g. "fixed vertices per machine" (vc only)
	LiveLabel    string // stream-mode live telemetry line (e.g. "live greedy per machine")
	ShowStored   bool   // stream mode: print "stored vs received per machine"
}

// registry is a task table; the package-level Default registry is the one
// every runtime dispatches through, but the type exists separately so
// misuse (duplicate registration, incomplete descriptors) is testable
// without corrupting the global table.
type registry struct {
	byName map[string]*Descriptor
	byWire map[byte]wireEntry
	names  []string // registration order
}

// wireEntry resolves a HELLO task byte to its descriptor; multiRound marks
// the task's WireRounds byte (the multi-round assignment).
type wireEntry struct {
	d          *Descriptor
	multiRound bool
}

func newRegistry() *registry {
	return &registry{byName: make(map[string]*Descriptor), byWire: make(map[byte]wireEntry)}
}

// register validates d completely before touching the tables, so a
// panicking registration never leaves a half-registered task behind.
func (r *registry) register(d *Descriptor) {
	if d.Name == "" {
		panic("task: descriptor with empty name")
	}
	if _, dup := r.byName[d.Name]; dup {
		panic(fmt.Sprintf("task: duplicate registration of task %q", d.Name))
	}
	if d.Wire == 0 {
		panic(fmt.Sprintf("task %q: wire byte 0 is reserved", d.Name))
	}
	if _, dup := r.byWire[d.Wire]; dup {
		panic(fmt.Sprintf("task %q: wire byte 0x%02x already registered", d.Name, d.Wire))
	}
	if d.WireRounds != 0 {
		if d.WireRounds == d.Wire {
			panic(fmt.Sprintf("task %q: rounds wire byte equals the single-round byte", d.Name))
		}
		if _, dup := r.byWire[d.WireRounds]; dup {
			panic(fmt.Sprintf("task %q: wire byte 0x%02x already registered", d.Name, d.WireRounds))
		}
	}
	for _, req := range []struct {
		name string
		ok   bool
	}{
		{"NewBuilder", d.NewBuilder != nil},
		{"AppendBody", d.AppendBody != nil},
		{"DecodeBody", d.DecodeBody != nil},
		{"Batch", d.Batch != nil},
		{"Compose", d.Compose != nil},
		{"CoresetLen", d.CoresetLen != nil},
	} {
		if !req.ok {
			panic(fmt.Sprintf("task %q: nil %s", d.Name, req.name))
		}
	}
	r.byName[d.Name] = d
	r.byWire[d.Wire] = wireEntry{d: d}
	if d.WireRounds != 0 {
		r.byWire[d.WireRounds] = wireEntry{d: d, multiRound: true}
	}
	r.names = append(r.names, d.Name)
}

func (r *registry) get(name string) (*Descriptor, bool) {
	d, ok := r.byName[name]
	return d, ok
}

func (r *registry) byWireByte(b byte) (d *Descriptor, multiRound, ok bool) {
	e, ok := r.byWire[b]
	return e.d, e.multiRound, ok
}

func (r *registry) wireRange() string {
	bs := make([]int, 0, len(r.byWire))
	for b := range r.byWire {
		bs = append(bs, int(b))
	}
	sort.Ints(bs)
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = fmt.Sprintf("0x%02x", b)
	}
	return strings.Join(parts, ", ")
}

// defaultRegistry holds every task registered through Register; populated
// by this package's init (tasks.go).
var defaultRegistry = newRegistry()

// Register adds a task descriptor to the default registry. It panics on a
// duplicate name or wire byte and on incomplete descriptors (nil builder,
// codec or composer): registration happens in init, so misuse is a
// programming error caught by the first test that imports the package.
func Register(d Descriptor) { defaultRegistry.register(&d) }

// Get returns the descriptor registered under name.
func Get(name string) (*Descriptor, bool) { return defaultRegistry.get(name) }

// MustGet is Get for names that are known to be registered; it panics on an
// unknown name.
func MustGet(name string) *Descriptor {
	d, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("task: unknown task %q", name))
	}
	return d
}

// Names returns the registered task names in registration order. It is the
// single source of truth for every accepted-task list: CLI usage strings,
// service validation and metric label pre-registration.
func Names() []string {
	return append([]string(nil), defaultRegistry.names...)
}

// ByWire resolves a HELLO task byte: the owning descriptor, whether the
// byte is the task's multi-round assignment, and whether it is known at
// all.
func ByWire(b byte) (d *Descriptor, multiRound, ok bool) {
	return defaultRegistry.byWireByte(b)
}

// WireRange lists every registered wire byte (for unknown-task errors).
func WireRange() string { return defaultRegistry.wireRange() }

// RoundsCapable returns the descriptor of the (single) rounds-capable task,
// or nil if none is registered. The multi-round driver (internal/rounds)
// is EDCS-shaped, so exactly one task may declare WireRounds today.
func RoundsCapable() *Descriptor {
	for _, name := range defaultRegistry.names {
		if d := defaultRegistry.byName[name]; d.WireRounds != 0 {
			return d
		}
	}
	return nil
}

// betaCapable returns the first registered descriptor that consumes the
// EDCS degree constraints (nil if none): the task named in "beta only
// applies to" validation errors.
func betaCapable() *Descriptor {
	for _, name := range defaultRegistry.names {
		if d := defaultRegistry.byName[name]; d.UsesBeta {
			return d
		}
	}
	return nil
}
