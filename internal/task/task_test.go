package task

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// minimalDescriptor returns a descriptor that passes every registration
// check, for misuse tests to break one field at a time.
func minimalDescriptor(name string, wire byte) Descriptor {
	return Descriptor{
		Name:       name,
		Wire:       wire,
		NewBuilder: func(k, nHint int, p Params) Builder { return &collect{} },
		AppendBody: func(dst []byte, s Summary) []byte { return dst },
		DecodeBody: func(s *Summary, data []byte) ([]byte, error) { return data, nil },
		Batch: func(g *graph.Graph, k, workers int, seed uint64, p Params) (Solution, *core.PipelineStats) {
			return Solution{}, nil
		},
		Compose:    func(n int, sums []Summary) Solution { return Solution{} },
		CoresetLen: func(s Summary) int { return 0 },
	}
}

type collect struct{}

func (collect) Add(e graph.Edge)     {}
func (collect) Finish(n int) Summary { return Summary{} }

// expectPanic runs f and asserts it panics with a message containing want.
func expectPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	f()
}

func TestRegisterRejectsMisuse(t *testing.T) {
	fresh := func() *registry {
		r := newRegistry()
		d := minimalDescriptor("a", 1)
		r.register(&d)
		return r
	}

	t.Run("duplicate name panics", func(t *testing.T) {
		r := fresh()
		d := minimalDescriptor("a", 2)
		expectPanic(t, `duplicate registration of task "a"`, func() { r.register(&d) })
	})
	t.Run("duplicate wire byte panics", func(t *testing.T) {
		r := fresh()
		d := minimalDescriptor("b", 1)
		expectPanic(t, "wire byte 0x01 already registered", func() { r.register(&d) })
	})
	t.Run("wire byte zero reserved", func(t *testing.T) {
		r := fresh()
		d := minimalDescriptor("b", 0)
		expectPanic(t, "wire byte 0 is reserved", func() { r.register(&d) })
	})
	t.Run("rounds byte equal to wire byte panics", func(t *testing.T) {
		r := fresh()
		d := minimalDescriptor("b", 2)
		d.WireRounds = 2
		expectPanic(t, "rounds wire byte equals the single-round byte", func() { r.register(&d) })
	})
	t.Run("rounds byte colliding with another task panics", func(t *testing.T) {
		r := fresh()
		d := minimalDescriptor("b", 2)
		d.WireRounds = 1
		expectPanic(t, "wire byte 0x01 already registered", func() { r.register(&d) })
	})
	t.Run("empty name panics", func(t *testing.T) {
		r := fresh()
		d := minimalDescriptor("", 2)
		expectPanic(t, "empty name", func() { r.register(&d) })
	})
	for _, field := range []string{"NewBuilder", "AppendBody", "DecodeBody", "Batch", "Compose", "CoresetLen"} {
		t.Run("nil "+field+" rejected", func(t *testing.T) {
			r := fresh()
			d := minimalDescriptor("b", 2)
			switch field {
			case "NewBuilder":
				d.NewBuilder = nil
			case "AppendBody":
				d.AppendBody = nil
			case "DecodeBody":
				d.DecodeBody = nil
			case "Batch":
				d.Batch = nil
			case "Compose":
				d.Compose = nil
			case "CoresetLen":
				d.CoresetLen = nil
			}
			expectPanic(t, "nil "+field, func() { r.register(&d) })
		})
	}
}

// A panicking registration must leave the registry untouched: the checks all
// run before any table insert.
func TestRegisterPanicLeavesRegistryClean(t *testing.T) {
	r := newRegistry()
	a := minimalDescriptor("a", 1)
	r.register(&a)
	bad := minimalDescriptor("b", 2)
	bad.Compose = nil
	expectPanic(t, "nil Compose", func() { r.register(&bad) })
	if _, ok := r.get("b"); ok {
		t.Fatal("half-registered task visible by name")
	}
	if _, _, ok := r.byWireByte(2); ok {
		t.Fatal("half-registered task visible by wire byte")
	}
	if len(r.names) != 1 {
		t.Fatalf("names = %v after failed registration", r.names)
	}
}

func TestDefaultRegistryContents(t *testing.T) {
	want := []string{"matching", "vc", "edcs", "diversity"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	// Names returns a copy: mutating it must not corrupt the registry.
	Names()[0] = "corrupted"
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() not a copy: %v", got)
	}

	for _, tc := range []struct {
		wire       byte
		name       string
		multiRound bool
	}{
		{1, "matching", false},
		{2, "vc", false},
		{3, "edcs", false},
		{4, "edcs", true},
		{5, "diversity", false},
	} {
		d, multiRound, ok := ByWire(tc.wire)
		if !ok {
			t.Fatalf("ByWire(%d): unknown", tc.wire)
		}
		if d.Name != tc.name || multiRound != tc.multiRound {
			t.Fatalf("ByWire(%d) = (%s, %v), want (%s, %v)", tc.wire, d.Name, multiRound, tc.name, tc.multiRound)
		}
	}
	if _, _, ok := ByWire(0); ok {
		t.Fatal("ByWire(0) resolved")
	}
	if _, _, ok := ByWire(6); ok {
		t.Fatal("ByWire(6) resolved")
	}
	if got, want := WireRange(), "0x01, 0x02, 0x03, 0x04, 0x05"; got != want {
		t.Fatalf("WireRange() = %q, want %q", got, want)
	}
	if d := RoundsCapable(); d == nil || d.Name != "edcs" {
		t.Fatalf("RoundsCapable() = %v, want edcs", d)
	}
	if d := betaCapable(); d == nil || d.Name != "edcs" {
		t.Fatalf("betaCapable() = %v, want edcs", d)
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	expectPanic(t, `unknown task "nope"`, func() { MustGet("nope") })
	if d := MustGet("matching"); d.Name != "matching" {
		t.Fatalf("MustGet(matching) = %q", d.Name)
	}
}

// The validation table is shared between the service (via
// service.ValidateTaskParams) and both CLIs; the message text is golden —
// cmd/coreset's own goldens pin the same strings with the "coreset: " prefix.
func TestValidateParamsMessages(t *testing.T) {
	for name, tc := range map[string]struct {
		task         string
		beta, rounds int
		want         string // "" means accepted
	}{
		"zero values always pass":    {"matching", 0, 0, ""},
		"unknown task passes zeroes": {"nope", 0, 0, ""},
		"edcs beta ok":               {"edcs", 16, 0, ""},
		"edcs rounds ok":             {"edcs", 0, 3, ""},
		"beta on matching":           {"matching", 16, 0, `beta only applies to task "edcs" (got task "matching")`},
		"beta on diversity":          {"diversity", 16, 0, `beta only applies to task "edcs" (got task "diversity")`},
		"beta on unknown task":       {"nope", 16, 0, `beta only applies to task "edcs" (got task "nope")`},
		"beta too small":             {"edcs", 1, 0, `beta must be in [2, 1048576] (got 1)`},
		"beta too large":             {"edcs", 2000000, 0, `beta must be in [2, 1048576] (got 2000000)`},
		"rounds on vc":               {"vc", 0, 2, `rounds only applies to task "edcs" (got task "vc")`},
		"rounds on diversity":        {"diversity", 0, 2, `rounds only applies to task "edcs" (got task "diversity")`},
		"rounds negative":            {"edcs", 0, -1, `rounds must be in [0, 64] (got -1)`},
		"rounds too large":           {"edcs", 0, 65, `rounds must be in [0, 64] (got 65)`},
	} {
		err := ValidateParams(tc.task, tc.beta, tc.rounds)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
			continue
		}
		if err == nil || err.Error() != tc.want {
			t.Errorf("%s: err = %v, want %q", name, err, tc.want)
		}
	}
}
