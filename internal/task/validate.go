package task

import (
	"fmt"

	"repro/internal/edcs"
)

// MaxRounds is the sanity cap on the multi-round cap that every user-facing
// surface shares (CLI flag, service job field); internal/rounds enforces the
// same bound on its Config. Well under the cluster wire protocol's own cap.
const MaxRounds = 64

// MaxBeta is the EDCS degree-bound cap shared by every surface, so a
// request one surface admits can never be rejected downstream by another
// (the cluster wire protocol enforces the same bound on HELLO).
const MaxBeta = edcs.MaxBeta

// ValidateParams checks the task-scoped parameters — the EDCS degree bound
// and the multi-round cap — against the registry's capability flags. Every
// user-facing surface shares it: cmd/coreset's flags, cmd/coresetload's
// flags and the service's job API all call it (directly or through
// service.ValidateTaskParams), so the surfaces cannot drift on bounds or
// message text. Zero means "not set" for both parameters; the returned
// error text is the canonical vocabulary, to which each caller adds its own
// prefix.
//
// Which tasks a parameter applies to comes from the registry (UsesBeta,
// WireRounds), not from hardcoded names, so registering a new
// beta-consuming task automatically widens what these checks admit.
func ValidateParams(task string, beta, rounds int) error {
	if beta != 0 {
		if d, ok := Get(task); !ok || !d.UsesBeta {
			return fmt.Errorf("beta only applies to task %q (got task %q)", betaCapable().Name, task)
		}
		if beta < 2 || beta > MaxBeta {
			return fmt.Errorf("beta must be in [2, %d] (got %d)", MaxBeta, beta)
		}
	}
	if rounds != 0 {
		if d, ok := Get(task); !ok || d.WireRounds == 0 {
			return fmt.Errorf("rounds only applies to task %q (got task %q)", RoundsCapable().Name, task)
		}
		if rounds < 0 || rounds > MaxRounds {
			return fmt.Errorf("rounds must be in [0, %d] (got %d)", MaxRounds, rounds)
		}
	}
	return nil
}
