package task

import (
	"encoding/binary"
	"fmt"
)

// AppendSummary encodes a machine's end-of-stream summary as the CORESET
// payload for task d: uvarint received/stored/live stats, then the
// descriptor's coreset body.
func AppendSummary(dst []byte, d *Descriptor, s Summary) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Edges))
	dst = binary.AppendUvarint(dst, uint64(s.Stored))
	dst = binary.AppendUvarint(dst, uint64(s.Live))
	return d.AppendBody(dst, s)
}

// DecodeSummary reconstructs a Summary from a CORESET payload. The result
// is field-for-field identical to what the emitting machine's Finish
// returned — including nil-versus-empty slice shapes, which the seed-parity
// guarantee (cluster coresets deep-equal in-process ones) depends on — and
// strict: a truncated field or trailing garbage is an error.
func DecodeSummary(d *Descriptor, data []byte) (Summary, error) {
	var s Summary
	vals := make([]uint64, 3)
	for i := range vals {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return s, fmt.Errorf("task %s: corrupt CORESET stats", d.Name)
		}
		vals[i], data = v, data[k:]
	}
	s.Edges, s.Stored, s.Live = int(vals[0]), int(vals[1]), int(vals[2])
	rest, err := d.DecodeBody(&s, data)
	if err != nil {
		return s, err
	}
	if len(rest) != 0 {
		return s, fmt.Errorf("task %s: %d trailing bytes after CORESET", d.Name, len(rest))
	}
	return s, nil
}
