package task

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func testGraph(t *testing.T, n int, deg float64, seed uint64) *graph.Graph {
	t.Helper()
	g := gen.GNP(n, deg/float64(n), rng.New(seed))
	if g.M() == 0 {
		t.Fatal("empty test graph")
	}
	return g
}

// The incremental matching builder must emit exactly the batch coreset for
// the same partition — the deep parity the stream and cluster runtimes'
// seed-parity guarantee rests on. (Moved here from internal/stream when the
// builders moved into the registry package.)
func TestMatchingBuilderDeepParity(t *testing.T) {
	g := testGraph(t, 600, 8, 3)
	parts := partition.HashK(g.Edges, 4, 7)
	for i, part := range parts {
		b := newMatchingBuilder()
		for _, e := range part {
			b.Add(e)
		}
		s := b.Finish(g.N)
		want := core.MatchingCoreset(g.N, part)
		if !reflect.DeepEqual(s.Coreset, want) {
			t.Fatalf("machine %d: builder coreset diverges from batch", i)
		}
		if s.Stored != len(part) {
			t.Fatalf("machine %d: stored %d, want %d", i, s.Stored, len(part))
		}
		if s.Bytes != core.CoresetSizeBytes(want) {
			t.Fatalf("machine %d: bytes %d, want %d", i, s.Bytes, core.CoresetSizeBytes(want))
		}
	}
}

// Online level-1 peeling must be invisible in the output: same VCCoreset,
// field for field, as the batch peel over the stored partition. Also pins
// the threshold internals the stream package used to assert directly.
func TestVCBuilderDeepParity(t *testing.T) {
	g := testGraph(t, 800, 12, 5)
	k := 4
	parts := partition.HashK(g.Edges, k, 9)
	for i, part := range parts {
		b := newVCBuilder(k, g.N)
		if want := int(math.Ceil(float64(g.N) / (float64(k) * 4))); b.threshold != want {
			t.Fatalf("machine %d: threshold %d, want %d", i, b.threshold, want)
		}
		for _, e := range part {
			b.Add(e)
		}
		got := b.Finish(g.N).VC
		want := core.ComputeVCCoreset(g.N, k, part)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("machine %d: online-peel coreset diverges from batch", i)
		}
	}
}

// Without a vertex-count hint the vc builder must disable online peeling and
// still converge to the batch answer at Finish.
func TestVCBuilderNoHintFallsBack(t *testing.T) {
	g := testGraph(t, 500, 10, 11)
	k := 4
	parts := partition.HashK(g.Edges, k, 13)
	for i, part := range parts {
		b := newVCBuilder(k, 0)
		if b.threshold != 0 {
			t.Fatalf("machine %d: threshold %d without nHint", i, b.threshold)
		}
		for _, e := range part {
			b.Add(e)
		}
		got := b.Finish(g.N).VC
		want := core.ComputeVCCoreset(g.N, k, part)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("machine %d: no-hint coreset diverges from batch", i)
		}
	}
}

// The EDCS builder is a pure function of arrival order; replaying the same
// partition twice must produce identical summaries and telemetry.
func TestEDCSBuilderDeterministic(t *testing.T) {
	g := testGraph(t, 400, 10, 7)
	part := partition.HashK(g.Edges, 2, 3)[0]
	p := edcs.ParamsForBeta(8)
	run := func() (Summary, MachineTelem) {
		b := newEDCSBuilder(g.N, p)
		for _, e := range part {
			b.Add(e)
		}
		return b.Finish(g.N), b.Telem()
	}
	s1, t1 := run()
	s2, t2 := run()
	if !reflect.DeepEqual(s1, s2) || t1 != t2 {
		t.Fatal("EDCS builder not deterministic over replayed arrivals")
	}
	if len(s1.Coreset) == 0 {
		t.Fatal("EDCS builder produced an empty coreset")
	}
}

// Every task's summary codec must round-trip a real builder summary exactly
// — including the nil-versus-empty slice shapes seed parity depends on.
func TestSummaryCodecRoundTripAllTasks(t *testing.T) {
	g := testGraph(t, 300, 8, 17)
	part := partition.HashK(g.Edges, 2, 5)[0]
	for _, name := range Names() {
		d := MustGet(name)
		p := Params{}
		if d.UsesBeta {
			p.EDCS = edcs.ParamsForBeta(8)
		}
		b := d.NewBuilder(2, g.N, p)
		for _, e := range part {
			b.Add(e)
		}
		s := b.Finish(g.N)
		s.Edges = len(part) // the runtimes stamp this before encoding

		buf := AppendSummary(nil, d, s)
		got, err := DecodeSummary(d, buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s: round trip diverged:\n got %+v\nwant %+v", name, got, s)
		}

		// Trailing garbage must be an error, never silently ignored.
		if _, err := DecodeSummary(d, append(buf, 0xff)); err == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
	}
}

// An empty machine (no edges routed to it) must also round-trip exactly: the
// zero-count encodings pin the nil-versus-empty conventions.
func TestSummaryCodecRoundTripEmpty(t *testing.T) {
	for _, name := range Names() {
		d := MustGet(name)
		p := Params{}
		if d.UsesBeta {
			p.EDCS = edcs.ParamsForBeta(8)
		}
		b := d.NewBuilder(2, 50, p)
		s := b.Finish(50)
		buf := AppendSummary(nil, d, s)
		got, err := DecodeSummary(d, buf)
		if err != nil {
			t.Fatalf("%s: decode empty: %v", name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s: empty round trip diverged:\n got %+v\nwant %+v", name, got, s)
		}
	}
}
