package task

import (
	"encoding/binary"
	"errors"

	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/vcover"
)

// The built-in task table. Registration order is the user-facing order
// (CLI usage strings, metric label pre-registration); the wire bytes are
// the cluster protocol's HELLO task identities and must never be reused or
// renumbered — matching/vc/edcs(+rounds) predate the registry and keep
// their original bytes for wire compatibility.
func init() {
	Register(Descriptor{
		Name: "matching",
		Wire: 1,
		NewBuilder: func(k, nHint int, p Params) Builder {
			return newMatchingBuilder()
		},
		AppendBody: appendEdgeBody,
		DecodeBody: decodeEdgeBody,
		Batch: func(g *graph.Graph, k, workers int, seed uint64, p Params) (Solution, *core.PipelineStats) {
			m, st := core.DistributedMatching(g, k, workers, seed)
			return Solution{Size: m.Size(), Matching: m}, st
		},
		Compose:    composeMatching,
		CoresetLen: func(s Summary) int { return len(s.Coreset) },
		Verify: func(n int, edges []graph.Edge, sol Solution) error {
			return matching.Verify(n, edges, sol.Matching)
		},
		SolutionNoun: "matching",
		SolutionUnit: "edges",
		CoresetLabel: "coreset edges per machine",
		LiveLabel:    "live greedy per machine",
	})

	Register(Descriptor{
		Name: "vc",
		Wire: 2,
		NewBuilder: func(k, nHint int, p Params) Builder {
			return newVCBuilder(k, nHint)
		},
		AppendBody: appendVCBody,
		DecodeBody: decodeVCBody,
		Batch: func(g *graph.Graph, k, workers int, seed uint64, p Params) (Solution, *core.PipelineStats) {
			cover, st := core.DistributedVertexCover(g, k, workers, seed)
			return Solution{Size: len(cover), Cover: cover}, st
		},
		Compose: func(n int, sums []Summary) Solution {
			coresets := make([]*core.VCCoreset, len(sums))
			for i, s := range sums {
				coresets[i] = s.VC
			}
			cover := core.ComposeVC(n, coresets)
			return Solution{Size: len(cover), Cover: cover}
		},
		CoresetLen: func(s Summary) int { return len(s.VC.Residual) },
		FixedLen:   func(s Summary) int { return len(s.VC.Fixed) },
		Verify: func(n int, edges []graph.Edge, sol Solution) error {
			return vcover.Verify(n, edges, sol.Cover)
		},
		SolutionNoun: "vertex cover",
		SolutionUnit: "vertices",
		CoresetLabel: "residual edges per machine",
		FixedLabel:   "fixed vertices per machine",
		ShowStored:   true,
	})

	Register(Descriptor{
		Name:       "edcs",
		Wire:       3,
		WireRounds: 4,
		UsesBeta:   true,
		NewBuilder: func(k, nHint int, p Params) Builder {
			return newEDCSBuilder(nHint, p.EDCS)
		},
		AppendBody: appendEdgeBody,
		DecodeBody: decodeEdgeBody,
		Validate: func(p Params) error {
			return p.EDCS.Validate()
		},
		Batch: func(g *graph.Graph, k, workers int, seed uint64, p Params) (Solution, *core.PipelineStats) {
			m, st := edcs.Distributed(g, k, workers, seed, p.EDCS)
			return Solution{Size: m.Size(), Matching: m}, st
		},
		Compose:    composeMatching,
		CoresetLen: func(s Summary) int { return len(s.Coreset) },
		Verify: func(n int, edges []graph.Edge, sol Solution) error {
			return matching.Verify(n, edges, sol.Matching)
		},
		SolutionNoun: "edcs",
		SolutionUnit: "edges matched",
		CoresetLabel: "EDCS edges per machine",
		LiveLabel:    "repair removals per machine",
	})

	Register(Descriptor{
		Name: "diversity",
		Wire: 5,
		NewBuilder: func(k, nHint int, p Params) Builder {
			return newDiversityBuilder()
		},
		AppendBody: func(dst []byte, s Summary) []byte {
			return graph.AppendIDs(dst, s.Verts)
		},
		DecodeBody: func(s *Summary, data []byte) ([]byte, error) {
			verts, rest, err := graph.DecodeIDs(data)
			if err != nil {
				return nil, err
			}
			s.Verts = verts // DecodeIDs is non-nil on empty, like Centers
			s.Bytes = graph.EncodedIDBytes(verts)
			return rest, nil
		},
		Batch:      batchDiversity,
		Compose:    composeDiversity,
		CoresetLen: func(s Summary) int { return len(s.Verts) },
		Verify: func(n int, edges []graph.Edge, sol Solution) error {
			return diversity.Verify(n, sol.Verts)
		},
		SolutionNoun: "diversity",
		SolutionUnit: "separation",
		CoresetLabel: "centers per machine",
	})
}

// appendEdgeBody/decodeEdgeBody is the shared body codec of the edge-list
// coresets (Theorem 1 matchings and EDCSs): one varint delta edge batch —
// the same graph codec the simulated accounting charges, so the measured
// CORESET payload and core.CoresetSizeBytes are the same function of the
// edge list.
func appendEdgeBody(dst []byte, s Summary) []byte {
	return graph.AppendEdgeBatch(dst, s.Coreset)
}

func decodeEdgeBody(s *Summary, data []byte) ([]byte, error) {
	edges, rest, err := graph.DecodeEdgeBatch(data)
	if err != nil {
		return nil, err
	}
	if edges == nil {
		edges = []graph.Edge{} // a maximum matching / H edge list is never nil
	}
	s.Coreset = edges
	s.Bytes = core.CoresetSizeBytes(edges) // simulated estimate, for Est* stats
	return rest, nil
}

// appendVCBody/decodeVCBody is the Theorem 2 body: the peeled levels (in
// peel order; Fixed is their concatenation, so it is not sent), then the
// residual subgraph.
var errCorruptLevels = errors.New("task vc: corrupt CORESET levels")

func appendVCBody(dst []byte, s Summary) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.VC.Levels)))
	for _, level := range s.VC.Levels {
		dst = graph.AppendIDs(dst, level)
	}
	return graph.AppendEdgeBatch(dst, s.VC.Residual)
}

func decodeVCBody(s *Summary, data []byte) ([]byte, error) {
	nLevels, k := binary.Uvarint(data)
	if k <= 0 || nLevels > uint64(len(data)) {
		return nil, errCorruptLevels
	}
	data = data[k:]
	vc := &core.VCCoreset{}
	for i := uint64(0); i < nLevels; i++ {
		ids, rest, err := graph.DecodeIDs(data)
		if err != nil {
			return nil, err
		}
		data = rest
		if len(ids) == 0 {
			ids = nil // RemoveAtLeast yields nil for an empty level
		}
		vc.Levels = append(vc.Levels, ids)
		vc.Fixed = append(vc.Fixed, ids...)
	}
	residual, rest, err := graph.DecodeEdgeBatch(data)
	if err != nil {
		return nil, err
	}
	if residual == nil {
		residual = []graph.Edge{} // Residual.LiveEdges allocates
	}
	vc.Residual = residual
	s.VC = vc
	s.Bytes = core.VCCoresetSizeBytes(vc) // simulated estimate, for Est* stats
	return rest, nil
}

// composeMatching is the shared composer tail of the edge-list coresets:
// an exact maximum matching of the union of the per-machine coresets.
func composeMatching(n int, sums []Summary) Solution {
	coresets := make([][]graph.Edge, len(sums))
	for i, s := range sums {
		coresets[i] = s.Coreset
	}
	m := core.ComposeMatching(n, coresets)
	return Solution{Size: m.Size(), Matching: m}
}

// diversityBuilder collects the machine's touched vertex set and summarizes
// it with the greedy k-center selection at end of stream. Order-insensitive
// by construction, so parity across runtimes needs nothing beyond the
// shared hash partitioning.
type diversityBuilder struct {
	seen map[graph.ID]struct{}
}

func newDiversityBuilder() *diversityBuilder {
	return &diversityBuilder{seen: make(map[graph.ID]struct{})}
}

func (b *diversityBuilder) Add(e graph.Edge) {
	b.seen[e.U] = struct{}{}
	b.seen[e.V] = struct{}{}
}

func (b *diversityBuilder) Finish(n int) Summary {
	verts := make([]graph.ID, 0, len(b.seen))
	for v := range b.seen {
		verts = append(verts, v)
	}
	centers := diversity.Centers(verts, diversity.DefaultK)
	return Summary{
		Verts:  centers,
		Stored: len(verts), // distinct vertices held, the machine's state
		Bytes:  graph.EncodedIDBytes(centers),
	}
}

// composeDiversity re-runs the greedy selection on the union of the
// per-machine center sets — the arXiv:1506.06715 composition step.
func composeDiversity(n int, sums []Summary) Solution {
	var union []graph.ID
	for _, s := range sums {
		union = append(union, s.Verts...)
	}
	centers := diversity.Centers(union, diversity.DefaultK)
	return Solution{Size: diversity.Dispersion(centers), Verts: centers}
}

// batchDiversity is the materialized batch pipeline for the diversity task,
// shaped exactly like edcs.Distributed: seeded hash k-partitioning (the
// position-independent partition.HashK every runtime shards with, so batch,
// stream and cluster runs over the same (graph, seed, k) produce deep-equal
// summaries), one builder per machine, compose on the union.
func batchDiversity(g *graph.Graph, k, workers int, seed uint64, p Params) (Solution, *core.PipelineStats) {
	parts := partition.HashK(g.Edges, k, seed)
	sums := core.MapParts(parts, workers, func(i int, part []graph.Edge) Summary {
		b := newDiversityBuilder()
		for _, e := range part {
			b.Add(e)
		}
		return b.Finish(g.N)
	})
	st := &core.PipelineStats{K: k}
	for i, part := range parts {
		st.PartEdges = append(st.PartEdges, len(part))
		bytes := sums[i].Bytes
		st.TotalCommBytes += bytes
		if bytes > st.MaxMachineBytes {
			st.MaxMachineBytes = bytes
		}
		st.CoresetEdges = append(st.CoresetEdges, len(sums[i].Verts))
		st.CompositionEdges += len(sums[i].Verts)
	}
	return composeDiversity(g.N, sums), st
}
