package task

import (
	"math"

	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/matching"
)

// matchingBuilder is the Theorem 1 machine. It stores its partition — the
// O(m/k) space the model grants each machine — while maintaining a one-pass
// greedy matching as live telemetry (a 2-approximation of the partition's
// maximum matching at every instant). At end of stream it emits exactly the
// batch pipeline's summary: a maximum matching of the stored partition,
// computed by the same core.MatchingCoreset call, so streaming and batch
// runs over the same k-partitioning are bit-for-bit identical.
type matchingBuilder struct {
	edges []graph.Edge
	live  *matching.Incremental
}

func newMatchingBuilder() *matchingBuilder {
	return &matchingBuilder{live: matching.NewIncremental()}
}

func (b *matchingBuilder) Add(e graph.Edge) {
	b.edges = append(b.edges, e)
	b.live.Add(e)
}

func (b *matchingBuilder) Finish(n int) Summary {
	cs := core.MatchingCoreset(n, b.edges)
	return Summary{
		Coreset: cs,
		Stored:  len(b.edges),
		Live:    b.live.Size(),
		Bytes:   core.CoresetSizeBytes(cs),
	}
}

// vcBuilder is the Theorem 2 machine: incremental degree tracking with
// online level-1 peeling. Degrees only grow as edges arrive, so a vertex
// belongs to the first peeled level iff its running degree ever reaches the
// level-1 threshold n/(4k) — the builder detects this the moment it happens,
// fixes the vertex into the cover immediately, and discards every subsequent
// edge incident to it (such edges are already covered and can never reach the
// residual). Stored edges incident to later-peeled vertices are removed at
// Finish, where peeling resumes at level 2 on the surviving subgraph. The
// emitted coreset is field-for-field identical to the batch
// core.ComputeVCCoreset on the same partition; online peeling only reduces
// the edges held in memory.
//
// Online peeling needs the thresholds — hence n — upfront; when the source
// cannot declare n (headerless edge lists), the builder degrades to storing
// its partition and running the full batch peel at Finish.
type vcBuilder struct {
	k         int
	threshold int // level-1 peel threshold; 0 disables online peeling
	deg       []int32
	peeled    []bool
	nPeeled   int
	stored    []graph.Edge
	received  int
}

func newVCBuilder(k, nHint int) *vcBuilder {
	b := &vcBuilder{k: k}
	if nHint > 0 && core.PeelingDepth(nHint, k) > 1 {
		// Level j = 1 peels at residual degree >= ceil(n / (k * 2^(j+1))).
		b.threshold = int(math.Ceil(float64(nHint) / (float64(k) * 4)))
		b.deg = make([]int32, nHint)
		b.peeled = make([]bool, nHint)
	}
	return b
}

// grow extends the degree tables to cover vertex v (defensive: sources that
// declare n upfront should never exceed it).
func (b *vcBuilder) grow(v graph.ID) {
	for int(v) >= len(b.deg) {
		b.deg = append(b.deg, 0)
		b.peeled = append(b.peeled, false)
	}
}

func (b *vcBuilder) Add(e graph.Edge) {
	b.received++
	if b.threshold == 0 {
		// No vertex count, no thresholds: just store the partition; Finish
		// runs the full batch peel.
		b.stored = append(b.stored, e)
		return
	}
	b.grow(e.U)
	b.grow(e.V)
	// Every arrival counts toward both endpoint degrees — including edges
	// that are then discarded — because the batch level-1 set is defined by
	// degrees in the machine's FULL partition.
	b.deg[e.U]++
	b.deg[e.V]++
	b.peel(e.U)
	b.peel(e.V)
	if b.peeled[e.U] || b.peeled[e.V] {
		return // covered by a fixed vertex; never reaches the residual
	}
	b.stored = append(b.stored, e)
}

func (b *vcBuilder) peel(v graph.ID) {
	if !b.peeled[v] && int(b.deg[v]) >= b.threshold {
		b.peeled[v] = true
		b.nPeeled++
	}
}

func (b *vcBuilder) Finish(n int) Summary {
	var cs *core.VCCoreset
	if b.threshold == 0 {
		cs = core.ComputeVCCoreset(n, b.k, b.stored)
	} else {
		cs = b.finishFromLevel2(n)
	}
	return Summary{
		VC:     cs,
		Stored: len(b.stored),
		Live:   b.nPeeled,
		Bytes:  core.VCCoresetSizeBytes(cs),
	}
}

// finishFromLevel2 resumes the VC-Coreset peel after the online level-1 pass:
// remove the already-peeled vertices from the stored subgraph, then run
// levels 2..Delta-1 exactly as the batch algorithm does.
func (b *vcBuilder) finishFromLevel2(n int) *core.VCCoreset {
	delta := core.PeelingDepth(n, b.k)
	// Batch RemoveAtLeast reports each level in ascending vertex order; match
	// it so the coresets compare deep-equal.
	var level1 []graph.ID
	for v := 0; v < len(b.peeled); v++ {
		if b.peeled[v] {
			level1 = append(level1, graph.ID(v))
		}
	}
	res := graph.NewResidual(n, b.stored)
	for _, v := range level1 {
		res.Remove(v)
	}
	out := &core.VCCoreset{}
	out.Levels = append(out.Levels, level1)
	out.Fixed = append(out.Fixed, level1...)
	for j := 2; j <= delta-1; j++ {
		threshold := float64(n) / (float64(b.k) * math.Pow(2, float64(j+1)))
		peeled := res.RemoveAtLeast(int(math.Ceil(threshold)))
		out.Levels = append(out.Levels, peeled)
		out.Fixed = append(out.Fixed, peeled...)
	}
	out.Residual = res.LiveEdges()
	return out
}

// edcsBuilder is the EDCS machine (arXiv:1711.03076): a dynamic
// edge-degree constrained subgraph maintained by insertion with
// degree-constraint repair. Unlike the Theorem 1 builder it does genuinely
// incremental summary work on every arrival — H is always a valid
// EDCS(arrived-so-far, β, β⁻) — and Finish only sorts the H edge list into
// the canonical coreset message. The EDCS is a pure function of the
// machine's arrival order, which every runtime reproduces from the same
// hash k-partitioning, so EDCS coresets are bit-for-bit identical across
// batch, stream and cluster.
type edcsBuilder struct {
	sub *edcs.Subgraph
}

func newEDCSBuilder(nHint int, p edcs.Params) *edcsBuilder {
	return &edcsBuilder{sub: edcs.New(nHint, p)}
}

func (b *edcsBuilder) Add(e graph.Edge) { b.sub.Insert(e) }

// Telem exposes the subgraph's fixpoint counters for MachineTelem; it is the
// Telemetered hook and deliberately NOT part of Summary, whose shape is
// pinned by the cross-runtime seed-parity codec tests.
func (b *edcsBuilder) Telem() MachineTelem {
	return MachineTelem{
		RepairIters: b.sub.RepairIters(),
		Removals:    b.sub.Removals(),
		PeakCoreset: b.sub.PeakSize(),
	}
}

func (b *edcsBuilder) Finish(n int) Summary {
	cs := b.sub.Edges()
	return Summary{
		Coreset: cs,
		Stored:  b.sub.Stored(),
		Live:    b.sub.Removals(),
		Bytes:   core.CoresetSizeBytes(cs),
	}
}
