package matching

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestIncrementalBasics(t *testing.T) {
	im := NewIncremental()
	if !im.Add(graph.Edge{U: 0, V: 1}) {
		t.Fatal("first edge rejected")
	}
	if im.Add(graph.Edge{U: 1, V: 2}) {
		t.Fatal("edge sharing an endpoint accepted")
	}
	if im.Add(graph.Edge{U: 3, V: 3}) {
		t.Fatal("self-loop accepted")
	}
	if !im.Add(graph.Edge{U: 2, V: 3}) {
		t.Fatal("independent edge rejected")
	}
	if im.Size() != 2 {
		t.Fatalf("size = %d, want 2", im.Size())
	}
	if !im.Covers(0) || !im.Covers(3) || im.Covers(4) {
		t.Fatal("Covers wrong")
	}
	if len(im.Edges()) != 2 {
		t.Fatalf("Edges() has %d, want 2", len(im.Edges()))
	}
}

// The one-pass greedy matcher equals MaximalGreedy on the same sequence and
// is therefore maximal: at least half the maximum matching.
func TestIncrementalMatchesMaximalGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		n := 300
		var edges []graph.Edge
		for i := 0; i < 900; i++ {
			u, v := graph.ID(r.Intn(n)), graph.ID(r.Intn(n))
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v}.Canon())
			}
		}
		im := NewIncremental()
		for _, e := range edges {
			im.Add(e)
		}
		want := MaximalGreedy(n, edges)
		if im.Size() != want.Size() {
			t.Fatalf("seed %d: incremental %d != maximal greedy %d", seed, im.Size(), want.Size())
		}
		opt := Maximum(n, edges).Size()
		if 2*im.Size() < opt {
			t.Fatalf("seed %d: greedy %d below half of maximum %d", seed, im.Size(), opt)
		}
		m := im.Matching(n)
		if err := Verify(n, edges, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
