// Package matching implements the matching substrate: greedy maximal
// matching, Hopcroft-Karp maximum bipartite matching, Edmonds' blossom
// algorithm for maximum matching in general graphs, a brute-force reference
// for small instances, and verification helpers.
//
// The paper's matching coreset (Theorem 1) is "any maximum matching of
// G(i)"; it is algorithm-agnostic, so the package exposes Maximum, which
// dispatches to Hopcroft-Karp when the input is 2-colorable and to the
// blossom algorithm otherwise.
package matching

import (
	"fmt"

	"repro/internal/graph"
)

// Matching is a set of vertex-disjoint edges over vertices 0..n-1,
// represented by the mate array: Mate[v] is v's partner or -1.
type Matching struct {
	Mate []graph.ID
	size int
}

// NewEmpty returns an empty matching over n vertices.
func NewEmpty(n int) *Matching {
	m := &Matching{Mate: make([]graph.ID, n)}
	for i := range m.Mate {
		m.Mate[i] = -1
	}
	return m
}

// FromEdges builds a matching from vertex-disjoint edges. Panics if the
// edges are not vertex-disjoint or out of range.
func FromEdges(n int, edges []graph.Edge) *Matching {
	m := NewEmpty(n)
	for _, e := range edges {
		if !m.Add(e) {
			panic(fmt.Sprintf("matching: edges not vertex-disjoint at %v", e))
		}
	}
	return m
}

// Size returns the number of matched edges.
func (m *Matching) Size() int { return m.size }

// Covers reports whether v is matched.
func (m *Matching) Covers(v graph.ID) bool { return m.Mate[v] != -1 }

// Add inserts edge e if both endpoints are free; reports whether it did.
func (m *Matching) Add(e graph.Edge) bool {
	if e.U == e.V || m.Mate[e.U] != -1 || m.Mate[e.V] != -1 {
		return false
	}
	m.Mate[e.U] = e.V
	m.Mate[e.V] = e.U
	m.size++
	return true
}

// Edges returns the matched edges in canonical order of their lower
// endpoint.
func (m *Matching) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, m.size)
	for v, w := range m.Mate {
		if w != -1 && graph.ID(v) < w {
			out = append(out, graph.Edge{U: graph.ID(v), V: w})
		}
	}
	return out
}

// Clone returns an independent copy.
func (m *Matching) Clone() *Matching {
	c := &Matching{Mate: append([]graph.ID(nil), m.Mate...), size: m.size}
	return c
}

// AugmentGreedily adds to m every edge from the list whose endpoints are
// both currently free, in the given order, and returns the number added.
// This is the inner step of the paper's GreedyMatch combiner (Section 3.1).
func (m *Matching) AugmentGreedily(edges []graph.Edge) int {
	added := 0
	for _, e := range edges {
		if m.Add(e) {
			added++
		}
	}
	return added
}

// MaximalGreedy computes a maximal matching by scanning the edges in input
// order. A maximal matching is a 2-approximation to the maximum matching;
// the paper shows (and experiment E3 reproduces) that despite this global
// guarantee it is only an Ω(k)-approximate *coreset*.
func MaximalGreedy(n int, edges []graph.Edge) *Matching {
	m := NewEmpty(n)
	for _, e := range edges {
		m.Add(e)
	}
	return m
}

// Verify checks that m is a valid matching over (n, edges): the mate
// relation is symmetric, every matched pair is an edge of the graph, and
// the size field agrees. Returns nil on success.
func Verify(n int, edges []graph.Edge, m *Matching) error {
	if len(m.Mate) != n {
		return fmt.Errorf("matching: mate array has length %d, want %d", len(m.Mate), n)
	}
	have := make(map[graph.Edge]bool, len(edges))
	for _, e := range edges {
		have[e.Canon()] = true
	}
	count := 0
	for v := 0; v < n; v++ {
		w := m.Mate[v]
		if w == -1 {
			continue
		}
		if w < 0 || int(w) >= n {
			return fmt.Errorf("matching: mate[%d] = %d out of range", v, w)
		}
		if m.Mate[w] != graph.ID(v) {
			return fmt.Errorf("matching: mate relation not symmetric at %d<->%d", v, w)
		}
		if graph.ID(v) < w {
			if !have[(graph.Edge{U: graph.ID(v), V: w}).Canon()] {
				return fmt.Errorf("matching: pair (%d,%d) is not a graph edge", v, w)
			}
			count++
		}
	}
	if count != m.size {
		return fmt.Errorf("matching: size field %d, actual %d", m.size, count)
	}
	return nil
}

// IsMaximal reports whether no edge can be added to m.
func IsMaximal(edges []graph.Edge, m *Matching) bool {
	for _, e := range edges {
		if e.U != e.V && m.Mate[e.U] == -1 && m.Mate[e.V] == -1 {
			return false
		}
	}
	return true
}

// Maximum computes a maximum matching of the graph. If the graph is
// bipartite (checked by 2-coloring) it runs Hopcroft-Karp in
// O(m*sqrt(n)); otherwise it runs Edmonds' blossom algorithm.
func Maximum(n int, edges []graph.Edge) *Matching {
	adj := graph.BuildAdj(n, edges)
	if side, ok := adj.IsBipartiteWithSides(); ok {
		b, left, right := graph.FromGraphSides(n, edges, side)
		matchL, _, _ := HopcroftKarp(b)
		m := NewEmpty(n)
		for l, r := range matchL {
			if r != -1 {
				m.Add(graph.Edge{U: left[l], V: right[r]}.Canon())
			}
		}
		return m
	}
	return Blossom(n, edges)
}
