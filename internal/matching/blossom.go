package matching

import "repro/internal/graph"

// Blossom computes a maximum matching of a general graph using Edmonds'
// blossom-shrinking algorithm (O(V^3) worst case, with greedy
// initialization). It exists because the paper's coreset theorem applies to
// arbitrary graphs, not just bipartite ones; partitions of non-bipartite
// workloads (power-law, grid-with-chords) take this path.
func Blossom(n int, edges []graph.Edge) *Matching {
	adj := graph.BuildAdj(n, edges)

	match := make([]graph.ID, n) // partner or -1
	p := make([]graph.ID, n)     // BFS tree parent (on even vertices)
	base := make([]graph.ID, n)  // blossom base of each vertex
	used := make([]bool, n)
	inBlossom := make([]bool, n)
	usedLCA := make([]bool, n)
	queue := make([]graph.ID, 0, n)

	for i := range match {
		match[i] = -1
	}

	// Greedy initialization: cheap and removes most augmentation phases.
	for _, e := range edges {
		if e.U != e.V && match[e.U] == -1 && match[e.V] == -1 {
			match[e.U] = e.V
			match[e.V] = e.U
		}
	}

	lca := func(a, b graph.ID) graph.ID {
		for i := range usedLCA {
			usedLCA[i] = false
		}
		// Climb from a to the root, marking bases.
		cur := a
		for {
			cur = base[cur]
			usedLCA[cur] = true
			if match[cur] == -1 {
				break
			}
			cur = p[match[cur]]
		}
		// Climb from b until a marked base is met.
		cur = b
		for !usedLCA[base[cur]] {
			cur = p[match[cur]]
		}
		return base[cur]
	}

	markPath := func(v, b, child graph.ID) {
		for base[v] != b {
			inBlossom[base[v]] = true
			inBlossom[base[match[v]]] = true
			p[v] = child
			child = match[v]
			v = p[match[v]]
		}
	}

	// findPath grows an alternating BFS tree from root; returns an exposed
	// vertex ending an augmenting path, or -1.
	findPath := func(root graph.ID) graph.ID {
		for i := 0; i < n; i++ {
			used[i] = false
			p[i] = -1
			base[i] = graph.ID(i)
		}
		used[root] = true
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, to := range adj.Neighbors(v) {
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && p[match[to]] != -1) {
					// Odd cycle: contract the blossom.
					curBase := lca(v, to)
					for i := range inBlossom {
						inBlossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < n; i++ {
						if inBlossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								queue = append(queue, graph.ID(i))
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if match[to] == -1 {
						return to
					}
					used[match[to]] = true
					queue = append(queue, match[to])
				}
			}
		}
		return -1
	}

	for v := graph.ID(0); int(v) < n; v++ {
		if match[v] != -1 {
			continue
		}
		u := findPath(v)
		if u == -1 {
			continue
		}
		// Augment along parent pointers from the exposed endpoint.
		for u != -1 {
			pv := p[u]
			ppv := match[pv]
			match[u] = pv
			match[pv] = u
			u = ppv
		}
	}

	m := NewEmpty(n)
	for v := 0; v < n; v++ {
		if match[v] != -1 && graph.ID(v) < match[v] {
			m.Add(graph.Edge{U: graph.ID(v), V: match[v]})
		}
	}
	return m
}
