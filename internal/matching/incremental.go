package matching

import "repro/internal/graph"

// Incremental maintains a maximal matching of a growing edge multiset under
// one-pass insertions: an arriving edge is matched iff both endpoints are
// currently free. This is the classic streaming greedy matcher — O(1) work
// and O(1) extra state per edge, no fixed vertex universe — and its size is
// always within a factor 2 of the maximum matching of the edges seen so far.
//
// The streaming coreset runtime (internal/stream) runs one Incremental per
// machine as live telemetry while edges arrive; the exact Theorem 1 summary
// is computed at end-of-stream on the machine's stored partition. Incremental
// is not safe for concurrent use.
type Incremental struct {
	mate map[graph.ID]graph.ID
	size int
}

// NewIncremental returns an empty incremental matcher.
func NewIncremental() *Incremental {
	return &Incremental{mate: make(map[graph.ID]graph.ID)}
}

// Add offers edge e to the matching and reports whether it was matched.
// Self-loops are never matched.
func (im *Incremental) Add(e graph.Edge) bool {
	if e.U == e.V {
		return false
	}
	if _, ok := im.mate[e.U]; ok {
		return false
	}
	if _, ok := im.mate[e.V]; ok {
		return false
	}
	im.mate[e.U] = e.V
	im.mate[e.V] = e.U
	im.size++
	return true
}

// Size returns the current matching size.
func (im *Incremental) Size() int { return im.size }

// Covers reports whether v is matched.
func (im *Incremental) Covers(v graph.ID) bool {
	_, ok := im.mate[v]
	return ok
}

// Edges returns the matched edges in canonical form (unspecified order).
func (im *Incremental) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, im.size)
	for u, v := range im.mate {
		if u < v {
			out = append(out, graph.Edge{U: u, V: v})
		}
	}
	return out
}

// Matching converts the current state to a fixed-universe *Matching on n
// vertices. Panics (via index) if a matched endpoint is >= n.
func (im *Incremental) Matching(n int) *Matching {
	m := NewEmpty(n)
	for u, v := range im.mate {
		if u < v {
			m.Add(graph.Edge{U: u, V: v})
		}
	}
	return m
}
