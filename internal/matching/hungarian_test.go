package matching

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMaxWeightBipartiteHandInstances(t *testing.T) {
	// Two left, two right: diagonal is heavy.
	b := graph.NewBipartite(2, 2, []graph.Edge{
		{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 1},
	})
	pairs, total := MaxWeightBipartite(b, []float64{5, 1, 1, 5})
	if total != 10 || len(pairs) != 2 {
		t.Fatalf("total = %v pairs = %v, want 10 with 2 pairs", total, pairs)
	}
	// Anti-diagonal heavy: must flip.
	_, total2 := MaxWeightBipartite(b, []float64{1, 7, 7, 1})
	if total2 != 14 {
		t.Fatalf("total = %v, want 14", total2)
	}
	// Heaviest single edge beats two light ones.
	b3 := graph.NewBipartite(2, 2, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 1}})
	_, total3 := MaxWeightBipartite(b3, []float64{3, 10, 3})
	// Options: {0-1:10} alone = 10, or {0-0:3, 1-1:3} = 6.
	if total3 != 10 {
		t.Fatalf("total = %v, want 10", total3)
	}
}

func TestMaxWeightBipartiteEmpty(t *testing.T) {
	b := graph.NewBipartite(3, 0, nil)
	if pairs, total := MaxWeightBipartite(b, nil); total != 0 || pairs != nil {
		t.Fatal("empty graph should give empty matching")
	}
}

func TestMaxWeightBipartiteIsMatching(t *testing.T) {
	r := rng.New(3)
	b := graph.NewBipartite(20, 25, nil)
	var weights []float64
	for u := 0; u < 20; u++ {
		for v := 0; v < 25; v++ {
			if r.Bernoulli(0.2) {
				b.Edges = append(b.Edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
				weights = append(weights, r.Float64()*10)
			}
		}
	}
	pairs, total := MaxWeightBipartite(b, weights)
	seenL := map[graph.ID]bool{}
	seenR := map[graph.ID]bool{}
	sum := 0.0
	valid := map[graph.Edge]bool{}
	for _, e := range b.Edges {
		valid[e] = true
	}
	for _, p := range pairs {
		if seenL[p.U] || seenR[p.V] {
			t.Fatalf("pair %v conflicts", p)
		}
		if !valid[graph.Edge{U: p.U, V: p.V}] {
			t.Fatalf("pair %v is not an edge", p)
		}
		seenL[p.U] = true
		seenR[p.V] = true
		sum += p.W
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("reported total %v != recomputed %v", total, sum)
	}
}

func TestMaxWeightBipartiteAgainstBruteForce(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 150; trial++ {
		nl := r.Intn(4) + 1
		nr := r.Intn(4) + 1
		var edges []graph.Edge
		var wedges []graph.WEdge
		var weights []float64
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if r.Bernoulli(0.5) && len(edges) < 12 {
					w := float64(r.Intn(20))
					edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
					weights = append(weights, w)
					wedges = append(wedges, graph.WEdge{U: graph.ID(u), V: graph.ID(nl + v), W: w})
				}
			}
		}
		b := graph.NewBipartite(nl, nr, edges)
		_, total := MaxWeightBipartite(b, weights)
		want := BruteForceMaxWeight(nl+nr, wedges)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v, brute %v (nl=%d nr=%d edges=%v w=%v)",
				trial, total, want, nl, nr, edges, weights)
		}
	}
}

func TestMaxWeightBipartiteParallelEdges(t *testing.T) {
	// Parallel edges: keep the max weight.
	b := graph.NewBipartite(1, 1, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 0}})
	_, total := MaxWeightBipartite(b, []float64{2, 9})
	if total != 9 {
		t.Fatalf("total = %v, want 9", total)
	}
}

func TestMaxWeightBipartitePanics(t *testing.T) {
	b := graph.NewBipartite(1, 1, []graph.Edge{{U: 0, V: 0}})
	for name, f := range map[string]func(){
		"weights mismatch": func() { MaxWeightBipartite(b, nil) },
		"negative weight":  func() { MaxWeightBipartite(b, []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBruteForceMaxWeightKnown(t *testing.T) {
	// Path with weights 1-10-1: best is the middle edge alone? No:
	// edges (0-1,w=1),(1-2,w=10),(2-3,w=1): {1-2} = 10 vs {0-1, 2-3} = 2.
	edges := []graph.WEdge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 10}, {U: 2, V: 3, W: 1}}
	if got := BruteForceMaxWeight(4, edges); got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
	// Same but middle is light: take the ends.
	edges2 := []graph.WEdge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 5}}
	if got := BruteForceMaxWeight(4, edges2); got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
}

func BenchmarkHungarian(b *testing.B) {
	r := rng.New(1)
	const nl, nr = 200, 200
	bg := graph.NewBipartite(nl, nr, nil)
	var weights []float64
	for u := 0; u < nl; u++ {
		for v := 0; v < nr; v++ {
			if r.Bernoulli(0.1) {
				bg.Edges = append(bg.Edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
				weights = append(weights, r.Float64()*100)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightBipartite(bg, weights)
	}
}
