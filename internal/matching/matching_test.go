package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func randGraph(r *rng.RNG, n int, p float64) []graph.Edge {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
			}
		}
	}
	return edges
}

func randBipartite(r *rng.RNG, nl, nr int, p float64) *graph.Bipartite {
	var edges []graph.Edge
	for u := 0; u < nl; u++ {
		for v := 0; v < nr; v++ {
			if r.Bernoulli(p) {
				edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
			}
		}
	}
	return graph.NewBipartite(nl, nr, edges)
}

func TestMatchingAddAndSize(t *testing.T) {
	m := NewEmpty(4)
	if !m.Add(graph.Edge{U: 0, V: 1}) {
		t.Fatal("Add to empty failed")
	}
	if m.Add(graph.Edge{U: 1, V: 2}) {
		t.Fatal("Add of conflicting edge succeeded")
	}
	if m.Add(graph.Edge{U: 3, V: 3}) {
		t.Fatal("Add of self-loop succeeded")
	}
	if !m.Add(graph.Edge{U: 2, V: 3}) {
		t.Fatal("Add of disjoint edge failed")
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
	if !m.Covers(0) || m.Covers(4-1) != true {
		t.Fatal("Covers wrong")
	}
	edges := m.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges len = %d", len(edges))
	}
}

func TestFromEdgesPanicsOnConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromEdges accepted conflicting edges")
		}
	}()
	FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
}

func TestMaximalGreedyIsMaximalProperty(t *testing.T) {
	r := rng.New(1)
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		p := float64(pRaw) / 255
		edges := randGraph(r, n, p)
		m := MaximalGreedy(n, edges)
		if err := Verify(n, edges, m); err != nil {
			return false
		}
		return IsMaximal(edges, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHopcroftKarpSmall(t *testing.T) {
	// Perfect matching exists: K_{3,3}.
	var edges []graph.Edge
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
		}
	}
	b := graph.NewBipartite(3, 3, edges)
	_, _, size := HopcroftKarp(b)
	if size != 3 {
		t.Fatalf("HK on K33 = %d, want 3", size)
	}
	// Path of length 3: L0-R0, L1-R0, L1-R1 -> max matching 2.
	b2 := graph.NewBipartite(2, 2, []graph.Edge{{U: 0, V: 0}, {U: 1, V: 0}, {U: 1, V: 1}})
	_, _, size2 := HopcroftKarp(b2)
	if size2 != 2 {
		t.Fatalf("HK on path = %d, want 2", size2)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	b := graph.NewBipartite(3, 3, nil)
	matchL, matchR, size := HopcroftKarp(b)
	if size != 0 {
		t.Fatal("empty graph matched something")
	}
	for _, v := range matchL {
		if v != -1 {
			t.Fatal("matchL not all -1")
		}
	}
	for _, v := range matchR {
		if v != -1 {
			t.Fatal("matchR not all -1")
		}
	}
}

func TestHopcroftKarpAgainstBruteForce(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		nl := r.Intn(6) + 1
		nr := r.Intn(6) + 1
		b := randBipartite(r, nl, nr, 0.4)
		_, _, size := HopcroftKarp(b)
		g := b.ToGraph()
		want := BruteForceSize(g.N, g.Edges)
		if size != want {
			t.Fatalf("trial %d: HK = %d, brute = %d (nl=%d nr=%d edges=%v)",
				trial, size, want, nl, nr, b.Edges)
		}
	}
}

func TestHopcroftKarpMatchingValid(t *testing.T) {
	r := rng.New(11)
	b := randBipartite(r, 40, 40, 0.1)
	m := MaximumBipartite(b)
	g := b.ToGraph()
	if err := Verify(g.N, g.Edges, m); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomOddCycle(t *testing.T) {
	// C5: maximum matching 2.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}}
	m := Blossom(5, edges)
	if m.Size() != 2 {
		t.Fatalf("Blossom on C5 = %d, want 2", m.Size())
	}
	if err := Verify(5, edges, m); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomPetersenLike(t *testing.T) {
	// Two triangles joined by a bridge: 0-1-2-0, 3-4-5-3, bridge 2-3.
	// Maximum matching = 3 (one edge per triangle + bridge is impossible;
	// actually {0-1, 2-3, 4-5} has size 3).
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	}
	m := Blossom(6, edges)
	if m.Size() != 3 {
		t.Fatalf("Blossom = %d, want 3", m.Size())
	}
}

func TestBlossomAgainstBruteForce(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(11) + 2
		p := 0.15 + r.Float64()*0.5
		edges := randGraph(r, n, p)
		m := Blossom(n, edges)
		if err := Verify(n, edges, m); err != nil {
			t.Fatalf("trial %d: invalid matching: %v", trial, err)
		}
		want := BruteForceSize(n, edges)
		if m.Size() != want {
			t.Fatalf("trial %d: Blossom = %d, brute = %d (n=%d edges=%v)",
				trial, m.Size(), want, n, edges)
		}
	}
}

func TestMaximumDispatch(t *testing.T) {
	r := rng.New(17)
	// Bipartite instance goes through HK; odd-cycle instance through
	// blossom; both must equal brute force.
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(10) + 2
		edges := randGraph(r, n, 0.3)
		m := Maximum(n, edges)
		if err := Verify(n, edges, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := BruteForceSize(n, edges); m.Size() != want {
			t.Fatalf("trial %d: Maximum = %d, brute = %d", trial, m.Size(), want)
		}
	}
}

func TestMaximumOnPerfectMatchingInstance(t *testing.T) {
	// Disjoint perfect matching of 1000 edges; Maximum must find all.
	n := 2000
	edges := make([]graph.Edge, 0, 1000)
	for i := 0; i < 1000; i++ {
		edges = append(edges, graph.Edge{U: graph.ID(2 * i), V: graph.ID(2*i + 1)})
	}
	m := Maximum(n, edges)
	if m.Size() != 1000 {
		t.Fatalf("Maximum on perfect matching = %d", m.Size())
	}
}

func TestAugmentGreedily(t *testing.T) {
	m := NewEmpty(6)
	m.Add(graph.Edge{U: 0, V: 1})
	added := m.AugmentGreedily([]graph.Edge{
		{U: 1, V: 2}, // conflicts with 0-1
		{U: 2, V: 3}, // ok
		{U: 4, V: 5}, // ok
		{U: 3, V: 4}, // conflicts now
	})
	if added != 2 || m.Size() != 3 {
		t.Fatalf("added = %d, size = %d", added, m.Size())
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	m := FromEdges(4, edges)
	m.Mate[0] = 2 // break symmetry
	if Verify(4, edges, m) == nil {
		t.Fatal("Verify accepted asymmetric mate relation")
	}
	m2 := NewEmpty(4)
	m2.Add(graph.Edge{U: 0, V: 2}) // not a graph edge
	if Verify(4, edges, m2) == nil {
		t.Fatal("Verify accepted non-edge pair")
	}
	m3 := NewEmpty(3)
	if Verify(4, edges, m3) == nil {
		t.Fatal("Verify accepted wrong length")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewEmpty(4)
	m.Add(graph.Edge{U: 0, V: 1})
	c := m.Clone()
	c.Add(graph.Edge{U: 2, V: 3})
	if m.Size() != 1 || c.Size() != 2 {
		t.Fatal("Clone shares state")
	}
}

func TestBruteForceKnownValues(t *testing.T) {
	// Triangle: 1. Square: 2. Star K_{1,4}: 1. Path P4: 2.
	cases := []struct {
		n     int
		edges []graph.Edge
		want  int
	}{
		{3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, 1},
		{4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}}, 2},
		{5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}, 1},
		{4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, 2},
		{2, nil, 0},
	}
	for i, tc := range cases {
		if got := BruteForceSize(tc.n, tc.edges); got != tc.want {
			t.Errorf("case %d: BruteForceSize = %d, want %d", i, got, tc.want)
		}
	}
}

func TestBruteForcePanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BruteForceSize accepted n > 24")
		}
	}()
	BruteForceSize(25, nil)
}

func TestBlossomParallelEdgesAndDuplicates(t *testing.T) {
	// Duplicate edges must not confuse the algorithm.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 2}}
	m := Blossom(3, edges)
	if m.Size() != 1 {
		t.Fatalf("Blossom with duplicates = %d, want 1", m.Size())
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	r := rng.New(1)
	bg := randBipartite(r, 2000, 2000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(bg)
	}
}

func BenchmarkBlossom(b *testing.B) {
	r := rng.New(2)
	edges := randGraph(r, 400, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Blossom(400, edges)
	}
}

func BenchmarkMaximalGreedy(b *testing.B) {
	r := rng.New(3)
	edges := randGraph(r, 2000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalGreedy(2000, edges)
	}
}
