package matching

import (
	"math"

	"repro/internal/graph"
)

// MaxWeightBipartite computes an exact maximum-weight matching of a
// bipartite graph with non-negative edge weights using the Hungarian
// algorithm (Kuhn-Munkres, Jonker-Volgenant style potentials) in O(n³).
// It maximizes total weight over matchings of any cardinality (vertices may
// stay unmatched if all their edges have non-positive reduced value, which
// for non-negative weights means only zero-weight edges are skippable).
//
// It is the centralized optimum against which experiment E11 scores the
// distributed Crouch-Stubbs pipeline; panics on negative weights.
func MaxWeightBipartite(b *graph.Bipartite, weights []float64) (pairs []graph.WEdge, total float64) {
	if len(weights) != len(b.Edges) {
		panic("matching: weights length mismatch")
	}
	nl, nr := b.NL, b.NR
	if nl == 0 || nr == 0 || len(b.Edges) == 0 {
		return nil, 0
	}
	// Dense weight matrix over [n x n] with n = max(nl, nr); missing edges
	// get weight 0, so an "assignment" may use non-edges at zero gain —
	// those pairs are filtered from the output. Parallel edges keep the max.
	n := nl
	if nr > n {
		n = nr
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i, e := range b.Edges {
		if weights[i] < 0 {
			panic("matching: negative weight")
		}
		if weights[i] > w[e.U][e.V] {
			w[e.U][e.V] = weights[i]
		}
	}

	// Hungarian algorithm for the assignment problem (maximization via the
	// standard potential formulation, 1-indexed internal arrays).
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, n+1) // alternating path back-pointers
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				// Cost formulation: maximize w  <=>  minimize -w.
				cur := -w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	for j := 1; j <= n; j++ {
		i := p[j]
		if i == 0 {
			continue
		}
		l, r := i-1, j-1
		if l < nl && r < nr && w[l][r] > 0 {
			pairs = append(pairs, graph.WEdge{U: graph.ID(l), V: graph.ID(r), W: w[l][r]})
			total += w[l][r]
		}
	}
	return pairs, total
}

// BruteForceMaxWeight computes the exact maximum-weight matching of a
// general weighted graph by exhaustive search over edge subsets with
// branch-and-bound; test oracle only (panics if more than 24 edges).
func BruteForceMaxWeight(n int, edges []graph.WEdge) float64 {
	if len(edges) > 24 {
		panic("matching: BruteForceMaxWeight limited to <= 24 edges")
	}
	used := make([]bool, n)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(edges) {
			return 0
		}
		// Skip edge i.
		best := rec(i + 1)
		e := edges[i]
		if e.U != e.V && !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if cand := e.W + rec(i+1); cand > best {
				best = cand
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}
