package matching

import "repro/internal/graph"

// HopcroftKarp computes a maximum matching of a bipartite graph in
// O(m * sqrt(n)) time. It returns matchL (for each left vertex, its right
// partner or -1), matchR (the reverse), and the matching size.
//
// This is the fast path for the coreset pipeline: the paper's hard
// distributions and most evaluation workloads are bipartite, and each of the
// k machines runs a maximum matching on its partition, so this kernel
// dominates end-to-end running time.
func HopcroftKarp(b *graph.Bipartite) (matchL, matchR []graph.ID, size int) {
	nl, nr := b.NL, b.NR
	// Build left-side CSR adjacency.
	off := make([]int32, nl+1)
	for _, e := range b.Edges {
		off[e.U+1]++
	}
	for i := 0; i < nl; i++ {
		off[i+1] += off[i]
	}
	nbr := make([]graph.ID, len(b.Edges))
	cur := make([]int32, nl)
	copy(cur, off[:nl])
	for _, e := range b.Edges {
		nbr[cur[e.U]] = e.V
		cur[e.U]++
	}

	matchL = make([]graph.ID, nl)
	matchR = make([]graph.ID, nr)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}

	// Greedy initialization typically matches most vertices and saves
	// several BFS/DFS phases.
	for u := 0; u < nl; u++ {
		for i := off[u]; i < off[u+1]; i++ {
			v := nbr[i]
			if matchR[v] == -1 {
				matchL[u] = v
				matchR[v] = graph.ID(u)
				size++
				break
			}
		}
	}

	const inf = int32(1) << 30
	dist := make([]int32, nl)
	queue := make([]graph.ID, 0, nl)
	// iter[u] is the scan position of u's adjacency during the DFS phase,
	// giving the standard "current-arc" optimization.
	iter := make([]int32, nl)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nl; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, graph.ID(u))
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for i := off[u]; i < off[u+1]; i++ {
				w := matchR[nbr[i]]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u graph.ID) bool
	dfs = func(u graph.ID) bool {
		for ; iter[u] < off[u+1]; iter[u]++ {
			v := nbr[iter[u]]
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		copy(iter, off[:nl])
		for u := 0; u < nl; u++ {
			if matchL[u] == -1 && dfs(graph.ID(u)) {
				size++
			}
		}
	}
	return matchL, matchR, size
}

// MaximumBipartite is a convenience wrapper returning the matching as a
// Matching over the combined vertex space of b.ToGraph() (left ids first).
func MaximumBipartite(b *graph.Bipartite) *Matching {
	matchL, _, _ := HopcroftKarp(b)
	m := NewEmpty(b.N())
	for l, r := range matchL {
		if r != -1 {
			m.Add(graph.Edge{U: graph.ID(l), V: graph.ID(b.NL) + r})
		}
	}
	return m
}
