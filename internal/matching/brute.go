package matching

import "repro/internal/graph"

// BruteForceSize computes the exact maximum matching size by dynamic
// programming over vertex subsets (O(2^n * deg)). It is the ground truth
// for cross-checking Hopcroft-Karp and the blossom algorithm on small
// instances; panics if n > 24.
func BruteForceSize(n int, edges []graph.Edge) int {
	if n > 24 {
		panic("matching: BruteForceSize limited to n <= 24")
	}
	// adjMask[v] = bitmask of v's neighbors.
	adjMask := make([]uint32, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adjMask[e.U] |= 1 << uint(e.V)
		adjMask[e.V] |= 1 << uint(e.U)
	}
	memo := make([]int8, 1<<uint(n))
	for i := range memo {
		memo[i] = -1
	}
	var solve func(mask uint32) int8
	solve = func(mask uint32) int8 {
		if mask == 0 {
			return 0
		}
		if memo[mask] != -1 {
			return memo[mask]
		}
		// Lowest set bit: either leave it unmatched or match it.
		v := 0
		for mask&(1<<uint(v)) == 0 {
			v++
		}
		rest := mask &^ (1 << uint(v))
		best := solve(rest)
		nbrs := adjMask[v] & rest
		for nbrs != 0 {
			w := 0
			for nbrs&(1<<uint(w)) == 0 {
				w++
			}
			nbrs &^= 1 << uint(w)
			if cand := 1 + solve(rest&^(1<<uint(w))); cand > best {
				best = cand
			}
		}
		memo[mask] = best
		return best
	}
	return int(solve(uint32(1)<<uint(n) - 1))
}
