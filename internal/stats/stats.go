// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics with confidence intervals over
// repeated seeded trials, and fixed-width table rendering for the
// paper-shaped result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming moments of a sample.
type Summary struct {
	n        int
	mean, m2 float64 // Welford accumulators
	min, max float64
	values   []float64 // retained for quantiles
}

// Add inserts one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.values = append(s.values, x)
}

// N returns the sample size.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	vs := append([]float64(nil), s.values...)
	sort.Float64s(vs)
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[len(vs)-1]
	}
	pos := q * float64(len(vs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vs[lo]
	}
	frac := pos - float64(lo)
	return vs[lo]*(1-frac) + vs[hi]*frac
}

// MeanCI formats "mean ± ci" compactly.
func (s *Summary) MeanCI() string {
	return fmt.Sprintf("%.3g ± %.2g", s.Mean(), s.CI95())
}
