package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("Var = %v, want 2.5", s.Var())
	}
	if math.Abs(s.Std()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Var() != 0 || s.Min() != 7 || s.Max() != 7 {
		t.Fatal("single-element summary wrong")
	}
}

func TestSummaryAgainstDirectComputation(t *testing.T) {
	r := rng.New(5)
	var s Summary
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.Float64()*10 - 5
		xs = append(xs, x)
		s.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", s.Mean(), mean)
	}
	if math.Abs(s.Var()-variance) > 1e-9 {
		t.Fatalf("var %v vs %v", s.Var(), variance)
	}
}

func TestQuantiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", q)
	}
	if q := s.Quantile(0.25); math.Abs(q-25.75) > 1e-9 {
		t.Fatalf("q25 = %v", q)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(7)
	var small, large Summary
	for i := 0; i < 20; i++ {
		small.Add(r.Float64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(r.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestMeanCIFormat(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	out := s.MeanCI()
	if !strings.Contains(out, "±") {
		t.Fatalf("MeanCI = %q", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "k", "ratio", "bytes")
	tb.AddRow(2, 1.2345678, "abc")
	tb.AddRow(16, 2.0, 12345)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "k") || !strings.Contains(out, "ratio") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "1.235") { // %.4g
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share prefix widths.
	if len(lines[1]) == 0 || lines[2][0] != '-' {
		t.Fatalf("rule line wrong:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("empty title should not render")
	}
}
