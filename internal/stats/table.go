package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width table used for experiment output; rendering
// is deterministic so tables can be diffed across runs.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(pad(h, width[i]))
	}
	fmt.Fprintln(w, sb.String())
	sb.Reset()
	for i := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", width[i]))
	}
	fmt.Fprintln(w, sb.String())
	for _, row := range t.Rows {
		sb.Reset()
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(width) {
				sb.WriteString(pad(c, width[i]))
			} else {
				sb.WriteString(c)
			}
		}
		fmt.Fprintln(w, sb.String())
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
