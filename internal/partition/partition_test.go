package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func randEdges(r *rng.RNG, n, m int) []graph.Edge {
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := graph.ID(r.Intn(n)), graph.ID(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v}.Canon())
	}
	return edges
}

func TestRandomKIsPartition(t *testing.T) {
	r := rng.New(1)
	f := func(kRaw uint8, mRaw uint16) bool {
		k := int(kRaw%16) + 1
		m := int(mRaw % 500)
		edges := randEdges(r, 100, m)
		parts := RandomK(edges, k, r)
		return len(parts) == k && Verify(edges, parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomKDeterministicGivenSeed(t *testing.T) {
	edges := randEdges(rng.New(3), 50, 200)
	p1 := RandomK(edges, 4, rng.New(7))
	p2 := RandomK(edges, 4, rng.New(7))
	for i := range p1 {
		if len(p1[i]) != len(p2[i]) {
			t.Fatal("same seed produced different partitions")
		}
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatal("same seed produced different partitions")
			}
		}
	}
}

func TestRandomKBalance(t *testing.T) {
	// With m = 20000 and k = 10, each part has mean 2000 and stddev ~42;
	// all parts should fall well within 6 sigma.
	r := rng.New(11)
	edges := randEdges(r, 500, 20000)
	parts := RandomK(edges, 10, r)
	min, max, mean := LoadStats(parts)
	if mean != 2000 {
		t.Fatalf("mean = %v, want 2000", mean)
	}
	sigma := math.Sqrt(20000 * 0.1 * 0.9)
	if float64(min) < mean-6*sigma || float64(max) > mean+6*sigma {
		t.Fatalf("unbalanced: min=%d max=%d mean=%v sigma=%v", min, max, mean, sigma)
	}
}

func TestRandomKUniformMachineChoice(t *testing.T) {
	// A single fixed edge must land on each of k machines equally often.
	const k, trials = 5, 20000
	counts := make([]int, k)
	r := rng.New(13)
	edge := []graph.Edge{{U: 0, V: 1}}
	for i := 0; i < trials; i++ {
		parts := RandomK(edge, k, r)
		for j, p := range parts {
			if len(p) == 1 {
				counts[j]++
			}
		}
	}
	want := float64(trials) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("machine %d got the edge %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestAssignmentAndByAssignment(t *testing.T) {
	r := rng.New(17)
	edges := randEdges(r, 60, 300)
	assign := Assignment(len(edges), 7, r)
	for _, a := range assign {
		if a < 0 || a >= 7 {
			t.Fatalf("assignment out of range: %d", a)
		}
	}
	parts := ByAssignment(edges, 7, assign)
	if !Verify(edges, parts) {
		t.Fatal("ByAssignment does not partition")
	}
	// Edge i must be in part assign[i].
	idx := 0
	seen := make([]int, 7)
	for _, a := range assign {
		_ = a
		idx++
	}
	_ = idx
	for i, p := range parts {
		seen[i] = len(p)
	}
	wantCounts := make([]int, 7)
	for _, a := range assign {
		wantCounts[a]++
	}
	for i := range seen {
		if seen[i] != wantCounts[i] {
			t.Fatalf("part %d has %d edges, want %d", i, seen[i], wantCounts[i])
		}
	}
}

func TestAdversarialChunksPartition(t *testing.T) {
	r := rng.New(19)
	edges := randEdges(r, 40, 113)
	parts := AdversarialChunks(edges, 8)
	if !Verify(edges, parts) {
		t.Fatal("chunks is not a partition")
	}
}

func TestAdversarialByVertexGroupsNeighborhoods(t *testing.T) {
	// Star around vertex 0: all edges must land on the same machine.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}
	parts := AdversarialByVertex(edges, 4)
	if !Verify(edges, parts) {
		t.Fatal("by-vertex is not a partition")
	}
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("star neighborhood split across %d machines, want 1", nonEmpty)
	}
}

func TestAdversarialMatchingHidingSpreads(t *testing.T) {
	// Star around vertex 0 with k=4 and 8 edges: every machine gets 2.
	var edges []graph.Edge
	for v := graph.ID(1); v <= 8; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	parts := AdversarialMatchingHiding(edges, 4)
	if !Verify(edges, parts) {
		t.Fatal("matching-hiding is not a partition")
	}
	for i, p := range parts {
		if len(p) != 2 {
			t.Fatalf("machine %d got %d edges, want 2", i, len(p))
		}
	}
}

func TestVerifyRejectsBadPartitions(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	// Missing edge.
	if Verify(edges, [][]graph.Edge{{{U: 0, V: 1}}}) {
		t.Fatal("accepted partition missing an edge")
	}
	// Duplicated edge.
	if Verify(edges, [][]graph.Edge{{{U: 0, V: 1}}, {{U: 0, V: 1}}}) {
		t.Fatal("accepted partition with duplicate")
	}
	// Foreign edge.
	if Verify(edges, [][]graph.Edge{{{U: 0, V: 1}}, {{U: 2, V: 3}}}) {
		t.Fatal("accepted partition with foreign edge")
	}
}

func TestSplitMatchingAcross(t *testing.T) {
	matching := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	parts := [][]graph.Edge{
		{{U: 0, V: 1}, {U: 4, V: 5}},
		{{U: 2, V: 3}},
		{},
	}
	counts := SplitMatchingAcross(parts, matching)
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestByNameAndStrategies(t *testing.T) {
	r := rng.New(23)
	edges := randEdges(r, 30, 90)
	for _, s := range Strategies() {
		parts := ByName(s, edges, 3, r)
		if !Verify(edges, parts) {
			t.Errorf("strategy %q does not partition", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy did not panic")
		}
	}()
	ByName("nope", edges, 3, r)
}

func TestPanicsOnBadK(t *testing.T) {
	for _, f := range []func(){
		func() { RandomK(nil, 0, rng.New(1)) },
		func() { AdversarialChunks(nil, 0) },
		func() { AdversarialByVertex(nil, -1) },
		func() { AdversarialMatchingHiding(nil, 0) },
		func() { Assignment(3, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on k <= 0")
				}
			}()
			f()
		}()
	}
}

func TestClaim33Concentration(t *testing.T) {
	// Claim 3.3: |M*_{<i}| <= ((i-1+o(i))/k) * |M*| w.h.p. Check that the
	// number of matching edges in the first i-1 parts concentrates around
	// (i-1)/k of the matching.
	r := rng.New(29)
	const k, mm = 10, 5000
	matching := make([]graph.Edge, mm)
	for i := range matching {
		matching[i] = graph.Edge{U: graph.ID(2 * i), V: graph.ID(2*i + 1)}
	}
	parts := RandomK(matching, k, r)
	counts := SplitMatchingAcross(parts, matching)
	prefix := 0
	for i := 1; i <= k; i++ {
		want := float64(i-1) / k * mm
		sigma := math.Sqrt(mm * float64(i-1) / k * (1 - float64(i-1)/k))
		if sigma > 0 && math.Abs(float64(prefix)-want) > 6*sigma {
			t.Errorf("|M*_<%d| = %d, want ~%.0f (sigma %.1f)", i, prefix, want, sigma)
		}
		prefix += counts[i-1]
	}
}
