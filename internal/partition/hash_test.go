package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestHashKIsPartition(t *testing.T) {
	r := rng.New(31)
	f := func(kRaw uint8, mRaw uint16, seed uint64) bool {
		k := int(kRaw%16) + 1
		m := int(mRaw % 500)
		edges := randEdges(r, 100, m)
		parts := HashK(edges, k, seed)
		return len(parts) == k && Verify(edges, parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashAssignDeterministicPerSeed(t *testing.T) {
	edges := randEdges(rng.New(37), 80, 400)
	a := HashAssignAll(edges, 9, 123)
	b := HashAssignAll(edges, 9, 123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different assignments")
		}
		if a[i] < 0 || a[i] >= 9 {
			t.Fatalf("assignment %d out of range", a[i])
		}
	}
}

// The property RandomK cannot offer: the machine of an edge is independent
// of where the edge sits in the stream, so any concurrent sharding of any
// reordering reproduces the same k-partitioning.
func TestHashAssignPositionIndependent(t *testing.T) {
	r := rng.New(41)
	edges := randEdges(r, 60, 300)
	const k, seed = 7, 99
	want := make(map[graph.Edge]int, len(edges))
	for _, e := range edges {
		want[e.Canon()] = HashAssign(e, k, seed)
	}
	shuffled := append([]graph.Edge(nil), edges...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, e := range shuffled {
		if HashAssign(e, k, seed) != want[e.Canon()] {
			t.Fatal("assignment depends on position")
		}
	}
	// Orientation must not matter either: (u,v) and (v,u) are one edge.
	for _, e := range edges {
		if HashAssign(graph.Edge{U: e.V, V: e.U}, k, seed) != want[e.Canon()] {
			t.Fatal("assignment depends on edge orientation")
		}
	}
}

func TestHashAssignBalance(t *testing.T) {
	// 20000 distinct edges over k=10 machines: every load within 6 sigma of
	// the mean, like the RandomK balance test.
	var edges []graph.Edge
	for u := graph.ID(0); len(edges) < 20000; u++ {
		for v := u + 1; v < u+11 && len(edges) < 20000; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	parts := HashK(edges, 10, 7)
	min, max, mean := LoadStats(parts)
	sigma := math.Sqrt(20000 * 0.1 * 0.9)
	if float64(min) < mean-6*sigma || float64(max) > mean+6*sigma {
		t.Fatalf("unbalanced: min=%d max=%d mean=%v sigma=%v", min, max, mean, sigma)
	}
}

func TestHashAssignSeedSensitivity(t *testing.T) {
	edges := randEdges(rng.New(43), 200, 2000)
	a := HashAssignAll(edges, 8, 1)
	b := HashAssignAll(edges, 8, 2)
	moved := 0
	for i := range a {
		if a[i] != b[i] {
			moved++
		}
	}
	// Under independent uniform choices ~7/8 of edges move; require most do.
	if moved < len(edges)/2 {
		t.Fatalf("only %d/%d edges moved between seeds", moved, len(edges))
	}
}

func TestHashAssignPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on k <= 0")
		}
	}()
	HashAssign(graph.Edge{U: 0, V: 1}, 0, 1)
}

// TestRandomKPreservesMultisetWithDuplicates pins the multiset guarantee the
// ISSUE calls out, on an input with parallel edges (the paper's Theorem 2
// explicitly supports multigraphs).
func TestRandomKPreservesMultisetWithDuplicates(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 2}}
	if !Verify(edges, RandomK(edges, 3, rng.New(5))) {
		t.Fatal("RandomK dropped or invented parallel edges")
	}
	if !Verify(edges, HashK(edges, 3, 5)) {
		t.Fatal("HashK dropped or invented parallel edges")
	}
}
