// Package partition implements edge partitioning schemes for the
// simultaneous / coordinator model.
//
// The paper's central object is the random k-partitioning (its Definition in
// Section 1): every edge of G is assigned independently and uniformly at
// random to one of k machines. The package also provides adversarial
// partitioners used to reproduce the paper's motivating contrast (Section 1,
// Experiment E10): with adversarial partitioning, matching and vertex cover
// need Ω~(n^2)-size summaries, while random partitioning admits O~(n)-size
// coresets.
package partition

import (
	"math/bits"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RandomK assigns each edge independently and uniformly to one of k parts —
// the paper's random k-partitioning. The union of the parts is exactly the
// input edge multiset; the input slice is not modified. Panics if k <= 0.
func RandomK(edges []graph.Edge, k int, r *rng.RNG) [][]graph.Edge {
	if k <= 0 {
		panic("partition: RandomK with k <= 0")
	}
	parts := make([][]graph.Edge, k)
	// Pre-size parts to the expected load to avoid repeated growth.
	expect := len(edges)/k + 1
	for i := range parts {
		parts[i] = make([]graph.Edge, 0, expect+expect/4)
	}
	for _, e := range edges {
		i := r.Intn(k)
		parts[i] = append(parts[i], e)
	}
	return parts
}

// Assignment returns the machine index for every edge under a random
// k-partitioning, without materializing the parts. Used by experiments that
// need to know where a distinguished edge (e.g. e* in D_VC) landed.
func Assignment(m, k int, r *rng.RNG) []int {
	if k <= 0 {
		panic("partition: Assignment with k <= 0")
	}
	a := make([]int, m)
	for i := range a {
		a[i] = r.Intn(k)
	}
	return a
}

// mix64 is the splitmix64 finalizer: a bijective mixer with full avalanche,
// used to turn structured (seed, edge) keys into uniform machine choices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashAssign returns the machine in [0, k) that edge e is routed to under a
// seeded hash partitioning. Unlike RandomK, which draws from a single
// sequential RNG and therefore depends on edge order, HashAssign is a pure
// function of (seed, canonical endpoints): any number of concurrent sharders
// can route disjoint slices of the stream and reproduce exactly the same
// k-partitioning, which is what the streaming runtime (internal/stream)
// needs. The per-edge choices are the splitmix64 finalizer over the mixed
// key, mapped to [0, k) by multiply-shift. Note that parallel edges share an
// identity and therefore a machine — the standard behaviour of hash-sharded
// deployments (and harmless for Theorems 1 and 2, whose guarantees are per
// edge-identity). Panics if k <= 0.
func HashAssign(e graph.Edge, k int, seed uint64) int {
	if k <= 0 {
		panic("partition: HashAssign with k <= 0")
	}
	c := e.Canon()
	key := mix64(seed) ^ (uint64(uint32(c.U))<<32 | uint64(uint32(c.V)))
	hi, _ := bits.Mul64(mix64(key), uint64(k))
	return int(hi)
}

// HashAssignAll returns the HashAssign machine index for every edge. It is
// the assignment-vector oracle the streaming/batch parity tests compare
// against.
func HashAssignAll(edges []graph.Edge, k int, seed uint64) []int {
	a := make([]int, len(edges))
	for i, e := range edges {
		a[i] = HashAssign(e, k, seed)
	}
	return a
}

// HashK materializes the hash k-partitioning of the edge multiset: the batch
// equivalent of streaming every edge through HashAssign. Within each part,
// edges keep their input order.
func HashK(edges []graph.Edge, k int, seed uint64) [][]graph.Edge {
	return ByAssignment(edges, k, HashAssignAll(edges, k, seed))
}

// ByAssignment materializes parts from an explicit assignment vector.
func ByAssignment(edges []graph.Edge, k int, assign []int) [][]graph.Edge {
	if len(assign) != len(edges) {
		panic("partition: assignment length mismatch")
	}
	parts := make([][]graph.Edge, k)
	for i, e := range edges {
		parts[assign[i]] = append(parts[assign[i]], e)
	}
	return parts
}

// Adversarial strategies. Each returns a k-partitioning designed to defeat
// summary-based protocols, illustrating why the paper's random-partition
// assumption is essential.

// AdversarialChunks splits the edge list into k contiguous chunks in input
// order. When the generator emits edges with locality (e.g. sorted by left
// endpoint), each machine sees a vertex-local subgraph.
func AdversarialChunks(edges []graph.Edge, k int) [][]graph.Edge {
	if k <= 0 {
		panic("partition: AdversarialChunks with k <= 0")
	}
	parts := make([][]graph.Edge, k)
	for i := range parts {
		lo := i * len(edges) / k
		hi := (i + 1) * len(edges) / k
		parts[i] = append([]graph.Edge(nil), edges[lo:hi]...)
	}
	return parts
}

// AdversarialByVertex routes all edges incident to the same lower endpoint
// to the same machine (round-robin over distinct endpoints after sorting).
// Each machine receives a union of full vertex neighborhoods: a classic
// worst case for matching coresets because machine-local maximum matchings
// can be forced to reuse the same few right vertices.
func AdversarialByVertex(edges []graph.Edge, k int) [][]graph.Edge {
	if k <= 0 {
		panic("partition: AdversarialByVertex with k <= 0")
	}
	sorted := append([]graph.Edge(nil), edges...)
	graph.SortEdges(sorted)
	parts := make([][]graph.Edge, k)
	for _, e := range sorted {
		i := int(e.U) % k
		parts[i] = append(parts[i], e)
	}
	return parts
}

// AdversarialMatchingHiding spreads every vertex's incident edges across as
// many machines as possible: edges incident to a vertex v are dealt to
// machines (v + j) mod k in rotation. Each machine then sees a near-regular
// sparse slice of every neighborhood, so a machine-local maximum matching
// carries almost no information about which edges are globally critical.
func AdversarialMatchingHiding(edges []graph.Edge, k int) [][]graph.Edge {
	if k <= 0 {
		panic("partition: AdversarialMatchingHiding with k <= 0")
	}
	sorted := append([]graph.Edge(nil), edges...)
	graph.SortEdges(sorted)
	parts := make([][]graph.Edge, k)
	rot := map[graph.ID]int{}
	for _, e := range sorted {
		i := (int(e.U) + rot[e.U]) % k
		rot[e.U]++
		parts[i] = append(parts[i], e)
	}
	return parts
}

// Verify checks that parts form an exact multiset partition of edges:
// every input edge appears in exactly one part, and no part contains an
// edge that was not in the input. Returns true iff the partition is valid.
func Verify(edges []graph.Edge, parts [][]graph.Edge) bool {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(edges) {
		return false
	}
	count := func(es []graph.Edge) map[graph.Edge]int {
		m := make(map[graph.Edge]int, len(es))
		for _, e := range es {
			m[e.Canon()]++
		}
		return m
	}
	want := count(edges)
	got := make(map[graph.Edge]int)
	for _, p := range parts {
		for _, e := range p {
			got[e.Canon()]++
		}
	}
	if len(want) != len(got) {
		return false
	}
	for e, c := range want {
		if got[e] != c {
			return false
		}
	}
	return true
}

// LoadStats returns the min, max and mean part sizes — used by tests to
// check the balance properties that the paper's Chernoff arguments rely on.
func LoadStats(parts [][]graph.Edge) (min, max int, mean float64) {
	if len(parts) == 0 {
		return 0, 0, 0
	}
	min = len(parts[0])
	total := 0
	for _, p := range parts {
		if len(p) < min {
			min = len(p)
		}
		if len(p) > max {
			max = len(p)
		}
		total += len(p)
	}
	return min, max, float64(total) / float64(len(parts))
}

// SplitMatchingAcross reports, for each part, how many edges of the given
// matching (an edge set) landed in it. This measures |M*_{<i}|-style
// quantities from Claim 3.3.
func SplitMatchingAcross(parts [][]graph.Edge, matching []graph.Edge) []int {
	in := make(map[graph.Edge]bool, len(matching))
	for _, e := range matching {
		in[e.Canon()] = true
	}
	counts := make([]int, len(parts))
	for i, p := range parts {
		for _, e := range p {
			if in[e.Canon()] {
				counts[i]++
			}
		}
	}
	return counts
}

// Names of the adversarial strategies, for experiment tables.
const (
	StrategyRandom         = "random"
	StrategyChunks         = "chunks"
	StrategyByVertex       = "by-vertex"
	StrategyMatchingHiding = "matching-hiding"
)

// ByName partitions edges with the named strategy. Random uses r; the
// adversarial strategies are deterministic. Unknown names panic.
func ByName(name string, edges []graph.Edge, k int, r *rng.RNG) [][]graph.Edge {
	switch name {
	case StrategyRandom:
		return RandomK(edges, k, r)
	case StrategyChunks:
		return AdversarialChunks(edges, k)
	case StrategyByVertex:
		return AdversarialByVertex(edges, k)
	case StrategyMatchingHiding:
		return AdversarialMatchingHiding(edges, k)
	}
	panic("partition: unknown strategy " + name)
}

// Strategies lists all partitioning strategies in table order.
func Strategies() []string {
	s := []string{StrategyRandom, StrategyChunks, StrategyByVertex, StrategyMatchingHiding}
	sort.Strings(s[1:]) // keep random first, adversarial alphabetical
	return s
}
