package gen

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// GNPIter must replay GNP's draw sequence exactly: same seed, same edges.
func TestGNPIterMatchesGNP(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		seed uint64
	}{
		{500, 8.0 / 500, 1},
		{500, 8.0 / 500, 2},
		{100, 0.5, 3},
		{40, 1, 4}, // dense mode
		{10, 0, 5}, // empty
		{1, 0.5, 6},
		{0, 0.5, 7},
	}
	for _, c := range cases {
		want := GNP(c.n, c.p, rng.New(c.seed)).Edges
		got := Collect(GNPIter(c.n, c.p, rng.New(c.seed)))
		if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("n=%d p=%v seed=%d: iter %d edges != batch %d edges", c.n, c.p, c.seed, len(got), len(want))
		}
	}
}

func TestGNPIterExhaustedStaysExhausted(t *testing.T) {
	it := GNPIter(50, 0.2, rng.New(9))
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator yielded an edge after exhaustion")
	}
}

func TestStarIterMatchesStar(t *testing.T) {
	for _, n := range []int{1, 2, 10} {
		want := Star(n).Edges
		got := Collect(StarIter(n))
		if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("n=%d: star iter differs", n)
		}
	}
}

func TestSliceIter(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	if !reflect.DeepEqual(Collect(SliceIter(edges)), edges) {
		t.Fatal("slice iter differs")
	}
	if got := Collect(SliceIter(nil)); got != nil {
		t.Fatalf("empty slice iter yielded %v", got)
	}
}

func TestGNPIterPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GNPIter(10, 1.5, rng.New(1))
}

// PowerlawIter must replay ChungLu's draw sequence exactly: same seed, same
// edges in the same order — including the Zipf weight draws, the per-row
// skip-sampling and the relabeling permutation.
func TestPowerlawIterMatchesChungLu(t *testing.T) {
	cases := []struct {
		n         int
		exponent  float64
		maxWeight int
		seed      uint64
	}{
		{2000, 2.0, 126, 1},
		{2000, 2.0, 126, 2},
		{500, 2.5, 40, 3},
		{50, 2.0, 100, 4}, // maxWeight > n: pair probabilities clamp at 1
		{3, 2.0, 1, 5},    // uniform weights
		{1, 2.0, 10, 6},   // no edges, no draws
		{0, 2.0, 10, 7},
	}
	for _, c := range cases {
		want := ChungLu(c.n, c.exponent, c.maxWeight, rng.New(c.seed)).Edges
		got := Collect(PowerlawIter(c.n, c.exponent, c.maxWeight, rng.New(c.seed)))
		if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("n=%d maxW=%d seed=%d: iter %d edges != batch %d edges",
				c.n, c.maxWeight, c.seed, len(got), len(want))
		}
	}
}

func TestPowerlawIterExhaustedStaysExhausted(t *testing.T) {
	it := PowerlawIter(300, 2.0, 20, rng.New(9))
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator yielded an edge after exhaustion")
	}
}

func TestPowerlawIterPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PowerlawIter(10, 2.0, 0, rng.New(1))
}
