package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// HardMatchingInstance is a sample from the paper's distribution D_Matching
// (Sections 4.1 and 5.1), the hard input for matching lower bounds.
//
// The bipartite graph G(L, R, E) with |L| = |R| = n consists of:
//   - E_AB ("confuser"): random subsets A ⊆ L, B ⊆ R of size n/alpha, with
//     each pair in A x B an edge independently with probability k*alpha/n;
//   - E_ĀB̄ ("hidden"): a random perfect matching between L\A and R\B.
//
// MM(G) >= n - n/alpha, but any matching larger than 2n/alpha must use
// hidden edges, and after random k-partitioning the hidden edges are
// locally indistinguishable from degree-1 confuser edges (Lemma 4.1).
type HardMatchingInstance struct {
	B      *graph.Bipartite // the full graph, |L| = |R| = n
	InA    []bool           // InA[l]: left vertex l is in A
	InB    []bool           // InB[r]: right vertex r is in B
	Hidden []graph.Edge     // the perfect matching on (L\A) x (R\B)
	// HiddenSet maps canonical (left, right) hidden edges for O(1) lookup.
	HiddenSet map[graph.Edge]bool
}

// HardMatching samples D_Matching with parameters (n, alpha, k).
// Requires 1 <= n/alpha <= n.
func HardMatching(n, alpha, k int, r *rng.RNG) *HardMatchingInstance {
	if n < 1 || alpha < 1 || k < 1 {
		panic("gen: HardMatching with invalid parameters")
	}
	a := n / alpha
	if a < 1 {
		a = 1
	}
	inst := &HardMatchingInstance{
		InA:       make([]bool, n),
		InB:       make([]bool, n),
		HiddenSet: make(map[graph.Edge]bool, n-a),
	}
	for _, v := range r.SampleK(n, a) {
		inst.InA[v] = true
	}
	for _, v := range r.SampleK(n, a) {
		inst.InB[v] = true
	}
	// Materialize A and B index lists plus the complements.
	var aIdx, bIdx, aBar, bBar []graph.ID
	for v := 0; v < n; v++ {
		if inst.InA[v] {
			aIdx = append(aIdx, graph.ID(v))
		} else {
			aBar = append(aBar, graph.ID(v))
		}
		if inst.InB[v] {
			bIdx = append(bIdx, graph.ID(v))
		} else {
			bBar = append(bBar, graph.ID(v))
		}
	}
	// E_AB: skip-sample over the a x a pair space.
	p := float64(k) * float64(alpha) / float64(n)
	if p > 1 {
		p = 1
	}
	var edges []graph.Edge
	sub := BipartiteGNP(len(aIdx), len(bIdx), p, r)
	for _, e := range sub.Edges {
		edges = append(edges, graph.Edge{U: aIdx[e.U], V: bIdx[e.V]})
	}
	// E_ĀB̄: random perfect matching between the complements.
	perm := r.Perm32(len(bBar))
	for i, l := range aBar {
		e := graph.Edge{U: l, V: bBar[perm[i]]}
		inst.Hidden = append(inst.Hidden, e)
		inst.HiddenSet[e] = true
		edges = append(edges, e)
	}
	inst.B = graph.NewBipartite(n, n, edges)
	return inst
}

// InducedMatching returns the induced matching M(i) of a machine's edge set:
// the edges both of whose endpoints have degree exactly one within the set
// (degree-1 with respect to the whole local graph, as in Lemma 4.1).
// Edges are in bipartite (left, right) coordinates.
func InducedMatching(n int, edges []graph.Edge) []graph.Edge {
	degL := make([]int32, n)
	degR := make([]int32, n)
	for _, e := range edges {
		degL[e.U]++
		degR[e.V]++
	}
	var out []graph.Edge
	for _, e := range edges {
		if degL[e.U] == 1 && degR[e.V] == 1 {
			out = append(out, e)
		}
	}
	return out
}

// HardVCInstance is a sample from the paper's distribution D_VC
// (Sections 4.2 and 5.3), the hard input for vertex-cover lower bounds.
//
// The bipartite graph G(L, R, E) with |L| = |R| = n consists of:
//   - E_A: a random subset A ⊆ L of size n/alpha, with each pair in A x R an
//     edge independently with probability k/2n;
//   - e*: one extra edge from a uniformly random vertex v* of A to a
//     uniformly random right vertex.
//
// G has a vertex cover of size ~n/alpha (the set A), but a protocol that
// loses track of e* must cover it blindly, which forces Ω(n) vertices.
type HardVCInstance struct {
	B     *graph.Bipartite // the full graph, |L| = |R| = n
	InA   []bool           // InA[l]: left vertex l is in A
	VStar graph.ID         // v* in A
	EStar graph.Edge       // e* = (v*, r*) in bipartite coordinates
	// EStarIndex is the position of e* within B.Edges.
	EStarIndex int
}

// HardVC samples D_VC with parameters (n, alpha, k).
func HardVC(n, alpha, k int, r *rng.RNG) *HardVCInstance {
	if n < 1 || alpha < 1 || k < 1 {
		panic("gen: HardVC with invalid parameters")
	}
	a := n / alpha
	if a < 1 {
		a = 1
	}
	inst := &HardVCInstance{InA: make([]bool, n)}
	aIdx := r.SampleK(n, a)
	for _, v := range aIdx {
		inst.InA[v] = true
	}
	p := float64(k) / (2 * float64(n))
	if p > 1 {
		p = 1
	}
	var edges []graph.Edge
	sub := BipartiteGNP(a, n, p, r)
	for _, e := range sub.Edges {
		edges = append(edges, graph.Edge{U: aIdx[e.U], V: e.V})
	}
	inst.VStar = aIdx[r.Intn(len(aIdx))]
	inst.EStar = graph.Edge{U: inst.VStar, V: graph.ID(r.Intn(n))}
	inst.EStarIndex = len(edges)
	edges = append(edges, inst.EStar)
	inst.B = graph.NewBipartite(n, n, edges)
	return inst
}

// DegreeOneLeft returns L¹ — the left vertices with degree exactly one in
// the edge set — and R¹, the set of their neighbors (Lemma 4.2's sets).
func DegreeOneLeft(n int, edges []graph.Edge) (l1 []graph.ID, r1 []graph.ID) {
	degL := make([]int32, n)
	for _, e := range edges {
		degL[e.U]++
	}
	inR1 := make([]bool, n)
	for _, e := range edges {
		if degL[e.U] == 1 {
			if !inR1[e.V] {
				inR1[e.V] = true
				r1 = append(r1, e.V)
			}
		}
	}
	for v := 0; v < n; v++ {
		if degL[v] == 1 {
			l1 = append(l1, graph.ID(v))
		}
	}
	return l1, r1
}

// GreedyTrapInstance is the instance family on which an arbitrary maximal
// matching per machine is only an Ω(k)-approximate coreset (Section 1.2):
// a perfect matching between P and Q (|P| = |Q| = n) plus a "confuser"
// complete bipartite graph between a small set P' (|P'| = n/k) and all of Q.
//
// In each machine an adversarial maximal matching can match P' to exactly
// the right endpoints of the machine's perfect-matching edges, blocking
// them; the union of such coresets then only contains O(n/k) matchable
// edges, while MM(G) = n. A *maximum* matching per machine (Theorem 1)
// avoids the trap.
type GreedyTrapInstance struct {
	B        *graph.Bipartite // left = P' ∪ P (P' first), right = Q
	NPrime   int              // |P'|; left ids [0, NPrime) are P'
	N        int              // |P| = |Q|
	IsHidden []bool           // per edge of B: true if a perfect-matching edge
}

// GreedyTrap builds the instance with |P| = |Q| = n and |P'| = ceil(n/k).
func GreedyTrap(n, k int, r *rng.RNG) *GreedyTrapInstance {
	if n < 1 || k < 1 {
		panic("gen: GreedyTrap with invalid parameters")
	}
	np := (n + k - 1) / k
	inst := &GreedyTrapInstance{NPrime: np, N: n}
	var edges []graph.Edge
	var hidden []bool
	// Confuser: complete bipartite P' x Q.
	for u := 0; u < np; u++ {
		for q := 0; q < n; q++ {
			edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(q)})
			hidden = append(hidden, false)
		}
	}
	// Perfect matching: P_i (left id np+i) to a random permutation of Q.
	perm := r.Perm32(n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: graph.ID(np + i), V: perm[i]})
		hidden = append(hidden, true)
	}
	inst.B = graph.NewBipartite(np+n, n, edges)
	inst.IsHidden = hidden
	return inst
}

// AdversarialMaximalOrder orders a machine's edges so that a greedy maximal
// matching falls into the trap: for every local hidden edge (p, q), some
// confuser edge (p', q) with the same right endpoint is processed first,
// consuming q. Remaining confuser edges come next and hidden edges last.
// isHidden classifies edges of the local part (in bipartite coordinates).
func AdversarialMaximalOrder(part []graph.Edge, isHidden func(graph.Edge) bool) []graph.Edge {
	hiddenRight := make(map[graph.ID]bool)
	for _, e := range part {
		if isHidden(e) {
			hiddenRight[e.V] = true
		}
	}
	blockers := make([]graph.Edge, 0, len(part))
	confusers := make([]graph.Edge, 0, len(part))
	hiddens := make([]graph.Edge, 0, len(part))
	for _, e := range part {
		switch {
		case isHidden(e):
			hiddens = append(hiddens, e)
		case hiddenRight[e.V]:
			blockers = append(blockers, e)
		default:
			confusers = append(confusers, e)
		}
	}
	out := make([]graph.Edge, 0, len(part))
	out = append(out, blockers...)
	out = append(out, confusers...)
	out = append(out, hiddens...)
	return out
}
