// Package gen generates the synthetic workloads used throughout the
// experiment suite: Erdos-Renyi and bipartite random graphs (via geometric
// skip-sampling, O(n + m) time), random regular-ish bipartite graphs,
// power-law (Chung-Lu) graphs, structured families (stars, grids, paths),
// and the paper's hard distributions D_Matching (Section 4.1/5.1) and D_VC
// (Section 4.2/5.3) together with the greedy-trap instance showing that an
// arbitrary maximal matching is an Omega(k)-approximate coreset.
package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// GNP samples an Erdos-Renyi graph G(n, p): each of the n(n-1)/2 possible
// edges appears independently with probability p. Generation uses geometric
// skip-sampling, so the cost is O(n + m), not O(n^2).
func GNP(n int, p float64, r *rng.RNG) *graph.Graph {
	if n < 0 || p < 0 || p > 1 {
		panic("gen: GNP with invalid parameters")
	}
	g := &graph.Graph{N: n}
	if n < 2 || p == 0 {
		return g
	}
	total := int64(n) * int64(n-1) / 2
	var edges []graph.Edge
	if p >= 1 {
		edges = make([]graph.Edge, 0, total)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
			}
		}
		g.Edges = edges
		return g
	}
	// Walk the linear pair index space with geometric jumps; decode the
	// monotonically increasing index to (u, v) with a row cursor.
	cur := int64(-1)
	u := 0
	rowStart := int64(0) // linear index of pair (u, u+1)
	for {
		cur += int64(r.Geometric(p)) + 1
		if cur >= total {
			break
		}
		for cur >= rowStart+int64(n-1-u) {
			rowStart += int64(n - 1 - u)
			u++
		}
		v := u + 1 + int(cur-rowStart)
		edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
	}
	g.Edges = edges
	return g
}

// BipartiteGNP samples a random bipartite graph: each of the nl*nr pairs is
// an edge independently with probability p, via skip-sampling.
func BipartiteGNP(nl, nr int, p float64, r *rng.RNG) *graph.Bipartite {
	if nl < 0 || nr < 0 || p < 0 || p > 1 {
		panic("gen: BipartiteGNP with invalid parameters")
	}
	b := graph.NewBipartite(nl, nr, nil)
	if nl == 0 || nr == 0 || p == 0 {
		return b
	}
	total := int64(nl) * int64(nr)
	cur := int64(-1)
	for {
		if p >= 1 {
			cur++
		} else {
			cur += int64(r.Geometric(p)) + 1
		}
		if cur >= total {
			break
		}
		b.Edges = append(b.Edges, graph.Edge{
			U: graph.ID(cur / int64(nr)),
			V: graph.ID(cur % int64(nr)),
		})
	}
	return b
}

// RandomPerfectMatching returns a bipartite graph on n+n vertices whose
// edges form a uniformly random perfect matching.
func RandomPerfectMatching(n int, r *rng.RNG) *graph.Bipartite {
	perm := r.Perm32(n)
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: graph.ID(i), V: perm[i]}
	}
	return graph.NewBipartite(n, n, edges)
}

// RandomBipartiteRegular returns an (approximately) d-regular bipartite
// graph on n+n vertices built as the union of d uniformly random perfect
// matchings with duplicate edges removed. Every vertex has degree <= d and
// degree d in the absence of collisions (collisions are rare for d << n).
func RandomBipartiteRegular(n, d int, r *rng.RNG) *graph.Bipartite {
	if d < 0 || d > n {
		panic("gen: RandomBipartiteRegular with invalid degree")
	}
	seen := make(map[graph.Edge]struct{}, n*d)
	edges := make([]graph.Edge, 0, n*d)
	for j := 0; j < d; j++ {
		perm := r.Perm32(n)
		for i := 0; i < n; i++ {
			e := graph.Edge{U: graph.ID(i), V: perm[i]}
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				edges = append(edges, e)
			}
		}
	}
	return graph.NewBipartite(n, n, edges)
}

// Star returns a star K_{1,n-1} with center 0. The paper uses the star to
// show that a minimum vertex cover is NOT a composable coreset (Section 3.2).
func Star(n int) *graph.Graph {
	if n < 1 {
		panic("gen: Star with n < 1")
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.ID(v)})
	}
	return &graph.Graph{N: n, Edges: edges}
}

// StarForest returns a disjoint union of `count` stars with `leaves` leaves
// each. Centers are vertices 0..count-1; vertex count is count*(leaves+1).
func StarForest(count, leaves int) *graph.Graph {
	if count < 0 || leaves < 0 {
		panic("gen: StarForest with negative parameters")
	}
	n := count * (leaves + 1)
	edges := make([]graph.Edge, 0, count*leaves)
	for c := 0; c < count; c++ {
		center := graph.ID(c)
		for j := 0; j < leaves; j++ {
			leaf := graph.ID(count + c*leaves + j)
			edges = append(edges, graph.Edge{U: center, V: leaf}.Canon())
		}
	}
	return &graph.Graph{N: n, Edges: edges}
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: graph.ID(v), V: graph.ID(v + 1)})
	}
	return &graph.Graph{N: n, Edges: edges}
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle with n < 3")
	}
	g := Path(n)
	g.Edges = append(g.Edges, graph.Edge{U: 0, V: graph.ID(n - 1)})
	return g
}

// Grid returns the rows x cols grid graph (4-neighborhood). Grids are
// bipartite with perfect or near-perfect matchings and serve as a structured
// sanity workload.
func Grid(rows, cols int) *graph.Graph {
	if rows < 0 || cols < 0 {
		panic("gen: Grid with negative dimensions")
	}
	n := rows * cols
	id := func(r, c int) graph.ID { return graph.ID(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return &graph.Graph{N: n, Edges: edges}
}

// ChungLu samples a power-law graph: vertex v gets weight w_v drawn from a
// bounded Zipf with the given exponent and cap, and each pair (u, v) is an
// edge with probability min(1, w_u*w_v/W) where W is the total weight.
// Generation sorts weights in decreasing order and skip-samples per row with
// an upper-bound probability, then filters by the exact one (Miller-Hagberg),
// for O(n + m) expected time. Vertex ids are randomly relabeled so that
// vertex id carries no degree information.
func ChungLu(n int, exponent float64, maxWeight int, r *rng.RNG) *graph.Graph {
	if n < 0 || maxWeight < 1 {
		panic("gen: ChungLu with invalid parameters")
	}
	g := &graph.Graph{N: n}
	if n < 2 {
		return g
	}
	sorted, total, perm := chungLuWeights(n, exponent, maxWeight, r)
	var edges []graph.Edge
	for u := 0; u < n-1; u++ {
		// Upper bound for this row: weights are sorted, so the largest
		// pair probability in row u is with v = u+1.
		pMax := sorted[u] * sorted[u+1] / total
		if pMax <= 0 {
			continue
		}
		if pMax > 1 {
			pMax = 1
		}
		v := u // skip cursor; candidate edges are (u, v) for v > u
		for {
			v += r.Geometric(pMax) + 1
			if v >= n {
				break
			}
			p := sorted[u] * sorted[v] / total
			if p > 1 {
				p = 1
			}
			if r.Bernoulli(p / pMax) {
				edges = append(edges, graph.Edge{U: graph.ID(u), V: graph.ID(v)})
			}
		}
	}
	// Random relabeling.
	for i, e := range edges {
		edges[i] = graph.Edge{U: perm[e.U], V: perm[e.V]}.Canon()
	}
	g.Edges = edges
	return g
}

// chungLuWeights performs the Chung-Lu setup draws: the Zipf weight
// sequence (sorted descending via counting sort), its total, and the vertex
// relabeling permutation. The permutation is drawn before any edge is
// sampled so the whole draw sequence is a prefix-replayable function of
// (n, params). ChungLu and PowerlawIter both build on this one helper — the
// iterator's exact-replay guarantee depends on the two consuming the RNG
// identically, so the shared prep must never fork.
func chungLuWeights(n int, exponent float64, maxWeight int, r *rng.RNG) (sorted []float64, total float64, perm []int32) {
	z := rng.NewZipf(maxWeight, exponent)
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(z.Sample(r))
		total += w[i]
	}
	cnt := make([]int, maxWeight+1)
	for _, x := range w {
		cnt[int(x)]++
	}
	sorted = make([]float64, 0, n)
	for x := maxWeight; x >= 1; x-- {
		for j := 0; j < cnt[x]; j++ {
			sorted = append(sorted, float64(x))
		}
	}
	return sorted, total, r.Perm32(n)
}

// WeightedGNP samples G(n, p) and assigns each edge an independent weight
// uniform on [1, maxW).
func WeightedGNP(n int, p float64, maxW float64, r *rng.RNG) *graph.WGraph {
	g := GNP(n, p, r)
	out := &graph.WGraph{N: n, Edges: make([]graph.WEdge, len(g.Edges))}
	for i, e := range g.Edges {
		out.Edges[i] = graph.WEdge{U: e.U, V: e.V, W: 1 + r.Float64()*(maxW-1)}
	}
	return out
}

// WeightedChungLu samples a power-law graph with exponential edge weights
// (mean meanW), a heavy-tailed workload shaped like the advertising /
// recommendation applications that motivate weighted matching.
func WeightedChungLu(n int, exponent float64, maxWeight int, meanW float64, r *rng.RNG) *graph.WGraph {
	g := ChungLu(n, exponent, maxWeight, r)
	out := &graph.WGraph{N: n, Edges: make([]graph.WEdge, len(g.Edges))}
	for i, e := range g.Edges {
		out.Edges[i] = graph.WEdge{U: e.U, V: e.V, W: r.Exp(1/meanW) + 1e-9}
	}
	return out
}
