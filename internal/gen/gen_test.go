package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestGNPBasics(t *testing.T) {
	r := rng.New(1)
	g := GNP(100, 0.1, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Skip-sampling never produces duplicates.
	seen := map[graph.Edge]bool{}
	for _, e := range g.Edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestGNPEdgeCountConcentration(t *testing.T) {
	r := rng.New(3)
	const n, p = 300, 0.05
	total := float64(n*(n-1)) / 2
	want := total * p
	sigma := math.Sqrt(total * p * (1 - p))
	sum := 0.0
	const reps = 20
	for i := 0; i < reps; i++ {
		sum += float64(GNP(n, p, r).M())
	}
	mean := sum / reps
	if math.Abs(mean-want) > 4*sigma/math.Sqrt(reps) {
		t.Fatalf("GNP mean edges = %v, want ~%v", mean, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	r := rng.New(5)
	if g := GNP(0, 0.5, r); g.M() != 0 {
		t.Fatal("GNP(0) has edges")
	}
	if g := GNP(1, 0.5, r); g.M() != 0 {
		t.Fatal("GNP(1) has edges")
	}
	if g := GNP(50, 0, r); g.M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if g := GNP(20, 1, r); g.M() != 20*19/2 {
		t.Fatalf("GNP(p=1) has %d edges, want %d", g.M(), 20*19/2)
	}
}

func TestGNPDeterministic(t *testing.T) {
	g1 := GNP(100, 0.08, rng.New(42))
	g2 := GNP(100, 0.08, rng.New(42))
	if g1.M() != g2.M() {
		t.Fatal("GNP not deterministic under fixed seed")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("GNP not deterministic under fixed seed")
		}
	}
}

func TestBipartiteGNP(t *testing.T) {
	r := rng.New(7)
	b := BipartiteGNP(50, 80, 0.1, r)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 50 * 80 * 0.1
	if math.Abs(float64(b.M())-want) > 6*math.Sqrt(want) {
		t.Fatalf("BipartiteGNP edges = %d, want ~%v", b.M(), want)
	}
	if BipartiteGNP(0, 10, 0.5, r).M() != 0 {
		t.Fatal("empty left side should have no edges")
	}
	if BipartiteGNP(3, 4, 1, r).M() != 12 {
		t.Fatal("p=1 should give complete bipartite graph")
	}
}

func TestRandomPerfectMatching(t *testing.T) {
	r := rng.New(9)
	b := RandomPerfectMatching(64, r)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.M() != 64 {
		t.Fatalf("M = %d", b.M())
	}
	degL := make([]int, 64)
	degR := make([]int, 64)
	for _, e := range b.Edges {
		degL[e.U]++
		degR[e.V]++
	}
	for i := 0; i < 64; i++ {
		if degL[i] != 1 || degR[i] != 1 {
			t.Fatalf("vertex %d degrees (%d, %d), want (1,1)", i, degL[i], degR[i])
		}
	}
}

func TestRandomBipartiteRegular(t *testing.T) {
	r := rng.New(11)
	const n, d = 100, 5
	b := RandomBipartiteRegular(n, d, r)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	degL := make([]int, n)
	for _, e := range b.Edges {
		degL[e.U]++
	}
	for i, dd := range degL {
		if dd > d || dd < 1 {
			t.Fatalf("left vertex %d degree %d, want in [1,%d]", i, dd, d)
		}
	}
	// Collisions are rare: expect near n*d edges.
	if b.M() < n*d*9/10 {
		t.Fatalf("too many collisions: %d edges", b.M())
	}
}

func TestStructuredFamilies(t *testing.T) {
	if g := Star(5); g.M() != 4 || g.N != 5 {
		t.Fatal("Star wrong")
	}
	sf := StarForest(3, 4)
	if sf.N != 15 || sf.M() != 12 {
		t.Fatalf("StarForest N=%d M=%d", sf.N, sf.M())
	}
	if err := sf.Validate(); err != nil {
		t.Fatal(err)
	}
	if g := Path(5); g.M() != 4 {
		t.Fatal("Path wrong")
	}
	if g := Cycle(5); g.M() != 5 {
		t.Fatal("Cycle wrong")
	}
	grid := Grid(3, 4)
	if grid.N != 12 || grid.M() != 3*3+2*4 {
		t.Fatalf("Grid N=%d M=%d", grid.N, grid.M())
	}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChungLuShape(t *testing.T) {
	r := rng.New(13)
	g := ChungLu(2000, 2.0, 100, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Fatal("ChungLu produced empty graph")
	}
	// Power-law: max degree should be several times the mean degree.
	deg := graph.Degrees(g.N, g.Edges)
	maxd, sum := 0, 0
	for _, d := range deg {
		if int(d) > maxd {
			maxd = int(d)
		}
		sum += int(d)
	}
	mean := float64(sum) / float64(g.N)
	if float64(maxd) < 4*mean {
		t.Fatalf("ChungLu not skewed: max=%d mean=%.2f", maxd, mean)
	}
}

func TestHardMatchingStructure(t *testing.T) {
	r := rng.New(17)
	const n, alpha, k = 400, 4, 8
	inst := HardMatching(n, alpha, k, r)
	if err := inst.B.Validate(); err != nil {
		t.Fatal(err)
	}
	a := n / alpha
	countA, countB := 0, 0
	for v := 0; v < n; v++ {
		if inst.InA[v] {
			countA++
		}
		if inst.InB[v] {
			countB++
		}
	}
	if countA != a || countB != a {
		t.Fatalf("|A|=%d |B|=%d, want %d", countA, countB, a)
	}
	if len(inst.Hidden) != n-a {
		t.Fatalf("|hidden| = %d, want %d", len(inst.Hidden), n-a)
	}
	// Hidden edges form a perfect matching on the complements.
	seenL := map[graph.ID]bool{}
	seenR := map[graph.ID]bool{}
	for _, e := range inst.Hidden {
		if inst.InA[e.U] || inst.InB[e.V] {
			t.Fatalf("hidden edge %v touches A or B", e)
		}
		if seenL[e.U] || seenR[e.V] {
			t.Fatalf("hidden edges share endpoint at %v", e)
		}
		seenL[e.U] = true
		seenR[e.V] = true
		if !inst.HiddenSet[e] {
			t.Fatalf("HiddenSet missing %v", e)
		}
	}
	// Confuser edges live inside A x B.
	for _, e := range inst.B.Edges {
		if inst.HiddenSet[e] {
			continue
		}
		if !inst.InA[e.U] || !inst.InB[e.V] {
			t.Fatalf("confuser edge %v outside A x B", e)
		}
	}
}

func TestHardMatchingHiddenEdgesAreInduced(t *testing.T) {
	// Hidden edges touch vertices of global degree 1, so any subset of the
	// graph's edges containing a hidden edge has it in the induced matching.
	r := rng.New(19)
	inst := HardMatching(300, 3, 4, r)
	im := InducedMatching(inst.B.NL, inst.B.Edges)
	inIM := map[graph.Edge]bool{}
	for _, e := range im {
		inIM[e] = true
	}
	for _, h := range inst.Hidden {
		if !inIM[h] {
			t.Fatalf("hidden edge %v not in induced matching of full graph", h)
		}
	}
}

func TestInducedMatchingHandInstance(t *testing.T) {
	// L0-R0 isolated pair (induced), L1-R1 and L1-R2 (L1 degree 2: not
	// induced), L2-R1 (R1 degree 2: not induced).
	edges := []graph.Edge{{U: 0, V: 0}, {U: 1, V: 1}, {U: 1, V: 2}, {U: 2, V: 1}}
	im := InducedMatching(3, edges)
	if len(im) != 1 || im[0] != (graph.Edge{U: 0, V: 0}) {
		t.Fatalf("InducedMatching = %v, want [{0 0}]", im)
	}
}

func TestHardVCStructure(t *testing.T) {
	r := rng.New(23)
	const n, alpha, k = 500, 5, 10
	inst := HardVC(n, alpha, k, r)
	if err := inst.B.Validate(); err != nil {
		t.Fatal(err)
	}
	if !inst.InA[inst.VStar] {
		t.Fatal("v* not in A")
	}
	if inst.B.Edges[inst.EStarIndex] != inst.EStar {
		t.Fatal("EStarIndex wrong")
	}
	if inst.EStar.U != inst.VStar {
		t.Fatal("e* not incident on v*")
	}
	countA := 0
	for v := 0; v < n; v++ {
		if inst.InA[v] {
			countA++
		}
	}
	if countA != n/alpha {
		t.Fatalf("|A| = %d, want %d", countA, n/alpha)
	}
	// All edges originate in A.
	for _, e := range inst.B.Edges {
		if !inst.InA[e.U] {
			t.Fatalf("edge %v has left endpoint outside A", e)
		}
	}
	// Edge count concentrates around |A| * n * k/2n = |A|*k/2 (+1 for e*).
	want := float64(countA) * float64(k) / 2
	if math.Abs(float64(inst.B.M()-1)-want) > 6*math.Sqrt(want) {
		t.Fatalf("edges = %d, want ~%v", inst.B.M()-1, want)
	}
}

func TestDegreeOneLeft(t *testing.T) {
	// L0: degree 1 -> in L1; L1: degree 2; L2: degree 1 sharing R0.
	edges := []graph.Edge{{U: 0, V: 0}, {U: 1, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	l1, r1 := DegreeOneLeft(3, edges)
	if len(l1) != 2 {
		t.Fatalf("L1 = %v, want [0 2]", l1)
	}
	if len(r1) != 1 || r1[0] != 0 {
		t.Fatalf("R1 = %v, want [0]", r1)
	}
}

func TestGreedyTrapStructure(t *testing.T) {
	r := rng.New(29)
	const n, k = 60, 6
	inst := GreedyTrap(n, k, r)
	if err := inst.B.Validate(); err != nil {
		t.Fatal(err)
	}
	np := (n + k - 1) / k
	if inst.NPrime != np {
		t.Fatalf("NPrime = %d, want %d", inst.NPrime, np)
	}
	if inst.B.M() != np*n+n {
		t.Fatalf("M = %d, want %d", inst.B.M(), np*n+n)
	}
	hiddenCount := 0
	for i, h := range inst.IsHidden {
		e := inst.B.Edges[i]
		if h {
			hiddenCount++
			if int(e.U) < np {
				t.Fatalf("hidden edge %v starts in P'", e)
			}
		} else if int(e.U) >= np {
			t.Fatalf("confuser edge %v starts outside P'", e)
		}
	}
	if hiddenCount != n {
		t.Fatalf("hidden count = %d, want %d", hiddenCount, n)
	}
}

func TestAdversarialMaximalOrderIsPermutation(t *testing.T) {
	part := []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 5, V: 1}, {U: 6, V: 2}}
	isHidden := func(e graph.Edge) bool { return e.U >= 5 }
	out := AdversarialMaximalOrder(part, isHidden)
	if len(out) != len(part) {
		t.Fatal("order changed length")
	}
	// First edge must be the blocker (0,1): confuser sharing right
	// endpoint 1 with hidden edge (5,1).
	if out[0] != (graph.Edge{U: 0, V: 1}) {
		t.Fatalf("first edge = %v, want blocker {0 1}", out[0])
	}
	// Hidden edges must come last.
	if !isHidden(out[len(out)-1]) || !isHidden(out[len(out)-2]) {
		t.Fatal("hidden edges not last")
	}
}

func TestWeightedGenerators(t *testing.T) {
	r := rng.New(31)
	wg := WeightedGNP(100, 0.1, 10, r)
	if len(wg.Edges) == 0 {
		t.Fatal("WeightedGNP empty")
	}
	for _, e := range wg.Edges {
		if e.W < 1 || e.W >= 10 {
			t.Fatalf("weight %v out of [1,10)", e.W)
		}
	}
	wc := WeightedChungLu(500, 2.0, 50, 3.0, r)
	if len(wc.Edges) == 0 {
		t.Fatal("WeightedChungLu empty")
	}
	for _, e := range wc.Edges {
		if e.W <= 0 {
			t.Fatalf("non-positive weight %v", e.W)
		}
	}
	if graph.TotalWeight(wc.Edges) <= 0 {
		t.Fatal("total weight non-positive")
	}
	un := graph.StripWeights(wc.Edges)
	if len(un) != len(wc.Edges) {
		t.Fatal("StripWeights length mismatch")
	}
}

func TestGeneratorPanics(t *testing.T) {
	r := rng.New(37)
	for name, f := range map[string]func(){
		"GNP":     func() { GNP(-1, 0.5, r) },
		"GNPp":    func() { GNP(5, 1.5, r) },
		"BipGNP":  func() { BipartiteGNP(3, -1, 0.5, r) },
		"Regular": func() { RandomBipartiteRegular(5, 9, r) },
		"Star":    func() { Star(0) },
		"Cycle":   func() { Cycle(2) },
		"HardM":   func() { HardMatching(0, 1, 1, r) },
		"HardVC":  func() { HardVC(10, 0, 1, r) },
		"Trap":    func() { GreedyTrap(0, 1, r) },
		"ChungLu": func() { ChungLu(10, 2, 0, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkGNP(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GNP(10000, 0.001, r)
	}
}

func BenchmarkChungLu(b *testing.B) {
	r := rng.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ChungLu(10000, 2.0, 200, r)
	}
}

func BenchmarkHardMatching(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		HardMatching(10000, 10, 10, r)
	}
}
