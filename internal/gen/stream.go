package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// EdgeIter is a pull iterator over generated edges: Next returns the next
// edge until the stream is exhausted. Iterators hold O(1) state, so the
// streaming runtime (internal/stream) can shard synthetic workloads of any
// size without ever materializing the graph — the regime the paper's
// per-machine space bounds are about.
type EdgeIter interface {
	Next() (graph.Edge, bool)
}

// GNPIter returns an iterator over the edges of G(n, p) using the same
// geometric skip-sampling and the same RNG draw sequence as GNP: for any
// seed, collecting GNPIter(n, p, rng.New(seed)) yields exactly
// GNP(n, p, rng.New(seed)).Edges. Panics on invalid parameters, like GNP.
func GNPIter(n int, p float64, r *rng.RNG) EdgeIter {
	if n < 0 || p < 0 || p > 1 {
		panic("gen: GNPIter with invalid parameters")
	}
	it := &gnpIter{n: n, p: p, r: r}
	if n < 2 || p == 0 {
		it.done = true
		return it
	}
	it.total = int64(n) * int64(n-1) / 2
	it.cur = -1
	return it
}

type gnpIter struct {
	n        int
	p        float64
	r        *rng.RNG
	total    int64
	cur      int64
	u        int
	rowStart int64 // linear index of pair (u, u+1)
	dv       int   // dense mode: next v for row u
	done     bool
}

func (it *gnpIter) Next() (graph.Edge, bool) {
	if it.done {
		return graph.Edge{}, false
	}
	if it.p >= 1 {
		// Dense mode: enumerate every pair in GNP's row order.
		if it.dv <= it.u {
			it.dv = it.u + 1
		}
		if it.dv >= it.n {
			it.u++
			if it.u >= it.n-1 {
				it.done = true
				return graph.Edge{}, false
			}
			it.dv = it.u + 1
		}
		e := graph.Edge{U: graph.ID(it.u), V: graph.ID(it.dv)}
		it.dv++
		return e, true
	}
	it.cur += int64(it.r.Geometric(it.p)) + 1
	if it.cur >= it.total {
		it.done = true
		return graph.Edge{}, false
	}
	for it.cur >= it.rowStart+int64(it.n-1-it.u) {
		it.rowStart += int64(it.n - 1 - it.u)
		it.u++
	}
	v := it.u + 1 + int(it.cur-it.rowStart)
	return graph.Edge{U: graph.ID(it.u), V: graph.ID(v)}, true
}

// StarIter returns an iterator over the edges of the star K_{1,n-1} with
// center 0, in the same order as Star. Panics if n < 1, like Star.
func StarIter(n int) EdgeIter {
	if n < 1 {
		panic("gen: StarIter with n < 1")
	}
	return &starIter{n: n, v: 1}
}

type starIter struct{ n, v int }

func (it *starIter) Next() (graph.Edge, bool) {
	if it.v >= it.n {
		return graph.Edge{}, false
	}
	e := graph.Edge{U: 0, V: graph.ID(it.v)}
	it.v++
	return e, true
}

// PowerlawIter returns an iterator over the edges of a Chung-Lu power-law
// graph using the same Miller-Hagberg row skip-sampling and the same RNG
// draw sequence as ChungLu: for any seed, collecting
// PowerlawIter(n, exponent, maxWeight, rng.New(seed)) yields exactly
// ChungLu(n, exponent, maxWeight, rng.New(seed)).Edges. The iterator holds
// O(n) state (the sorted weight sequence and the relabeling permutation) but
// never the O(m) edge list, closing the one streaming gap the CLI used to
// have: powerlaw workloads now shard without being materialized. Panics on
// invalid parameters, like ChungLu.
func PowerlawIter(n int, exponent float64, maxWeight int, r *rng.RNG) EdgeIter {
	if n < 0 || maxWeight < 1 {
		panic("gen: PowerlawIter with invalid parameters")
	}
	it := &powerlawIter{n: n, r: r}
	if n < 2 {
		it.done = true
		return it
	}
	it.sorted, it.total, it.perm = chungLuWeights(n, exponent, maxWeight, r)
	it.u = -1 // first Next advances to row 0
	return it
}

type powerlawIter struct {
	n      int
	r      *rng.RNG
	sorted []float64 // weights, descending
	total  float64   // sum of weights
	perm   []int32   // relabeling permutation
	u      int       // current row (-1 before the first row)
	v      int       // skip cursor within the row
	pMax   float64   // row upper-bound probability
	inRow  bool
	done   bool
}

func (it *powerlawIter) Next() (graph.Edge, bool) {
	if it.done {
		return graph.Edge{}, false
	}
	for {
		if !it.inRow {
			it.u++
			if it.u >= it.n-1 {
				it.done = true
				return graph.Edge{}, false
			}
			// Row upper bound: weights are sorted descending, so the largest
			// pair probability in row u is with v = u+1 (as in ChungLu).
			pMax := it.sorted[it.u] * it.sorted[it.u+1] / it.total
			if pMax <= 0 {
				continue
			}
			if pMax > 1 {
				pMax = 1
			}
			it.pMax = pMax
			it.v = it.u
			it.inRow = true
		}
		it.v += it.r.Geometric(it.pMax) + 1
		if it.v >= it.n {
			it.inRow = false
			continue
		}
		p := it.sorted[it.u] * it.sorted[it.v] / it.total
		if p > 1 {
			p = 1
		}
		if it.r.Bernoulli(p / it.pMax) {
			return graph.Edge{U: it.perm[it.u], V: it.perm[it.v]}.Canon(), true
		}
	}
}

// SliceIter returns an iterator over a fixed edge slice, in order.
func SliceIter(edges []graph.Edge) EdgeIter {
	return &sliceIter{edges: edges}
}

type sliceIter struct {
	edges []graph.Edge
	pos   int
}

func (it *sliceIter) Next() (graph.Edge, bool) {
	if it.pos >= len(it.edges) {
		return graph.Edge{}, false
	}
	e := it.edges[it.pos]
	it.pos++
	return e, true
}

// Collect drains an iterator into a slice (testing and small inputs).
func Collect(it EdgeIter) []graph.Edge {
	var out []graph.Edge
	for {
		e, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
