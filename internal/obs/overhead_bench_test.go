package obs

import (
	"strconv"
	"testing"
)

// BenchmarkObsOverhead measures what instrumentation costs when it is OFF —
// the default for every library layer. The nil-sink and nil-tracer cases are
// the exact calls the cluster runtime makes on its per-frame hot path
// (coordinator countSent/countReceived, worker countIn/countOut) and per
// round (tracer spans); they must stay allocation-free, or observability
// would tax every run that never asked for it. The registry-backed cases sit
// alongside for contrast — the price a caller opts into with -trace/-admin.
//
// Baseline: BENCH_obs.json (regenerate with
// go test -run=^$ -bench=BenchmarkObsOverhead -benchmem ./internal/obs/).
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("count/nil-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Count(nil, "cluster_frames_sent_total", 1)
		}
	})
	b.Run("countby/nil-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CountBy(nil, "cluster_shard_bytes_total", "machine", "3", 4096)
		}
	})
	b.Run("observe/nil-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Observe(nil, "cluster_dial_seconds", 0.002)
		}
	})
	// Spans run once per round or run — never per frame. The residual cost
	// with tracing off is the caller-built variadic attribute slice (~100 B
	// per span), which is why the per-frame paths above use plain arguments.
	b.Run("span/nil-tracer", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			end := tr.Span("worker.round", "machine", 1, "round", 0)
			end("edges", 4096)
		}
	})
	b.Run("event/nil-tracer", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Event("shard.flush", "bytes", 4096)
		}
	})

	b.Run("count/registry-sink", func(b *testing.B) {
		s := NewRegistrySink(NewRegistry())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Count(s, "cluster_frames_sent_total", 1)
		}
	})
	b.Run("countby/registry-sink", func(b *testing.B) {
		s := NewRegistrySink(NewRegistry())
		lbl := strconv.Itoa(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CountBy(s, "cluster_shard_bytes_total", "machine", lbl, 4096)
		}
	})
}
