package obs

import (
	"strings"
	"testing"
)

// sampleLines counts the non-comment, non-blank lines of an exposition —
// exactly the lines ParseText must turn into samples.
func sampleLines(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}

// TestParseTextRoundTripsRender is the property pin behind coresetload
// -scrape and the CI metrics validator: every sample line Registry.WriteTo
// can emit — plain and function-backed counters, gauges, histograms with
// their +Inf bucket and _sum/_count, labeled vectors with values needing
// escaping — parses back to exactly the value that was rendered, and no line
// is silently dropped.
func TestParseTextRoundTripsRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "plain counter").Add(42)
	reg.CounterFunc("fn_total", "function-backed counter", func() float64 { return 7.5 })
	reg.Gauge("depth", "can go negative").Set(-3)
	h := reg.Histogram("lat_seconds", "unlabeled histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(10) // lands in the implicit +Inf bucket
	v := reg.CounterVec("jobs_total", "labeled counter", "task", "mode")
	v.With("edcs", "cluster").Add(3)
	hard := `quo"te back\slash` + "\nnewline"
	v.With(hard, "sp ace").Inc()
	hv := reg.HistogramVec("phase_seconds", "labeled histogram", []float64{0.5}, "phase")
	hv.With("decode").Observe(0.2)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	m, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText rejected WriteTo output: %v\n%s", err, text)
	}
	if got, want := len(m), sampleLines(text); got != want {
		t.Fatalf("parsed %d samples from %d sample lines:\n%s", got, want, text)
	}

	want := map[string]float64{
		"c_total":                                42,
		"fn_total":                               7.5,
		"depth":                                  -3,
		`lat_seconds_bucket{le="0.1"}`:           1,
		`lat_seconds_bucket{le="1"}`:             1,
		`lat_seconds_bucket{le="+Inf"}`:          2,
		"lat_seconds_sum":                        10.05,
		"lat_seconds_count":                      2,
		`jobs_total{task="edcs",mode="cluster"}`: 3,
		"jobs_total" + formatLabels([]string{"task", "mode"}, []string{hard, "sp ace"}): 1,
		`phase_seconds_bucket{phase="decode",le="0.5"}`:                                 1,
		`phase_seconds_bucket{phase="decode",le="+Inf"}`:                                1,
		`phase_seconds_sum{phase="decode"}`:                                             0.2,
		`phase_seconds_count{phase="decode"}`:                                           1,
	}
	for name, wantV := range want {
		got, ok := m[name]
		if !ok {
			t.Errorf("sample %q missing from parse:\n%s", name, text)
			continue
		}
		if got != wantV {
			t.Errorf("%s = %v, want %v", name, got, wantV)
		}
	}
}

// TestParseTextRejectsMalformed: a sample line without a value is an error,
// never a silently skipped line.
func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"loneword\n", "name notanumber\n"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

// FuzzParseText drives the render→parse round trip with arbitrary label
// values and deltas: whatever WriteTo emits, ParseText must parse without
// error, recover every sample line, and return the rendered values under the
// exact rendered keys.
func FuzzParseText(f *testing.F) {
	f.Add("machine", int64(3))
	f.Add(`quo"te`, int64(1))
	f.Add(`back\slash`, int64(-5))
	f.Add("new\nline", int64(9))
	f.Add("sp ace{},=", int64(1<<40))
	f.Fuzz(func(t *testing.T, label string, delta int64) {
		reg := NewRegistry()
		reg.CounterVec("fuzz_total", "fuzzed counter", "l").With(label).Add(delta)
		reg.HistogramVec("fuzz_seconds", "fuzzed histogram", []float64{1}, "l").
			With(label).Observe(float64(delta))

		var b strings.Builder
		if _, err := reg.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		text := b.String()
		m, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("ParseText rejected WriteTo output: %v\n%s", err, text)
		}
		if got, want := len(m), sampleLines(text); got != want {
			t.Fatalf("parsed %d samples from %d sample lines:\n%s", got, want, text)
		}
		lbl := formatLabels([]string{"l"}, []string{label})
		wantCount := float64(0)
		if delta > 0 {
			wantCount = float64(delta) // Counter.Add ignores negative deltas
		}
		if got := m["fuzz_total"+lbl]; got != wantCount {
			t.Fatalf("fuzz_total%s = %v, want %v\n%s", lbl, got, wantCount, text)
		}
		if got := m["fuzz_seconds_count"+lbl]; got != 1 {
			t.Fatalf("fuzz_seconds_count%s = %v, want 1\n%s", lbl, got, text)
		}
	})
}
