package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Sink receives counter- and sample-style events from library layers. The
// cluster runtime reports frames, bytes, dial attempts, backoff sleeps,
// retries and replays through an injected Sink (cluster.Config.Obs); the
// rounds driver reports per-round union sizes and shrink ratios. Library
// code stays silent by default — a nil Sink is the zero-cost off switch, and
// callers go through the package-level Count/Observe helpers, which are
// nil-safe.
//
// Implementations must be safe for concurrent use; the cluster runtime calls
// them from one goroutine per worker connection.
type Sink interface {
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Observe records one sample of a distribution (latencies in seconds,
	// sizes in edges or bytes).
	Observe(name string, v float64)
}

// Count forwards to s if non-nil.
func Count(s Sink, name string, delta int64) {
	if s != nil {
		s.Count(name, delta)
	}
}

// Observe forwards to s if non-nil.
func Observe(s Sink, name string, v float64) {
	if s != nil {
		s.Observe(name, v)
	}
}

// KeyedSink is the optional Sink extension for counters carrying one label —
// how the cluster runtime's per-connection events gain a machine dimension.
// A sink that implements it must route each metric name through either the
// labeled or the unlabeled path consistently, never both (a Registry-backed
// sink cannot register a name under two shapes).
type KeyedSink interface {
	Sink
	// CountBy adds delta to the counter's child for label=value.
	CountBy(name, label, value string, delta int64)
}

// CountBy forwards a labeled count to s: sinks implementing KeyedSink get
// the label, plain sinks get an unlabeled Count with the same total, and a
// nil sink stays free. Library code can therefore always pass the label and
// let the sink decide the granularity.
func CountBy(s Sink, name, label, value string, delta int64) {
	switch ks := s.(type) {
	case nil:
	case KeyedSink:
		ks.CountBy(name, label, value, delta)
	default:
		s.Count(name, delta)
	}
}

// RegistrySink adapts a Registry into a Sink: Count lands in a counter of
// the same name, Observe in a histogram (DefLatencyBuckets unless the name
// was pre-registered with its own layout). Metrics appear in the registry on
// first use, so a daemon's /metrics only carries the event families its
// runtimes actually produced.
type RegistrySink struct {
	reg *Registry

	mu     sync.Mutex
	counts map[string]*Counter
	hists  map[string]*Histogram
	vecs   map[string]*CounterVec
}

// NewRegistrySink returns a sink writing into reg.
func NewRegistrySink(reg *Registry) *RegistrySink {
	return &RegistrySink{
		reg:    reg,
		counts: make(map[string]*Counter),
		hists:  make(map[string]*Histogram),
		vecs:   make(map[string]*CounterVec),
	}
}

// CountBy implements KeyedSink: the named counter becomes a one-label vector
// and delta lands in the label=value child. A name used through CountBy must
// never also be used through Count on the same sink (the registry pins a
// family's label shape on first registration).
func (s *RegistrySink) CountBy(name, label, value string, delta int64) {
	s.mu.Lock()
	v, ok := s.vecs[name]
	if !ok {
		v = s.reg.CounterVec(name, "runtime event counter (see internal/obs)", label)
		s.vecs[name] = v
	}
	s.mu.Unlock()
	v.With(value).Add(delta)
}

// Count implements Sink.
func (s *RegistrySink) Count(name string, delta int64) {
	s.mu.Lock()
	c, ok := s.counts[name]
	if !ok {
		c = s.reg.Counter(name, "runtime event counter (see internal/obs)")
		s.counts[name] = c
	}
	s.mu.Unlock()
	c.Add(delta)
}

// Observe implements Sink.
func (s *RegistrySink) Observe(name string, v float64) {
	s.mu.Lock()
	h, ok := s.hists[name]
	if !ok {
		h = s.reg.Histogram(name, "runtime event distribution (see internal/obs)", nil)
		s.hists[name] = h
	}
	s.mu.Unlock()
	h.Observe(v)
}

// ParseText parses Prometheus text exposition into a flat map keyed by the
// full sample name including its label set (exactly as rendered, e.g.
// `jobs_total{task="edcs"}`). Comment and blank lines are skipped; a
// malformed sample line is an error. It is the parser behind coresetload
// -scrape and the CI metrics validator, and deliberately handles only the
// subset WriteTo emits.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; label values can
		// never contain a raw space... but help/label escaping keeps spaces,
		// so split at the last space instead of the first.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("obs: malformed metric line %q", line)
		}
		name, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metric %q has non-numeric value %q", name, valStr)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
