package obs

import (
	"regexp"
	"strings"
	"testing"
)

// TestNilTracerSafe: every method on a nil *Tracer must be a no-op, since
// library code never nil-checks the tracers it is handed.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Event("x", "k", 1)
	end := tr.Span("y")
	end("k", 2)
	if tr.WithRun("r-1") != nil {
		t.Fatal("nil tracer WithRun must stay nil")
	}
	if NewTracer(nil, "r-1") != nil {
		t.Fatal("NewTracer(nil, ...) must return nil")
	}
}

var durRe = regexp.MustCompile(`dur_ms=[0-9.]+`)

// TestTextTracerFormat pins the slog text layout -trace golden tests rely on:
// no timestamps, run ID first, span start/end pairs with a dur_ms tail.
func TestTextTracerFormat(t *testing.T) {
	var b strings.Builder
	tr := NewTextTracer(&b, "r-test")
	tr.Event("compose", "shards", 4)
	end := tr.Span("round", "round", 1)
	end("union_edges", 10)

	got := durRe.ReplaceAllString(b.String(), "dur_ms=X")
	want := `level=INFO msg=compose run=r-test shards=4
level=INFO msg=round.start run=r-test round=1
level=INFO msg=round.end run=r-test round=1 union_edges=10 dur_ms=X
`
	if got != want {
		t.Errorf("trace output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRunIDs(t *testing.T) {
	if RunIDFromSeed(42) != RunIDFromSeed(42) {
		t.Fatal("RunIDFromSeed not deterministic")
	}
	if RunIDFromSeed(42) == RunIDFromSeed(43) {
		t.Fatal("distinct seeds collided")
	}
	if NewRunID() == NewRunID() {
		t.Fatal("NewRunID repeated itself")
	}
}
