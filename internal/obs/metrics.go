// Package obs is the repository's observability layer: a dependency-free
// metrics core (atomic counters, gauges and fixed-bucket latency histograms
// behind a Registry that renders the Prometheus text exposition format), a
// log/slog-based structured run-trace layer (trace.go) and a Sink interface
// (sink.go) through which library packages — cluster, rounds, stream — report
// low-level events without ever owning a registry themselves.
//
// The paper's whole trade — coreset quality bought with communication and
// rounds — lives or dies by numbers: per-round wire bytes, retries, replayed
// machines, cache hits, job latency. This package is how those numbers leave
// the process while it runs, instead of being visible only in a single job's
// JSON report after the fact. The service (internal/service) exposes its
// registry at GET /metrics; cmd/coresetd adds net/http/pprof on an opt-in
// admin listener; cmd/coresetload scrapes the endpoint mid-run and prints
// deltas next to its latency percentiles.
//
// Everything here is stdlib-only and safe for concurrent use: counters and
// gauges are single atomics, histograms are an atomic counter per bucket, and
// rendering takes a snapshot without stopping writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use, but counters almost always come from Registry.Counter so they render.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas are ignored (a counter never goes down).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depth, in-flight jobs,
// resident entries).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets is the default histogram bucket layout for job and round
// latencies, in seconds: half-decade steps from 1ms to 60s. The coresetd
// workload spans ~0.05ms cache hits to multi-second cluster jobs, so the
// range is deliberately wide.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper bound is >= v (bounds are inclusive, Prometheus "le"
// semantics), with an implicit +Inf bucket at the end. Counts are atomics;
// the sum is a CAS loop over float64 bits. Observations never block each
// other or a concurrent render.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive le
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric kinds, for duplicate-registration checks and TYPE lines.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// family is one registered metric name: either a single collector (no
// labels) or a vector of children keyed by label values.
type family struct {
	name   string
	help   string
	kind   string
	labels []string // empty for unlabeled metrics

	// Exactly one of the following is used, matching kind/labels.
	counter     *Counter
	counterFn   func() float64
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *Histogram
	buckets     []float64 // bucket layout for histogram vec children
	mu          sync.Mutex
	children    map[string]*child
	childOrder  []string
	renderOrder int
}

type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric creation is idempotent: asking for an existing
// name with the same kind returns the existing collector, and a kind
// mismatch panics (it is a programming error, caught by any test that
// touches the path).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...)}
	if len(labels) > 0 {
		f.children = make(map[string]*child)
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil)
	if f.counter == nil && f.counterFn == nil {
		f.counter = &Counter{}
	}
	if f.counter == nil {
		panic(fmt.Sprintf("obs: counter %q is function-backed", name))
	}
	return f.counter
}

// CounterFunc registers a counter whose value is read from fn at render
// time. It is how existing monotonic totals (cache hits, lifetime job
// counts) are exposed without double bookkeeping; fn must be monotonic and
// safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounter, nil)
	f.counterFn = fn
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	if f.gauge == nil && f.gaugeFn == nil {
		f.gauge = &Gauge{}
	}
	if f.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q is function-backed", name))
	}
	return f.gauge
}

// GaugeFunc registers a gauge read from fn at render time (queue depth,
// resident bytes — values some other structure already tracks).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGauge, nil)
	f.gaugeFn = fn
}

// Histogram returns the registered histogram, creating it with the given
// bucket upper bounds on first use (nil buckets = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHist, nil)
	if f.hist == nil {
		if buckets == nil {
			buckets = DefLatencyBuckets
		}
		f.hist = newHistogram(buckets)
	}
	return f.hist
}

// CounterVec is a counter family with labels; With returns the child for a
// concrete label-value tuple, creating it on first use.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labels)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, labels)}
}

// HistogramVec registers a labeled histogram family with the given bucket
// layout (nil = DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.family(name, help, kindHist, labels)
	f.mu.Lock()
	if f.buckets == nil {
		if buckets == nil {
			buckets = DefLatencyBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &HistogramVec{f: f}
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHist:
			c.hist = newHistogram(f.buckets)
		}
		f.children[key] = c
		f.childOrder = append(f.childOrder, key)
		sort.Strings(f.childOrder) // deterministic exposition order
	}
	return c
}

// With returns the child counter for the label values (in declaration order).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).counter }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).gauge }

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).hist }

// WriteTo renders every registered metric in the Prometheus text exposition
// format (version 0.0.4), families in registration order and vector children
// in sorted label order, so output for a fixed workload is stable enough to
// pin in golden tests.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if len(f.labels) == 0 {
		switch f.kind {
		case kindCounter:
			v := float64(0)
			if f.counterFn != nil {
				v = f.counterFn()
			} else if f.counter != nil {
				v = float64(f.counter.Value())
			}
			fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(v))
		case kindGauge:
			v := float64(0)
			if f.gaugeFn != nil {
				v = f.gaugeFn()
			} else if f.gauge != nil {
				v = float64(f.gauge.Value())
			}
			fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(v))
		case kindHist:
			renderHistogram(b, f.name, "", f.hist)
		}
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.childOrder...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for _, c := range children {
		lbl := formatLabels(f.labels, c.values)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, lbl, formatFloat(float64(c.counter.Value())))
		case kindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, lbl, formatFloat(float64(c.gauge.Value())))
		case kindHist:
			renderHistogram(b, f.name, lbl, c.hist)
		}
	}
}

// renderHistogram emits the _bucket/_sum/_count triplet. lbl is the
// pre-rendered label set ("{a=\"b\"}" or ""); the le label is appended
// inside it.
func renderHistogram(b *strings.Builder, name, lbl string, h *Histogram) {
	if h == nil {
		h = newHistogram(nil)
	}
	withLe := func(le string) string {
		if lbl == "" {
			return `{le="` + le + `"}`
		}
		return lbl[:len(lbl)-1] + `,le="` + le + `"}`
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLe(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLe("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, lbl, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, lbl, h.Count())
}

func formatLabels(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the rendered registry — what the
// service mounts at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
