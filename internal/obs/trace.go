package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Tracer is the structured run-trace layer: a thin wrapper over *slog.Logger
// that stamps every event with a run ID and emits span-style start/end pairs
// (shard start/end, round start/end, replay attempt, compose). A nil *Tracer
// is valid and silent — library code takes a *Tracer and never checks it for
// nil, so tracing stays zero-cost until someone turns it on (cmd/coreset
// -trace, coresetd -trace).
type Tracer struct {
	l     *slog.Logger
	runID string
}

// NewTracer wraps l; a nil logger yields a nil (silent) tracer. runID may be
// empty when the caller stamps runs later via WithRun.
func NewTracer(l *slog.Logger, runID string) *Tracer {
	if l == nil {
		return nil
	}
	return &Tracer{l: l, runID: runID}
}

// NewTextTracer traces to w in slog text format without timestamps — the
// deterministic layout the CLI's -trace flag uses, pinned by golden tests
// (durations still vary; tests normalize the dur_ms attribute).
func NewTextTracer(w io.Writer, runID string) *Tracer {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	return &Tracer{l: slog.New(h), runID: runID}
}

// WithRun returns a tracer stamping events with runID (nil-safe).
func (t *Tracer) WithRun(runID string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{l: t.l, runID: runID}
}

// Enabled reports whether events will be emitted (nil-safe).
func (t *Tracer) Enabled() bool { return t != nil && t.l != nil }

// Event emits one span-style event with the run ID attached. args are slog
// key/value pairs.
func (t *Tracer) Event(name string, args ...any) {
	if t == nil || t.l == nil {
		return
	}
	if t.runID != "" {
		args = append([]any{"run", t.runID}, args...)
	}
	t.l.Info(name, args...)
}

// Span emits name+".start" now and returns a function emitting name+".end"
// with a dur_ms attribute plus any extra end-time args. Usage:
//
//	end := tr.Span("round", "round", r)
//	... work ...
//	end("union", len(u))
func (t *Tracer) Span(name string, args ...any) func(endArgs ...any) {
	if t == nil || t.l == nil {
		return noopEnd
	}
	return t.span(name, args)
}

// noopEnd is the shared end function of a disabled span, so the nil path
// never allocates a closure.
var noopEnd = func(...any) {}

func (t *Tracer) span(name string, args []any) func(endArgs ...any) {
	t.Event(name+".start", args...)
	start := time.Now()
	return func(endArgs ...any) {
		all := append(append([]any{}, args...), endArgs...)
		all = append(all, "dur_ms", float64(time.Since(start).Microseconds())/1000)
		t.Event(name+".end", all...)
	}
}

var runSeq atomic.Int64

// NewRunID mints a process-unique run ID (time-seeded, sequence-suffixed) —
// what long-running daemons stamp jobs with.
func NewRunID() string {
	return fmt.Sprintf("r-%x-%d", time.Now().UnixNano()&0xffffff, runSeq.Add(1))
}

// RunIDFromSeed derives a deterministic run ID from a run's root seed — what
// single-shot CLI runs use, so a fixed-seed run traces identically every
// time (golden-testable). The mix is the splitmix64 finalizer.
func RunIDFromSeed(seed uint64) string {
	x := seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("r-%08x", uint32(x))
}
