package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the text exposition format for a fixed registry:
// families in registration order, vector children in sorted label order,
// histograms as cumulative buckets plus _sum/_count. Scrapers (and the CI
// validator) depend on this exact shape.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Total jobs.").Add(3)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(7)
	g.Dec()
	v := r.CounterVec("cache_ops_total", "Cache operations.", "op")
	v.With("miss").Add(2)
	v.With("hit").Add(5)
	h := r.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // boundary: le is inclusive, lands in the 0.1 bucket
	h.Observe(3)
	r.GaugeFunc("uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Total jobs.
# TYPE jobs_total counter
jobs_total 3
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 6
# HELP cache_ops_total Cache operations.
# TYPE cache_ops_total counter
cache_ops_total{op="hit"} 5
cache_ops_total{op="miss"} 2
# HELP latency_seconds Job latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 3.15
latency_seconds_count 3
# HELP uptime_seconds Seconds since start.
# TYPE uptime_seconds gauge
uptime_seconds 12.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The rendered text must round-trip through the scrape parser.
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"jobs_total":                     3,
		"queue_depth":                    6,
		`cache_ops_total{op="hit"}`:      5,
		`latency_seconds_bucket{le="1"}`: 2,
		"latency_seconds_count":          3,
		"uptime_seconds":                 12.5,
	} {
		if parsed[name] != want {
			t.Errorf("ParseText[%s] = %v, want %v", name, parsed[name], want)
		}
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket rule: a sample
// equal to an upper bound counts in that bucket, one just above spills into
// the next, and everything past the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 5.1, 100} {
		h.Observe(v)
	}
	// Raw (non-cumulative) per-bucket counts: (-inf,1]=2 (0.5, 1),
	// (1,2]=2 (1.0000001, 2), (2,5]=2 (4.9, 5), (5,+inf)=2 (5.1, 100).
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
}

// TestHistogramSum checks the CAS-loop float sum under concurrency.
func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 4000 {
		t.Fatalf("sum = %v, want 4000", got)
	}
}

// TestRegistryConcurrentRender hammers every collector kind while rendering
// concurrently; run under -race this is the scrape-while-submitting story at
// the registry level.
func TestRegistryConcurrentRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	v := r.CounterVec("v_total", "", "l")
	h := r.HistogramVec("h_seconds", "", nil, "task")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lbl := string(rune('a' + i))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				v.With(lbl).Inc()
				h.With(lbl).Observe(float64(i))
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseText(strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestIdempotentRegistration: same name and kind returns the same collector;
// a kind mismatch panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registration minted a second counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestRegistrySink routes Count and Observe events into registry metrics.
func TestRegistrySink(t *testing.T) {
	r := NewRegistry()
	s := NewRegistrySink(r)
	Count(s, "cluster_retries_total", 2)
	Count(s, "cluster_retries_total", 1)
	Observe(s, "rounds_shrink_ratio", 0.25)
	Count(nil, "ignored_total", 1) // nil sink is a no-op
	Observe(nil, "ignored", 1)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["cluster_retries_total"] != 3 {
		t.Errorf("cluster_retries_total = %v", parsed["cluster_retries_total"])
	}
	if parsed["rounds_shrink_ratio_count"] != 1 {
		t.Errorf("rounds_shrink_ratio_count = %v", parsed["rounds_shrink_ratio_count"])
	}
}
