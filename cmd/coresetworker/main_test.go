package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/stream"
)

// syncBuffer makes a bytes.Buffer safe for the worker's concurrent logger
// and tracer writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startWorker runs the CLI in a goroutine and parses the machine-readable
// ready lines off stdout. Closing the returned stop function triggers the
// stdin-EOF shutdown path and waits for a clean exit.
func startWorker(t *testing.T, args ...string) (workerAddr, adminAddr string, stderr *syncBuffer, stop func()) {
	t.Helper()
	stdinR, stdinW := io.Pipe()
	stdoutR, stdoutW := io.Pipe()
	errBuf := &syncBuffer{}
	code := make(chan int, 1)
	go func() {
		code <- run(append([]string{"-exit-on-stdin-eof"}, args...), stdinR, stdoutW, errBuf)
		stdoutW.Close()
	}()
	sc := bufio.NewScanner(stdoutR)
	deadline := time.AfterFunc(10*time.Second, func() { stdoutR.CloseWithError(fmt.Errorf("timed out awaiting ready lines")) })
	wantAdmin := false
	for _, a := range args {
		if a == "-admin" {
			wantAdmin = true
		}
	}
	for workerAddr == "" || (wantAdmin && adminAddr == "") {
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, cluster.ReadyPrefix):
			workerAddr = strings.TrimPrefix(line, cluster.ReadyPrefix)
		case strings.HasPrefix(line, "CORESETWORKER ADMIN "):
			adminAddr = strings.TrimPrefix(line, "CORESETWORKER ADMIN ")
		}
	}
	deadline.Stop()
	if workerAddr == "" {
		t.Fatalf("no ready line from worker (stderr: %s)", errBuf.String())
	}
	go io.Copy(io.Discard, stdoutR) // keep the pipe drained
	return workerAddr, adminAddr, errBuf, func() {
		stdinW.Close()
		if c := <-code; c != 0 {
			t.Errorf("worker exited %d (stderr: %s)", c, errBuf.String())
		}
	}
}

// path10 is a 10-vertex path graph — enough to exercise one full run.
func path10() stream.EdgeSource {
	return stream.NewReaderSource(strings.NewReader("p 10 9\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\n8 9\n"))
}

// TestAdminSurface: -admin serves /metrics, /healthz and pprof, and after a
// real coordinator run the worker registry shows frames, bytes, phase
// samples and the run count — the same operational contract as coresetd.
func TestAdminSurface(t *testing.T) {
	workerAddr, adminAddr, _, stop := startWorker(t, "-q", "-admin", "127.0.0.1:0")
	defer stop()
	if adminAddr == "" {
		t.Fatal("no admin ready line")
	}
	base := "http://" + adminAddr

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	_, st, err := cluster.Matching(context.Background(),
		path10(), cluster.Config{Workers: []string{workerAddr}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCommBytes <= 0 {
		t.Fatal("run measured no communication")
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	m, err := obs.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parsing /metrics: %v\n%s", err, body)
	}
	if m[`worker_runs_total`] != 1 {
		t.Fatalf("worker_runs_total = %v, want 1\n%s", m[`worker_runs_total`], body)
	}
	for _, name := range []string{
		`worker_frames_total{dir="in"}`,
		`worker_frames_total{dir="out"}`,
		`worker_bytes_total{dir="in"}`,
		`worker_bytes_total{dir="out"}`,
	} {
		if m[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, m[name])
		}
	}
	for _, phase := range []string{"decode", "build", "encode"} {
		name := fmt.Sprintf(`worker_phase_seconds_count{phase=%q}`, phase)
		if m[name] != 1 {
			t.Errorf("%s = %v, want 1", name, m[name])
		}
	}
}

// TestTraceJoinsCoordinatorRun: with -trace the worker's spans carry the run
// ID the coordinator shipped in its HELLO, so the two trace streams can be
// joined on it.
func TestTraceJoinsCoordinatorRun(t *testing.T) {
	workerAddr, _, stderr, stop := startWorker(t, "-q", "-trace")
	runID := obs.RunIDFromSeed(3)
	if _, _, err := cluster.Matching(context.Background(),
		path10(), cluster.Config{Workers: []string{workerAddr}, Seed: 3, RunID: runID}); err != nil {
		t.Fatal(err)
	}
	stop() // drain so all spans are flushed
	out := stderr.String()
	for _, want := range []string{"worker.run.start", "worker.run.end", "run=" + runID} {
		if !strings.Contains(out, want) {
			t.Fatalf("worker trace output missing %q:\n%s", want, out)
		}
	}
}
