// Command coresetworker is the resident cluster worker: one of the paper's
// k machines as a long-running OS process. It accepts run-assignment
// connections from any coordinator (cmd/coreset -cluster, coresetd -cluster
// or cmd/coresetload -target cluster), hosts the same incremental coreset
// builders the in-process runtimes use, and answers each run with a single
// CORESET frame over the measured wire protocol (internal/cluster).
//
// Usage:
//
//	coresetworker -addr 127.0.0.1:9601
//
// The worker serves any number of concurrent runs and keeps no state
// between them. Once the listener is bound it prints
//
//	CORESETWORKER READY <host:port>
//
// on stdout, which is how self-spawn deployments (cmd/coreset -cluster
// local, cluster.SpawnLocal) learn the address when -addr ends in :0. On
// SIGINT/SIGTERM — or stdin EOF with -exit-on-stdin-eof, the lifetime
// contract SpawnLocal uses so orphaned workers die with their parent — the
// worker stops accepting, drains in-flight runs (bounded by -drain) and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coresetworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		drain     = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight runs")
		stdinEOF  = fs.Bool("exit-on-stdin-eof", false, "shut down when stdin closes (set by self-spawn parents)")
		quietLogs = fs.Bool("q", false, "suppress per-run abort logging")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(stderr, "coresetworker: ", log.LstdFlags)
	if *quietLogs {
		logger = log.New(io.Discard, "", 0)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		fmt.Fprintln(stderr, "coresetworker: listen:", err)
		return 1
	}
	// The ready line is the machine-readable contract with SpawnLocal; print
	// it only after the listener is bound so the address is dialable.
	fmt.Fprintf(stdout, "%s%s\n", cluster.ReadyPrefix, ln.Addr())
	logger.Printf("serving on %s", ln.Addr())

	w := cluster.NewWorker(logger)
	serveErr := make(chan error, 1)
	go func() { serveErr <- w.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	stdinClosed := make(chan struct{})
	if *stdinEOF {
		go func() {
			_, _ = io.Copy(io.Discard, stdin)
			close(stdinClosed)
		}()
	}

	select {
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
		logger.Printf("signal received")
	case <-stdinClosed:
		logger.Printf("stdin closed")
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := w.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v (served %d runs)", err, w.Served())
		return 1
	}
	logger.Printf("drained cleanly (served %d runs)", w.Served())
	return 0
}
