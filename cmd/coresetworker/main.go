// Command coresetworker is the resident cluster worker: one of the paper's
// k machines as a long-running OS process. It accepts run-assignment
// connections from any coordinator (cmd/coreset -cluster, coresetd -cluster
// or cmd/coresetload -target cluster), hosts the same incremental coreset
// builders the in-process runtimes use, and answers each run with a single
// CORESET frame over the measured wire protocol (internal/cluster).
//
// Usage:
//
//	coresetworker -addr 127.0.0.1:9601
//
// The worker serves any number of concurrent runs and keeps no state
// between them. Once the listener is bound it prints
//
//	CORESETWORKER READY <host:port>
//
// on stdout, which is how self-spawn deployments (cmd/coreset -cluster
// local, cluster.SpawnLocal) learn the address when -addr ends in :0. On
// SIGINT/SIGTERM — or stdin EOF with -exit-on-stdin-eof, the lifetime
// contract SpawnLocal uses so orphaned workers die with their parent — the
// worker stops accepting, drains in-flight runs (bounded by -drain) and
// exits.
//
// With -admin ADDR a second listener serves the operational surface, the
// same contract as coresetd -admin: GET /metrics (Prometheus text: frame and
// byte counters by direction, per-phase latency histograms, runs served),
// GET /healthz, and net/http/pprof under /debug/pprof/. With -trace the
// worker logs run and round spans to stderr; each span carries the run ID
// the coordinator shipped in its HELLO, so worker streams join the
// coordinator's -trace stream by run ID.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coresetworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		drain     = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight runs")
		stdinEOF  = fs.Bool("exit-on-stdin-eof", false, "shut down when stdin closes (set by self-spawn parents)")
		quietLogs = fs.Bool("q", false, "suppress per-run abort logging")
		admin     = fs.String("admin", "", "optional admin listener address serving /metrics, /healthz and /debug/pprof/")
		trace     = fs.Bool("trace", false, "log run and round spans to stderr (run IDs join the coordinator's trace stream)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(stderr, "coresetworker: ", log.LstdFlags)
	if *quietLogs {
		logger = log.New(io.Discard, "", 0)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		fmt.Fprintln(stderr, "coresetworker: listen:", err)
		return 1
	}
	// The ready line is the machine-readable contract with SpawnLocal; print
	// it only after the listener is bound so the address is dialable.
	fmt.Fprintf(stdout, "%s%s\n", cluster.ReadyPrefix, ln.Addr())
	logger.Printf("serving on %s", ln.Addr())

	w := cluster.NewWorker(logger)
	var tracer *obs.Tracer
	if *trace {
		// The empty base run ID is deliberate: every span is stamped with the
		// run ID the coordinator's HELLO carries, never a locally minted one.
		tracer = obs.NewTextTracer(stderr, "")
	}
	reg := obs.NewRegistry()
	w.Instrument(tracer, reg)

	// The admin listener keeps the operational surface (metrics, profiling)
	// off the coordinator-facing port — the same split coresetd -admin makes.
	var adminSrv *http.Server
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			logger.Printf("admin listen: %v", err)
			fmt.Fprintln(stderr, "coresetworker: admin listen:", err)
			return 1
		}
		adminSrv = &http.Server{Addr: *admin, Handler: adminMux(reg)}
		// A second machine-readable line so harnesses that bind the admin
		// surface to port 0 can find it (same contract as the ready line).
		fmt.Fprintf(stdout, "CORESETWORKER ADMIN %s\n", aln.Addr())
		logger.Printf("admin surface on %s (/metrics, /healthz, /debug/pprof/)", aln.Addr())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("admin serve: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- w.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	stdinClosed := make(chan struct{})
	if *stdinEOF {
		go func() {
			_, _ = io.Copy(io.Discard, stdin)
			close(stdinClosed)
		}()
	}

	select {
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
		logger.Printf("signal received")
	case <-stdinClosed:
		logger.Printf("stdin closed")
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if adminSrv != nil {
		if err := adminSrv.Shutdown(dctx); err != nil {
			logger.Printf("admin shutdown: %v", err)
		}
	}
	if err := w.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v (served %d runs)", err, w.Served())
		return 1
	}
	logger.Printf("drained cleanly (served %d runs)", w.Served())
	return 0
}

// adminMux builds the operational handler: the worker's metric registry plus
// a liveness probe and the stdlib pprof endpoints — the same contract as
// coresetd -admin, so one set of scrape and profiling tooling covers both.
func adminMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
