package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestLoadGraphGenerators(t *testing.T) {
	for _, name := range []string{"gnp", "powerlaw", "star"} {
		g, err := loadGraph(inputSpec{genName: name, n: 500, deg: 6, seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N != 500 {
			t.Fatalf("%s: n = %d", name, g.N)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLoadGraphUnknownGenerator(t *testing.T) {
	if _, err := loadGraph(inputSpec{genName: "nope", n: 10, deg: 2, seed: 1}); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestLoadGraphMissingArgs(t *testing.T) {
	if _, err := loadGraph(inputSpec{n: 10, deg: 2, seed: 1}); err == nil {
		t.Fatal("no input source accepted")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("p 4 2\n0 1\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(inputSpec{in: path, n: 0, deg: 0, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 2 {
		t.Fatalf("loaded n=%d m=%d", g.N, g.M())
	}
}

func TestLoadGraphFileMissing(t *testing.T) {
	if _, err := loadGraph(inputSpec{in: "/does/not/exist", n: 0, deg: 0, seed: 1}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// runCLI executes the command in-process and returns (stdout, stderr, code).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// writePath10 writes a 10-vertex path graph in the text format.
func writePath10(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "path10.txt")
	in := "p 10 9\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\n8 9\n"
	if err := os.WriteFile(path, []byte(in), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Golden tests for the streaming runtime: fixed input, fixed seed, exact
// output. The hash sharder and the exact per-machine summaries are fully
// deterministic, so the summary lines are pinned verbatim.
func TestStreamGoldenMatchingFromFile(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "matching", "-k", "2", "-seed", "3", "-stream", "-q", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if want := "matching: 4 edges (streamed, 2 machines)\n"; out != want {
		t.Fatalf("stdout = %q, want %q", out, want)
	}
}

func TestStreamGoldenVCFromFile(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "vc", "-k", "2", "-seed", "3", "-stream", "-q", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if want := "vertex cover: 8 vertices (streamed, 2 machines)\n"; out != want {
		t.Fatalf("stdout = %q, want %q", out, want)
	}
}

func TestStreamGoldenSyntheticGNP(t *testing.T) {
	args := []string{"-task", "matching", "-gen", "gnp", "-n", "2000", "-deg", "6", "-seed", "7", "-k", "4", "-stream"}
	out, errOut, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	// Drop the throughput line (wall-clock) and compare the rest verbatim.
	var kept []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "throughput:") {
			kept = append(kept, line)
		}
	}
	want := strings.Join([]string{
		"stream: n=2000, 5960 edges in 6 batches, k=4 machines",
		// Byte counts are pinned to the varint delta edge-batch codec
		// (graph.AppendEdgeBatch), the shared wire/accounting encoding.
		"communication: total 7946 bytes, max machine 2071 bytes",
		"coreset edges per machine: [679 705 655 671]",
		"live greedy per machine: [621 627 591 614]",
		"matching: 980 edges (streamed, 4 machines)",
	}, "\n")
	if got := strings.Join(kept, "\n"); got != want {
		t.Fatalf("stdout:\n%s\nwant:\n%s", got, want)
	}
}

// Streaming and batch modes agree on the same input when handed the same
// explicit partitioning is proven in internal/stream; here we pin that both
// CLI modes run and report the same format family.
func TestCLIBatchStillWorks(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "matching", "-k", "2", "-seed", "3", "-q", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "(distributed, 2 machines)") {
		t.Fatalf("batch summary missing: %q", out)
	}
}

func TestCLIStreamRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("p 2 1\n0 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runCLI(t, "-task", "matching", "-stream", "-in", path)
	if code == 0 {
		t.Fatal("invalid input accepted")
	}
	if !strings.Contains(errOut, "out of declared range") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestCLIUnknownTask(t *testing.T) {
	for _, extra := range [][]string{nil, {"-stream"}} {
		args := append([]string{"-task", "nope", "-gen", "gnp", "-n", "100"}, extra...)
		if _, _, code := runCLI(t, args...); code != 2 {
			t.Fatalf("unknown task (args %v) exited %d, want 2", args, code)
		}
	}
}

func TestLoadGraphDeterministicSeed(t *testing.T) {
	a, err := loadGraph(inputSpec{genName: "gnp", n: 300, deg: 8, seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadGraph(inputSpec{genName: "gnp", n: 300, deg: 8, seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("generator not deterministic under seed")
	}
}

// normalizeReport zeroes the wall-clock fields so the rest of the report can
// be compared verbatim.
func normalizeReport(t *testing.T, jsonOut string) string {
	t.Helper()
	var rep graph.RunReport
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("decoding report %q: %v", jsonOut, err)
	}
	if rep.DurationMS <= 0 {
		t.Fatalf("report has no duration: %q", jsonOut)
	}
	rep.DurationMS = 0
	rep.EdgesPerSec = 0
	for i := range rep.RoundStats {
		rep.RoundStats[i].DurationMS = 0
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// Golden tests for -json: fixed input, fixed seed, exact report (modulo
// wall clock). The schema is shared with the coresetd service, so these
// also pin the service's result format.
func TestJSONGoldenBatchMatching(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "matching", "-k", "2", "-seed", "3", "-json", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	want := `{
  "task": "matching",
  "mode": "batch",
  "n": 10,
  "m": 9,
  "k": 2,
  "seed": 3,
  "solutionSize": 5,
  "partEdges": [
    3,
    6
  ],
  "coresetEdges": [
    2,
    3
  ],
  "totalCommBytes": 12,
  "maxMachineBytes": 7,
  "compositionEdges": 5,
  "durationMs": 0
}`
	if got := normalizeReport(t, out); got != want {
		t.Fatalf("report:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONGoldenStreamVC(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "vc", "-k", "2", "-seed", "3", "-stream", "-json", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	want := `{
  "task": "vc",
  "mode": "stream",
  "n": 10,
  "m": 9,
  "k": 2,
  "seed": 3,
  "solutionSize": 8,
  "partEdges": [
    3,
    6
  ],
  "storedEdges": [
    3,
    6
  ],
  "live": [
    0,
    0
  ],
  "coresetEdges": [
    3,
    6
  ],
  "coresetFixed": [
    0,
    0
  ],
  "totalCommBytes": 22,
  "maxMachineBytes": 14,
  "compositionEdges": 9,
  "batches": 1,
  "durationMs": 0
}`
	if got := normalizeReport(t, out); got != want {
		t.Fatalf("report:\n%s\nwant:\n%s", got, want)
	}
}

// Golden test for -task edcs -json: fixed input, fixed seed and β, exact
// report (modulo wall clock). On this bounded-degree input P2 forces the
// whole partition into H, so coresetEdges equals partEdges.
func TestJSONGoldenBatchEDCS(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "edcs", "-k", "2", "-seed", "3", "-beta", "8", "-json", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	want := `{
  "task": "edcs",
  "mode": "batch",
  "n": 10,
  "m": 9,
  "k": 2,
  "seed": 3,
  "beta": 8,
  "solutionSize": 5,
  "partEdges": [
    3,
    6
  ],
  "coresetEdges": [
    3,
    6
  ],
  "totalCommBytes": 20,
  "maxMachineBytes": 13,
  "compositionEdges": 9,
  "durationMs": 0
}`
	if got := normalizeReport(t, out); got != want {
		t.Fatalf("report:\n%s\nwant:\n%s", got, want)
	}
}

// A -beta the EDCS cannot use — or on a task it does not apply to — must be
// rejected up front, never silently replaced by the default or silently
// ignored, with the SAME message shape coresetd's job validation
// (service.CreateJobRequest.normalize) produces for the equivalent request,
// so a user moving between the CLI and the service reads one vocabulary.
// The expected strings are golden: they must track the service's text.
func TestCLIRejectsUnusableBeta(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"too-small": {
			[]string{"-task", "edcs", "-beta", "1", "-gen", "gnp", "-n", "100"},
			`coreset: beta must be in [2, 1048576] (got 1)`,
		},
		"too-large": {
			[]string{"-task", "edcs", "-beta", "2000000", "-gen", "gnp", "-n", "100"},
			`coreset: beta must be in [2, 1048576] (got 2000000)`,
		},
		"wrong-task": {
			[]string{"-task", "matching", "-beta", "16", "-gen", "gnp", "-n", "100"},
			`coreset: beta only applies to task "edcs" (got task "matching")`,
		},
	} {
		_, errOut, code := runCLI(t, tc.args...)
		if code != 2 {
			t.Fatalf("%s: exited %d, want 2", name, code)
		}
		if strings.TrimSpace(errOut) != tc.want {
			t.Fatalf("%s: stderr = %q, want %q", name, errOut, tc.want)
		}
	}
}

// -rounds follows the same fail-fast rule as -beta: rejected with the
// service's message shape on the wrong task or out of range, never silently
// ignored.
func TestCLIRejectsUnusableRounds(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"wrong-task": {
			[]string{"-task", "vc", "-rounds", "2", "-gen", "gnp", "-n", "100"},
			`coreset: rounds only applies to task "edcs" (got task "vc")`,
		},
		"negative": {
			[]string{"-task", "edcs", "-rounds", "-1", "-gen", "gnp", "-n", "100"},
			`coreset: rounds must be in [0, 64] (got -1)`,
		},
		"too-large": {
			[]string{"-task", "edcs", "-rounds", "65", "-gen", "gnp", "-n", "100"},
			`coreset: rounds must be in [0, 64] (got 65)`,
		},
	} {
		_, errOut, code := runCLI(t, tc.args...)
		if code != 2 {
			t.Fatalf("%s: exited %d, want 2", name, code)
		}
		if strings.TrimSpace(errOut) != tc.want {
			t.Fatalf("%s: stderr = %q, want %q", name, errOut, tc.want)
		}
	}
}

// Golden test for a multi-round -json report: the path graph cannot shrink
// (P2 keeps every edge), so the driver early-exits after round 0 with a cap
// of 3, and the report carries the per-round breakdown. The single-round
// fields (solutionSize, coresetEdges, comm bytes) must match
// TestJSONGoldenBatchEDCS exactly — rounds=N never changes round 0.
func TestJSONGoldenMultiRoundEDCS(t *testing.T) {
	out, errOut, code := runCLI(t, "-task", "edcs", "-k", "2", "-seed", "3", "-beta", "8",
		"-rounds", "3", "-json", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	want := `{
  "task": "edcs",
  "mode": "batch",
  "n": 10,
  "m": 9,
  "k": 2,
  "seed": 3,
  "beta": 8,
  "solutionSize": 5,
  "coresetEdges": [
    3,
    6
  ],
  "totalCommBytes": 20,
  "maxMachineBytes": 13,
  "compositionEdges": 9,
  "durationMs": 0,
  "rounds": 3,
  "roundsRun": 1,
  "roundStats": [
    {
      "round": 0,
      "k": 2,
      "seed": 3,
      "inputEdges": 9,
      "unionEdges": 9,
      "totalCommBytes": 20,
      "maxMachineBytes": 13,
      "durationMs": 0
    }
  ]
}`
	if got := normalizeReport(t, out); got != want {
		t.Fatalf("report:\n%s\nwant:\n%s", got, want)
	}
}

// A -rounds 1 run must report the identical composition as the single-round
// EDCS path — across batch and stream — with only the round bookkeeping
// added: the CLI face of the driver's rounds=1 parity guarantee.
func TestMultiRoundOneMatchesSingleRoundCLI(t *testing.T) {
	base := []string{"-task", "edcs", "-gen", "gnp", "-n", "1500", "-deg", "25", "-seed", "11", "-k", "4", "-beta", "16", "-json"}
	for _, mode := range [][]string{nil, {"-stream"}} {
		single, errOut, code := runCLI(t, append(append([]string{}, base...), mode...)...)
		if code != 0 {
			t.Fatalf("single exit %d, stderr: %s", code, errOut)
		}
		multi, errOut, code := runCLI(t, append(append(append([]string{}, base...), "-rounds", "1"), mode...)...)
		if code != 0 {
			t.Fatalf("multi exit %d, stderr: %s", code, errOut)
		}
		var s, m graph.RunReport
		if err := json.Unmarshal([]byte(single), &s); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(multi), &m); err != nil {
			t.Fatal(err)
		}
		if m.RoundsRun != 1 || len(m.RoundStats) != 1 {
			t.Fatalf("mode %v: rounds=1 ran %d rounds", mode, m.RoundsRun)
		}
		if s.SolutionSize != m.SolutionSize || !reflect.DeepEqual(s.CoresetEdges, m.CoresetEdges) ||
			s.TotalCommBytes != m.TotalCommBytes || s.MaxMachineBytes != m.MaxMachineBytes {
			t.Fatalf("mode %v: rounds=1 diverged from single-round:\nsingle %s\nmulti %s", mode, single, multi)
		}
	}
}

// The EDCS streaming runtime must emit the identical report fields for the
// same input (mode and streaming telemetry aside) — CLI-level seed parity.
func TestEDCSStreamMatchesBatch(t *testing.T) {
	args := []string{"-task", "edcs", "-gen", "gnp", "-n", "1500", "-deg", "25", "-seed", "11", "-k", "4", "-beta", "16", "-json"}
	outBatch, errOut, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("batch exit %d, stderr: %s", code, errOut)
	}
	outStream, errOut, code := runCLI(t, append(args, "-stream")...)
	if code != 0 {
		t.Fatalf("stream exit %d, stderr: %s", code, errOut)
	}
	var b, s graph.RunReport
	if err := json.Unmarshal([]byte(outBatch), &b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(outStream), &s); err != nil {
		t.Fatal(err)
	}
	if b.SolutionSize == 0 || b.SolutionSize != s.SolutionSize {
		t.Fatalf("solutions differ: batch %d, stream %d", b.SolutionSize, s.SolutionSize)
	}
	if !reflect.DeepEqual(b.CoresetEdges, s.CoresetEdges) || b.TotalCommBytes != s.TotalCommBytes {
		t.Fatalf("coreset accounting differs:\nbatch  %v (%d B)\nstream %v (%d B)",
			b.CoresetEdges, b.TotalCommBytes, s.CoresetEdges, s.TotalCommBytes)
	}
}

// The streamed powerlaw generator must shard the exact same graph the batch
// path materializes: same seed, same report modulo mode-specific fields.
func TestPowerlawStreamMatchesBatch(t *testing.T) {
	args := []string{"-task", "matching", "-gen", "powerlaw", "-n", "2000", "-seed", "11", "-k", "4", "-json"}
	outBatch, errOut, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("batch exit %d, stderr: %s", code, errOut)
	}
	outStream, errOut, code := runCLI(t, append(args, "-stream")...)
	if code != 0 {
		t.Fatalf("stream exit %d, stderr: %s", code, errOut)
	}
	var b, s graph.RunReport
	if err := json.Unmarshal([]byte(outBatch), &b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(outStream), &s); err != nil {
		t.Fatal(err)
	}
	if b.M != s.M || b.N != s.N {
		t.Fatalf("shapes differ: batch n=%d m=%d, stream n=%d m=%d", b.N, b.M, s.N, s.M)
	}
	if b.M == 0 {
		t.Fatal("powerlaw generated no edges")
	}
	if b.SolutionSize == 0 || s.SolutionSize == 0 {
		t.Fatalf("degenerate solutions: batch %d, stream %d", b.SolutionSize, s.SolutionSize)
	}
}
