package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphGenerators(t *testing.T) {
	for _, name := range []string{"gnp", "powerlaw", "star"} {
		g, err := loadGraph("", name, 500, 6, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N != 500 {
			t.Fatalf("%s: n = %d", name, g.N)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLoadGraphUnknownGenerator(t *testing.T) {
	if _, err := loadGraph("", "nope", 10, 2, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestLoadGraphMissingArgs(t *testing.T) {
	if _, err := loadGraph("", "", 10, 2, 1); err == nil {
		t.Fatal("no input source accepted")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("p 4 2\n0 1\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 2 {
		t.Fatalf("loaded n=%d m=%d", g.N, g.M())
	}
}

func TestLoadGraphFileMissing(t *testing.T) {
	if _, err := loadGraph("/does/not/exist", "", 0, 0, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadGraphDeterministicSeed(t *testing.T) {
	a, err := loadGraph("", "gnp", 300, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadGraph("", "gnp", 300, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("generator not deterministic under seed")
	}
}
