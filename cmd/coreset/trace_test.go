package main

import (
	"regexp"
	"testing"
)

// traceDurRe normalizes the only nondeterministic attribute in a trace
// stream: span durations.
var traceDurRe = regexp.MustCompile(`dur_ms=[0-9.e+-]+`)

// TestTraceGolden pins the -trace output of a fixed-seed multi-round batch
// run verbatim: the run ID is derived from -seed, the round breakdown and
// edge counts are deterministic, and only dur_ms varies between runs.
func TestTraceGolden(t *testing.T) {
	runTraced := func() string {
		t.Helper()
		_, errOut, code := runCLI(t, "-trace", "-task", "edcs", "-rounds", "2",
			"-k", "4", "-gen", "gnp", "-n", "400", "-deg", "6", "-seed", "5", "-q")
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, errOut)
		}
		return traceDurRe.ReplaceAllString(errOut, "dur_ms=*")
	}

	got := runTraced()
	want := `level=INFO msg=run.start run=r-a389c35a task=edcs mode=batch k=4 seed=5
level=INFO msg=round.start run=r-a389c35a round=0 k=4
level=INFO msg=round.end run=r-a389c35a round=0 k=4 input_edges=1210 union_edges=1210 dur_ms=*
level=INFO msg=compose run=r-a389c35a machines=4 union_edges=1210
level=INFO msg=run.end run=r-a389c35a task=edcs mode=batch k=4 seed=5 code=0 dur_ms=*
`
	if got != want {
		t.Errorf("trace mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Same seed, same trace: the stream is reproducible run to run.
	if again := runTraced(); again != got {
		t.Errorf("trace not deterministic\nfirst:\n%s\nsecond:\n%s", got, again)
	}
}

// TestTraceOffByDefault: without -trace, stderr stays silent.
func TestTraceOffByDefault(t *testing.T) {
	_, errOut, code := runCLI(t, "-task", "edcs", "-rounds", "2",
		"-k", "4", "-gen", "gnp", "-n", "400", "-deg", "6", "-seed", "5", "-q")
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errOut)
	}
	if errOut != "" {
		t.Errorf("stderr not empty without -trace:\n%s", errOut)
	}
}

// TestTraceStream: the streaming runtime emits shard spans under -trace.
func TestTraceStream(t *testing.T) {
	_, errOut, code := runCLI(t, "-trace", "-task", "matching", "-stream",
		"-k", "2", "-gen", "gnp", "-n", "300", "-deg", "4", "-seed", "3", "-q")
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errOut)
	}
	for _, want := range []string{"msg=run.start", "msg=shard.start", "msg=shard.end", "msg=run.end", "run=r-"} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(errOut) {
			t.Errorf("trace missing %q:\n%s", want, errOut)
		}
	}
}
