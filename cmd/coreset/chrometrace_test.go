package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// TestChromeTraceGolden pins the exact timeline assembled from a fixed run
// report: every field, including the synthetic timestamps, is a deterministic
// function of the report, so the whole JSON document is golden-testable.
func TestChromeTraceGolden(t *testing.T) {
	rep := &graph.RunReport{
		Task: "edcs", Mode: "cluster", K: 2, DurationMS: 10,
		RoundStats: []graph.RoundReport{
			{Round: 0, DurationMS: 6, MachineStats: []graph.MachineStats{
				{Machine: 0, DecodeMS: 1, BuildMS: 2, EncodeMS: 0.5, EdgesIn: 40, RepairIters: 3, Removals: 1, PeakCoreset: 20},
				{Machine: 1, DecodeMS: 1.5, BuildMS: 1, EncodeMS: 0.25, EdgesIn: 38, PeakCoreset: 19, Replayed: true},
			}},
			{Round: 1, DurationMS: 4, MachineStats: []graph.MachineStats{
				{Machine: 0, DecodeMS: 0.5, BuildMS: 1, EncodeMS: 0.5, EdgesIn: 20, PeakCoreset: 12},
			}},
		},
	}
	events := chromeTrace(rep)

	var names []string
	for _, e := range events {
		var b strings.Builder
		b.WriteString(e.Ph)
		b.WriteByte(' ')
		b.WriteString(e.Name)
		names = append(names, b.String())
	}
	wantNames := []string{
		"M process_name", "M process_name", "M process_name",
		"X round 0", "X decode", "X build", "X encode", "X decode", "X build", "X encode",
		"X round 1", "X decode", "X build", "X encode",
	}
	if !reflect.DeepEqual(names, wantNames) {
		t.Fatalf("event sequence %v, want %v", names, wantNames)
	}

	// Spot-check the synthetic layout: round 1 starts where round 0 ended,
	// and machine 0's build span in round 0 starts after its decode span.
	if got := events[10]; got.Ts != 6000 || got.Dur != 4000 || got.Pid != 0 || got.Tid != 1 {
		t.Fatalf("round 1 span = %+v, want ts=6000 dur=4000 pid=0 tid=1", got)
	}
	if got := events[5]; got.Ts != 1000 || got.Dur != 2000 || got.Pid != 1 || got.Tid != 0 {
		t.Fatalf("machine 0 build span = %+v, want ts=1000 dur=2000 pid=1 tid=0", got)
	}
	if got := events[7]; got.Args["replayed"] != true {
		t.Fatalf("machine 1 span args = %v, want replayed=true", got.Args)
	}

	// The full document is deterministic: rebuilding it yields identical JSON.
	a, _ := json.Marshal(chromeTrace(rep))
	b, _ := json.Marshal(chromeTrace(rep))
	if string(a) != string(b) {
		t.Fatal("chromeTrace is not deterministic for a fixed report")
	}
}

// TestTraceOutCluster runs a real 2-worker cluster with -trace-out and
// validates the written file: Perfetto envelope, one pid per machine plus the
// coordinator, per-machine decode/build/encode spans, and each machine's
// phase spans fitting inside the coordinator's measured round wall time. Run
// twice to check the structure (everything but ts/dur) is seed-deterministic.
func TestTraceOutCluster(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)

	load := func(path string) []traceEvent {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []traceEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("trace file is not valid JSON: %v", err)
		}
		return doc.TraceEvents
	}
	runOnce := func(path string) []traceEvent {
		t.Helper()
		_, errOut, code := runCLI(t, "-task", "edcs", "-seed", "5", "-cluster", strings.Join(addrs, ","),
			"-gen", "gnp", "-n", "400", "-deg", "6", "-q", "-trace-out", path)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut)
		}
		return load(path)
	}

	dir := t.TempDir()
	events := runOnce(filepath.Join(dir, "a.json"))

	pids := map[int]bool{}
	phases := map[int][]string{} // machine pid -> phase names in order
	var roundDur float64
	for _, e := range events {
		if e.Ph != "M" && e.Ph != "X" {
			t.Fatalf("unexpected event kind %q in %+v", e.Ph, e)
		}
		pids[e.Pid] = true
		if e.Ph == "X" && e.Pid == 0 {
			roundDur = e.Dur
		}
		if e.Ph == "X" && e.Pid > 0 {
			phases[e.Pid] = append(phases[e.Pid], e.Name)
		}
	}
	if !reflect.DeepEqual(pids, map[int]bool{0: true, 1: true, 2: true}) {
		t.Fatalf("pids %v, want coordinator plus one per machine {0,1,2}", pids)
	}
	for pid := 1; pid <= 2; pid++ {
		if !reflect.DeepEqual(phases[pid], []string{"decode", "build", "encode"}) {
			t.Fatalf("machine pid %d phases %v, want [decode build encode]", pid, phases[pid])
		}
	}
	// Each machine's phases happen inside the coordinator's round window, so
	// their durations must sum to no more than the round wall time (plus
	// generous slack for timer granularity).
	for pid := 1; pid <= 2; pid++ {
		var sum float64
		for _, e := range events {
			if e.Ph == "X" && e.Pid == pid {
				sum += e.Dur
			}
		}
		if sum > roundDur+50_000 {
			t.Fatalf("machine pid %d phase spans sum to %.0fus, exceeding round wall %.0fus", pid, sum, roundDur)
		}
	}

	// Determinism: a second identical run produces the same structure once
	// the measured ts/dur values are zeroed.
	again := runOnce(filepath.Join(dir, "b.json"))
	normalize := func(evs []traceEvent) []traceEvent {
		out := make([]traceEvent, len(evs))
		for i, e := range evs {
			e.Ts, e.Dur = 0, 0
			out[i] = e
		}
		return out
	}
	if !reflect.DeepEqual(normalize(events), normalize(again)) {
		t.Fatal("trace structure differs between two identical runs")
	}
}

// TestTraceOutRequiresCluster: the timeline is assembled from worker
// telemetry, so -trace-out outside the cluster runtime is an error, never a
// silently empty file.
func TestTraceOutRequiresCluster(t *testing.T) {
	_, errOut, code := runCLI(t, "-task", "matching", "-trace-out", filepath.Join(t.TempDir(), "t.json"), "-in", writePath10(t))
	if code != 2 || !strings.Contains(errOut, "-trace-out requires -cluster") {
		t.Fatalf("exit %d, stderr %q; want exit 2 naming the flag", code, errOut)
	}
}
