package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
)

// workerProcEnv diverts the test binary into worker mode, which is how the
// "-cluster local" tests below fork REAL worker processes: TestMain re-execs
// this very binary, SpawnLocal passes "-worker", and the child serves runs
// over TCP exactly as a deployed cmd/coreset would.
const workerProcEnv = "CORESET_TEST_WORKER_PROC"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) == "1" {
		os.Exit(run([]string{"-worker"}, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestClusterFlagAgainstResidentWorkers: -cluster host:port,... must
// reproduce the -stream answer exactly on the same (input, seed), with k
// taken from the address list.
func TestClusterFlagAgainstResidentWorkers(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	path := writePath10(t)

	streamOut, _, code := runCLI(t, "-task", "matching", "-k", "2", "-seed", "3", "-stream", "-q", "-in", path)
	if code != 0 {
		t.Fatalf("stream run exited %d", code)
	}
	clusterOut, errOut, code := runCLI(t, "-task", "matching", "-seed", "3", "-cluster", strings.Join(addrs, ","), "-q", "-in", path)
	if code != 0 {
		t.Fatalf("cluster run exited %d, stderr: %s", code, errOut)
	}
	want := strings.Replace(streamOut, "streamed", "cluster", 1)
	if clusterOut != want {
		t.Fatalf("cluster stdout %q, want %q", clusterOut, want)
	}
}

// TestClusterJSONReport: the -json report for a cluster run carries mode
// "cluster", measured wire bytes and the simulated estimate alongside.
func TestClusterJSONReport(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)

	out, errOut, code := runCLI(t, "-task", "vc", "-seed", "3", "-cluster", strings.Join(addrs, ","), "-json", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var rep graph.RunReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("decoding report: %v\n%s", err, out)
	}
	if rep.Mode != "cluster" || rep.K != 2 || rep.Task != "vc" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.TotalCommBytes <= 0 || rep.EstCommBytes <= 0 {
		t.Fatalf("wire accounting missing: measured %d, est %d", rep.TotalCommBytes, rep.EstCommBytes)
	}
	if rep.TotalCommBytes < rep.EstCommBytes || rep.TotalCommBytes > 2*rep.EstCommBytes {
		t.Fatalf("measured %d outside [est, 2*est] of %d", rep.TotalCommBytes, rep.EstCommBytes)
	}
	if rep.ShardBytes <= 0 {
		t.Fatal("no shard traffic measured")
	}
}

// TestClusterLocalSelfSpawn forks two real worker OS processes (this test
// binary re-execed via TestMain) and runs a full cluster pipeline against
// them — the "-cluster local" path end to end, answers pinned against
// -stream.
func TestClusterLocalSelfSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	t.Setenv(workerProcEnv, "1") // children inherit it and become workers
	path := writePath10(t)

	streamOut, _, code := runCLI(t, "-task", "vc", "-k", "2", "-seed", "3", "-stream", "-q", "-in", path)
	if code != 0 {
		t.Fatalf("stream run exited %d", code)
	}
	clusterOut, errOut, code := runCLI(t, "-task", "vc", "-k", "2", "-seed", "3", "-cluster", "local", "-q", "-in", path)
	if code != 0 {
		t.Fatalf("cluster local run exited %d, stderr: %s", code, errOut)
	}
	want := strings.Replace(streamOut, "streamed", "cluster", 1)
	if clusterOut != want {
		t.Fatalf("cluster stdout %q, want %q", clusterOut, want)
	}
}

func TestClusterRejectsBadAddressList(t *testing.T) {
	if _, errOut, code := runCLI(t, "-cluster", "a:1,,b:2", "-in", writePath10(t)); code == 0 || !strings.Contains(errOut, "empty worker address") {
		t.Fatalf("empty address accepted (exit %d, stderr %q)", code, errOut)
	}
}

// TestClusterUnreachableWorker: a dead address must fail the run with the
// worker named on stderr, not hang.
func TestClusterUnreachableWorker(t *testing.T) {
	_, errOut, code := runCLI(t, "-task", "matching", "-seed", "1", "-cluster", "127.0.0.1:1", "-in", writePath10(t))
	if code == 0 {
		t.Fatal("run against dead worker succeeded")
	}
	if !strings.Contains(errOut, "worker 0 (127.0.0.1:1)") {
		t.Fatalf("stderr %q does not name the failed worker", errOut)
	}
}
