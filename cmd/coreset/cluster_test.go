package main

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stream"
)

// workerProcEnv diverts the test binary into worker mode, which is how the
// "-cluster local" tests below fork REAL worker processes: TestMain re-execs
// this very binary, SpawnLocal passes "-worker", and the child serves runs
// over TCP exactly as a deployed cmd/coreset would.
const workerProcEnv = "CORESET_TEST_WORKER_PROC"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) == "1" {
		os.Exit(run([]string{"-worker"}, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestClusterFlagAgainstResidentWorkers: -cluster host:port,... must
// reproduce the -stream answer exactly on the same (input, seed), with k
// taken from the address list.
func TestClusterFlagAgainstResidentWorkers(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	path := writePath10(t)

	streamOut, _, code := runCLI(t, "-task", "matching", "-k", "2", "-seed", "3", "-stream", "-q", "-in", path)
	if code != 0 {
		t.Fatalf("stream run exited %d", code)
	}
	clusterOut, errOut, code := runCLI(t, "-task", "matching", "-seed", "3", "-cluster", strings.Join(addrs, ","), "-q", "-in", path)
	if code != 0 {
		t.Fatalf("cluster run exited %d, stderr: %s", code, errOut)
	}
	want := strings.Replace(streamOut, "streamed", "cluster", 1)
	if clusterOut != want {
		t.Fatalf("cluster stdout %q, want %q", clusterOut, want)
	}
}

// TestClusterJSONReport: the -json report for a cluster run carries mode
// "cluster", measured wire bytes and the simulated estimate alongside.
func TestClusterJSONReport(t *testing.T) {
	addrs, shutdown, err := cluster.ServeLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)

	out, errOut, code := runCLI(t, "-task", "vc", "-seed", "3", "-cluster", strings.Join(addrs, ","), "-json", "-in", writePath10(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var rep graph.RunReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("decoding report: %v\n%s", err, out)
	}
	if rep.Mode != "cluster" || rep.K != 2 || rep.Task != "vc" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.TotalCommBytes <= 0 || rep.EstCommBytes <= 0 {
		t.Fatalf("wire accounting missing: measured %d, est %d", rep.TotalCommBytes, rep.EstCommBytes)
	}
	if rep.TotalCommBytes < rep.EstCommBytes || rep.TotalCommBytes > 2*rep.EstCommBytes {
		t.Fatalf("measured %d outside [est, 2*est] of %d", rep.TotalCommBytes, rep.EstCommBytes)
	}
	if rep.ShardBytes <= 0 {
		t.Fatal("no shard traffic measured")
	}
}

// TestClusterLocalSelfSpawn forks two real worker OS processes (this test
// binary re-execed via TestMain) and runs a full cluster pipeline against
// them — the "-cluster local" path end to end, answers pinned against
// -stream.
func TestClusterLocalSelfSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	t.Setenv(workerProcEnv, "1") // children inherit it and become workers
	path := writePath10(t)

	streamOut, _, code := runCLI(t, "-task", "vc", "-k", "2", "-seed", "3", "-stream", "-q", "-in", path)
	if code != 0 {
		t.Fatalf("stream run exited %d", code)
	}
	clusterOut, errOut, code := runCLI(t, "-task", "vc", "-k", "2", "-seed", "3", "-cluster", "local", "-q", "-in", path)
	if code != 0 {
		t.Fatalf("cluster local run exited %d, stderr: %s", code, errOut)
	}
	want := strings.Replace(streamOut, "streamed", "cluster", 1)
	if clusterOut != want {
		t.Fatalf("cluster stdout %q, want %q", clusterOut, want)
	}
}

func TestClusterRejectsBadAddressList(t *testing.T) {
	if _, errOut, code := runCLI(t, "-cluster", "a:1,,b:2", "-in", writePath10(t)); code == 0 || !strings.Contains(errOut, "empty worker address") {
		t.Fatalf("empty address accepted (exit %d, stderr %q)", code, errOut)
	}
}

// TestMaxRetriesRequiresCluster: -max-retries only means something for the
// cluster runtime; setting it anywhere else is an error, never a silently
// ignored flag.
func TestMaxRetriesRequiresCluster(t *testing.T) {
	_, errOut, code := runCLI(t, "-task", "matching", "-max-retries", "1", "-in", writePath10(t))
	if code != 2 || !strings.Contains(errOut, "-max-retries requires -cluster") {
		t.Fatalf("exit %d, stderr %q; want exit 2 naming the flag", code, errOut)
	}
}

// TestClusterChaosSIGKILL is the process-level chaos drill: real forked
// worker OS processes, one of them SIGKILLed between rounds of a live EDCS
// session. The coordinator must absorb the loss — burn one replay attempt on
// the dead address, recover on the spare — and the disturbed session's
// per-round coresets must be deep-equal to the in-process streaming oracle.
func TestClusterChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	t.Setenv(workerProcEnv, "1") // children inherit it and become workers
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Three processes: two fleet members plus one standby the replay engine
	// may promote.
	lw, err := cluster.SpawnLocal(exe, []string{"-worker"}, 3, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lw.Close() })
	addrs := lw.Addrs()

	g := gen.GNP(600, 30.0/600, rng.New(7))
	p := edcs.ParamsForBeta(16)
	cfg := cluster.Config{
		Workers:      addrs[:2],
		Spares:       addrs[2:],
		BatchSize:    64,
		MaxRetries:   3,
		RetryBackoff: 10 * time.Millisecond,
	}
	sess, err := cluster.DialEDCSRounds(context.Background(), cfg, p, 2, g.N)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	seeds := []uint64{7, 8}
	input := g.Edges
	for r := 0; r < 2; r++ {
		if r == 1 {
			// SIGKILL a fleet member between rounds: its connection drops and
			// its address refuses dials from here on.
			if err := lw.Kill(1); err != nil {
				t.Fatal(err)
			}
		}
		sums, st, err := sess.Round(context.Background(), stream.NewSliceSource(g.N, input), 2, seeds[r])
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if r == 1 {
			// At least two attempts: the dead address, then the spare.
			if st.Retries < 2 {
				t.Fatalf("round 1 Retries = %d, want >= 2 (dead re-dial, then spare)", st.Retries)
			}
			if !reflect.DeepEqual(st.ReplayedMachines, []int{1}) {
				t.Fatalf("round 1 ReplayedMachines = %v, want [1]", st.ReplayedMachines)
			}
		} else if st.Retries != 0 {
			t.Fatalf("round 0 Retries = %d, want 0 (undisturbed)", st.Retries)
		}

		want, _, err := stream.EDCSSummaries(context.Background(),
			stream.NewSliceSource(g.N, input), stream.Config{K: 2, Seed: seeds[r], BatchSize: 64}, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !reflect.DeepEqual(sums[i].Coreset, want[i].Coreset) {
				t.Fatalf("round %d machine %d coreset diverged from the in-process oracle", r, i)
			}
		}
		input = nil
		for _, s := range sums {
			input = append(input, s.Coreset...)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close after chaos session: %v", err)
	}
}

// TestClusterUnreachableWorker: a dead address must fail the run with the
// worker named on stderr, not hang.
func TestClusterUnreachableWorker(t *testing.T) {
	_, errOut, code := runCLI(t, "-task", "matching", "-seed", "1", "-cluster", "127.0.0.1:1", "-in", writePath10(t))
	if code == 0 {
		t.Fatal("run against dead worker succeeded")
	}
	if !strings.Contains(errOut, "worker 0 (127.0.0.1:1)") {
		t.Fatalf("stderr %q does not name the failed worker", errOut)
	}
}
